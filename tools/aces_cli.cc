// aces — command-line front end to the library.
//
//   aces generate --seed=1 --nodes=10 --ingress=10 --intermediate=40
//                 --egress=10 --out=topo.txt [--dot=topo.dot]
//   aces optimize --topology=topo.txt [--solver=primal|dual]
//   aces simulate --topology=topo.txt --policy=aces [--duration=60]
//                 [--warmup=10] [--seed=1] [--csv] [--timeseries=ts.csv]
//                 [--trace=out.jsonl] [--faults="crash node=1 at=20 until=35"]
//                 [--staleness=1] [--reoptimize=5]
//   aces compare  --topology=topo.txt [--duration=60] [--seed=1] [--csv]
//                 [--runtime] [--timescale=5] [--trace=out.jsonl]
//                 [--transport=thread|inproc|uds|tcp] [--processes=2]
//                 [--substeps=4] [--fingerprint]
//                 [--faults=@faults.txt] [--staleness=1] [--reoptimize=5]
//   aces cluster-report --topology=topo.txt [--transport=uds --processes=3]
//                 [--sample=0.01] [--status-port=0] [--prom=prom.txt]
//   aces trace-summary --in=out.jsonl [--tail=0.25] [--tolerance=0.1]
//   aces sweep    --grid=@grid.txt [--jobs=4] [--out=BENCH_sweep.json]
//                 [--no-timing] [--quiet]
//   aces bench-diff --old=BENCH_a.json --new=BENCH_b.json
//                 [--threshold=0.25] [--hard-only]
//
// The CLI is a thin shell over the public API: generate_topology /
// write_topology, opt::optimize / optimize_dual, sim::simulate. Everything
// it does is reachable programmatically; it exists so a downstream user can
// reproduce an experiment without writing C++.
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>

#include "fault/fault_spec.h"
#include "graph/dot_export.h"
#include "graph/serialization.h"
#include "graph/topology_generator.h"
#include "harness/bench_diff.h"
#include "harness/experiment.h"
#include "harness/sweep_runner.h"
#include "harness/table.h"
#include "metrics/report_fingerprint.h"
#include "obs/cluster_aggregate.h"
#include "obs/counters.h"
#include "obs/export.h"
#include "obs/latency.h"
#include "obs/scoped_timer.h"
#include "obs/spans.h"
#include "obs/trace.h"
#include "obs/trace_summary.h"
#include "opt/dual_optimizer.h"
#include "runtime/dist_coordinator.h"
#include "runtime/dist_worker.h"
#include "runtime/runtime_engine.h"
#include "runtime/transport/transport.h"
#include "sim/stream_simulation.h"

namespace {

using namespace aces;

/// Minimal --key=value parser; positional tokens are rejected.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        throw std::runtime_error("unexpected argument: " + arg);
      }
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) {
    consumed_.insert(key);
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] double get(const std::string& key, double fallback) {
    const std::string raw = get(key, std::string());
    if (raw.empty()) return fallback;
    try {
      std::size_t pos = 0;
      const double value = std::stod(raw, &pos);
      if (pos != raw.size()) throw std::invalid_argument("trailing garbage");
      return value;
    } catch (const std::exception&) {
      throw std::runtime_error("invalid value for --" + key + ": '" + raw +
                               "' (expected a number)");
    }
  }
  [[nodiscard]] int get(const std::string& key, int fallback) {
    const std::string raw = get(key, std::string());
    if (raw.empty()) return fallback;
    try {
      std::size_t pos = 0;
      const int value = std::stoi(raw, &pos);
      if (pos != raw.size()) throw std::invalid_argument("trailing garbage");
      return value;
    } catch (const std::exception&) {
      throw std::runtime_error("invalid value for --" + key + ": '" + raw +
                               "' (expected an integer)");
    }
  }
  [[nodiscard]] bool has(const std::string& key) {
    consumed_.insert(key);
    return values_.contains(key);
  }

  /// Throws if any flag was provided that no command consumed (typo guard).
  void check_all_consumed() const {
    for (const auto& [key, value] : values_) {
      if (!consumed_.contains(key)) {
        throw std::runtime_error("unknown flag: --" + key);
      }
    }
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> consumed_;
};

graph::ProcessingGraph load_topology(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open topology file: " + path);
  return graph::read_topology(file);
}

/// Writes a recorded trace to `path`: CSV when the extension is .csv,
/// JSONL otherwise.
void write_trace_file(const std::string& path,
                      const obs::ControlTraceRecorder& recorder) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open trace file: " + path);
  const std::vector<obs::TickRecord> records = recorder.snapshot();
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
    obs::write_trace_csv(file, records);
  } else {
    obs::write_trace_jsonl(file, records);
  }
}

/// File tag for one policy's trace in a compare run ("aces", "udp", ...).
const char* policy_tag(control::FlowPolicy policy) {
  switch (policy) {
    case control::FlowPolicy::kAces: return "aces";
    case control::FlowPolicy::kUdp: return "udp";
    case control::FlowPolicy::kLockStep: return "lockstep";
    case control::FlowPolicy::kThreshold: return "threshold";
  }
  return "unknown";
}

/// out.jsonl + "aces" -> out.aces.jsonl; extensionless paths get ".aces".
std::string policy_trace_path(const std::string& base, const char* tag) {
  const auto dot = base.find_last_of('.');
  const auto slash = base.find_last_of('/');
  const bool has_extension =
      dot != std::string::npos &&
      (slash == std::string::npos || dot > slash);
  if (!has_extension) return base + "." + tag;
  return base.substr(0, dot) + "." + tag + base.substr(dot);
}

/// --faults accepts the spec grammar inline, or @FILE to read it from a
/// file (multi-line specs with comments).
fault::FaultSchedule load_faults(const std::string& spec) {
  if (spec.empty()) return {};
  if (spec.front() == '@') {
    std::ifstream file(spec.substr(1));
    if (!file) {
      throw std::runtime_error("cannot open fault spec file: " +
                               spec.substr(1));
    }
    std::string text((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
    return fault::parse_fault_spec(text);
  }
  return fault::parse_fault_spec(spec);
}

/// Post-run fault accounting on stderr (crash/stall/drop event counts).
void print_fault_counters(const obs::CounterRegistry& registry) {
  const obs::CounterSnapshot snap = registry.snapshot();
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("fault.", 0) == 0 && value > 0) {
      std::cerr << name << ": " << value << '\n';
    }
  }
}

/// Fault-related simulate/compare flags, resolved together because the
/// staleness default depends on whether faults are present.
struct FaultFlags {
  fault::FaultSchedule schedule;
  Seconds staleness = 0.0;
  Seconds reoptimize = 0.0;

  static FaultFlags parse(Flags& flags) {
    FaultFlags f;
    f.schedule = load_faults(flags.get("faults", std::string()));
    // With faults in play the staleness rule defaults on (1 s); healthy
    // runs keep the pre-fault behaviour unless asked.
    f.staleness =
        flags.get("staleness", f.schedule.empty() ? 0.0 : 1.0);
    f.reoptimize = flags.get("reoptimize", 0.0);
    if (f.staleness < 0.0)
      throw std::runtime_error("--staleness must be non-negative");
    if (f.reoptimize < 0.0)
      throw std::runtime_error("--reoptimize must be non-negative");
    return f;
  }

  void apply(sim::SimOptions& options,
             obs::CounterRegistry* registry) const {
    options.faults = schedule;
    options.controller.advert_staleness_timeout = staleness;
    options.reoptimize_interval = reoptimize;
    options.counters = registry;
  }
  void apply(runtime::RuntimeOptions& options,
             obs::CounterRegistry* registry) const {
    options.faults = schedule;
    options.controller.advert_staleness_timeout = staleness;
    options.counters = registry;
  }
};

/// Span-tracing simulate/latency-report flags. Tracing turns on when any of
/// --sample / --spans / --prom is given; --sample alone enables it with the
/// outputs going nowhere (useful for the overhead check).
struct SpanFlags {
  double sample = 0.0;
  std::string spans_path;
  std::string prom_path;

  static SpanFlags parse(Flags& flags, double default_sample = 0.01) {
    SpanFlags s;
    s.sample = flags.get("sample", 0.0);
    s.spans_path = flags.get("spans", std::string());
    s.prom_path = flags.get("prom", std::string());
    if (s.sample < 0.0 || s.sample > 1.0)
      throw std::runtime_error("--sample must be in [0,1]");
    if (s.sample == 0.0 && (!s.spans_path.empty() || !s.prom_path.empty()))
      s.sample = default_sample;
    return s;
  }

  [[nodiscard]] bool enabled() const { return sample > 0.0; }

  [[nodiscard]] std::unique_ptr<obs::SpanTracer> make_tracer(
      std::uint64_t seed) const {
    obs::SpanTracerOptions options;
    options.sample_rate = sample;
    options.seed = seed;
    return std::make_unique<obs::SpanTracer>(options);
  }

  void write_outputs(const obs::SpanTracer& tracer) const {
    if (!spans_path.empty()) {
      std::ofstream file(spans_path);
      if (!file)
        throw std::runtime_error("cannot open spans file: " + spans_path);
      obs::write_spans_jsonl(file, tracer);
      std::cerr << "wrote " << tracer.spans_started() << " spans ("
                << tracer.spans_completed() << " completed, "
                << tracer.spans_dropped() << " dropped) to " << spans_path
                << '\n';
    }
    if (!prom_path.empty()) {
      std::ofstream file(prom_path);
      if (!file)
        throw std::runtime_error("cannot open prom file: " + prom_path);
      obs::write_latency_prometheus(file, tracer);
      std::cerr << "wrote Prometheus latency exposition to " << prom_path
                << '\n';
    }
  }
};

control::FlowPolicy parse_policy(const std::string& name) {
  if (name == "aces") return control::FlowPolicy::kAces;
  if (name == "udp") return control::FlowPolicy::kUdp;
  if (name == "lockstep") return control::FlowPolicy::kLockStep;
  if (name == "threshold") return control::FlowPolicy::kThreshold;
  throw std::runtime_error("unknown policy: " + name +
                           " (aces|udp|lockstep|threshold)");
}

int cmd_generate(Flags& flags) {
  graph::TopologyParams params;
  params.num_nodes = flags.get("nodes", params.num_nodes);
  params.num_ingress = flags.get("ingress", params.num_ingress);
  params.num_intermediate = flags.get("intermediate", params.num_intermediate);
  params.num_egress = flags.get("egress", params.num_egress);
  params.depth = flags.get("depth", params.depth);
  params.buffer_capacity = flags.get("buffer", params.buffer_capacity);
  params.load_factor = flags.get("load", params.load_factor);
  params.source_burstiness = flags.get("burstiness", params.source_burstiness);
  const int seed = flags.get("seed", 1);
  const std::string out = flags.get("out", std::string());
  const std::string dot = flags.get("dot", std::string());
  flags.check_all_consumed();
  if (out.empty()) throw std::runtime_error("--out=FILE is required");

  const graph::ProcessingGraph g =
      generate_topology(params, static_cast<std::uint64_t>(seed));
  {
    std::ofstream file(out);
    graph::write_topology(g, file);
  }
  std::cout << "wrote " << out << ": " << g.pe_count() << " PEs on "
            << g.node_count() << " nodes, " << g.edge_count() << " edges\n";
  if (!dot.empty()) {
    std::ofstream file(dot);
    file << graph::to_dot(g);
    std::cout << "wrote " << dot << '\n';
  }
  return 0;
}

int cmd_optimize(Flags& flags) {
  const graph::ProcessingGraph g =
      load_topology(flags.get("topology", std::string()));
  const std::string solver = flags.get("solver", std::string("primal"));
  const bool csv = flags.has("csv");
  flags.check_all_consumed();

  opt::AllocationPlan plan;
  if (solver == "primal") {
    plan = opt::optimize(g);
  } else if (solver == "dual") {
    plan = opt::optimize_dual(g).plan;
  } else {
    throw std::runtime_error("unknown solver: " + solver + " (primal|dual)");
  }

  harness::Table table({"pe", "kind", "node", "weight", "cpu target",
                        "rin SDO/s", "rout SDO/s"});
  for (PeId id : g.all_pes()) {
    const auto& d = g.pe(id);
    table.add_row({"pe" + std::to_string(id.value()),
                   graph::to_string(d.kind),
                   "pn" + std::to_string(d.node.value()),
                   harness::cell(d.weight, 0),
                   harness::cell(plan.at(id).cpu, 4),
                   harness::cell(plan.at(id).rin_sdo, 2),
                   harness::cell(plan.at(id).rout_sdo, 2)});
  }
  harness::print_table(table, csv, std::cout);
  std::cout << "\naggregate utility: "
            << harness::cell(plan.aggregate_utility, 3)
            << "\nfluid weighted throughput: "
            << harness::cell(plan.weighted_throughput, 2) << '\n';
  return 0;
}

harness::RunSummary run_one(const graph::ProcessingGraph& g,
                            const opt::AllocationPlan& plan,
                            control::FlowPolicy policy, double duration,
                            double warmup, int seed,
                            const std::string& timeseries_path,
                            obs::ControlTraceRecorder* trace,
                            const FaultFlags& faults,
                            obs::CounterRegistry* counters) {
  sim::SimOptions options;
  options.duration = duration;
  options.warmup = warmup;
  options.seed = static_cast<std::uint64_t>(seed);
  options.controller.policy = policy;
  options.record_timeseries = !timeseries_path.empty();
  options.trace = trace;
  faults.apply(options, counters);
  sim::StreamSimulation simulation(g, plan, options);
  simulation.run();
  if (!timeseries_path.empty()) {
    std::ofstream file(timeseries_path);
    simulation.timeseries().write_csv(file);
  }
  return harness::summarize(simulation.report(), plan.weighted_throughput);
}

/// Data-plane tuning knobs for the threaded runtime (docs/performance.md).
struct DataPlaneFlags {
  std::size_t batch = 8;
  std::size_t channel_capacity = 0;  ///< 0: use graph buffer bounds
  bool pin = false;

  static DataPlaneFlags parse(Flags& flags) {
    DataPlaneFlags out;
    const int batch = flags.get("batch", 8);
    const int capacity = flags.get("channel-capacity", 0);
    if (batch < 1) {
      std::cerr << "--batch must be >= 1\n";
      std::exit(3);
    }
    if (capacity < 0) {
      std::cerr << "--channel-capacity must be >= 0\n";
      std::exit(3);
    }
    out.batch = static_cast<std::size_t>(batch);
    out.channel_capacity = static_cast<std::size_t>(capacity);
    out.pin = flags.has("pin");
    return out;
  }
};

harness::RunSummary run_one_runtime(const graph::ProcessingGraph& g,
                                    const opt::AllocationPlan& plan,
                                    control::FlowPolicy policy,
                                    double duration, double warmup, int seed,
                                    double time_scale,
                                    const DataPlaneFlags& data_plane,
                                    obs::ControlTraceRecorder* trace,
                                    const FaultFlags& faults,
                                    obs::CounterRegistry* counters) {
  runtime::RuntimeOptions options;
  options.duration = duration;
  options.warmup = warmup;
  options.time_scale = time_scale;
  options.seed = static_cast<std::uint64_t>(seed);
  options.controller.policy = policy;
  options.trace = trace;
  options.batch = data_plane.batch;
  options.channel_capacity = data_plane.channel_capacity;
  options.pin_threads = data_plane.pin;
  faults.apply(options, counters);
  const metrics::RunReport report = runtime::run_runtime(g, plan, options);
  return harness::summarize(report, plan.weighted_throughput);
}

/// One policy on the multi-process distributed runtime. Unlike the
/// wall-paced threaded runtime this substrate is deterministic, so the
/// merged report (and its fingerprint) is reproducible for any transport
/// and process count.
/// Observability knobs for one distributed run (the tentpole plane).
struct DistObs {
  double span_sample = 0.0;           ///< worker-side span tracing rate
  bool record_trace = false;          ///< ship control-tick records
  obs::ClusterAggregator* aggregator = nullptr;
};

harness::RunSummary run_one_dist(const graph::ProcessingGraph& g,
                                 const opt::AllocationPlan& plan,
                                 control::FlowPolicy policy, double duration,
                                 double warmup, int seed,
                                 const DataPlaneFlags& data_plane,
                                 runtime::transport::TransportKind transport,
                                 int processes, int substeps,
                                 const FaultFlags& faults,
                                 const DistObs& dist_obs,
                                 metrics::RunReport* out_report,
                                 runtime::dist::DistStats* stats) {
  runtime::dist::DistOptions options;
  options.duration = duration;
  options.warmup = warmup;
  options.substeps = static_cast<std::uint32_t>(substeps);
  options.seed = static_cast<std::uint64_t>(seed);
  options.batch = data_plane.batch;
  options.channel_capacity = data_plane.channel_capacity;
  options.processes = static_cast<std::uint32_t>(processes);
  options.transport = transport;
  options.controller.policy = policy;
  options.controller.advert_staleness_timeout = faults.staleness;
  options.faults = faults.schedule;
  options.span_sample = dist_obs.span_sample;
  options.record_trace = dist_obs.record_trace;
  options.aggregator = dist_obs.aggregator;
  const metrics::RunReport report =
      runtime::dist::run_distributed(g, plan, options, stats);
  if (out_report != nullptr) *out_report = report;
  return harness::summarize(report, plan.weighted_throughput);
}

/// Writes shard-tagged control-tick records from a cluster aggregator
/// (CSV by extension, like write_trace_file).
void write_cluster_trace_file(const std::string& path,
                              const obs::ClusterAggregator& aggregator) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open trace file: " + path);
  const std::vector<obs::TickRecord> records = aggregator.trace_records();
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
    obs::write_trace_csv(file, records);
  } else {
    obs::write_trace_jsonl(file, records);
  }
  std::cerr << "wrote " << records.size() << " cluster trace records to "
            << path << '\n';
}

/// Stderr notice for retained flight-recorder evidence (the prockill
/// post-mortem the coordinator keeps after the worker process is gone).
void print_flight_dump_notice(const obs::ClusterAggregator& aggregator) {
  const auto statuses = aggregator.shard_statuses();
  for (const auto& [rank, dump] : aggregator.flight_dumps()) {
    const auto it = statuses.find(rank);
    const bool dead = it != statuses.end() && !it->second.alive;
    std::cerr << "flight dump retained for shard " << rank
              << (dead ? " [DEAD]" : "") << ": event=" << dump.event
              << " t=" << harness::cell(dump.time, 2) << "s, "
              << dump.recent.size() << " recent, " << dump.in_flight.size()
              << " in-flight spans\n";
  }
}

void add_summary_row(harness::Table& table, const char* name,
                     const harness::RunSummary& s) {
  table.add_row({name, harness::cell(s.weighted_throughput, 1),
                 harness::cell(s.normalized_throughput(), 3),
                 harness::cell(s.latency_mean * 1e3, 1),
                 harness::cell(s.latency_std * 1e3, 1),
                 harness::cell(s.ingress_drops_per_sec, 1),
                 harness::cell(s.internal_drops_per_sec, 1),
                 harness::cell(s.cpu_utilization, 3)});
}

harness::Table summary_table() {
  return harness::Table({"policy", "wtput", "wtput/fluid", "lat ms",
                         "lat std ms", "ingress drop/s", "internal drop/s",
                         "cpu util"});
}

int cmd_simulate(Flags& flags) {
  const graph::ProcessingGraph g =
      load_topology(flags.get("topology", std::string()));
  const control::FlowPolicy policy =
      parse_policy(flags.get("policy", std::string("aces")));
  const double duration = flags.get("duration", 60.0);
  const double warmup = flags.get("warmup", 10.0);
  const int seed = flags.get("seed", 1);
  const std::string timeseries = flags.get("timeseries", std::string());
  const std::string trace_path = flags.get("trace", std::string());
  const FaultFlags faults = FaultFlags::parse(flags);
  const SpanFlags span_flags = SpanFlags::parse(flags);
  const bool csv = flags.has("csv");
  const bool detail = flags.has("detail");
  const bool fingerprint = flags.has("fingerprint");
  flags.check_all_consumed();
  fault::validate(faults.schedule, g);
  if (!faults.schedule.proc_kills.empty()) {
    std::cerr << "warning: prockill clauses need the distributed runtime "
                 "(aces compare --transport=inproc|uds|tcp); the simulator "
                 "ignores them\n";
  }

  const opt::AllocationPlan plan = opt::optimize(g);

  obs::ControlTraceRecorder recorder;
  obs::PhaseProfiler profiler;
  obs::CounterRegistry counters;
  sim::SimOptions options;
  options.duration = duration;
  options.warmup = warmup;
  options.seed = static_cast<std::uint64_t>(seed);
  options.controller.policy = policy;
  options.record_timeseries = !timeseries.empty();
  if (!trace_path.empty()) {
    options.trace = &recorder;
    options.profiler = &profiler;
  }
  faults.apply(options,
               faults.schedule.empty() ? nullptr : &counters);
  std::unique_ptr<obs::SpanTracer> tracer;
  if (span_flags.enabled()) {
    tracer = span_flags.make_tracer(options.seed);
    options.spans = tracer.get();
  }
  sim::StreamSimulation simulation(g, plan, options);
  simulation.run();
  if (tracer != nullptr) span_flags.write_outputs(*tracer);
  if (!timeseries.empty()) {
    std::ofstream file(timeseries);
    simulation.timeseries().write_csv(file);
  }
  if (!trace_path.empty()) {
    write_trace_file(trace_path, recorder);
    std::cerr << "wrote " << recorder.size() << " trace records to "
              << trace_path << '\n';
    obs::write_profile_summary(std::cerr, profiler);
  }
  if (!faults.schedule.empty()) print_fault_counters(counters);
  const metrics::RunReport report = simulation.report();
  if (fingerprint) {
    // Bit-exact serialization of every deterministic report field. CI
    // builds the tree twice (ACES_PERF_INSTRUMENT OFF and ON, same
    // compiler) and diffs this line: the probes must not perturb results.
    std::cout << metrics::report_fingerprint(report) << '\n';
    return 0;
  }
  const harness::RunSummary s =
      harness::summarize(report, plan.weighted_throughput);
  harness::Table table = summary_table();
  add_summary_row(table, to_string(policy), s);
  harness::print_table(table, csv, std::cout);

  if (detail) {
    std::cout << '\n';
    harness::Table pe_table({"pe", "kind", "arrived", "processed",
                             "emitted", "dropped", "cpu s"});
    for (PeId id : g.all_pes()) {
      const auto& acc = report.per_pe[id.value()];
      pe_table.add_row({"pe" + std::to_string(id.value()),
                        graph::to_string(g.pe(id).kind),
                        harness::cell(acc.arrived),
                        harness::cell(acc.processed),
                        harness::cell(acc.emitted),
                        harness::cell(acc.dropped_input),
                        harness::cell(acc.cpu_seconds, 2)});
    }
    harness::print_table(pe_table, csv, std::cout);
  }
  return 0;
}

int cmd_compare(Flags& flags) {
  const graph::ProcessingGraph g =
      load_topology(flags.get("topology", std::string()));
  const double duration = flags.get("duration", 60.0);
  const double warmup = flags.get("warmup", 10.0);
  const int seed = flags.get("seed", 1);
  const bool csv = flags.has("csv");
  const bool use_runtime = flags.has("runtime");
  const double time_scale = flags.get("timescale", 5.0);
  const DataPlaneFlags data_plane = DataPlaneFlags::parse(flags);
  const std::string trace_base = flags.get("trace", std::string());
  const std::string transport_name =
      flags.get("transport", std::string("thread"));
  const int processes = flags.get("processes", 2);
  const int substeps = flags.get("substeps", 4);
  const bool fingerprint = flags.has("fingerprint");
  // Distributed observability plane (ignored on the other substrates):
  // --sample traces spans cluster-wide, --status-port serves the live
  // line-protocol endpoint, --prom writes per-policy cluster expositions.
  const double dist_sample = flags.get("sample", 0.0);
  const bool has_status_port = flags.has("status-port");
  const int status_port = flags.get("status-port", 0);
  const double status_linger = flags.get("status-linger", 0.0);
  const std::string prom_base = flags.get("prom", std::string());
  const FaultFlags faults = FaultFlags::parse(flags);
  flags.check_all_consumed();
  fault::validate(faults.schedule, g);
  if (dist_sample < 0.0 || dist_sample > 1.0)
    throw std::runtime_error("--sample must be in [0,1]");
  if (status_port < 0 || status_port > 65535)
    throw std::runtime_error("--status-port must be in [0,65535]");

  // Substrate selection: the simulator by default, the wall-paced threaded
  // runtime with --runtime (equivalently --transport=thread), the
  // deterministic multi-process distributed runtime for the other
  // transports.
  std::optional<runtime::transport::TransportKind> dist_kind;
  if (transport_name != "thread") {
    dist_kind = runtime::transport::parse_transport(transport_name);
    if (!dist_kind.has_value()) {
      throw std::runtime_error("unknown transport: " + transport_name +
                               " (thread|inproc|uds|tcp)");
    }
  }
  const bool use_dist = dist_kind.has_value();
  if (processes < 1) throw std::runtime_error("--processes must be >= 1");
  if (substeps < 1) throw std::runtime_error("--substeps must be >= 1");

  // --reoptimize=SEC requests a *periodic* tier-1 re-solve, which only the
  // simulator implements. The distributed runtime re-solves event-driven —
  // on worker-process death/respawn and modeled crash/restore — whether or
  // not the flag is given; the threaded runtime never re-solves mid-run
  // and rides out faults on tier-2 defenses alone.
  if (faults.reoptimize > 0.0 && (use_runtime || use_dist)) {
    std::cerr << "warning: the periodic --reoptimize=SEC interval is "
                 "simulator-only; the distributed runtime re-solves "
                 "event-driven on kill/crash/restart regardless, and the "
                 "threaded runtime never re-solves mid-run\n";
  }
  if (!faults.schedule.proc_kills.empty() && !use_dist) {
    std::cerr << "warning: prockill clauses need the distributed runtime "
                 "(--transport=inproc|uds|tcp); ignored on this substrate\n";
  }
  if (fingerprint && !use_dist && use_runtime) {
    std::cerr << "warning: the threaded runtime is wall-paced and "
                 "nondeterministic; its fingerprints are not reproducible\n";
  }
  if ((has_status_port || dist_sample > 0.0 || !prom_base.empty()) &&
      !use_dist) {
    std::cerr << "warning: --status-port/--sample/--prom on compare apply to "
                 "the distributed runtime only (--transport=inproc|uds|tcp); "
                 "ignored\n";
  }

  const opt::AllocationPlan plan = opt::optimize(g);
  harness::Table table = summary_table();
  // The aggregator is per policy run (so cross-policy telemetry never
  // merges); the status server rebinds per run and, with --status-linger,
  // keeps serving the last policy's snapshot after the runs finish.
  const bool dist_obs_on =
      use_dist && (has_status_port || dist_sample > 0.0 ||
                   !prom_base.empty() || !trace_base.empty() ||
                   !faults.schedule.proc_kills.empty());
  std::unique_ptr<obs::ClusterAggregator> aggregator;
  std::unique_ptr<obs::StatusServer> status_server;
  for (const control::FlowPolicy policy :
       {control::FlowPolicy::kAces, control::FlowPolicy::kUdp,
        control::FlowPolicy::kLockStep, control::FlowPolicy::kThreshold}) {
    obs::ControlTraceRecorder recorder;
    obs::ControlTraceRecorder* trace =
        trace_base.empty() || use_dist ? nullptr : &recorder;
    obs::CounterRegistry counters;
    obs::CounterRegistry* counters_ptr =
        faults.schedule.empty() || use_dist ? nullptr : &counters;
    harness::RunSummary summary;
    metrics::RunReport report;
    if (use_dist) {
      DistObs dist_obs;
      if (dist_obs_on) {
        status_server.reset();  // free the port before the aggregator dies
        aggregator = std::make_unique<obs::ClusterAggregator>();
        dist_obs.aggregator = aggregator.get();
        dist_obs.span_sample = dist_sample;
        dist_obs.record_trace = !trace_base.empty();
        if (has_status_port) {
          status_server = std::make_unique<obs::StatusServer>(
              aggregator.get(), static_cast<std::uint16_t>(status_port));
          if (status_server->listening()) {
            std::cerr << "status endpoint on 127.0.0.1:"
                      << status_server->port() << '\n';
          } else {
            std::cerr << "warning: status endpoint failed: "
                      << status_server->error() << '\n';
          }
        }
      }
      runtime::dist::DistStats stats;
      summary = run_one_dist(g, plan, policy, duration, warmup, seed,
                             data_plane, *dist_kind, processes, substeps,
                             faults, dist_obs, &report, &stats);
      if (aggregator != nullptr) {
        if (!trace_base.empty()) {
          write_cluster_trace_file(
              policy_trace_path(trace_base, policy_tag(policy)), *aggregator);
        }
        if (!prom_base.empty()) {
          const std::string path =
              policy_trace_path(prom_base, policy_tag(policy));
          std::ofstream file(path);
          if (!file)
            throw std::runtime_error("cannot open prom file: " + path);
          aggregator->write_prometheus(file);
          std::cerr << "wrote cluster Prometheus exposition to " << path
                    << '\n';
        }
        print_flight_dump_notice(*aggregator);
      }
      if (!faults.schedule.proc_kills.empty()) {
        std::cerr << "[" << to_string(policy) << "] workers killed "
                  << stats.workers_killed << ", restarted "
                  << stats.workers_restarted << ", detection "
                  << harness::cell(stats.kill_detect_wall_seconds * 1e3, 1)
                  << " ms, reoptimizations " << stats.reoptimizations
                  << ", relay dropped " << stats.relay_dropped
                  << ", orphans " << stats.orphans_reaped << '\n';
      }
    } else if (use_runtime) {
      summary = run_one_runtime(g, plan, policy, duration, warmup, seed,
                                time_scale, data_plane, trace, faults,
                                counters_ptr);
    } else {
      summary = run_one(g, plan, policy, duration, warmup, seed, {}, trace,
                        faults, counters_ptr);
    }
    if (fingerprint && use_dist) {
      // One line per policy: `<policy> <fingerprint>`. CI diffs these
      // across transports and process counts — the distributed runtime's
      // work totals are partition-invariant, so they must be
      // byte-identical. (work_fingerprint, not report_fingerprint: the
      // global float aggregates merge per-worker Welford state, which is
      // exact-in-value but not bit-associative across partitions.)
      std::cout << to_string(policy) << ' '
                << metrics::work_fingerprint(report) << '\n';
    }
    add_summary_row(table, to_string(policy), summary);
    if (trace != nullptr) {
      const std::string path =
          policy_trace_path(trace_base, policy_tag(policy));
      write_trace_file(path, recorder);
      std::cerr << "wrote " << recorder.size() << " trace records to "
                << path << '\n';
    }
    if (counters_ptr != nullptr) {
      std::cerr << "[" << to_string(policy) << "]\n";
      print_fault_counters(counters);
    }
  }
  if (status_server != nullptr && status_server->listening() &&
      status_linger > 0.0) {
    // CI smoke hook: the last policy's snapshot stays scrapeable for a
    // bounded window after the runs finish.
    std::cerr << "status endpoint lingering " << status_linger << " s\n";
    std::this_thread::sleep_for(std::chrono::duration<double>(status_linger));
  }
  if (fingerprint && use_dist) return 0;  // fingerprints replace the table
  harness::print_table(table, csv, std::cout);
  return 0;
}

/// One distributed run rendered as the full cluster observability report:
/// summary row, then the aggregator's per-shard health / counter / latency
/// tables. This is the human face of the telemetry plane; compare's
/// --status-port / --prom expose the same aggregator to machines.
int cmd_cluster_report(Flags& flags) {
  const graph::ProcessingGraph g =
      load_topology(flags.get("topology", std::string()));
  const control::FlowPolicy policy =
      parse_policy(flags.get("policy", std::string("aces")));
  const double duration = flags.get("duration", 60.0);
  const double warmup = flags.get("warmup", 10.0);
  const int seed = flags.get("seed", 1);
  const std::string transport_name =
      flags.get("transport", std::string("uds"));
  const int processes = flags.get("processes", 3);
  const int substeps = flags.get("substeps", 4);
  const double sample = flags.get("sample", 0.01);
  const std::string trace_path = flags.get("trace", std::string());
  const std::string prom_path = flags.get("prom", std::string());
  const bool has_status_port = flags.has("status-port");
  const int status_port = flags.get("status-port", 0);
  const double status_linger = flags.get("status-linger", 0.0);
  const DataPlaneFlags data_plane = DataPlaneFlags::parse(flags);
  const FaultFlags faults = FaultFlags::parse(flags);
  const bool csv = flags.has("csv");
  flags.check_all_consumed();
  fault::validate(faults.schedule, g);
  if (sample < 0.0 || sample > 1.0)
    throw std::runtime_error("--sample must be in [0,1]");
  if (status_port < 0 || status_port > 65535)
    throw std::runtime_error("--status-port must be in [0,65535]");
  if (processes < 1) throw std::runtime_error("--processes must be >= 1");
  if (substeps < 1) throw std::runtime_error("--substeps must be >= 1");
  const std::optional<runtime::transport::TransportKind> kind =
      runtime::transport::parse_transport(transport_name);
  if (!kind.has_value()) {
    throw std::runtime_error("unknown transport: " + transport_name +
                             " (inproc|uds|tcp)");
  }

  const opt::AllocationPlan plan = opt::optimize(g);
  obs::ClusterAggregator aggregator;
  std::unique_ptr<obs::StatusServer> status_server;
  if (has_status_port) {
    status_server = std::make_unique<obs::StatusServer>(
        &aggregator, static_cast<std::uint16_t>(status_port));
    if (status_server->listening()) {
      std::cerr << "status endpoint on 127.0.0.1:" << status_server->port()
                << '\n';
    } else {
      std::cerr << "warning: status endpoint failed: "
                << status_server->error() << '\n';
    }
  }
  DistObs dist_obs;
  dist_obs.aggregator = &aggregator;
  dist_obs.span_sample = sample;
  dist_obs.record_trace = !trace_path.empty();
  runtime::dist::DistStats stats;
  const harness::RunSummary summary =
      run_one_dist(g, plan, policy, duration, warmup, seed, data_plane, *kind,
                   processes, substeps, faults, dist_obs, nullptr, &stats);

  harness::Table table = summary_table();
  add_summary_row(table, to_string(policy), summary);
  harness::print_table(table, csv, std::cout);
  std::cout << '\n';
  aggregator.write_report(std::cout);

  if (!trace_path.empty()) write_cluster_trace_file(trace_path, aggregator);
  if (!prom_path.empty()) {
    std::ofstream file(prom_path);
    if (!file) throw std::runtime_error("cannot open prom file: " + prom_path);
    aggregator.write_prometheus(file);
    std::cerr << "wrote cluster Prometheus exposition to " << prom_path
              << '\n';
  }
  print_flight_dump_notice(aggregator);
  if (!faults.schedule.proc_kills.empty()) {
    std::cerr << "workers killed " << stats.workers_killed << ", restarted "
              << stats.workers_restarted << ", detection "
              << harness::cell(stats.kill_detect_wall_seconds * 1e3, 1)
              << " ms, reoptimizations " << stats.reoptimizations
              << ", relay dropped " << stats.relay_dropped << ", orphans "
              << stats.orphans_reaped << '\n';
  }
  if (status_server != nullptr && status_server->listening() &&
      status_linger > 0.0) {
    std::cerr << "status endpoint lingering " << status_linger << " s\n";
    std::this_thread::sleep_for(std::chrono::duration<double>(status_linger));
  }
  return 0;
}

int cmd_sweep(Flags& flags) {
  const std::string grid_spec = flags.get("grid", std::string());
  const int jobs = flags.get("jobs", 1);
  const std::string out = flags.get("out", std::string("BENCH_sweep.json"));
  const std::string trace_path = flags.get("trace", std::string());
  const bool include_timing = !flags.has("no-timing");
  const bool quiet = flags.has("quiet");
  const bool csv = flags.has("csv");
  flags.check_all_consumed();
  if (grid_spec.empty()) {
    throw std::runtime_error("--grid=@FILE (or an inline grid spec) is "
                             "required");
  }
  if (jobs < 1) throw std::runtime_error("--jobs must be >= 1");

  std::string grid_text = grid_spec;
  if (grid_spec.front() == '@') {
    std::ifstream file(grid_spec.substr(1));
    if (!file) {
      throw std::runtime_error("cannot open grid file: " + grid_spec.substr(1));
    }
    grid_text.assign((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
  }
  harness::SweepGrid grid = harness::parse_sweep_grid(grid_text);
  grid.record_traces = !trace_path.empty();
  harness::SweepRunner runner(std::move(grid));
  if (!quiet) {
    std::cerr << "sweep: " << runner.run_count() << " runs on " << jobs
              << " job(s)\n";
    runner.on_run_done = [](const harness::SweepRunConfig& config,
                            const harness::SweepRunResult& result) {
      std::cerr << "  [" << config.run_index << "] " << config.label << ": "
                << (result.status == harness::SweepRunStatus::kOk
                        ? "ok"
                        : "FAILED " + result.error)
                << " (" << harness::cell(result.wall_ms, 1) << " ms)\n";
    };
  }
  const harness::SweepReport report = runner.run(jobs);

  {
    std::ofstream file(out);
    if (!file) throw std::runtime_error("cannot open output file: " + out);
    harness::write_sweep_json(file, report, include_timing);
  }
  if (!trace_path.empty()) {
    std::ofstream file(trace_path);
    if (!file) {
      throw std::runtime_error("cannot open trace file: " + trace_path);
    }
    harness::write_sweep_trace_jsonl(file, report);
    std::cerr << "wrote combined policy-tagged trace to " << trace_path
              << '\n';
  }

  if (!quiet) {
    harness::Table table = summary_table();
    for (std::size_t i = 0; i < report.results.size(); ++i) {
      if (report.results[i].status != harness::SweepRunStatus::kOk) continue;
      add_summary_row(table, report.configs[i].label.c_str(),
                      report.results[i].summary);
    }
    harness::print_table(table, csv, std::cout);
    std::cout << '\n';
  }
  double mean = 0.0, lo = 0.0, hi = 0.0;
  report.throughput_summary(mean, lo, hi);
  std::cout << report.completed() << "/" << report.results.size()
            << " runs ok (" << report.failed() << " failed, "
            << report.cancelled() << " cancelled), "
            << harness::cell(report.total_wall_ms, 1) << " ms total, "
            << harness::cell(report.runs_per_sec(), 2)
            << " runs/s; weighted throughput mean "
            << harness::cell(mean, 1) << " [" << harness::cell(lo, 1) << ", "
            << harness::cell(hi, 1) << "]\nwrote " << out << '\n';
  return report.failed() == 0 ? 0 : 3;
}

int cmd_trace_summary(Flags& flags) {
  const std::string in = flags.get("in", std::string());
  obs::TraceSummaryOptions options;
  options.tail_fraction = flags.get("tail", options.tail_fraction);
  options.tolerance_fraction =
      flags.get("tolerance", options.tolerance_fraction);
  const bool csv = flags.has("csv");
  flags.check_all_consumed();
  if (in.empty()) {
    throw std::runtime_error("--in=FILE[,FILE...] is required");
  }

  // --in accepts several comma-separated files (e.g. the per-policy files
  // `aces compare --trace` writes). Records group by their "policy" tag —
  // present in sweep-combined traces — falling back to the file name, so
  // single plain traces keep the old single-table behaviour.
  std::vector<std::string> paths;
  {
    std::istringstream list(in);
    std::string path;
    while (std::getline(list, path, ',')) {
      if (!path.empty()) paths.push_back(path);
    }
  }
  std::size_t total_records = 0;
  Seconds t0 = 0.0;
  Seconds t1 = 0.0;
  bool saw_tagged = false;    // cluster schema: records carry a shard tag
  bool saw_untagged = false;  // single-process schema: no shard key
  std::map<std::string, std::vector<obs::TickRecord>> groups;
  for (const std::string& path : paths) {
    std::ifstream file(path);
    if (!file) throw std::runtime_error("cannot open trace file: " + path);
    std::vector<obs::TickRecord> records = obs::read_trace_jsonl(file);
    if (records.empty()) {
      throw std::runtime_error("no trace records in " + path);
    }
    for (obs::TickRecord& r : records) {
      if (total_records == 0) {
        t0 = t1 = r.time;
      } else {
        t0 = std::min(t0, r.time);
        t1 = std::max(t1, r.time);
      }
      ++total_records;
      (r.shard >= 0 ? saw_tagged : saw_untagged) = true;
      groups[r.policy.empty() ? path : r.policy].push_back(std::move(r));
    }
  }
  // A cluster trace (written by a distributed run) and a single-process
  // trace describe different acquisition pipelines; silently pooling them
  // would skew the settling statistics. Summarize them separately.
  if (saw_tagged && saw_untagged) {
    throw std::runtime_error(
        "mixed trace schemas: --in combines cluster-tagged records (with a "
        "\"shard\" key) and untagged single-process records; pass them to "
        "separate trace-summary invocations");
  }

  struct GroupRow {
    std::string name;
    std::size_t pes = 0;
    std::size_t settled = 0;
    double settle_worst = 0.0;
    double settle_sum = 0.0;  // over settled PEs
    double osc_sum = 0.0;
    std::uint64_t drops = 0;
  };
  std::vector<GroupRow> rows;
  std::size_t total_pes = 0;
  for (const auto& [name, records] : groups) {
    const auto summaries = obs::summarize_trace(records, options);
    if (groups.size() > 1) std::cout << "[" << name << "]\n";
    harness::Table table({"pe", "node", "ticks", "buf mean", "buf min",
                          "buf max", "target", "settle s", "osc amp",
                          "share mean", "drops"});
    GroupRow row;
    row.name = name;
    for (const obs::PeTraceSummary& s : summaries) {
      table.add_row({"pe" + std::to_string(s.pe),
                     "pn" + std::to_string(s.node), harness::cell(s.ticks),
                     harness::cell(s.occupancy_mean, 1),
                     harness::cell(s.occupancy_min, 0),
                     harness::cell(s.occupancy_max, 0),
                     harness::cell(s.steady_target, 1),
                     std::isfinite(s.settling_time)
                         ? harness::cell(s.settling_time, 2)
                         : std::string("never"),
                     harness::cell(s.oscillation_amplitude, 2),
                     harness::cell(s.share_mean, 3), harness::cell(s.drops)});
      ++row.pes;
      if (std::isfinite(s.settling_time)) {
        ++row.settled;
        row.settle_sum += s.settling_time;
        row.settle_worst = std::max(row.settle_worst, s.settling_time);
      }
      row.osc_sum += s.oscillation_amplitude;
      row.drops += s.drops;
    }
    harness::print_table(table, csv, std::cout);
    std::cout << '\n';
    total_pes += row.pes;
    rows.push_back(std::move(row));
  }

  if (rows.size() > 1) {
    std::cout << "per-policy stability (settle over settled PEs):\n";
    harness::Table table({"policy", "pes", "settled", "settle mean s",
                          "settle worst s", "osc amp mean", "drops"});
    for (const GroupRow& row : rows) {
      const double n = static_cast<double>(row.pes);
      table.add_row(
          {row.name, harness::cell(static_cast<std::uint64_t>(row.pes)),
           harness::cell(static_cast<std::uint64_t>(row.settled)),
           row.settled > 0
               ? harness::cell(row.settle_sum /
                                   static_cast<double>(row.settled),
                               2)
               : std::string("-"),
           row.settled > 0 ? harness::cell(row.settle_worst, 2)
                           : std::string("never"),
           harness::cell(row.osc_sum / n, 2), harness::cell(row.drops)});
    }
    harness::print_table(table, csv, std::cout);
    std::cout << '\n';
  }

  std::cout << total_records << " records, " << total_pes << " PEs in "
            << rows.size() << " group(s), time span "
            << harness::cell(t1 - t0, 2) << " s\n";
  return 0;
}

/// Per-PE wait/service and per-path end-to-end percentile tables from any
/// LatencyRegistry — a single-process tracer's or the cluster merge.
void print_latency_tables(const obs::LatencyRegistry& latency, bool csv) {
  harness::Table pe_table({"pe", "waits", "wait p50 ms", "wait p99 ms",
                           "svc p50 ms", "svc p99 ms", "svc max ms"});
  for (const auto& [pe, stats] : latency.pes()) {
    const obs::LatencyQuantiles w = obs::quantiles_of(stats.wait);
    const obs::LatencyQuantiles s = obs::quantiles_of(stats.service);
    pe_table.add_row({"pe" + std::to_string(pe), harness::cell(w.count),
                      harness::cell(w.p50 * 1e3, 2),
                      harness::cell(w.p99 * 1e3, 2),
                      harness::cell(s.p50 * 1e3, 2),
                      harness::cell(s.p99 * 1e3, 2),
                      harness::cell(s.max * 1e3, 2)});
  }
  harness::print_table(pe_table, csv, std::cout);
  std::cout << '\n';

  harness::Table path_table({"path", "n", "p50 ms", "p90 ms", "p99 ms",
                             "p99.9 ms", "max ms"});
  for (const auto& [id, stats] : latency.paths()) {
    const obs::LatencyQuantiles q = obs::quantiles_of(stats.end_to_end);
    path_table.add_row({stats.label, harness::cell(q.count),
                        harness::cell(q.p50 * 1e3, 2),
                        harness::cell(q.p90 * 1e3, 2),
                        harness::cell(q.p99 * 1e3, 2),
                        harness::cell(q.p999 * 1e3, 2),
                        harness::cell(q.max * 1e3, 2)});
  }
  harness::print_table(path_table, csv, std::cout);
}

int cmd_latency_report(Flags& flags) {
  const graph::ProcessingGraph g =
      load_topology(flags.get("topology", std::string()));
  const control::FlowPolicy policy =
      parse_policy(flags.get("policy", std::string("aces")));
  const double duration = flags.get("duration", 60.0);
  const double warmup = flags.get("warmup", 10.0);
  const int seed = flags.get("seed", 1);
  const double sample = flags.get("sample", 0.05);
  const int worst = flags.get("worst", 5);
  const std::string spans_path = flags.get("spans", std::string());
  const std::string prom_path = flags.get("prom", std::string());
  // --transport switches to the distributed runtime: the same tables, fed
  // by the cluster-merged latency registry (wire-stitched spans included).
  const std::string transport_name = flags.get("transport", std::string());
  const int processes = flags.get("processes", 3);
  const int substeps = flags.get("substeps", 4);
  const FaultFlags faults = FaultFlags::parse(flags);
  const bool csv = flags.has("csv");
  flags.check_all_consumed();
  fault::validate(faults.schedule, g);
  if (sample <= 0.0 || sample > 1.0)
    throw std::runtime_error("--sample must be in (0,1]");
  if (worst < 0) throw std::runtime_error("--worst must be >= 0");
  if (processes < 1) throw std::runtime_error("--processes must be >= 1");
  if (substeps < 1) throw std::runtime_error("--substeps must be >= 1");

  const opt::AllocationPlan plan = opt::optimize(g);

  if (!transport_name.empty()) {
    const std::optional<runtime::transport::TransportKind> kind =
        runtime::transport::parse_transport(transport_name);
    if (!kind.has_value()) {
      throw std::runtime_error("unknown transport: " + transport_name +
                               " (inproc|uds|tcp)");
    }
    if (!spans_path.empty()) {
      throw std::runtime_error(
          "--spans is single-process only; the distributed runtime retains "
          "spans in the cluster aggregator (use cluster-report / --prom)");
    }
    obs::ClusterAggregator aggregator;
    DistObs dist_obs;
    dist_obs.aggregator = &aggregator;
    dist_obs.span_sample = sample;
    runtime::dist::DistStats stats;
    run_one_dist(g, plan, policy, duration, warmup, seed, DataPlaneFlags{},
                 *kind, processes, substeps, faults, dist_obs, nullptr,
                 &stats);
    std::cout << "cluster latency: " << processes << " shard(s) on "
              << transport_name << ", sample rate "
              << harness::cell(sample, 3) << ", policy " << to_string(policy)
              << "\n\n";
    print_latency_tables(aggregator.merged_latency(), csv);
    if (!prom_path.empty()) {
      std::ofstream file(prom_path);
      if (!file)
        throw std::runtime_error("cannot open prom file: " + prom_path);
      aggregator.write_prometheus(file);
      std::cerr << "wrote cluster Prometheus exposition to " << prom_path
                << '\n';
    }
    print_flight_dump_notice(aggregator);
    return 0;
  }
  obs::CounterRegistry counters;
  sim::SimOptions options;
  options.duration = duration;
  options.warmup = warmup;
  options.seed = static_cast<std::uint64_t>(seed);
  options.controller.policy = policy;
  faults.apply(options, faults.schedule.empty() ? nullptr : &counters);

  obs::SpanTracerOptions tracer_options;
  tracer_options.sample_rate = sample;
  tracer_options.seed = options.seed;
  tracer_options.worst_k = static_cast<std::size_t>(worst);
  obs::SpanTracer tracer(tracer_options);
  options.spans = &tracer;

  sim::StreamSimulation simulation(g, plan, options);
  simulation.run();

  std::cout << "spans: " << tracer.spans_started() << " sampled, "
            << tracer.spans_completed() << " completed, "
            << tracer.spans_dropped() << " dropped (sample rate "
            << harness::cell(sample, 3) << ", policy " << to_string(policy)
            << ")\n\n";

  print_latency_tables(tracer.latency(), csv);

  if (!tracer.worst_spans().empty()) {
    std::cout << "\nworst spans:\n";
    harness::Table worst_table(
        {"rank", "latency ms", "path", "start s", "hops"});
    std::uint64_t rank = 1;
    for (const obs::SdoSpan& span : tracer.worst_spans()) {
      worst_table.add_row({harness::cell(rank++),
                           harness::cell(span.latency() * 1e3, 2),
                           obs::path_label(span.hop_pes()),
                           harness::cell(span.start, 2),
                           harness::cell(static_cast<std::uint64_t>(
                               span.hop_count))});
    }
    harness::print_table(worst_table, csv, std::cout);
  }

  if (!spans_path.empty() || !prom_path.empty()) {
    SpanFlags outputs;
    outputs.sample = sample;
    outputs.spans_path = spans_path;
    outputs.prom_path = prom_path;
    outputs.write_outputs(tracer);
  }
  if (!faults.schedule.empty()) print_fault_counters(counters);
  return 0;
}

int cmd_bench_diff(Flags& flags) {
  const std::string old_path = flags.get("old", std::string());
  const std::string new_path = flags.get("new", std::string());
  harness::BenchDiffOptions options;
  options.threshold = flags.get("threshold", options.threshold);
  options.hard_only = flags.has("hard-only");
  flags.check_all_consumed();
  if (old_path.empty() || new_path.empty()) {
    std::cerr << "bench-diff requires --old=FILE and --new=FILE\n";
    return 3;
  }
  if (options.threshold < 0.0) {
    std::cerr << "--threshold must be >= 0\n";
    return 3;
  }
  const auto slurp = [](const std::string& path) {
    std::ifstream file(path);
    if (!file) throw std::runtime_error("cannot open " + path);
    std::ostringstream os;
    os << file.rdbuf();
    return os.str();
  };
  // Usage / I/O / parse problems exit 3 so CI can tell "the gate itself is
  // broken" apart from "the gate fired" (exit 1 soft, 2 hard).
  try {
    const harness::JsonValue old_doc = harness::parse_json(slurp(old_path));
    const harness::JsonValue new_doc = harness::parse_json(slurp(new_path));
    const harness::BenchDiffResult result =
        harness::bench_diff(old_doc, new_doc, options);
    harness::write_bench_diff_report(std::cout, result, options);
    return result.exit_code(options);
  } catch (const std::exception& e) {
    std::cerr << "bench-diff: " << e.what() << '\n';
    return 3;
  }
}

int usage(std::ostream& os, int code) {
  os << "usage: aces <command> [--flags]\n"
        "  generate  --out=FILE [--seed --nodes --ingress --intermediate\n"
        "            --egress --depth --buffer --load --burstiness --dot=F]\n"
        "  optimize  --topology=FILE [--solver=primal|dual] [--csv]\n"
        "  simulate  --topology=FILE [--policy=aces|udp|lockstep|threshold]\n"
        "            [--duration --warmup --seed --timeseries=F --csv\n"
        "             --detail --trace=F.jsonl|F.csv]\n"
        "            [--faults=SPEC|@FILE --staleness=SEC --reoptimize=SEC]\n"
        "            [--sample=RATE --spans=F.jsonl --prom=F.txt]\n"
        "            (--faults injects crash/stall/advert/drop faults, see\n"
        "             docs/fault_injection.md; --staleness sets the advert\n"
        "             staleness timeout, default 1 when faults are present;\n"
        "             --reoptimize re-runs tier 1 every SEC seconds and on\n"
        "             node crash/restart; --sample enables per-SDO span\n"
        "             tracing at RATE in (0,1], --spans/--prom write the\n"
        "             JSONL / Prometheus expositions)\n"
        "  compare   --topology=FILE [--duration --warmup --seed --csv]\n"
        "            [--runtime --timescale=5 --trace=F.jsonl|F.csv]\n"
        "            [--transport=thread|inproc|uds|tcp --processes=2\n"
        "             --substeps=4 --fingerprint]\n"
        "            [--batch=8 --channel-capacity=0 --pin]\n"
        "            [--faults=SPEC|@FILE --staleness=SEC --reoptimize=SEC]\n"
        "            [--sample=RATE --status-port=N --status-linger=SEC\n"
        "             --prom=F.txt]   (distributed transports only)\n"
        "            (--runtime uses the wall-paced threaded runtime;\n"
        "             --transport=inproc|uds|tcp uses the deterministic\n"
        "             multi-process distributed runtime on --processes\n"
        "             worker shards — docs/architecture.md, 'Distributed\n"
        "             runtime'. The periodic --reoptimize=SEC interval is\n"
        "             simulator-only: the distributed runtime re-solves\n"
        "             tier 1 event-driven on kill/crash/restart\n"
        "             transitions regardless, and the threaded runtime\n"
        "             never re-solves mid-run.\n"
        "             prockill fault clauses run only on the distributed\n"
        "             runtime. --fingerprint prints one `<policy> <hash>`\n"
        "             line per policy instead of the table; identical\n"
        "             across transports and process counts.\n"
        "             --trace writes one file per policy: F.<policy>.jsonl\n"
        "             (simulator and threaded runtime only). Data-plane\n"
        "             knobs, see docs/performance.md: --batch caps SDOs\n"
        "             moved per channel operation, --channel-capacity\n"
        "             overrides the graph's buffer bounds when > 0, --pin\n"
        "             pins worker threads to cores.\n"
        "             On the distributed transports --sample traces spans\n"
        "             cluster-wide, --status-port=N serves the live plain-\n"
        "             text status endpoint on 127.0.0.1 (0 picks a port),\n"
        "             --status-linger keeps it up SEC seconds after the\n"
        "             runs, --prom writes one cluster exposition per\n"
        "             policy: F.<policy>.txt; --trace ships shard-tagged\n"
        "             control ticks to F.<policy>.jsonl)\n"
        "  cluster-report --topology=FILE [--policy --duration --warmup\n"
        "             --seed --transport=uds --processes=3 --substeps=4\n"
        "             --sample=0.01 --csv --trace=F.jsonl --prom=F.txt\n"
        "             --status-port=N --status-linger=SEC]\n"
        "            [--faults=SPEC|@FILE --staleness=SEC]\n"
        "            (one distributed run rendered as the cluster\n"
        "             observability report: shard health, RTT and barrier\n"
        "             skew, cluster counter totals, merged latency\n"
        "             percentiles, span stitching, retained flight-recorder\n"
        "             evidence — docs/observability.md, 'Distributed\n"
        "             observability')\n"
        "  trace-summary --in=F.jsonl[,G.jsonl...] [--tail=0.25\n"
        "             --tolerance=0.1 --csv]\n"
        "            (per-PE settling time and oscillation amplitude;\n"
        "             accepts several files and policy-tagged sweep traces,\n"
        "             reporting each policy side by side. Cluster-tagged\n"
        "             and untagged traces cannot be mixed in one run)\n"
        "  latency-report --topology=FILE [--policy --duration --warmup\n"
        "             --seed --sample=0.05 --worst=5 --csv\n"
        "             --spans=F.jsonl --prom=F.txt]\n"
        "            [--transport=inproc|uds|tcp --processes=3 --substeps=4]\n"
        "            [--faults=SPEC|@FILE --staleness=SEC --reoptimize=SEC]\n"
        "            (runs a traced simulation and prints per-PE\n"
        "             wait/service and per-path end-to-end latency\n"
        "             percentiles plus the slowest spans; with --transport\n"
        "             the same tables come from a distributed run's\n"
        "             cluster-merged registry, wire-stitched spans and all)\n"
        "  sweep     --grid=@FILE [--jobs=N --out=BENCH_sweep.json --csv\n"
        "             --no-timing --quiet --trace=F.jsonl]\n"
        "            (parallel deterministic sweep over a topology x policy\n"
        "             x seed grid; the report is bit-identical for any\n"
        "             --jobs. Grid grammar in docs/benchmarking.md;\n"
        "             --no-timing omits wall-clock fields from the JSON;\n"
        "             exit 3 when any run failed)\n"
        "  bench-diff --old=BENCH_a.json --new=BENCH_b.json\n"
        "             [--threshold=0.25] [--hard-only]\n"
        "            (regression gate over two bench JSON documents: runs\n"
        "             are aligned by label; deterministic work totals\n"
        "             hard-fail on any change, timing fields soft-fail\n"
        "             beyond --threshold. Exit 0 clean, 1 soft drift,\n"
        "             2 hard regression, 3 usage/IO/malformed input;\n"
        "             --hard-only reports soft drift without failing)\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  // Distributed-runtime workers are this same binary re-executed with a
  // hidden `dist-worker` argv; nothing else in the CLI runs in that mode.
  if (const int rc = aces::runtime::dist::maybe_worker(argc, argv); rc >= 0) {
    return rc;
  }
  if (argc < 2) return usage(std::cerr, 2);
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    return usage(std::cout, 0);
  }
  try {
    Flags flags(argc, argv, 2);
    if (command == "generate") return cmd_generate(flags);
    if (command == "optimize") return cmd_optimize(flags);
    if (command == "simulate") return cmd_simulate(flags);
    if (command == "compare") return cmd_compare(flags);
    if (command == "cluster-report") return cmd_cluster_report(flags);
    if (command == "trace-summary") return cmd_trace_summary(flags);
    if (command == "latency-report") return cmd_latency_report(flags);
    if (command == "sweep") return cmd_sweep(flags);
    if (command == "bench-diff") return cmd_bench_diff(flags);
    std::cerr << "unknown command: " << command << '\n';
    return usage(std::cerr, 2);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
