// aces — command-line front end to the library.
//
//   aces generate --seed=1 --nodes=10 --ingress=10 --intermediate=40
//                 --egress=10 --out=topo.txt [--dot=topo.dot]
//   aces optimize --topology=topo.txt [--solver=primal|dual]
//   aces simulate --topology=topo.txt --policy=aces [--duration=60]
//                 [--warmup=10] [--seed=1] [--csv] [--timeseries=ts.csv]
//   aces compare  --topology=topo.txt [--duration=60] [--seed=1] [--csv]
//
// The CLI is a thin shell over the public API: generate_topology /
// write_topology, opt::optimize / optimize_dual, sim::simulate. Everything
// it does is reachable programmatically; it exists so a downstream user can
// reproduce an experiment without writing C++.
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "graph/dot_export.h"
#include "graph/serialization.h"
#include "graph/topology_generator.h"
#include "harness/experiment.h"
#include "harness/table.h"
#include "opt/dual_optimizer.h"
#include "sim/stream_simulation.h"

namespace {

using namespace aces;

/// Minimal --key=value parser; positional tokens are rejected.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        throw std::runtime_error("unexpected argument: " + arg);
      }
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) {
    consumed_.insert(key);
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] double get(const std::string& key, double fallback) {
    const std::string raw = get(key, std::string());
    return raw.empty() ? fallback : std::stod(raw);
  }
  [[nodiscard]] int get(const std::string& key, int fallback) {
    const std::string raw = get(key, std::string());
    return raw.empty() ? fallback : std::stoi(raw);
  }
  [[nodiscard]] bool has(const std::string& key) {
    consumed_.insert(key);
    return values_.contains(key);
  }

  /// Throws if any flag was provided that no command consumed (typo guard).
  void check_all_consumed() const {
    for (const auto& [key, value] : values_) {
      if (!consumed_.contains(key)) {
        throw std::runtime_error("unknown flag: --" + key);
      }
    }
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> consumed_;
};

graph::ProcessingGraph load_topology(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open topology file: " + path);
  return graph::read_topology(file);
}

control::FlowPolicy parse_policy(const std::string& name) {
  if (name == "aces") return control::FlowPolicy::kAces;
  if (name == "udp") return control::FlowPolicy::kUdp;
  if (name == "lockstep") return control::FlowPolicy::kLockStep;
  if (name == "threshold") return control::FlowPolicy::kThreshold;
  throw std::runtime_error("unknown policy: " + name +
                           " (aces|udp|lockstep|threshold)");
}

int cmd_generate(Flags& flags) {
  graph::TopologyParams params;
  params.num_nodes = flags.get("nodes", params.num_nodes);
  params.num_ingress = flags.get("ingress", params.num_ingress);
  params.num_intermediate = flags.get("intermediate", params.num_intermediate);
  params.num_egress = flags.get("egress", params.num_egress);
  params.depth = flags.get("depth", params.depth);
  params.buffer_capacity = flags.get("buffer", params.buffer_capacity);
  params.load_factor = flags.get("load", params.load_factor);
  params.source_burstiness = flags.get("burstiness", params.source_burstiness);
  const int seed = flags.get("seed", 1);
  const std::string out = flags.get("out", std::string());
  const std::string dot = flags.get("dot", std::string());
  flags.check_all_consumed();
  if (out.empty()) throw std::runtime_error("--out=FILE is required");

  const graph::ProcessingGraph g =
      generate_topology(params, static_cast<std::uint64_t>(seed));
  {
    std::ofstream file(out);
    graph::write_topology(g, file);
  }
  std::cout << "wrote " << out << ": " << g.pe_count() << " PEs on "
            << g.node_count() << " nodes, " << g.edge_count() << " edges\n";
  if (!dot.empty()) {
    std::ofstream file(dot);
    file << graph::to_dot(g);
    std::cout << "wrote " << dot << '\n';
  }
  return 0;
}

int cmd_optimize(Flags& flags) {
  const graph::ProcessingGraph g =
      load_topology(flags.get("topology", std::string()));
  const std::string solver = flags.get("solver", std::string("primal"));
  const bool csv = flags.has("csv");
  flags.check_all_consumed();

  opt::AllocationPlan plan;
  if (solver == "primal") {
    plan = opt::optimize(g);
  } else if (solver == "dual") {
    plan = opt::optimize_dual(g).plan;
  } else {
    throw std::runtime_error("unknown solver: " + solver + " (primal|dual)");
  }

  harness::Table table({"pe", "kind", "node", "weight", "cpu target",
                        "rin SDO/s", "rout SDO/s"});
  for (PeId id : g.all_pes()) {
    const auto& d = g.pe(id);
    table.add_row({"pe" + std::to_string(id.value()),
                   graph::to_string(d.kind),
                   "pn" + std::to_string(d.node.value()),
                   harness::cell(d.weight, 0),
                   harness::cell(plan.at(id).cpu, 4),
                   harness::cell(plan.at(id).rin_sdo, 2),
                   harness::cell(plan.at(id).rout_sdo, 2)});
  }
  harness::print_table(table, csv, std::cout);
  std::cout << "\naggregate utility: "
            << harness::cell(plan.aggregate_utility, 3)
            << "\nfluid weighted throughput: "
            << harness::cell(plan.weighted_throughput, 2) << '\n';
  return 0;
}

harness::RunSummary run_one(const graph::ProcessingGraph& g,
                            const opt::AllocationPlan& plan,
                            control::FlowPolicy policy, double duration,
                            double warmup, int seed,
                            const std::string& timeseries_path) {
  sim::SimOptions options;
  options.duration = duration;
  options.warmup = warmup;
  options.seed = static_cast<std::uint64_t>(seed);
  options.controller.policy = policy;
  options.record_timeseries = !timeseries_path.empty();
  sim::StreamSimulation simulation(g, plan, options);
  simulation.run();
  if (!timeseries_path.empty()) {
    std::ofstream file(timeseries_path);
    simulation.timeseries().write_csv(file);
  }
  return harness::summarize(simulation.report(), plan.weighted_throughput);
}

void add_summary_row(harness::Table& table, const char* name,
                     const harness::RunSummary& s) {
  table.add_row({name, harness::cell(s.weighted_throughput, 1),
                 harness::cell(s.normalized_throughput(), 3),
                 harness::cell(s.latency_mean * 1e3, 1),
                 harness::cell(s.latency_std * 1e3, 1),
                 harness::cell(s.ingress_drops_per_sec, 1),
                 harness::cell(s.internal_drops_per_sec, 1),
                 harness::cell(s.cpu_utilization, 3)});
}

harness::Table summary_table() {
  return harness::Table({"policy", "wtput", "wtput/fluid", "lat ms",
                         "lat std ms", "ingress drop/s", "internal drop/s",
                         "cpu util"});
}

int cmd_simulate(Flags& flags) {
  const graph::ProcessingGraph g =
      load_topology(flags.get("topology", std::string()));
  const control::FlowPolicy policy =
      parse_policy(flags.get("policy", std::string("aces")));
  const double duration = flags.get("duration", 60.0);
  const double warmup = flags.get("warmup", 10.0);
  const int seed = flags.get("seed", 1);
  const std::string timeseries = flags.get("timeseries", std::string());
  const bool csv = flags.has("csv");
  const bool detail = flags.has("detail");
  flags.check_all_consumed();

  const opt::AllocationPlan plan = opt::optimize(g);

  sim::SimOptions options;
  options.duration = duration;
  options.warmup = warmup;
  options.seed = static_cast<std::uint64_t>(seed);
  options.controller.policy = policy;
  options.record_timeseries = !timeseries.empty();
  sim::StreamSimulation simulation(g, plan, options);
  simulation.run();
  if (!timeseries.empty()) {
    std::ofstream file(timeseries);
    simulation.timeseries().write_csv(file);
  }
  const metrics::RunReport report = simulation.report();
  const harness::RunSummary s =
      harness::summarize(report, plan.weighted_throughput);
  harness::Table table = summary_table();
  add_summary_row(table, to_string(policy), s);
  harness::print_table(table, csv, std::cout);

  if (detail) {
    std::cout << '\n';
    harness::Table pe_table({"pe", "kind", "arrived", "processed",
                             "emitted", "dropped", "cpu s"});
    for (PeId id : g.all_pes()) {
      const auto& acc = report.per_pe[id.value()];
      pe_table.add_row({"pe" + std::to_string(id.value()),
                        graph::to_string(g.pe(id).kind),
                        harness::cell(acc.arrived),
                        harness::cell(acc.processed),
                        harness::cell(acc.emitted),
                        harness::cell(acc.dropped_input),
                        harness::cell(acc.cpu_seconds, 2)});
    }
    harness::print_table(pe_table, csv, std::cout);
  }
  return 0;
}

int cmd_compare(Flags& flags) {
  const graph::ProcessingGraph g =
      load_topology(flags.get("topology", std::string()));
  const double duration = flags.get("duration", 60.0);
  const double warmup = flags.get("warmup", 10.0);
  const int seed = flags.get("seed", 1);
  const bool csv = flags.has("csv");
  flags.check_all_consumed();

  const opt::AllocationPlan plan = opt::optimize(g);
  harness::Table table = summary_table();
  for (const control::FlowPolicy policy :
       {control::FlowPolicy::kAces, control::FlowPolicy::kUdp,
        control::FlowPolicy::kLockStep, control::FlowPolicy::kThreshold}) {
    add_summary_row(table, to_string(policy),
                    run_one(g, plan, policy, duration, warmup, seed, {}));
  }
  harness::print_table(table, csv, std::cout);
  return 0;
}

int usage(std::ostream& os, int code) {
  os << "usage: aces <command> [--flags]\n"
        "  generate  --out=FILE [--seed --nodes --ingress --intermediate\n"
        "            --egress --depth --buffer --load --burstiness --dot=F]\n"
        "  optimize  --topology=FILE [--solver=primal|dual] [--csv]\n"
        "  simulate  --topology=FILE [--policy=aces|udp|lockstep|threshold]\n"
        "            [--duration --warmup --seed --timeseries=F --csv\n"
        "             --detail]\n"
        "  compare   --topology=FILE [--duration --warmup --seed --csv]\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    return usage(std::cout, 0);
  }
  try {
    Flags flags(argc, argv, 2);
    if (command == "generate") return cmd_generate(flags);
    if (command == "optimize") return cmd_optimize(flags);
    if (command == "simulate") return cmd_simulate(flags);
    if (command == "compare") return cmd_compare(flags);
    std::cerr << "unknown command: " << command << '\n';
    return usage(std::cerr, 2);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
