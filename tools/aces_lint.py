#!/usr/bin/env python3
"""aces_lint: determinism lint for the ACES tree.

The repo's determinism contract (docs/benchmarking.md) promises that
simulator runs, sweep results, and optimizer output are bit-reproducible
from (topology, seed, options). That contract dies quietly the first time
someone reaches for `rand()` or iterates an unordered container inside a
fingerprinted path, so this lint bans the relevant constructs statically:

Rule groups and where they apply
--------------------------------
``fingerprint`` paths (src/sim, src/harness, src/opt, src/metrics —
anything whose output feeds a result fingerprint):

* ``nondet-random``   -- rand()/srand(), std::random_device, mt19937 seeded
                         off entropy. Use common/rng.h (splitmix64 /
                         deterministic streams) instead.
* ``wall-clock``      -- time(), clock(), gettimeofday(), localtime()/
                         gmtime()/ctime(), std::chrono::system_clock.
                         steady_clock is allowed: it is monotonic and the
                         contract excludes wall_ms fields from hashes.
* ``unordered-iter``  -- std::unordered_map/set (and multi variants).
                         Iteration order is hash-seed dependent, which
                         perturbs any serialized or accumulated-in-order
                         result. Use std::map / sorted vectors.

``report`` writers (src/harness/*.cc, src/obs/export.cc,
src/metrics/*.cc, bench/*.cc, tools/aces_cli.cc — code that formats
floating-point results for files another run or tool compares, which
since the bench "perf" block includes every bench JSON writer and the
CLI front end):

* ``float-format``    -- printf-family %e/%f/%g conversions that are not
                         exactly ``%.17g`` (shortest exact round-trip for
                         IEEE-754 doubles) or hexfloat ``%a``. A ``%.6f``
                         in a report writer silently truncates doubles and
                         two bit-identical runs stop diffing clean.

``hotpath`` files (src/runtime — the threaded data plane, whose
steady state must be lock-annotated and allocation-free; see
docs/performance.md):

* ``raw-mutex``       -- std::mutex and friends. The hot path uses
                         common/mutex.h (aces::Mutex), which carries the
                         clang thread-safety capability annotations the
                         concurrency CI job checks; a bare std::mutex is
                         invisible to that analysis.
* ``raw-new``         -- `new` expressions. Steady-state data-plane code
                         preallocates (ring slots, BoundedQueue, pooled
                         staging buffers); an ad-hoc `new` reintroduces
                         per-SDO allocator traffic that the dataplane
                         bench's alloc_count() gate exists to keep at
                         zero. Setup-time containers (std::vector etc.)
                         are fine; `= delete;` declarations do not trip
                         the companion rule.
* ``raw-delete``      -- `delete` expressions, for the same reason (and
                         because a matching raw delete implies a raw
                         owning pointer the annotations cannot see).

``atomics`` files (src/runtime and src/obs — the lock-free algorithms
the bounded model checker must be able to interpose on; see
docs/model_checking.md):

* ``raw-atomic``      -- ``std::atomic<T>``. Shim-covered code declares
                         ``aces::Atomic<T>`` (common/atomic_shim.h),
                         which compiles to std::atomic in production and
                         routes through the instrumented scheduler under
                         ``-DACES_MODEL_CHECK=ON``; a bare std::atomic is
                         invisible to the checker, so its orderings are
                         never model-verified. ``std::atomic_signal_fence``
                         (a pure compiler barrier) stays allowed.
* ``raw-fence``       -- ``std::atomic_thread_fence`` calls; use
                         ``aces::atomic_fence``, the interposable
                         drop-in with identical production codegen.

``wire`` codec files (src/runtime/wire.{h,cc} and
src/runtime/transport/ — everything that reads bytes off a socket or
frame buffer):

* ``memcpy-decode``   -- ``memcpy(&obj, ...)``: decoding a frame by
                         overlaying bytes onto a struct. The in-memory
                         layout (padding, field order, endianness) is not
                         a wire format; a struct overlay turns every
                         compiler/ABI difference into silent corruption
                         and skips the bounds and validation checks the
                         cursor decoders centralize. Decode field by
                         field through wire.h's bounds-checked cursor.
* ``cast-decode``     -- ``reinterpret_cast<T*>`` of a byte buffer to a
                         non-byte struct pointer, the same overlay in
                         pointer clothes (also an alignment/strict-
                         aliasing violation). Byte views (``char*``,
                         ``std::byte*``, ``uint8_t*``) and the POSIX
                         ``sockaddr*`` shapes are allowed.

Suppressions
------------
A finding is suppressed by an explicit, reasoned annotation on the same
line or the line above::

    std::snprintf(buf, sizeof buf, "%.12g", v);  // aces-lint: allow(float-format) trace exposition, not fingerprinted

Bare ``allow(<rule>)`` without a reason is itself a finding
(``bare-allow``): the reason is the review artifact.

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

FINGERPRINT_DIRS = ("src/sim", "src/harness", "src/opt", "src/metrics")
HOTPATH_DIRS = ("src/runtime",)
ATOMICS_DIRS = ("src/runtime", "src/obs")
REPORT_FILES_GLOB = re.compile(
    r"(src/harness/[^/]+\.cc|src/obs/export\.cc|src/obs/cluster_aggregate\.cc|"
    r"src/metrics/[^/]+\.cc|bench/[^/]+\.cc|tools/aces_cli\.cc)$"
)
WIRE_FILES_GLOB = re.compile(
    r"(src/runtime/wire\.(h|cc)|src/runtime/transport/[^/]+\.(h|cc))$"
)

ALLOW_RE = re.compile(r"aces-lint:\s*allow\(([a-z-]+)\)\s*(\S?)")

# Each rule: (name, compiled regex applied to comment-stripped code,
# human-readable message). Word boundaries keep `advance_time(` or
# `steady_clock` from tripping the wall-clock rules.
FINGERPRINT_RULES = [
    (
        "nondet-random",
        re.compile(r"\b(?:s?rand)\s*\(|\brandom_device\b"),
        "non-deterministic randomness; use common/rng.h streams",
    ),
    (
        "wall-clock",
        re.compile(
            r"\bsystem_clock\b|\bgettimeofday\s*\(|\blocaltime\s*\(|"
            r"\bgmtime\s*\(|\bctime\s*\(|\btime\s*\(|\bclock\s*\("
        ),
        "wall-clock read in a fingerprinted path; steady_clock is the "
        "only permitted clock (and never in fingerprints)",
    ),
    (
        "unordered-iter",
        re.compile(r"\bunordered_(?:multi)?(?:map|set)\b"),
        "unordered container in a fingerprinted path; iteration order is "
        "hash-seed dependent — use std::map or a sorted vector",
    ),
]

# %a (hexfloat) and %.17g (shortest exact decimal) are the two sanctioned
# double formats for anything a fingerprint or diff will see.
FLOAT_SPEC_RE = re.compile(r"%[-+ #0]*\d*(?:\.\d+)?[efgEFG]")
ALLOWED_SPECS = {"%.17g"}

# Hot-path rules. `raw-new` matches a new-expression (identifier, paren,
# qualified or template type after the keyword) so prose uses of the word
# in identifiers stay clean; `raw-delete` requires an operand, which keeps
# `= delete;` declarations out of scope.
HOTPATH_RULES = [
    (
        "raw-mutex",
        re.compile(r"\bstd::(?:recursive_|shared_|timed_|"
                   r"recursive_timed_)?mutex\b"),
        "raw std::mutex in the data plane; use aces::Mutex "
        "(common/mutex.h) so thread-safety analysis sees the lock",
    ),
    (
        "raw-new",
        re.compile(r"\bnew\s+[A-Za-z_(:<]|\bnew\s*\("),
        "raw `new` in the data plane; preallocate at setup time or use "
        "std::make_unique outside the steady-state path",
    ),
    (
        "raw-delete",
        re.compile(r"\bdelete\s*(?:\[\s*\]\s*)?[A-Za-z_(*]"),
        "raw `delete` in the data plane; owning raw pointers defeat both "
        "the allocation gate and the annotations — use RAII",
    ),
]

# Shim-coverage rules. `raw-atomic` matches the template-id (`std::atomic<`)
# so `std::atomic_signal_fence` — a compiler barrier with no inter-thread
# semantics for the model to simulate — stays clean. `raw-fence` matches the
# thread fence only, for the same reason.
ATOMICS_RULES = [
    (
        "raw-atomic",
        re.compile(r"\bstd::atomic\s*<"),
        "raw std::atomic in shim-covered code; use aces::Atomic "
        "(common/atomic_shim.h) so the bounded model checker can "
        "interpose on the operation",
    ),
    (
        "raw-fence",
        re.compile(r"\batomic_thread_fence\s*\("),
        "raw std::atomic_thread_fence in shim-covered code; use "
        "aces::atomic_fence (common/atomic_shim.h), the interposable "
        "drop-in",
    ),
]

# Wire-codec rules. `memcpy-decode` matches a memcpy whose destination is
# the address of an object (`memcpy(&frame, ...)`): the struct-overlay
# decode. Copies into plain byte arrays (`memcpy(buf, ...)`,
# `memcpy(addr.sun_path, ...)`) stay clean. `cast-decode` matches a
# reinterpret_cast to a non-byte object pointer; byte views and the POSIX
# sockaddr shapes (the OS API's own type-pun) are carved out.
WIRE_RULES = [
    (
        "memcpy-decode",
        re.compile(r"\bmemcpy\s*\(\s*&"),
        "memcpy-into-struct decoding in wire code; in-memory layout "
        "(padding, endianness) is not a wire format — decode field by "
        "field through the bounds-checked cursor (runtime/wire.h)",
    ),
    (
        "cast-decode",
        re.compile(
            r"reinterpret_cast\s*<\s*(?:const\s+)?"
            r"(?!(?:unsigned\s+char|signed\s+char|char|std::byte|"
            r"std::uint8_t|uint8_t|sockaddr\w*)\s*\*)"
            r"[A-Za-z_][\w:]*\s*\*\s*>"
        ),
        "byte buffer cast to a struct pointer in wire code; that is the "
        "memcpy overlay in pointer clothes (plus an alignment/aliasing "
        "violation) — use the cursor decoders",
    ),
]


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str
    excerpt: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: [{self.rule}] {self.message}\n"
            f"    {self.excerpt.strip()}"
        )


def strip_comments(text: str) -> str:
    """Blank out comments, preserving string literals and line structure.

    Replaced characters become spaces so line/column arithmetic on the
    result still maps back to the source. Handles //, /* */, character
    literals, plain strings with escapes, and R"delim(...)delim" raw
    strings — enough of C++ lexing for line-oriented pattern rules.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
        elif c == "R" and nxt == '"':
            j = i + 2
            while j < n and text[j] not in "(\n":
                j += 1
            if j < n and text[j] == "(":
                delim = text[i + 2 : j]
                end = text.find(")" + delim + '"', j + 1)
                i = n if end < 0 else end + len(delim) + 2
            else:
                i = j
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i += 1
        else:
            i += 1
    return "".join(out)


def string_literals(line: str) -> list[str]:
    """Ordinary string-literal bodies on a (comment-stripped) line."""
    literals = []
    i, n = 0, len(line)
    while i < n:
        if line[i] == '"' and (i == 0 or line[i - 1] != "\\"):
            j = i + 1
            while j < n and line[j] != '"':
                j += 2 if line[j] == "\\" else 1
            literals.append(line[i + 1 : j])
            i = j + 1
        else:
            i += 1
    return literals


def collect_allows(raw_lines: list[str]) -> tuple[dict[int, set[str]], list[tuple[int, str]]]:
    """Map line number -> rules suppressed there, plus bare-allow abuses.

    An ``allow(<rule>)`` covers its own line and the line below, so the
    annotation can sit above a long statement.
    """
    allows: dict[int, set[str]] = {}
    bare: list[tuple[int, str]] = []
    for lineno, raw in enumerate(raw_lines, start=1):
        for m in ALLOW_RE.finditer(raw):
            rule, reason_head = m.group(1), m.group(2)
            if not reason_head:
                bare.append((lineno, rule))
                continue
            allows.setdefault(lineno, set()).add(rule)
            allows.setdefault(lineno + 1, set()).add(rule)
    return allows, bare


def lint_text(path: str, text: str, groups: set[str]) -> list[Finding]:
    raw_lines = text.splitlines()
    code_lines = strip_comments(text).splitlines()
    allows, bare = collect_allows(raw_lines)

    findings = [
        Finding(path, lineno, "bare-allow",
                f"allow({rule}) without a reason; state why the "
                "suppression is sound", raw_lines[lineno - 1])
        for lineno, rule in bare
    ]

    for lineno, code in enumerate(code_lines, start=1):
        raw = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
        if "fingerprint" in groups:
            for rule, pattern, message in FINGERPRINT_RULES:
                if pattern.search(code) and rule not in allows.get(lineno, ()):
                    findings.append(Finding(path, lineno, rule, message, raw))
        if "hotpath" in groups:
            for rule, pattern, message in HOTPATH_RULES:
                if pattern.search(code) and rule not in allows.get(lineno, ()):
                    findings.append(Finding(path, lineno, rule, message, raw))
        if "atomics" in groups:
            for rule, pattern, message in ATOMICS_RULES:
                if pattern.search(code) and rule not in allows.get(lineno, ()):
                    findings.append(Finding(path, lineno, rule, message, raw))
        if "wire" in groups:
            for rule, pattern, message in WIRE_RULES:
                if pattern.search(code) and rule not in allows.get(lineno, ()):
                    findings.append(Finding(path, lineno, rule, message, raw))
        if "report" in groups:
            for literal in string_literals(code):
                for spec in FLOAT_SPEC_RE.findall(literal):
                    if spec in ALLOWED_SPECS:
                        continue
                    if "float-format" in allows.get(lineno, ()):
                        continue
                    findings.append(Finding(
                        path, lineno, "float-format",
                        f"'{spec}' in a report writer loses double "
                        "precision; use %.17g (exact decimal) or %a "
                        "(hexfloat)", raw))
    return findings


def classify(rel_path: str) -> set[str]:
    rel = rel_path.replace(os.sep, "/")
    groups: set[str] = set()
    if any(rel.startswith(d + "/") or rel == d for d in FINGERPRINT_DIRS):
        groups.add("fingerprint")
    if REPORT_FILES_GLOB.search(rel):
        groups.add("report")
    if any(rel.startswith(d + "/") or rel == d for d in HOTPATH_DIRS):
        groups.add("hotpath")
    if any(rel.startswith(d + "/") or rel == d for d in ATOMICS_DIRS):
        groups.add("atomics")
    if WIRE_FILES_GLOB.search(rel):
        groups.add("wire")
    return groups


def iter_source_files(root: str):
    for base in FINGERPRINT_DIRS + HOTPATH_DIRS + ("src/obs", "bench", "tools"):
        top = os.path.join(root, base)
        if not os.path.isdir(top):
            continue
        for dirpath, _dirnames, filenames in os.walk(top):
            for name in sorted(filenames):
                if name.endswith((".cc", ".h")):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="aces_lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=".",
                        help="repo root the default scope is relative to")
    parser.add_argument("--force-groups", default=None,
                        help="comma-separated rule groups (fingerprint,"
                             "report,hotpath,atomics,wire) to apply to the "
                             "given paths instead of path-based "
                             "classification; for fixtures")
    parser.add_argument("paths", nargs="*",
                        help="files to lint; default: the standard scope "
                             "under --root")
    args = parser.parse_args(argv)

    forced: set[str] | None = None
    if args.force_groups is not None:
        forced = {g for g in args.force_groups.split(",") if g}
        if not forced or forced - {"fingerprint", "report", "hotpath",
                                   "atomics", "wire"}:
            print(f"aces_lint: bad --force-groups '{args.force_groups}'",
                  file=sys.stderr)
            return 2

    if args.paths:
        targets = [(p, os.path.relpath(p, args.root)
                    if os.path.isabs(p) else p) for p in args.paths]
    else:
        targets = [(os.path.join(args.root, rel), rel)
                   for rel in iter_source_files(args.root)]

    findings: list[Finding] = []
    checked = 0
    for full, rel in targets:
        groups = forced if forced is not None else classify(rel)
        if not groups:
            continue
        try:
            with open(full, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as err:
            print(f"aces_lint: cannot read {full}: {err}", file=sys.stderr)
            return 2
        checked += 1
        findings.extend(lint_text(rel, text, groups))

    if checked == 0:
        print("aces_lint: nothing in scope to lint", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"aces_lint: {len(findings)} finding(s) in {checked} file(s)")
        return 1
    print(f"aces_lint: clean ({checked} files)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:  # |head closed the pipe; not a lint failure
        sys.exit(0)
