// Fixture: every raw std::atomic declaration / std::atomic_thread_fence
// call here must be flagged; the shim wrapper, the signal fence (a pure
// compiler barrier), and the reasoned escape must not be.
#include <atomic>

#include "common/atomic_shim.h"

std::atomic<int> g_flag{0};                       // finding: raw-atomic
std::atomic<unsigned long> g_count{0};            // finding: raw-atomic

void publish() {
  std::atomic_thread_fence(std::memory_order_release);  // finding: raw-fence
  g_flag.store(1, std::memory_order_relaxed);
}

// The sanctioned alternatives: the shim type and its fence drop-in.
aces::Atomic<int> g_shimmed{0};

void publish_shimmed() {
  aces::atomic_fence(std::memory_order_release);
  g_shimmed.store(1, std::memory_order_relaxed);
}

// Signal fences order only the compiler, not other threads; the model has
// nothing to simulate and the rule leaves them alone.
void compiler_barrier() {
  std::atomic_signal_fence(std::memory_order_seq_cst);
}

// A reasoned escape stays clean; the reason is the review artifact.
// aces-lint: allow(raw-atomic) allocator counter; must never become a model schedule point
std::atomic<int> g_escaped{0};
