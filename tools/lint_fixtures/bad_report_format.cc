// Fixture: lossy float formats in a report writer must be flagged; the
// sanctioned %.17g and %a forms must not be.
#include <cstdio>

void write_bad(double v, char* buf, unsigned long n) {
  std::snprintf(buf, n, "%f", v);      // finding: %f truncates
  std::snprintf(buf, n, "%.6f", v);    // finding: fixed 6 digits
  std::snprintf(buf, n, "%g", v);      // finding: %g defaults to 6 sig figs
  std::snprintf(buf, n, "%12.3e", v);  // finding: width+precision, still lossy
}

void write_ok(double v, char* buf, unsigned long n) {
  std::snprintf(buf, n, "%.17g", v);  // exact decimal round-trip
  std::snprintf(buf, n, "%a", v);     // hexfloat, exact by construction
  std::snprintf(buf, n, "rate=%d", static_cast<int>(v));  // ints are fine
}
