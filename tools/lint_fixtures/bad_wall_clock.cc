// Fixture: every wall-clock read here must be flagged; the steady_clock
// use must not be.
#include <chrono>
#include <ctime>

double stamp_bad() {
  std::time_t now = std::time(nullptr);        // finding: time(
  std::tm* parts = std::localtime(&now);       // finding: localtime(
  (void)parts;
  const auto wall = std::chrono::system_clock::now();  // finding: system_clock
  (void)wall;
  return static_cast<double>(std::clock());    // finding: clock(
}

double stamp_ok() {
  // steady_clock is monotonic and sanctioned (never fingerprinted).
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

// Identifiers merely containing "time" must not trip the word-boundary
// regex.
double advance_time(double t) { return t + 1.0; }
