// Fixture: every construct here must be flagged by the nondet-random rule.
#include <cstdlib>
#include <random>

int draw_bad() {
  std::random_device entropy;            // finding: random_device
  std::srand(entropy());                 // finding: srand( (and random_device use)
  return std::rand();                    // finding: rand(
}

// Comments mentioning rand() or std::random_device must NOT be flagged.
int draw_ok() { return 4; }
