// Fixture: deterministic code that must produce zero findings under every
// rule group — the negative control for the lint's false-positive rate.
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

// rand() in a comment is not a finding; neither is "time(" here.
double deterministic_sum(const std::map<std::string, double>& rates) {
  double total = 0.0;
  for (const auto& [name, rate] : rates) total += rate;
  return total;
}

// A suppression WITH a reason is honored, not reported.
void write_trace(double v, char* buf, unsigned long n) {
  // aces-lint: allow(float-format) human-facing trace line, never fingerprinted
  std::snprintf(buf, n, "%.3f", v);
}

void write_report(double v, char* buf, unsigned long n) {
  std::snprintf(buf, n, "%.17g", v);
}

double runtime_stamp() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

// Identifiers containing banned substrings must not trip word boundaries.
double advance_time_by(double t) { return t + 1.0; }
struct Clockwork { int clock_skew = 0; };
