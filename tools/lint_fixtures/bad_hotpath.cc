// Fixture: every raw mutex / new / delete here must be flagged; the
// annotated-wrapper, make_unique, and `= delete;` uses must not be.
#include <memory>
#include <mutex>

struct Slot {
  int value = 0;
};

std::mutex g_lock;                         // finding: raw-mutex
std::shared_mutex g_rw_lock;               // finding: raw-mutex

Slot* leak_one() {
  Slot* s = new Slot();                    // finding: raw-new
  int* block = new int[64];                // finding: raw-new
  delete[] block;                          // finding: raw-delete
  return s;
}

void drop_one(Slot* s) {
  delete s;                                // finding: raw-delete
}

// The sanctioned alternatives: RAII ownership and deleted special members.
struct Pool {
  Pool() = default;
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;
  std::unique_ptr<Slot> slot = std::make_unique<Slot>();
};

// Identifiers merely containing the keywords must not trip word
// boundaries.
int renew_delete_count(int newest) { return newest + 1; }
