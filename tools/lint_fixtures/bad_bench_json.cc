// Fixture: a bench JSON writer that truncates doubles on the way out.
// Planted findings (report group): lossy specs on lines 8, 9, 11; the
// %.17g on line 10 and the prose percent (annotated) on line 13 are clean.
#include <cstdio>

void write_bench_record(double wall_ms, double throughput, double rss_mb) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "{\"wall_ms\":%.3f", wall_ms);
  std::printf("\"throughput\":%g,", throughput);
  std::printf("\"exact\":%.17g,", throughput);
  std::fprintf(stderr, "\"peak_rss_mb\":%.1f}\n", rss_mb);
  // aces-lint: allow(float-format) prose "% full", not a conversion
  std::puts("buffer 100% full");
}
