// Fixture: unordered containers in a fingerprinted path must be flagged.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

double sum_bad() {
  std::unordered_map<std::string, double> rates;   // finding: unordered-iter
  std::unordered_set<int> seen;                    // finding: unordered-iter
  double total = 0.0;
  for (const auto& [name, rate] : rates) total += rate;
  (void)seen;
  return total;
}

double sum_ok() {
  std::map<std::string, double> rates;  // ordered: fine
  double total = 0.0;
  for (const auto& [name, rate] : rates) total += rate;
  return total;
}
