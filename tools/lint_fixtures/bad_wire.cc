// Fixture: every struct-overlay decode here must be flagged; byte-array
// copies, byte-view casts, and the POSIX sockaddr pun must not be.
#include <cstdint>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>

struct StepGo {
  std::uint64_t quantum = 0;
  double vnow = 0.0;
};

StepGo overlay_decode(const std::uint8_t* payload, std::size_t n) {
  StepGo frame;
  std::memcpy(&frame, payload, n);         // finding: memcpy-decode
  return frame;
}

std::uint64_t overlay_field(const char* payload) {
  std::uint64_t quantum = 0;
  std::memcpy(&quantum, payload, 8);       // finding: memcpy-decode
  return quantum;
}

const StepGo* pointer_overlay(const std::uint8_t* payload) {
  return reinterpret_cast<const StepGo*>(payload);  // finding: cast-decode
}

StepGo* mutable_overlay(char* payload) {
  return reinterpret_cast<StepGo*>(payload);  // finding: cast-decode
}

// The sanctioned shapes: copies into byte arrays, byte views of a struct
// for writing out, and the sockaddr pun the socket API itself demands.
void fill_path(sockaddr_un& addr, const char* path, std::size_t len) {
  std::memcpy(addr.sun_path, path, len + 1);
}

const char* byte_view(const StepGo& frame) {
  return reinterpret_cast<const char*>(&frame);
}

int bind_it(int fd, const sockaddr_un& addr) {
  return ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
}
