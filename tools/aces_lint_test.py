#!/usr/bin/env python3
"""Fixture tests for aces_lint: every bad fixture's planted findings are
reported (and nothing else), the clean fixture is silent under all rule
groups, and the suppression / comment-stripping corner cases hold."""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import aces_lint  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "lint_fixtures")


def lint_fixture(name, groups):
    path = os.path.join(FIXTURES, name)
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    return aces_lint.lint_text(name, text, groups)


def rules(findings):
    return sorted(f.rule for f in findings)


class FixtureTests(unittest.TestCase):
    def test_bad_random_flags_every_draw(self):
        findings = lint_fixture("bad_random.cc", {"fingerprint"})
        self.assertEqual(
            rules(findings),
            ["nondet-random", "nondet-random", "nondet-random"])
        self.assertEqual(sorted(f.line for f in findings), [6, 7, 8])

    def test_bad_wall_clock_flags_wall_reads_only(self):
        findings = lint_fixture("bad_wall_clock.cc", {"fingerprint"})
        self.assertEqual(rules(findings), ["wall-clock"] * 4)
        # steady_clock (line 17) and advance_time (line 23) stay clean.
        self.assertEqual(sorted(f.line for f in findings), [7, 8, 10, 12])

    def test_bad_unordered_flags_includes_and_declarations(self):
        # The two #include lines count too: pulling the header into a
        # fingerprinted path is the same intent as using it.
        findings = lint_fixture("bad_unordered.cc", {"fingerprint"})
        self.assertEqual(rules(findings), ["unordered-iter"] * 4)
        self.assertEqual(sorted(f.line for f in findings), [4, 5, 8, 9])

    def test_bad_report_format_flags_lossy_specs_only(self):
        findings = lint_fixture("bad_report_format.cc", {"report"})
        self.assertEqual(rules(findings), ["float-format"] * 4)
        self.assertEqual(sorted(f.line for f in findings), [6, 7, 8, 9])

    def test_bad_bench_json_flags_lossy_specs_only(self):
        # Bench JSON writers are report-group files; the sanctioned %.17g
        # and an annotated prose percent stay clean.
        findings = lint_fixture("bad_bench_json.cc", {"report"})
        self.assertEqual(rules(findings), ["float-format"] * 3)
        self.assertEqual(sorted(f.line for f in findings), [8, 9, 11])

    def test_bad_hotpath_flags_raw_mutex_new_delete(self):
        findings = lint_fixture("bad_hotpath.cc", {"hotpath"})
        self.assertEqual(
            rules(findings),
            ["raw-delete", "raw-delete", "raw-mutex", "raw-mutex",
             "raw-new", "raw-new"])
        # make_unique (line 29), `= delete;` (lines 27-28), and keyword
        # substrings in identifiers (line 34) stay clean.
        self.assertEqual(sorted(f.line for f in findings),
                         [10, 11, 14, 15, 16, 21])

    def test_bad_wire_flags_struct_overlays_only(self):
        findings = lint_fixture("bad_wire.cc", {"wire"})
        self.assertEqual(
            rules(findings),
            ["cast-decode", "cast-decode", "memcpy-decode", "memcpy-decode"])
        # Byte-array copies (line 36), byte views (line 40), and the
        # sockaddr pun (line 44) stay clean.
        self.assertEqual(sorted(f.line for f in findings), [15, 21, 26, 30])

    def test_bad_atomics_flags_raw_atomics_and_thread_fences(self):
        findings = lint_fixture("bad_atomics.cc", {"atomics"})
        self.assertEqual(rules(findings),
                         ["raw-atomic", "raw-atomic", "raw-fence"])
        # The shim type (17), aces::atomic_fence (20), the signal fence
        # (27), and the reasoned escape (32) stay clean.
        self.assertEqual(sorted(f.line for f in findings), [8, 9, 12])

    def test_clean_fixture_is_silent_under_all_groups(self):
        findings = lint_fixture("clean.cc", {"fingerprint", "report",
                                             "hotpath", "atomics", "wire"})
        self.assertEqual(findings, [])

    def test_hotpath_rules_do_not_apply_to_fingerprint_files(self):
        findings = lint_fixture("bad_hotpath.cc", {"fingerprint"})
        self.assertEqual(findings, [])

    def test_report_rules_do_not_apply_to_fingerprint_only_files(self):
        findings = lint_fixture("bad_report_format.cc", {"fingerprint"})
        self.assertEqual(findings, [])

    def test_wire_rules_do_not_apply_to_hotpath_only_files(self):
        # src/runtime files outside wire.{h,cc} / transport/ may memcpy
        # into objects they own; only the codec scope is banned.
        findings = lint_fixture("bad_wire.cc", {"hotpath"})
        self.assertEqual(findings, [])

    def test_atomics_rules_do_not_apply_to_fingerprint_files(self):
        # The simulator is single-threaded; std::atomic there is unusual
        # but not a shim-coverage hole.
        findings = lint_fixture("bad_atomics.cc", {"fingerprint"})
        self.assertEqual(findings, [])


class MechanismTests(unittest.TestCase):
    def test_comment_mentions_are_not_findings(self):
        text = "// rand() and time( and unordered_map in prose\nint x = 0;\n"
        self.assertEqual(aces_lint.lint_text("t.cc", text, {"fingerprint"}),
                         [])

    def test_string_literal_random_is_a_finding(self):
        # The rules run on comment-stripped (not string-stripped) text:
        # generated-code templates embedding rand() deserve a look.
        text = 'int x = rand();\n'
        self.assertEqual(rules(aces_lint.lint_text("t.cc", text,
                                                   {"fingerprint"})),
                         ["nondet-random"])

    def test_allow_with_reason_suppresses_same_and_next_line(self):
        text = ("// aces-lint: allow(wall-clock) boot banner only\n"
                "std::time_t t = std::time(nullptr);\n")
        self.assertEqual(aces_lint.lint_text("t.cc", text, {"fingerprint"}),
                         [])

    def test_bare_allow_is_itself_a_finding(self):
        text = ("std::time_t t = std::time(nullptr);"
                "  // aces-lint: allow(wall-clock)\n")
        found = rules(aces_lint.lint_text("t.cc", text, {"fingerprint"}))
        self.assertIn("bare-allow", found)

    def test_allow_only_covers_the_named_rule(self):
        text = ("// aces-lint: allow(wall-clock) reason here\n"
                "int x = rand();\n")
        self.assertEqual(rules(aces_lint.lint_text("t.cc", text,
                                                   {"fingerprint"})),
                         ["nondet-random"])

    def test_raw_string_literals_do_not_derail_the_scanner(self):
        text = ('const char* kDoc = R"(use rand() wisely)";\n'
                "int y = rand();\n")
        findings = aces_lint.lint_text("t.cc", text, {"fingerprint"})
        self.assertEqual([f.line for f in findings], [1, 2])


class ClassifyTests(unittest.TestCase):
    def test_bench_writers_and_cli_are_report_scope(self):
        self.assertIn("report",
                      aces_lint.classify("bench/fig5_burstiness.cc"))
        self.assertIn("report", aces_lint.classify("tools/aces_cli.cc"))
        self.assertIn("report",
                      aces_lint.classify("src/metrics/report_fingerprint.cc"))

    def test_metrics_is_fingerprint_scope(self):
        self.assertIn("fingerprint",
                      aces_lint.classify("src/metrics/collector.cc"))

    def test_runtime_is_hotpath_and_atomics_scope(self):
        self.assertEqual(aces_lint.classify("src/runtime/spsc_ring.h"),
                         {"hotpath", "atomics"})
        self.assertEqual(aces_lint.classify("src/runtime/runtime_engine.cc"),
                         {"hotpath", "atomics"})
        self.assertNotIn("hotpath", aces_lint.classify("src/sim/simulator.cc"))

    def test_wire_scope_is_codec_and_transport_files(self):
        self.assertEqual(aces_lint.classify("src/runtime/wire.h"),
                         {"hotpath", "atomics", "wire"})
        self.assertEqual(aces_lint.classify("src/runtime/wire.cc"),
                         {"hotpath", "atomics", "wire"})
        self.assertEqual(aces_lint.classify("src/runtime/transport/uds.cc"),
                         {"hotpath", "atomics", "wire"})
        self.assertEqual(aces_lint.classify("src/runtime/dist_worker.cc"),
                         {"hotpath", "atomics"})

    def test_obs_is_atomics_scope(self):
        self.assertIn("atomics", aces_lint.classify("src/obs/spans.h"))
        self.assertIn("atomics", aces_lint.classify("src/obs/perf.cc"))
        self.assertNotIn("atomics", aces_lint.classify("src/sim/simulator.cc"))
        self.assertNotIn("atomics", aces_lint.classify("src/common/atomic_shim.h"))

    def test_cluster_aggregate_is_report_scope(self):
        self.assertIn("report",
                      aces_lint.classify("src/obs/cluster_aggregate.cc"))

    def test_fixtures_and_headers_stay_out_of_report_scope(self):
        self.assertEqual(
            aces_lint.classify("tools/lint_fixtures/bad_bench_json.cc"),
            set())
        self.assertNotIn("report", aces_lint.classify("bench/nested/x.cc"))
        self.assertNotIn("report", aces_lint.classify("tools/aces_lint.py"))


class CliTests(unittest.TestCase):
    def test_tree_scope_is_clean(self):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        self.assertEqual(aces_lint.main(["--root", root]), 0)

    def test_fixture_paths_with_forced_groups_fail(self):
        rc = aces_lint.main([
            "--force-groups", "fingerprint",
            os.path.join(FIXTURES, "bad_random.cc"),
        ])
        self.assertEqual(rc, 1)

    def test_bad_force_groups_is_a_usage_error(self):
        rc = aces_lint.main(["--force-groups", "bogus",
                             os.path.join(FIXTURES, "clean.cc")])
        self.assertEqual(rc, 2)


if __name__ == "__main__":
    unittest.main()
