// Time-series recording for stability analysis.
//
// The paper's §IV objective is *stable operation* — buffer occupancies and
// rates that settle rather than oscillate. RunReport aggregates away the
// trajectory; TimeSeries keeps it, so benches and tests can measure
// convergence ("each PE reaches steady-state behavior from an arbitrary
// starting point", §I) and oscillation amplitude directly.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace aces::metrics {

/// An append-only (time, value) series.
class TimeSeries {
 public:
  void append(Seconds t, double value);

  [[nodiscard]] std::size_t size() const { return times_.size(); }
  [[nodiscard]] bool empty() const { return times_.empty(); }
  [[nodiscard]] const std::vector<Seconds>& times() const { return times_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  /// Statistics over samples with t >= from.
  [[nodiscard]] OnlineStats stats_after(Seconds from) const;

  /// First time after which every subsequent sample stays within
  /// `tolerance` of `target`; +infinity if the series never settles.
  /// The paper's convergence measure: settling time of b(n) toward b0.
  [[nodiscard]] Seconds settling_time(double target, double tolerance) const;

 private:
  std::vector<Seconds> times_;
  std::vector<double> values_;
};

/// A named bundle of series with CSV export (columns: time, one per series;
/// rows are the union of sample times, blank where a series has no sample).
class TimeSeriesSet {
 public:
  /// Returns (creating on first use) the series called `name`.
  TimeSeries& series(const std::string& name);
  [[nodiscard]] const TimeSeries* find(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] bool empty() const { return series_.empty(); }

  /// Long-format CSV: series,time,value — one row per sample.
  void write_csv(std::ostream& os) const;

 private:
  std::map<std::string, TimeSeries> series_;
};

}  // namespace aces::metrics
