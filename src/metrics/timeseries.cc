#include "metrics/timeseries.h"

#include <cmath>
#include <limits>
#include <ostream>

#include "common/check.h"

namespace aces::metrics {

void TimeSeries::append(Seconds t, double value) {
  ACES_CHECK_MSG(times_.empty() || t >= times_.back(),
                 "time series must be appended in time order");
  times_.push_back(t);
  values_.push_back(value);
}

OnlineStats TimeSeries::stats_after(Seconds from) const {
  OnlineStats stats;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] >= from) stats.add(values_[i]);
  }
  return stats;
}

Seconds TimeSeries::settling_time(double target, double tolerance) const {
  ACES_CHECK_MSG(tolerance >= 0.0, "negative tolerance");
  // Scan backwards for the last sample outside the band; the series has
  // settled just after it.
  for (std::size_t i = times_.size(); i-- > 0;) {
    if (std::abs(values_[i] - target) > tolerance) {
      return i + 1 < times_.size()
                 ? times_[i + 1]
                 : std::numeric_limits<double>::infinity();
    }
  }
  return times_.empty() ? std::numeric_limits<double>::infinity() : times_[0];
}

TimeSeries& TimeSeriesSet::series(const std::string& name) {
  return series_[name];
}

const TimeSeries* TimeSeriesSet::find(const std::string& name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

std::vector<std::string> TimeSeriesSet::names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, unused] : series_) out.push_back(name);
  return out;
}

void TimeSeriesSet::write_csv(std::ostream& os) const {
  os << "series,time,value\n";
  for (const auto& [name, ts] : series_) {
    for (std::size_t i = 0; i < ts.size(); ++i) {
      os << name << ',' << ts.times()[i] << ',' << ts.values()[i] << '\n';
    }
  }
}

}  // namespace aces::metrics
