#include "metrics/report_fingerprint.h"

#include <cstdio>
#include <sstream>

namespace aces::metrics {

namespace {
std::string hex(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}
}  // namespace

std::string report_fingerprint(const RunReport& r) {
  std::ostringstream os;
  os << hex(r.measured_seconds) << '|' << hex(r.weighted_throughput) << '|'
     << hex(r.output_rate) << '|' << r.latency.count() << '|'
     << hex(r.latency.mean()) << '|' << hex(r.latency.stddev()) << '|'
     << r.latency_histogram.count() << '|' << hex(r.latency_histogram.sum())
     << '|' << hex(r.latency_histogram.p99()) << '|' << r.internal_drops
     << '|' << r.ingress_drops << '|' << r.sdos_processed << '|'
     << hex(r.cpu_utilization) << '|' << hex(r.buffer_fill.mean()) << '|'
     << r.events_executed << '|' << r.reoptimizations;
  for (const std::uint64_t n : r.egress_outputs) os << '|' << n;
  for (const PeAccounting& pe : r.per_pe) {
    os << '|' << pe.arrived << ',' << pe.processed << ',' << pe.emitted
       << ',' << pe.dropped_input << ',' << hex(pe.cpu_seconds);
  }
  return os.str();
}

std::string work_fingerprint(const RunReport& r) {
  std::ostringstream os;
  os << r.latency.count() << '|' << r.latency_histogram.count() << '|'
     << r.internal_drops << '|' << r.ingress_drops << '|' << r.sdos_processed
     << '|' << r.events_executed << '|' << r.reoptimizations;
  for (const std::uint64_t n : r.egress_outputs) os << '|' << n;
  for (const PeAccounting& pe : r.per_pe) {
    os << '|' << pe.arrived << ',' << pe.processed << ',' << pe.emitted
       << ',' << pe.dropped_input << ',' << hex(pe.cpu_seconds);
  }
  return os.str();
}

}  // namespace aces::metrics
