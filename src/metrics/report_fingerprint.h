// Exact serialization of every deterministic RunReport field.
//
// Two runs with identical event orders produce identical fingerprints;
// any behavioural divergence — from tracing hooks, perf probes, or a
// refactor — shows up as a byte difference rather than a tolerance
// judgement call. Doubles are serialized as hexfloat (%a), so the
// comparison is bit-exact. Shared by the span-overhead guard
// (bench/trace_overhead.cc), the ACES_PERF_INSTRUMENT on/off guard
// (`aces simulate --fingerprint` diffed across builds in CI), and tests.
#pragma once

#include <string>

#include "metrics/run_report.h"

namespace aces::metrics {

[[nodiscard]] std::string report_fingerprint(const RunReport& report);

/// The partition-invariant subset: integer work totals plus the per-PE
/// accounting lines. A distributed run's global floating-point aggregates
/// (latency mean, cpu_utilization, ...) merge per-worker partial
/// accumulators, and merging Welford state is correct but not
/// bit-associative — the last few ULPs depend on how events were split
/// across workers. Everything here is either an exact integer sum or
/// accumulated wholly on the one worker that owns the PE, so any two runs
/// that execute the same events produce byte-identical work fingerprints
/// regardless of --processes or transport. Used by
/// `aces compare --fingerprint` on the distributed substrate and the
/// cross-transport conformance tests.
[[nodiscard]] std::string work_fingerprint(const RunReport& report);

}  // namespace aces::metrics
