// Exact serialization of every deterministic RunReport field.
//
// Two runs with identical event orders produce identical fingerprints;
// any behavioural divergence — from tracing hooks, perf probes, or a
// refactor — shows up as a byte difference rather than a tolerance
// judgement call. Doubles are serialized as hexfloat (%a), so the
// comparison is bit-exact. Shared by the span-overhead guard
// (bench/trace_overhead.cc), the ACES_PERF_INSTRUMENT on/off guard
// (`aces simulate --fingerprint` diffed across builds in CI), and tests.
#pragma once

#include <string>

#include "metrics/run_report.h"

namespace aces::metrics {

[[nodiscard]] std::string report_fingerprint(const RunReport& report);

}  // namespace aces::metrics
