#include "metrics/collector.h"

#include "common/check.h"

namespace aces::metrics {

Collector::Collector(Seconds measure_from, std::size_t egress_count)
    : measure_from_(measure_from), egress_outputs_(egress_count, 0) {
  ACES_CHECK_MSG(measure_from >= 0.0, "negative warm-up cutoff");
}

void Collector::on_egress_output(Seconds now, std::size_t egress_index,
                                 double weight, Seconds latency) {
  if (!in_window(now)) return;
  ACES_CHECK(egress_index < egress_outputs_.size());
  weighted_output_ += weight;
  ++output_count_;
  latency_.add(latency);
  latency_histogram_.add(latency);
  ++egress_outputs_[egress_index];
}

void Collector::on_internal_drop(Seconds now) {
  if (in_window(now)) ++internal_drops_;
}

void Collector::on_ingress_drop(Seconds now) {
  if (in_window(now)) ++ingress_drops_;
}

void Collector::on_processed(Seconds now, std::uint64_t count) {
  if (in_window(now)) processed_ += count;
}

void Collector::on_cpu_used(Seconds now, double cpu_seconds) {
  if (in_window(now)) cpu_seconds_ += cpu_seconds;
}

void Collector::on_buffer_sample(Seconds now, double fill_fraction) {
  if (in_window(now)) buffer_fill_.add(fill_fraction);
}

RunReport Collector::finalize(Seconds end, double total_capacity) const {
  ACES_CHECK_MSG(end > measure_from_, "measurement window is empty");
  RunReport report;
  report.measured_seconds = end - measure_from_;
  report.weighted_throughput = weighted_output_ / report.measured_seconds;
  report.output_rate =
      static_cast<double>(output_count_) / report.measured_seconds;
  report.latency = latency_;
  report.latency_histogram = latency_histogram_;
  report.internal_drops = internal_drops_;
  report.ingress_drops = ingress_drops_;
  report.sdos_processed = processed_;
  report.cpu_utilization =
      total_capacity > 0.0
          ? cpu_seconds_ / (total_capacity * report.measured_seconds)
          : 0.0;
  report.buffer_fill = buffer_fill_;
  report.egress_outputs = egress_outputs_;
  return report;
}

}  // namespace aces::metrics
