// Event-driven metrics collection with a warm-up window.
//
// Both substrates report raw events (egress emissions, drops, completions,
// CPU consumption, occupancy samples); the collector filters out everything
// before `measure_from` so transients do not pollute steady-state results,
// then finalizes into a RunReport.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "metrics/run_report.h"

namespace aces::metrics {

class Collector {
 public:
  /// `measure_from`: warm-up cutoff. `egress_count`: number of egress PEs
  /// (for the per-egress output vector).
  Collector(Seconds measure_from, std::size_t egress_count);

  /// An egress PE emitted an output SDO. `egress_index` is positional over
  /// egress PEs, `weight` the PE's w_j, `latency` source-to-output seconds.
  void on_egress_output(Seconds now, std::size_t egress_index, double weight,
                        Seconds latency);
  void on_internal_drop(Seconds now);
  void on_ingress_drop(Seconds now);
  void on_processed(Seconds now, std::uint64_t count = 1);
  void on_cpu_used(Seconds now, double cpu_seconds);
  /// Occupancy sample in [0,1] (fraction of buffer capacity).
  void on_buffer_sample(Seconds now, double fill_fraction);

  /// Builds the report for the window [measure_from, end]. `total_capacity`
  /// is Σ node CPU capacities (for the utilization figure).
  [[nodiscard]] RunReport finalize(Seconds end, double total_capacity) const;

  [[nodiscard]] Seconds measure_from() const { return measure_from_; }

 private:
  [[nodiscard]] bool in_window(Seconds now) const {
    return now >= measure_from_;
  }

  Seconds measure_from_;
  double weighted_output_ = 0.0;
  std::uint64_t output_count_ = 0;
  OnlineStats latency_;
  LogHistogram latency_histogram_;
  std::uint64_t internal_drops_ = 0;
  std::uint64_t ingress_drops_ = 0;
  std::uint64_t processed_ = 0;
  double cpu_seconds_ = 0.0;
  OnlineStats buffer_fill_;
  std::vector<std::uint64_t> egress_outputs_;
};

}  // namespace aces::metrics
