// Experiment outputs: the measures of effectiveness from paper §III-A / §IV.
#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/stats.h"
#include "common/types.h"

namespace aces::metrics {

/// Lifetime accounting for one PE, reported by both substrates.
struct PeAccounting {
  std::uint64_t arrived = 0;        ///< SDOs accepted into the input buffer
  std::uint64_t processed = 0;      ///< SDOs fully processed
  std::uint64_t emitted = 0;        ///< copies sent downstream / system
                                    ///< outputs for egress PEs
  std::uint64_t dropped_input = 0;  ///< SDOs lost at this PE's full buffer
  double cpu_seconds = 0.0;
};

/// Aggregated results of one run (simulated or threaded), measured over the
/// post-warmup window.
struct RunReport {
  /// Length of the measurement window in seconds.
  Seconds measured_seconds = 0.0;
  /// Σ over egress PEs of weight × output SDOs/sec — the paper's measure of
  /// effectiveness (§III-A).
  double weighted_throughput = 0.0;
  /// Unweighted system output rate, SDOs/sec.
  double output_rate = 0.0;
  /// End-to-end latency (source arrival → egress emission) of output SDOs.
  OnlineStats latency;
  LogHistogram latency_histogram;
  /// SDOs dropped at full internal buffers (wasted upstream processing).
  std::uint64_t internal_drops = 0;
  /// Source SDOs rejected because an ingress buffer was full.
  std::uint64_t ingress_drops = 0;
  /// SDO processing completions across all PEs.
  std::uint64_t sdos_processed = 0;
  /// Fraction of total node CPU capacity consumed.
  double cpu_utilization = 0.0;
  /// Mean buffer occupancy as a fraction of capacity, sampled at ticks.
  OnlineStats buffer_fill;
  /// Output SDO count per egress PE (indexed positionally by egress order),
  /// for per-stream assertions in tests.
  std::vector<std::uint64_t> egress_outputs;
  /// Per-PE lifetime accounting (indexed by PeId); filled by the substrate
  /// after the aggregate metrics.
  std::vector<PeAccounting> per_pe;
  /// Deterministic work totals for the perf trajectory: identical runs must
  /// produce identical values (bench-diff treats any change as a hard
  /// regression). Simulator-only; the threaded runtime leaves them 0.
  std::uint64_t events_executed = 0;  ///< simulator events drained
  std::uint64_t reoptimizations = 0;  ///< tier-1 re-solves during the run
};

}  // namespace aces::metrics
