// Discrete-event simulation engine.
//
// A from-scratch replacement for the C-SIM library the paper used: a
// monotone virtual clock and a time-ordered event queue of callbacks.
// Deterministic: ties in time break by insertion order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace aces::sim {

/// The simulation kernel. Handlers scheduled with schedule_in/schedule_at
/// run in nondecreasing time order; a handler may schedule further events.
class Simulator {
 public:
  using Handler = std::function<void()>;

  [[nodiscard]] Seconds now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Schedules `fn` `delay` seconds from now (delay >= 0).
  void schedule_in(Seconds delay, Handler fn);
  /// Schedules `fn` at absolute time `t` (t >= now()).
  void schedule_at(Seconds t, Handler fn);

  /// Runs events with time <= `end`, then advances the clock to `end`.
  void run_until(Seconds end);
  /// Runs until the queue drains.
  void run_all();

 private:
  struct Event {
    Seconds time;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace aces::sim
