// Discrete-event simulation engine.
//
// A from-scratch replacement for the C-SIM library the paper used: a
// monotone virtual clock and a time-ordered event set of callbacks.
// Deterministic: ties in time break by insertion order.
//
// The event set is an indexed calendar queue (Brown 1988): events hash into
// time buckets of adaptive width, so the common case of a simulation whose
// pending events cluster within a few control intervals dequeues in O(1)
// amortized instead of the O(log n) heap the first implementation used.
// Handlers are aces::InlineFunction, so scheduling an event performs no
// heap allocation for any capture up to kHandlerCapacity bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/inline_function.h"
#include "common/types.h"

namespace aces::sim {

/// The simulation kernel. Handlers scheduled with schedule_in/schedule_at
/// run in nondecreasing time order; a handler may schedule further events.
class Simulator {
 public:
  /// Inline storage for event handlers; the largest simulation capture
  /// (this + a small POD clause) is well under this.
  static constexpr std::size_t kHandlerCapacity = 64;
  using Handler = InlineFunction<kHandlerCapacity>;

  Simulator();

  [[nodiscard]] Seconds now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return size_; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Schedules `fn` `delay` seconds from now (delay >= 0).
  void schedule_in(Seconds delay, Handler fn);
  /// Schedules `fn` at absolute time `t` (t >= now()).
  void schedule_at(Seconds t, Handler fn);

  /// Runs events with time <= `end`, then advances the clock to `end`.
  void run_until(Seconds end);
  /// Runs until the queue drains.
  void run_all();

 private:
  struct Event {
    Seconds time;
    std::uint64_t seq;
    Handler fn;
  };

  [[nodiscard]] std::uint64_t day_of(Seconds t) const {
    return static_cast<std::uint64_t>(t / width_);
  }

  /// Locates the earliest pending event by (time, seq) and re-homes
  /// `current_day_` onto its bucket. Requires size_ > 0. Returns
  /// (bucket index, slot index).
  std::pair<std::size_t, std::size_t> find_min();

  /// Removes the event at (bucket, slot) and returns it.
  Event extract(std::pair<std::size_t, std::size_t> loc);

  /// Rebuilds the calendar with `bucket_count` buckets and a width derived
  /// from the current event population.
  void rebuild(std::size_t bucket_count);

  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t size_ = 0;

  std::vector<std::vector<Event>> buckets_;
  std::size_t bucket_mask_ = 0;   // buckets_.size() - 1 (power of two)
  double width_ = 0.0;            // seconds per bucket
  std::uint64_t current_day_ = 0; // absolute bucket number being drained
};

}  // namespace aces::sim
