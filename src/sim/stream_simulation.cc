#include "sim/stream_simulation.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <utility>
#include <vector>

#include "common/bounded_queue.h"
#include "common/check.h"
#include "common/rng.h"
#include "control/node_controller.h"
#include "fault/fault_injector.h"
#include "metrics/collector.h"
#include "obs/perf.h"
#include "obs/scoped_timer.h"
#include "obs/spans.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "workload/arrivals.h"
#include "workload/markov_modulator.h"

namespace aces::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kWorkEps = 1e-12;
}  // namespace

struct StreamSimulation::Impl {
  struct Sdo {
    Seconds birth;
    /// Span handle when this SDO is traced; -1 otherwise. Fan-out copies
    /// inherit -1: a span follows one root-to-sink path.
    std::int32_t span = -1;
  };

  /// Runtime state of one PE.
  struct PeRt {
    PeId id;
    std::size_t index;             // == id.value()
    std::size_t node_local_index;  // position within pes_on_node()
    std::size_t egress_index;      // position among egress PEs, or npos
    // Fixed-capacity ring sized to the PE's buffer bound: SDO slots are
    // allocated once at construction, never per arrival.
    BoundedQueue<Sdo> buffer;
    int reserved = 0;  // Lock-Step in-flight slot reservations
    bool busy = false;
    bool blocked = false;  // Lock-Step: sleeping on a full downstream buffer
    // Failure-injection depth: > 0 while any outage, stall, or node crash
    // holds this PE inert. A counter, not a flag, so overlapping windows
    // nest instead of clobbering each other.
    int disabled = 0;
    Sdo current{};
    double work_remaining = 0.0;  // CPU-seconds left on `current`
    Seconds last_progress = 0.0;
    double share = 0.0;  // CPU fraction granted at the last tick
    std::uint64_t epoch = 0;
    std::deque<std::pair<std::size_t, Sdo>> pending;  // (downstream slot, sdo)
    double selectivity_credit = 0.0;
    workload::ServiceModel service;
    // Interval counters, reset at each node tick.
    double processed = 0.0;
    double cpu_used = 0.0;
    double arrived = 0.0;
    // Lifetime accounting (never reset).
    std::uint64_t lifetime_arrived = 0;
    std::uint64_t lifetime_processed = 0;
    std::uint64_t lifetime_emitted = 0;
    std::uint64_t lifetime_dropped = 0;
    double lifetime_cpu = 0.0;
    // Trajectory recording; non-null only when record_timeseries is set.
    metrics::TimeSeries* buffer_series = nullptr;
    metrics::TimeSeries* share_series = nullptr;
    /// Latest advertisement received from each downstream PE, aligned with
    /// graph.downstream(id); +inf until the first advertisement lands.
    std::vector<double> downstream_advert;
    /// When each downstream_advert slot was last refreshed (run start counts
    /// as fresh). Drives the advertisement-staleness degradation rule.
    std::vector<Seconds> downstream_advert_time;
    /// For propagating this PE's advertisement: (upstream PE index, slot in
    /// that PE's downstream_advert).
    std::vector<std::pair<std::size_t, std::size_t>> upstream_slots;

    PeRt(PeId pe_id, std::size_t buffer_capacity, workload::ServiceModel svc)
        : id(pe_id),
          index(pe_id.value()),
          node_local_index(0),
          egress_index(static_cast<std::size_t>(-1)),
          buffer(buffer_capacity),
          service(std::move(svc)) {}
  };

  Impl(const graph::ProcessingGraph& g, const opt::AllocationPlan& plan,
       const SimOptions& opt)
      : graph(g),  // private copy: workload/capacity changes mutate it
        options(opt),
        policy(opt.controller.policy),
        collector(opt.warmup, count_egress(g)) {
    ACES_CHECK_MSG(opt.dt > 0.0, "dt must be positive");
    ACES_CHECK_MSG(opt.duration > opt.warmup, "duration must exceed warmup");
    ACES_CHECK_MSG(opt.prefill_fraction >= 0.0 && opt.prefill_fraction <= 1.0,
                   "prefill fraction out of [0,1]");
    ACES_CHECK_MSG(opt.reoptimize_interval >= 0.0,
                   "negative re-optimization interval");
    graph.validate();
    Rng master(opt.seed);

    total_capacity = 0.0;
    for (NodeId n : graph.all_nodes()) total_capacity += graph.node(n).cpu_capacity;

    // PE runtime state.
    pes.reserve(graph.pe_count());
    std::size_t egress_counter = 0;
    for (PeId id : graph.all_pes()) {
      const auto& d = graph.pe(id);
      workload::ServiceModel service(d.service_time[0], d.service_time[1],
                                     d.sojourn_mean[0], d.sojourn_mean[1],
                                     master.fork(0x5E41 + id.value()));
      PeRt rt(id, static_cast<std::size_t>(d.buffer_capacity),
              std::move(service));
      rt.share = plan.at(id).cpu;
      rt.downstream_advert.assign(graph.downstream(id).size(), kInf);
      rt.downstream_advert_time.assign(graph.downstream(id).size(), 0.0);
      if (d.kind == graph::PeKind::kEgress) rt.egress_index = egress_counter++;
      pes.push_back(std::move(rt));
    }
    // Local index within the node + upstream advertisement slots.
    for (NodeId n : graph.all_nodes()) {
      const auto& local = graph.pes_on_node(n);
      for (std::size_t i = 0; i < local.size(); ++i)
        pes[local[i].value()].node_local_index = i;
    }
    for (PeId id : graph.all_pes()) {
      const auto& downs = graph.downstream(id);
      for (std::size_t slot = 0; slot < downs.size(); ++slot) {
        pes[downs[slot].value()].upstream_slots.emplace_back(id.value(), slot);
      }
    }

    // Node controllers (bound to the private graph copy).
    controllers.reserve(graph.node_count());
    for (NodeId n : graph.all_nodes())
      controllers.emplace_back(graph, n, plan, opt.controller);

    // Sources (optionally through the user-supplied arrival factory).
    for (PeId id : graph.all_pes()) {
      const auto& d = graph.pe(id);
      if (d.kind != graph::PeKind::kIngress) continue;
      Rng stream_rng = master.fork(0xA11 + id.value());
      auto process =
          opt.arrival_factory
              ? opt.arrival_factory(d.input_stream,
                                    graph.stream(d.input_stream),
                                    std::move(stream_rng))
              : workload::make_arrival_process(graph.stream(d.input_stream),
                                               std::move(stream_rng));
      ACES_CHECK_MSG(process != nullptr,
                     "arrival factory returned null for stream "
                         << d.input_stream);
      sources.push_back(Source{id.value(), std::move(process)});
    }

    // Trajectory recording.
    if (opt.record_timeseries) {
      for (PeRt& pe : pes) {
        const std::string prefix = "pe" + std::to_string(pe.index);
        pe.buffer_series = &trajectories.series(prefix + ".buffer");
        pe.share_series = &trajectories.series(prefix + ".share");
      }
    }

    // Pre-filled buffers: the "arbitrary starting point" of the stability
    // analysis. Processing begins at time zero.
    if (opt.prefill_fraction > 0.0) {
      for (PeRt& pe : pes) {
        const auto fill = static_cast<std::size_t>(
            opt.prefill_fraction * graph.pe(pe.id).buffer_capacity);
        for (std::size_t k = 0; k < fill; ++k) pe.buffer.push_back(Sdo{0.0});
        pe.lifetime_arrived += fill;
        const std::size_t index = pe.index;
        simulator.schedule_at(0.0, [this, index] { maybe_start(pes[index]); });
      }
    }

    // Prime the event loop: ticks (staggered phases) and first arrivals.
    for (std::size_t n = 0; n < controllers.size(); ++n) {
      const Seconds phase =
          opt.randomize_tick_phase ? master.uniform(0.0, opt.dt) : opt.dt;
      simulator.schedule_in(phase, [this, n] { node_tick(n); });
    }
    for (std::size_t s = 0; s < sources.size(); ++s) {
      simulator.schedule_in(sources[s].process->next_interarrival(),
                            [this, s] { source_arrival(s); });
    }

    // Scheduled workload and capacity shifts.
    change_rng = master.fork(0xC4A);
    for (const RateChange& change : opt.rate_changes) {
      simulator.schedule_at(change.at, [this, change] {
        apply_rate_change(change);
      });
    }
    for (const CapacityChange& change : opt.capacity_changes) {
      simulator.schedule_at(change.at, [this, change] {
        apply_capacity_change(change);
      });
    }

    // Priority shifts.
    for (const WeightChange& change : opt.weight_changes) {
      ACES_CHECK_MSG(change.pe.valid() && change.pe.value() < pes.size(),
                     "weight change references unknown PE");
      ACES_CHECK_MSG(change.new_weight >= 0.0, "negative weight");
      simulator.schedule_at(change.at, [this, change] {
        graph.pe(change.pe).weight = change.new_weight;
      });
    }

    // Failure injection.
    for (const PeOutage& outage : opt.outages) {
      ACES_CHECK_MSG(outage.pe.valid() && outage.pe.value() < pes.size(),
                     "outage references unknown PE");
      ACES_CHECK_MSG(outage.until > outage.from, "outage must end after start");
      simulator.schedule_at(outage.from, [this, outage] {
        PeRt& pe = pes[outage.pe.value()];
        progress(pe);
        ++pe.disabled;
        pe.share = 0.0;  // halts the in-flight SDO; work resumes on recovery
        ++pe.epoch;
      });
      simulator.schedule_at(outage.until, [this, outage] {
        PeRt& pe = pes[outage.pe.value()];
        --pe.disabled;
        // Shares return at the node's next tick; restart service then.
      });
    }

    // Declarative fault schedule (fault::FaultInjector).
    if (!opt.faults.empty()) {
      fault::validate(opt.faults, graph);
      injector = std::make_unique<fault::FaultInjector>(
          opt.faults, opt.seed, graph.pe_count(), opt.counters);
      node_down.assign(graph.node_count(), 0);
      for (const fault::NodeCrash& c : opt.faults.crashes) {
        simulator.schedule_at(c.at, [this, c] { crash_node(c.node); });
        simulator.schedule_at(c.until, [this, c] { restart_node(c.node); });
      }
      for (const fault::PeStall& s : opt.faults.stalls) {
        simulator.schedule_at(s.at, [this, s] {
          PeRt& pe = pes[s.pe.value()];
          progress(pe);
          ++pe.disabled;
          pe.share = 0.0;
          ++pe.epoch;
          injector->note_pe_stall();
          if (options.spans != nullptr) {
            options.spans->fault_dump("fault.pe_stall", simulator.now());
          }
        });
        simulator.schedule_at(s.at + s.duration, [this, s] {
          --pes[s.pe.value()].disabled;
        });
      }
    }

    // Periodic tier-1 re-optimization (paper §V: the first tier runs
    // "periodically, to support changing workload and resource
    // availability").
    if (opt.reoptimize_interval > 0.0) {
      simulator.schedule_in(opt.reoptimize_interval, [this] { reoptimize(); });
    }
  }

  void apply_rate_change(const RateChange& change) {
    graph.stream(change.stream).mean_rate = change.new_rate;
    // Rebuild the arrival process of every source fed by this stream; the
    // next already-scheduled arrival still fires and then draws gaps from
    // the new process.
    for (Source& source : sources) {
      const auto& d = graph.pe(PeId(static_cast<PeId::value_type>(
          source.pe_index)));
      if (d.input_stream != change.stream) continue;
      Rng stream_rng = change_rng.fork(source.pe_index);
      source.process =
          options.arrival_factory
              ? options.arrival_factory(change.stream,
                                        graph.stream(change.stream),
                                        std::move(stream_rng))
              : workload::make_arrival_process(graph.stream(change.stream),
                                               std::move(stream_rng));
    }
  }

  void apply_capacity_change(const CapacityChange& change) {
    graph.node(change.node).cpu_capacity = change.new_capacity;
    controllers[change.node.value()].set_capacity(change.new_capacity);
    // total_capacity feeds the utilization metric; keep it current from
    // this point on (utilization becomes an approximation across a change,
    // which the reports tolerate).
    total_capacity = 0.0;
    for (NodeId n : graph.all_nodes())
      total_capacity += graph.node(n).cpu_capacity;
  }

  [[nodiscard]] bool down(std::size_t node_index) const {
    return node_index < node_down.size() && node_down[node_index] > 0;
  }

  [[nodiscard]] std::vector<NodeId> down_nodes() const {
    std::vector<NodeId> failed;
    for (std::size_t n = 0; n < node_down.size(); ++n) {
      if (node_down[n] > 0)
        failed.push_back(NodeId(static_cast<NodeId::value_type>(n)));
    }
    return failed;
  }

  /// A node crashes: everything buffered, in service, or pending on it is
  /// lost, its PEs go inert, and — with tier 1 active — the global plan is
  /// re-solved without it so survivors inherit its utility.
  void crash_node(NodeId node) {
    if (++node_down[node.value()] > 1) return;  // nested crash window
    const Seconds now = simulator.now();
    // Post-mortem first: the dump must capture the doomed SDOs while their
    // spans still read as in-flight.
    if (options.spans != nullptr) {
      options.spans->fault_dump("fault.node_crash", now);
    }
    std::uint64_t lost = 0;
    for (PeId id : graph.pes_on_node(node)) {
      PeRt& pe = pes[id.value()];
      progress(pe);
      const std::uint64_t pe_lost =
          pe.buffer.size() + (pe.busy ? 1 : 0) + pe.pending.size();
      lost += pe_lost;
      pe.lifetime_dropped += pe_lost;
      for (std::uint64_t k = 0; k < pe_lost; ++k)
        collector.on_internal_drop(now);
      if (options.spans != nullptr) {
        for (std::size_t k = 0; k < pe.buffer.size(); ++k)
          options.spans->drop(pe.buffer.at(k).span, now);
        if (pe.busy) options.spans->drop(pe.current.span, now);
        for (const auto& [slot, sdo] : pe.pending)
          options.spans->drop(sdo.span, now);
      }
      pe.buffer.clear();
      pe.pending.clear();
      pe.busy = false;
      pe.blocked = false;
      pe.work_remaining = 0.0;
      pe.share = 0.0;
      ++pe.disabled;
      ++pe.epoch;
    }
    injector->note_node_crash(lost);
    // Lock-Step senders sleeping on this node's buffers may resume; their
    // sends will be dropped at delivery while the node is down.
    for (PeId id : graph.pes_on_node(node)) wake_upstream(pes[id.value()]);
    if (options.reoptimize_interval > 0.0) solve_and_push();
  }

  /// The crashed node returns with drained buffers and factory-fresh
  /// controller state, and tier 1 folds it back into the plan.
  void restart_node(NodeId node) {
    if (--node_down[node.value()] > 0) return;
    for (PeId id : graph.pes_on_node(node)) {
      PeRt& pe = pes[id.value()];
      --pe.disabled;
      ++pe.epoch;
      pe.last_progress = simulator.now();
    }
    controllers[node.value()].reset_state();
    injector->note_node_restart();
    // Backstop: any sender still sleeping on this node's buffers flushes
    // into the drained (now live) buffers immediately.
    for (PeId id : graph.pes_on_node(node)) wake_upstream(pes[id.value()]);
    if (options.reoptimize_interval > 0.0) solve_and_push();
  }

  /// One tier-1 solve (excluding currently-down nodes) pushed to every
  /// controller.
  void solve_and_push() {
    opt::AllocationPlan plan;
    {
      obs::ScopedTimer timer(options.profiler, obs::kPhaseOptimizerSolve);
      ACES_PERF_SCOPE(PerfStage::kOptimizerSolve);
      plan = opt::optimize_excluding(graph, down_nodes(), options.optimizer);
    }
    for (auto& controller : controllers) controller.set_plan(plan);
    ++reoptimization_count;
  }

  void reoptimize() {
    solve_and_push();
    simulator.schedule_in(options.reoptimize_interval,
                          [this] { reoptimize(); });
  }

  static std::size_t count_egress(const graph::ProcessingGraph& g) {
    std::size_t count = 0;
    for (PeId id : g.all_pes())
      if (g.pe(id).kind == graph::PeKind::kEgress) ++count;
    return count;
  }

  [[nodiscard]] Seconds transport_latency(std::size_t from,
                                          std::size_t to) const {
    const bool same_node =
        graph.pe(PeId(static_cast<PeId::value_type>(from))).node ==
        graph.pe(PeId(static_cast<PeId::value_type>(to))).node;
    return same_node ? options.local_latency : options.network_latency;
  }

  /// Accrues CPU progress on the in-flight SDO up to the current instant.
  void progress(PeRt& pe) {
    const Seconds now = simulator.now();
    if (pe.busy && pe.share > 0.0) {
      double done = (now - pe.last_progress) * pe.share;
      done = std::min(done, pe.work_remaining);
      pe.work_remaining -= done;
      pe.cpu_used += done;
      pe.lifetime_cpu += done;
    }
    pe.last_progress = now;
  }

  void schedule_completion(PeRt& pe) {
    ACES_CHECK(pe.busy && pe.share > 0.0);
    const std::uint64_t epoch = pe.epoch;
    const std::size_t index = pe.index;
    simulator.schedule_in(pe.work_remaining / pe.share,
                          [this, index, epoch] { on_completion(index, epoch); });
  }

  /// Free slots in a PE's buffer from a Lock-Step sender's point of view.
  [[nodiscard]] bool has_space_for_send(const PeRt& pe) const {
    return static_cast<int>(pe.buffer.size()) + pe.reserved <
           graph.pe(pe.id).buffer_capacity;
  }

  void maybe_start(PeRt& pe) {
    if (pe.busy || pe.blocked || pe.disabled || pe.buffer.empty() ||
        pe.share <= 0.0)
      return;
    pe.current = pe.buffer.front();
    pe.buffer.pop_front();
    if (options.spans != nullptr) {
      options.spans->on_dequeue(pe.current.span, simulator.now());
    }
    pe.busy = true;
    pe.work_remaining = pe.service.cost_at(simulator.now());
    pe.last_progress = simulator.now();
    ++pe.epoch;
    schedule_completion(pe);
    if (policy == control::FlowPolicy::kLockStep) wake_upstream(pe);
  }

  void on_completion(std::size_t index, std::uint64_t epoch) {
    PeRt& pe = pes[index];
    if (epoch != pe.epoch || !pe.busy) return;  // superseded by a tick
    progress(pe);
    if (pe.work_remaining > kWorkEps) {  // numeric drift: finish the residue
      schedule_completion(pe);
      return;
    }
    finish_current(pe);
  }

  void finish_current(PeRt& pe) {
    const Seconds now = simulator.now();
    pe.busy = false;
    pe.processed += 1.0;
    ++pe.lifetime_processed;
    collector.on_processed(now);

    // Credit-conserving realization of the fractional selectivity.
    const auto& d = graph.pe(pe.id);
    pe.selectivity_credit += d.selectivity;
    const int outputs = static_cast<int>(std::floor(pe.selectivity_credit));
    pe.selectivity_credit -= outputs;

    if (options.spans != nullptr) {
      options.spans->on_emit(pe.current.span, now);
    }
    if (d.kind == graph::PeKind::kEgress) {
      pe.lifetime_emitted += static_cast<std::uint64_t>(outputs);
      for (int k = 0; k < outputs; ++k) {
        collector.on_egress_output(now, pe.egress_index, d.weight,
                                   now - pe.current.birth);
      }
      if (options.spans != nullptr) {
        options.spans->complete(pe.current.span, now);
      }
    } else if (outputs > 0) {
      const auto& downs = graph.downstream(pe.id);
      // The span continues into the first downstream copy only, keeping
      // each trace a single root-to-sink path under fan-out/selectivity.
      std::int32_t span = pe.current.span;
      for (std::size_t slot = 0; slot < downs.size(); ++slot) {
        for (int k = 0; k < outputs; ++k) {
          send(pe, slot, Sdo{pe.current.birth, span});
          span = -1;
        }
      }
    } else if (options.spans != nullptr) {
      // Selectivity absorbed the SDO: the trace legitimately ends at this
      // PE, a complete path of its own.
      options.spans->complete(pe.current.span, now);
    }
    if (!pe.blocked) maybe_start(pe);
  }

  /// Emits one SDO on downstream slot `slot` of `pe`, honouring the policy's
  /// full-buffer semantics.
  void send(PeRt& pe, std::size_t slot, Sdo sdo) {
    ++pe.lifetime_emitted;
    const std::size_t target = graph.downstream(pe.id)[slot].value();
    if (policy == control::FlowPolicy::kLockStep) {
      PeRt& t = pes[target];
      if (has_space_for_send(t)) {
        ++t.reserved;
        const Seconds latency = transport_latency(pe.index, target);
        simulator.schedule_in(latency, [this, target, sdo] {
          deliver_reserved(target, sdo);
        });
      } else {
        pe.pending.emplace_back(slot, sdo);
        pe.blocked = true;  // min-flow: sleep until space frees
      }
      return;
    }
    // ACES / UDP: fire and (maybe) forget — drop resolves at delivery time.
    const Seconds latency = transport_latency(pe.index, target);
    simulator.schedule_in(latency,
                          [this, target, sdo] { deliver(target, sdo); });
  }

  /// Injected loss on a delivery into `pe`: the hosting node is down, or a
  /// drop burst eats it. Counts as an internal drop either way.
  [[nodiscard]] bool fault_drops_delivery(PeRt& pe) {
    if (injector == nullptr) return false;
    return down(graph.pe(pe.id).node.value()) ||
           injector->drop_delivery(pe.id, simulator.now());
  }

  void deliver(std::size_t target, Sdo sdo) {
    PeRt& pe = pes[target];
    if (fault_drops_delivery(pe)) {
      ++pe.lifetime_dropped;
      collector.on_internal_drop(simulator.now());
      if (options.spans != nullptr) options.spans->drop(sdo.span, simulator.now());
      return;
    }
    if (static_cast<int>(pe.buffer.size()) >=
        graph.pe(pe.id).buffer_capacity) {
      ACES_PERF_COUNT(PerfEvent::kBufferPoolMiss);
      ++pe.lifetime_dropped;
      collector.on_internal_drop(simulator.now());
      if (options.spans != nullptr) options.spans->drop(sdo.span, simulator.now());
      return;
    }
    if (options.spans != nullptr) {
      options.spans->on_enqueue(sdo.span, pe.id, simulator.now());
    }
    ACES_PERF_COUNT(PerfEvent::kBufferPoolHit);
    pe.buffer.push_back(sdo);
    pe.arrived += 1.0;
    ++pe.lifetime_arrived;
    maybe_start(pe);
  }

  void deliver_reserved(std::size_t target, Sdo sdo) {
    PeRt& pe = pes[target];
    --pe.reserved;
    ACES_CHECK_MSG(pe.reserved >= 0, "reservation accounting underflow");
    if (fault_drops_delivery(pe)) {
      ++pe.lifetime_dropped;
      collector.on_internal_drop(simulator.now());
      if (options.spans != nullptr) options.spans->drop(sdo.span, simulator.now());
      // The freed slot must wake blocked senders just like a pop would,
      // or a dead consumer wedges its Lock-Step producers forever.
      wake_upstream(pe);
      return;
    }
    if (options.spans != nullptr) {
      options.spans->on_enqueue(sdo.span, pe.id, simulator.now());
    }
    ACES_PERF_COUNT(PerfEvent::kBufferPoolHit);
    pe.buffer.push_back(sdo);
    pe.arrived += 1.0;
    ++pe.lifetime_arrived;
    maybe_start(pe);
  }

  /// Lock-Step: a slot freed at `pe` — let blocked upstream senders flush.
  void wake_upstream(PeRt& pe) {
    for (PeId up : graph.upstream(pe.id)) {
      PeRt& u = pes[up.value()];
      if (u.blocked) try_flush(u);
    }
  }

  void try_flush(PeRt& pe) {
    while (!pe.pending.empty()) {
      const auto [slot, sdo] = pe.pending.front();
      const std::size_t target = graph.downstream(pe.id)[slot].value();
      PeRt& t = pes[target];
      if (!has_space_for_send(t)) return;  // still blocked
      ++t.reserved;
      const Seconds latency = transport_latency(pe.index, target);
      simulator.schedule_in(latency, [this, target, sdo] {
        deliver_reserved(target, sdo);
      });
      pe.pending.pop_front();
    }
    pe.blocked = false;
    maybe_start(pe);
  }

  void source_arrival(std::size_t source_index) {
    Source& src = sources[source_index];
    PeRt& pe = pes[src.pe_index];
    if (fault_drops_delivery(pe)) {
      ++pe.lifetime_dropped;
      collector.on_ingress_drop(simulator.now());
      simulator.schedule_in(src.process->next_interarrival(),
                            [this, source_index] {
                              source_arrival(source_index);
                            });
      return;
    }
    const bool full =
        policy == control::FlowPolicy::kLockStep
            ? !has_space_for_send(pe)
            : static_cast<int>(pe.buffer.size()) >=
                  graph.pe(pe.id).buffer_capacity;
    if (full) {
      ACES_PERF_COUNT(PerfEvent::kBufferPoolMiss);
      ++pe.lifetime_dropped;
      collector.on_ingress_drop(simulator.now());
    } else {
      Sdo sdo{simulator.now()};
      if (options.spans != nullptr) {
        sdo.span = options.spans->begin(pe.id, sdo.birth);
        options.spans->on_enqueue(sdo.span, pe.id, sdo.birth);
      }
      ACES_PERF_COUNT(PerfEvent::kBufferPoolHit);
      pe.buffer.push_back(sdo);
      pe.arrived += 1.0;
      ++pe.lifetime_arrived;
      maybe_start(pe);
    }
    simulator.schedule_in(src.process->next_interarrival(),
                          [this, source_index] { source_arrival(source_index); });
  }

  void node_tick(std::size_t node_index) {
    const Seconds now = simulator.now();
    control::NodeController& controller = controllers[node_index];
    const auto& local = controller.local_pes();

    // A crashed node's controller is dead air: no ticks, no advertisements
    // (upstream peers watch ours go stale), just the eventual restart.
    if (down(node_index)) {
      simulator.schedule_in(options.dt,
                            [this, node_index] { node_tick(node_index); });
      return;
    }

    // UDP/Lock-Step never propagate advertisements, so their slots would
    // all read as stale; gate the clamp on the same condition as the
    // propagation below or healthy baselines trace rmax=0 + a fault flag.
    const Seconds staleness = control::uses_flow_control(policy)
                                  ? options.controller.advert_staleness_timeout
                                  : 0.0;
    std::vector<control::PeTickInput> inputs(local.size());
    for (std::size_t i = 0; i < local.size(); ++i) {
      PeRt& pe = pes[local[i].value()];
      progress(pe);
      control::PeTickInput& in = inputs[i];
      in.buffer_occupancy = static_cast<double>(pe.buffer.size());
      in.processed_sdos = pe.processed;
      in.cpu_seconds_used = pe.cpu_used;
      in.arrived_sdos = pe.arrived;
      in.output_blocked = pe.blocked;
      in.downstream_rmax = -kInf;
      if (pe.downstream_advert.empty()) {
        in.downstream_rmax = kInf;  // egress: unconstrained (Eq. 8 vacuous)
      } else {
        Seconds freshest = -kInf;
        for (std::size_t slot = 0; slot < pe.downstream_advert.size();
             ++slot) {
          // Per-slot staleness: a consumer silent past the timeout reads as
          // r_max = 0 in the Eq. 8 max, so one live consumer still governs.
          const bool stale =
              staleness > 0.0 &&
              now - pe.downstream_advert_time[slot] > staleness;
          in.downstream_rmax = std::max(
              in.downstream_rmax, stale ? 0.0 : pe.downstream_advert[slot]);
          freshest = std::max(freshest, pe.downstream_advert_time[slot]);
        }
        in.downstream_advert_age = now - freshest;
      }
    }

    std::vector<control::PeTickOutput> outputs;
    {
      obs::ScopedTimer timer(options.profiler, obs::kPhaseControllerTick);
      ACES_PERF_SCOPE(PerfStage::kControllerTick);
      outputs = controller.tick(options.dt, inputs);
    }

    for (std::size_t i = 0; i < local.size(); ++i) {
      PeRt& pe = pes[local[i].value()];
      const auto& d = graph.pe(pe.id);
      if (options.trace != nullptr) {
        obs::TickRecord rec;
        rec.time = now;
        rec.node = controller.node().value();
        rec.pe = static_cast<std::uint32_t>(pe.index);
        rec.buffer_occupancy = inputs[i].buffer_occupancy;
        rec.arrived_sdos = inputs[i].arrived_sdos;
        rec.processed_sdos = inputs[i].processed_sdos;
        rec.cpu_share = pe.disabled ? 0.0 : outputs[i].cpu_share;
        rec.cpu_seconds_used = inputs[i].cpu_seconds_used;
        rec.advertised_rmax = outputs[i].advertised_rmax;
        rec.downstream_rmax = inputs[i].downstream_rmax;
        rec.token_fill = controller.tokens(i);
        rec.output_blocked = inputs[i].output_blocked;
        rec.dropped_total = pe.lifetime_dropped;
        if (injector != nullptr && injector->pe_stalled(pe.id, now)) {
          rec.fault_flags |= obs::kFaultPeStalled;
        }
        if (staleness > 0.0 && !pe.downstream_advert.empty() &&
            inputs[i].downstream_advert_age > staleness) {
          rec.fault_flags |= obs::kFaultAdvertStale;
        }
        options.trace->record(rec);
      }
      collector.on_cpu_used(now, pe.cpu_used);
      collector.on_buffer_sample(now,
                                 static_cast<double>(pe.buffer.size()) /
                                     static_cast<double>(d.buffer_capacity));
      if (pe.buffer_series != nullptr) {
        pe.buffer_series->append(now, static_cast<double>(pe.buffer.size()));
        pe.share_series->append(now, outputs[i].cpu_share);
      }
      pe.processed = pe.cpu_used = pe.arrived = 0.0;

      const double granted = pe.disabled ? 0.0 : outputs[i].cpu_share;
      if (granted != pe.share) {
        pe.share = granted;
        ++pe.epoch;
        if (pe.busy && pe.share > 0.0) schedule_completion(pe);
      }
      if (!pe.busy) maybe_start(pe);

      // Propagate advertisements upstream with transport latency (ACES and
      // Threshold; an XON advertisement of +inf must travel too, or a gated
      // upstream would never resume).
      if (control::uses_flow_control(policy)) {
        const double rmax = outputs[i].advertised_rmax;
        // Injected control-plane degradation: the advertisement this PE
        // emits at this tick is lost as one event (all upstream copies), or
        // delayed on top of the transport latency.
        Seconds extra_latency = 0.0;
        if (injector != nullptr && !pe.upstream_slots.empty()) {
          if (injector->advert_lost(pe.id, now)) continue;
          extra_latency = injector->advert_delay(pe.id, now);
        }
        for (const auto& [up_index, slot] : pe.upstream_slots) {
          const Seconds latency =
              transport_latency(pe.index, up_index) + extra_latency;
          simulator.schedule_in(latency, [this, up_index, slot, rmax] {
            pes[up_index].downstream_advert[slot] = rmax;
            pes[up_index].downstream_advert_time[slot] = simulator.now();
          });
        }
      }
    }
    simulator.schedule_in(options.dt, [this, node_index] { node_tick(node_index); });
  }

  struct Source {
    std::size_t pe_index;
    std::unique_ptr<workload::ArrivalProcess> process;
  };

  graph::ProcessingGraph graph;  // private copy; dynamic events mutate it
  SimOptions options;
  control::FlowPolicy policy;
  metrics::Collector collector;
  Simulator simulator;
  std::vector<PeRt> pes;
  std::vector<control::NodeController> controllers;
  std::vector<Source> sources;
  double total_capacity = 0.0;
  metrics::TimeSeriesSet trajectories;
  Rng change_rng;
  int reoptimization_count = 0;
  /// Non-null iff SimOptions::faults is non-empty.
  std::unique_ptr<fault::FaultInjector> injector;
  /// Crash-window nesting depth per node; sized only when faults are active.
  std::vector<int> node_down;
};

StreamSimulation::StreamSimulation(const graph::ProcessingGraph& graph,
                                   const opt::AllocationPlan& plan,
                                   const SimOptions& options)
    : impl_(std::make_unique<Impl>(graph, plan, options)) {}

StreamSimulation::~StreamSimulation() = default;

void StreamSimulation::run() { run_until(impl_->options.duration); }

void StreamSimulation::run_until(Seconds t) { impl_->simulator.run_until(t); }

metrics::RunReport StreamSimulation::report() const {
  metrics::RunReport report = impl_->collector.finalize(
      impl_->simulator.now(), impl_->total_capacity);
  report.per_pe.reserve(impl_->pes.size());
  for (const auto& pe : impl_->pes) {
    metrics::PeAccounting acc;
    acc.arrived = pe.lifetime_arrived;
    acc.processed = pe.lifetime_processed;
    acc.emitted = pe.lifetime_emitted;
    acc.dropped_input = pe.lifetime_dropped;
    acc.cpu_seconds = pe.lifetime_cpu;
    report.per_pe.push_back(acc);
  }
  report.events_executed = impl_->simulator.executed();
  report.reoptimizations =
      static_cast<std::uint64_t>(impl_->reoptimization_count);
  return report;
}

Seconds StreamSimulation::now() const { return impl_->simulator.now(); }

std::size_t StreamSimulation::buffer_size(PeId id) const {
  return impl_->pes.at(id.value()).buffer.size();
}

double StreamSimulation::cpu_share(PeId id) const {
  return impl_->pes.at(id.value()).share;
}

double StreamSimulation::last_advertisement(PeId id) const {
  // The freshest advertisement this PE computed is tracked by its upstream
  // peers; report the value stored in any upstream slot, or +inf if none.
  const auto& pe = impl_->pes.at(id.value());
  if (pe.upstream_slots.empty()) return std::numeric_limits<double>::infinity();
  const auto& [up_index, slot] = pe.upstream_slots.front();
  return impl_->pes.at(up_index).downstream_advert.at(slot);
}

std::uint64_t StreamSimulation::events_executed() const {
  return impl_->simulator.executed();
}

PeStats StreamSimulation::pe_stats(PeId id) const {
  const auto& pe = impl_->pes.at(id.value());
  PeStats stats;
  stats.arrived = pe.lifetime_arrived;
  stats.processed = pe.lifetime_processed;
  stats.emitted = pe.lifetime_emitted;
  stats.dropped_input = pe.lifetime_dropped;
  stats.cpu_seconds = pe.lifetime_cpu;
  stats.in_buffer = pe.buffer.size();
  stats.busy = pe.busy;
  stats.blocked = pe.blocked;
  stats.reserved = pe.reserved;
  return stats;
}

const metrics::TimeSeriesSet& StreamSimulation::timeseries() const {
  return impl_->trajectories;
}

int StreamSimulation::reoptimizations() const {
  return impl_->reoptimization_count;
}

metrics::RunReport simulate(const graph::ProcessingGraph& graph,
                            const opt::AllocationPlan& plan,
                            const SimOptions& options) {
  StreamSimulation sim(graph, plan, options);
  sim.run();
  return sim.report();
}

}  // namespace aces::sim
