// Full-system simulation of a distributed stream processing system
// (paper §VI-A/B), driven by the discrete-event kernel in sim/simulator.h.
//
// Model:
//  * Sources emit SDOs into ingress PE buffers per their arrival process;
//    sources are never backpressured, so a full ingress buffer means data
//    loss at the system input (§III-D).
//  * Each PE serves its bounded input buffer one SDO at a time; the per-SDO
//    CPU cost follows the two-state Markov service model (§VI-B) and the
//    instantaneous speed is the CPU share granted by the node controller at
//    the last tick. Completions emit `selectivity` SDOs (credit-conserving
//    rounding) to every downstream PE (copy semantics, Fig. 2).
//  * Transport: deliveries and advertisements incur a same-node or
//    cross-node latency. Under ACES/UDP a delivery into a full buffer is
//    dropped (wasted upstream work); under Lock-Step senders reserve space
//    and sleep when a downstream buffer is full (min-flow), resuming when
//    space frees.
//  * Every `dt`, each node's controller (control::NodeController) reruns CPU
//    and flow control; ACES advertisements propagate upstream with latency.
//
// Determinism: all randomness derives from SimOptions::seed; ties in event
// time resolve by schedule order.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "control/config.h"
#include "fault/fault_spec.h"
#include "graph/processing_graph.h"
#include "metrics/run_report.h"
#include "metrics/timeseries.h"
#include "opt/global_optimizer.h"
#include "workload/arrivals.h"

namespace aces::obs {
class ControlTraceRecorder;
class CounterRegistry;
class PhaseProfiler;
class SpanTracer;
}  // namespace aces::obs

namespace aces::sim {

/// A scheduled change to a stream's long-run offered rate (workload shift).
struct RateChange {
  Seconds at = 0.0;
  StreamId stream;
  double new_rate = 0.0;
};

/// A scheduled change to a node's CPU capacity (resource availability
/// shift, e.g. co-scheduled work arriving or leaving).
struct CapacityChange {
  Seconds at = 0.0;
  NodeId node;
  double new_capacity = 1.0;
};

/// A scheduled change of a PE's weight (paper §II: the meta scheduler may
/// re-prioritize jobs while they run). Affects the weighted-throughput
/// accounting immediately and the tier-1 plan at the next re-optimization.
struct WeightChange {
  Seconds at = 0.0;
  PeId pe;
  double new_weight = 1.0;
};

/// A scheduled outage of one PE: from `from` to `until` it processes
/// nothing (its CPU share is forced to zero); arrivals keep queueing and
/// overflow per the policy's semantics. Models the crash/termination events
/// that trigger tier-1 re-optimization in the paper ("when PEs are deployed
/// or terminate").
struct PeOutage {
  Seconds from = 0.0;
  Seconds until = 0.0;
  PeId pe;
};

struct SimOptions {
  /// Control interval Δt (paper: sub-second; default 100 ms).
  Seconds dt = 0.1;
  /// Total simulated time.
  Seconds duration = 60.0;
  /// Measurements start after this transient.
  Seconds warmup = 10.0;
  /// One-way delivery latency for SDOs and advertisements between nodes.
  Seconds network_latency = 0.002;
  /// Same for co-located PEs.
  Seconds local_latency = 0.0002;
  /// Tier-2 controller configuration (policy lives here).
  control::ControllerConfig controller;
  std::uint64_t seed = 1;
  /// Stagger node ticks with random phases (the paper's algorithm does not
  /// require synchronized nodes); disable for lockstep-tick unit tests.
  bool randomize_tick_phase = true;
  /// Start every input buffer at this fraction of capacity, filled with
  /// age-zero SDOs — the "arbitrary starting point" of the paper's
  /// stability analysis (§V-E).
  double prefill_fraction = 0.0;
  /// Record per-PE occupancy/share trajectories (see timeseries()).
  bool record_timeseries = false;
  /// Tier-1 period: re-run the global optimization every this many seconds
  /// against the current stream rates and node capacities, and push the new
  /// targets to every node controller (paper §V: the first tier runs
  /// "periodically, to support changing workload and resource
  /// availability"). 0 disables.
  Seconds reoptimize_interval = 0.0;
  /// Optimizer configuration used by periodic re-optimization.
  opt::OptimizerConfig optimizer;
  /// Scheduled workload shifts (sorted or not; applied at their times).
  std::vector<RateChange> rate_changes;
  /// Scheduled capacity shifts.
  std::vector<CapacityChange> capacity_changes;
  /// Scheduled PE outages (failure injection).
  std::vector<PeOutage> outages;
  /// Scheduled priority shifts.
  std::vector<WeightChange> weight_changes;
  /// Optional workload hook: builds the arrival process for each stream
  /// (trace replay, custom distributions). Null uses
  /// workload::make_arrival_process on the stream descriptor. The Rng is
  /// the per-stream generator derived from `seed`.
  std::function<std::unique_ptr<workload::ArrivalProcess>(
      StreamId, const graph::StreamDescriptor&, Rng)>
      arrival_factory;
  /// Optional control-plane telemetry sink: one obs::TickRecord per PE per
  /// control tick, captured at the NodeController::tick() boundary. Not
  /// owned; must outlive the run. Null disables tracing (zero cost).
  obs::ControlTraceRecorder* trace = nullptr;
  /// Optional self-profiling sink for controller-tick and optimizer-solve
  /// durations. Not owned; null disables (no clock reads).
  obs::PhaseProfiler* profiler = nullptr;
  /// Declarative fault schedule (node crashes, PE stalls, advertisement
  /// loss/delay, delivery drop bursts), executed by a seeded
  /// fault::FaultInjector. Empty (the default) injects nothing. Same seed +
  /// schedule reproduces the same faults bit-for-bit. Node crashes trigger
  /// an immediate tier-1 re-solve excluding the down nodes when
  /// `reoptimize_interval` > 0.
  fault::FaultSchedule faults;
  /// Optional counter sink for fault.* event counts (and parity with the
  /// runtime's counter option). Not owned; null disables.
  obs::CounterRegistry* counters = nullptr;
  /// Optional data-plane span tracer: samples SDOs at the sources and
  /// follows them hop by hop (per-PE wait/service, per-path end-to-end,
  /// flight recorder). Not owned; must outlive the run. Null disables —
  /// the per-SDO cost is then a single pointer test. Tracing never alters
  /// event order: traced and untraced runs produce identical RunReports.
  obs::SpanTracer* spans = nullptr;
};

/// Lifetime accounting for one PE (conservation analysis in tests).
struct PeStats {
  std::uint64_t arrived = 0;        ///< SDOs accepted into the input buffer
  std::uint64_t processed = 0;      ///< SDOs fully processed
  std::uint64_t emitted = 0;        ///< SDO copies sent downstream, or
                                    ///< system outputs for egress PEs
  std::uint64_t dropped_input = 0;  ///< copies lost at THIS PE's full buffer
  double cpu_seconds = 0.0;
  std::uint64_t in_buffer = 0;      ///< occupancy at query time
  bool busy = false;                ///< one SDO in service at query time
  /// Lock-Step: sleeping on a full downstream buffer at query time. A
  /// blocked PE whose downstream buffers all have free space is a lost
  /// wakeup — the liveness invariant the fault fuzzer checks.
  bool blocked = false;
  /// Lock-Step: in-flight reservations against this PE's buffer.
  int reserved = 0;
};

/// One simulated run. Construct, run(), collect the report; or drive
/// incrementally with run_until() and inspect state (tests do this).
class StreamSimulation {
 public:
  StreamSimulation(const graph::ProcessingGraph& graph,
                   const opt::AllocationPlan& plan, const SimOptions& options);
  ~StreamSimulation();
  StreamSimulation(const StreamSimulation&) = delete;
  StreamSimulation& operator=(const StreamSimulation&) = delete;

  /// Runs the full configured duration.
  void run();
  /// Advances simulated time to `t`.
  void run_until(Seconds t);

  /// Report over [warmup, now]; requires now > warmup.
  [[nodiscard]] metrics::RunReport report() const;

  [[nodiscard]] Seconds now() const;
  /// Introspection for tests.
  [[nodiscard]] std::size_t buffer_size(PeId id) const;
  [[nodiscard]] double cpu_share(PeId id) const;
  [[nodiscard]] double last_advertisement(PeId id) const;
  [[nodiscard]] std::uint64_t events_executed() const;
  /// Lifetime accounting for one PE.
  [[nodiscard]] PeStats pe_stats(PeId id) const;
  /// Recorded trajectories ("pe<j>.buffer", "pe<j>.share"); empty unless
  /// SimOptions::record_timeseries was set.
  [[nodiscard]] const metrics::TimeSeriesSet& timeseries() const;
  /// Number of tier-1 re-optimizations performed so far.
  [[nodiscard]] int reoptimizations() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience wrapper: construct, run, report.
metrics::RunReport simulate(const graph::ProcessingGraph& graph,
                            const opt::AllocationPlan& plan,
                            const SimOptions& options);

}  // namespace aces::sim
