#include "sim/simulator.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"
#include "obs/perf.h"

namespace aces::sim {

namespace {
constexpr std::size_t kInitialBuckets = 32;  // power of two
constexpr double kInitialWidth = 0.01;       // one control tick order
constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

/// Total event order: earliest time first, schedule order on ties.
bool earlier(Seconds at, std::uint64_t as, Seconds bt, std::uint64_t bs) {
  if (at != bt) return at < bt;
  return as < bs;
}
}  // namespace

Simulator::Simulator()
    : buckets_(kInitialBuckets),
      bucket_mask_(kInitialBuckets - 1),
      width_(kInitialWidth) {}

void Simulator::schedule_in(Seconds delay, Handler fn) {
  ACES_CHECK_MSG(delay >= 0.0, "cannot schedule into the past");
  schedule_at(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(Seconds t, Handler fn) {
  ACES_PERF_SCOPE(PerfStage::kCalendarInsert);
  ACES_CHECK_MSG(t >= now_, "cannot schedule into the past");
  if (size_ + 1 > 2 * buckets_.size()) rebuild(buckets_.size() * 2);
  const std::uint64_t day = day_of(t);
  // Keep the drain cursor's invariant (current_day_ <= every pending
  // event's day): the cursor may sit arbitrarily far ahead after skipping
  // empty days, while t >= now_ only bounds the new event from below.
  if (size_ == 0 || day < current_day_) current_day_ = day;
  buckets_[day & bucket_mask_].push_back(Event{t, next_seq_++, std::move(fn)});
  ++size_;
}

std::pair<std::size_t, std::size_t> Simulator::find_min() {
  ACES_PERF_SCOPE(PerfStage::kCalendarDrain);
  // Fast path: drain the calendar day by day. Every pending event lives on
  // day >= current_day_, and all of day d precedes all of day d+1, so the
  // first day with a resident event holds the global minimum.
  for (std::size_t rounds = 0; rounds < buckets_.size(); ++rounds) {
    const std::size_t b = current_day_ & bucket_mask_;
    const std::vector<Event>& bucket = buckets_[b];
    std::size_t best = kNoSlot;
    for (std::size_t k = 0; k < bucket.size(); ++k) {
      if (day_of(bucket[k].time) != current_day_) continue;
      if (best == kNoSlot || earlier(bucket[k].time, bucket[k].seq,
                                     bucket[best].time, bucket[best].seq)) {
        best = k;
      }
    }
    if (best != kNoSlot) {
      ACES_PERF_COUNT(PerfEvent::kCalendarBucketHit);
      return {b, best};
    }
    ++current_day_;
  }
  ACES_PERF_COUNT(PerfEvent::kCalendarSparseFallback);
  // Sparse population: no event within a full calendar cycle. Find the
  // minimum directly and jump the calendar to its day.
  std::size_t best_bucket = kNoSlot;
  std::size_t best_slot = kNoSlot;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const std::vector<Event>& bucket = buckets_[b];
    for (std::size_t k = 0; k < bucket.size(); ++k) {
      if (best_bucket == kNoSlot ||
          earlier(bucket[k].time, bucket[k].seq,
                  buckets_[best_bucket][best_slot].time,
                  buckets_[best_bucket][best_slot].seq)) {
        best_bucket = b;
        best_slot = k;
      }
    }
  }
  ACES_CHECK_MSG(best_bucket != kNoSlot, "find_min on empty calendar");
  current_day_ = day_of(buckets_[best_bucket][best_slot].time);
  return {best_bucket, best_slot};
}

Simulator::Event Simulator::extract(std::pair<std::size_t, std::size_t> loc) {
  std::vector<Event>& bucket = buckets_[loc.first];
  Event event = std::move(bucket[loc.second]);
  if (loc.second != bucket.size() - 1) {
    bucket[loc.second] = std::move(bucket.back());
  }
  bucket.pop_back();
  --size_;
  return event;
}

void Simulator::rebuild(std::size_t bucket_count) {
  ACES_PERF_COUNT(PerfEvent::kCalendarRebuild);
  std::vector<Event> events;
  events.reserve(size_);
  for (std::vector<Event>& bucket : buckets_) {
    for (Event& e : bucket) events.push_back(std::move(e));
    bucket.clear();
  }
  // Width: twice the mean inter-event gap, so a bucket holds a couple of
  // events on average. Degenerate spans (all ties) keep the old width —
  // same time means same bucket at any width.
  if (events.size() > 1) {
    Seconds lo = events.front().time;
    Seconds hi = lo;
    for (const Event& e : events) {
      lo = std::min(lo, e.time);
      hi = std::max(hi, e.time);
    }
    const double span = hi - lo;
    if (span > 0.0) {
      // Floors keep day numbers (time / width) far from uint64 range even
      // for adversarially tight spans at large absolute times.
      width_ = std::max({2.0 * span / static_cast<double>(events.size()),
                         hi * 1e-15, 1e-12});
    }
  }
  buckets_.clear();
  buckets_.resize(bucket_count);
  bucket_mask_ = bucket_count - 1;
  for (Event& e : events) {
    buckets_[day_of(e.time) & bucket_mask_].push_back(std::move(e));
  }
  // Re-home the drain cursor onto the earliest pending day.
  if (size_ > 0) {
    Seconds min_time = std::numeric_limits<Seconds>::max();
    for (const std::vector<Event>& bucket : buckets_) {
      for (const Event& e : bucket) min_time = std::min(min_time, e.time);
    }
    current_day_ = day_of(min_time);
  } else {
    current_day_ = day_of(now_);
  }
}

void Simulator::run_until(Seconds end) {
  ACES_CHECK_MSG(end >= now_, "cannot run backwards");
  while (size_ > 0) {
    const auto loc = find_min();
    if (buckets_[loc.first][loc.second].time > end) break;
    Event event = extract(loc);
    now_ = event.time;
    ++executed_;
    event.fn();
  }
  now_ = end;
}

void Simulator::run_all() {
  while (size_ > 0) {
    Event event = extract(find_min());
    now_ = event.time;
    ++executed_;
    event.fn();
  }
}

}  // namespace aces::sim
