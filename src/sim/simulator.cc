#include "sim/simulator.h"

#include <utility>

#include "common/check.h"

namespace aces::sim {

void Simulator::schedule_in(Seconds delay, Handler fn) {
  ACES_CHECK_MSG(delay >= 0.0, "cannot schedule into the past");
  schedule_at(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(Seconds t, Handler fn) {
  ACES_CHECK_MSG(t >= now_, "cannot schedule into the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::run_until(Seconds end) {
  ACES_CHECK_MSG(end >= now_, "cannot run backwards");
  while (!queue_.empty() && queue_.top().time <= end) {
    // Move the handler out before popping: the handler may push new events,
    // which would invalidate a reference into the heap.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++executed_;
    event.fn();
  }
  now_ = end;
}

void Simulator::run_all() {
  while (!queue_.empty()) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++executed_;
    event.fn();
  }
}

}  // namespace aces::sim
