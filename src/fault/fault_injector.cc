#include "fault/fault_injector.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace aces::fault {

namespace {

constexpr std::uint64_t kAdvertSalt = 0xA11E57A1EULL;
constexpr std::uint64_t kDropSalt = 0xD50B0057ULL;

bool in_window(Seconds from, Seconds until, Seconds t) {
  return t >= from && t < until;
}

}  // namespace

FaultInjector::FaultInjector(FaultSchedule schedule, std::uint64_t seed,
                             std::size_t pe_count,
                             obs::CounterRegistry* counters)
    : schedule_(std::move(schedule)),
      seed_(seed),
      pe_count_(pe_count),
      sequences_(new std::atomic<std::uint64_t>[pe_count > 0 ? pe_count : 1]),
      crashes_(obs::make_counter(counters, "fault.node_crash")),
      restarts_(obs::make_counter(counters, "fault.node_restart")),
      stalls_(obs::make_counter(counters, "fault.pe_stall")),
      adverts_lost_(obs::make_counter(counters, "fault.advert_lost")),
      adverts_delayed_(obs::make_counter(counters, "fault.advert_delayed")),
      deliveries_dropped_(
          obs::make_counter(counters, "fault.delivery_dropped")),
      crash_lost_sdos_(obs::make_counter(counters, "fault.crash_lost_sdos")) {
  for (std::size_t i = 0; i < std::max<std::size_t>(pe_count_, 1); ++i) {
    sequences_[i].store(0, std::memory_order_relaxed);
  }
  for (const PeStall& s : schedule_.stalls) {
    ACES_CHECK_MSG(s.pe.value() < pe_count_,
                   "stall PE " << s.pe << " out of range");
  }
  for (const AdvertFault& f : schedule_.advert_faults) {
    ACES_CHECK_MSG(f.pe.value() < pe_count_,
                   "advert fault PE " << f.pe << " out of range");
  }
  for (const DropBurst& b : schedule_.drop_bursts) {
    ACES_CHECK_MSG(b.pe.value() < pe_count_,
                   "drop burst PE " << b.pe << " out of range");
  }
}

bool FaultInjector::node_down(NodeId node, Seconds t) const {
  for (const NodeCrash& c : schedule_.crashes) {
    if (c.node == node && in_window(c.at, c.until, t)) return true;
  }
  return false;
}

bool FaultInjector::pe_stalled(PeId pe, Seconds t) const {
  for (const PeStall& s : schedule_.stalls) {
    if (s.pe == pe && in_window(s.at, s.at + s.duration, t)) return true;
  }
  return false;
}

bool FaultInjector::advert_lost(PeId pe, Seconds t) {
  // Overlapping clauses are independent loss events: p = 1 - prod(1 - p_i).
  // One draw regardless of clause count keeps the sequence consumption —
  // and therefore determinism — independent of how the spec is written.
  double survive = 1.0;
  bool active = false;
  for (const AdvertFault& f : schedule_.advert_faults) {
    if (f.pe == pe && f.loss_prob > 0.0 && in_window(f.from, f.until, t)) {
      survive *= 1.0 - f.loss_prob;
      active = true;
    }
  }
  if (!active) return false;
  const bool lost = draw(pe, kAdvertSalt) < 1.0 - survive;
  if (lost) adverts_lost_.inc();
  return lost;
}

Seconds FaultInjector::advert_delay(PeId pe, Seconds t) {
  Seconds delay = 0.0;
  for (const AdvertFault& f : schedule_.advert_faults) {
    if (f.pe == pe && in_window(f.from, f.until, t)) {
      delay = std::max(delay, f.delay);
    }
  }
  if (delay > 0.0) adverts_delayed_.inc();
  return delay;
}

bool FaultInjector::drop_delivery(PeId pe, Seconds t) {
  double survive = 1.0;
  bool active = false;
  for (const DropBurst& b : schedule_.drop_bursts) {
    if (b.pe == pe && b.prob > 0.0 && in_window(b.from, b.until, t)) {
      survive *= 1.0 - b.prob;
      active = true;
    }
  }
  if (!active) return false;
  const bool dropped = draw(pe, kDropSalt) < 1.0 - survive;
  if (dropped) deliveries_dropped_.inc();
  return dropped;
}

void FaultInjector::note_node_crash(std::uint64_t lost_sdos) {
  crashes_.inc();
  crash_lost_sdos_.inc(lost_sdos);
}

void FaultInjector::note_node_restart() { restarts_.inc(); }

void FaultInjector::note_pe_stall() { stalls_.inc(); }

double FaultInjector::draw(PeId pe, std::uint64_t salt) {
  ACES_CHECK_MSG(pe.valid() && pe.value() < pe_count_,
                 "fault draw for out-of-range PE " << pe);
  // Relaxed suffices: each per-PE counter is an independent draw index —
  // nothing else is published through it, only atomicity of the increment
  // matters (two runtime threads drawing for the same PE must get distinct
  // indices, not a synchronized view of other memory).
  const std::uint64_t seq =
      sequences_[pe.value()].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t state = seed_ ^ salt ^
                        (0x9E3779B97F4A7C15ULL * (pe.value() + 1)) ^
                        (seq * 0xBF58476D1CE4E5B9ULL);
  const std::uint64_t x = splitmix64(state);
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace aces::fault
