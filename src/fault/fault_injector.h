// Deterministic, seeded run-time oracle for a FaultSchedule.
//
// The injector answers the questions the substrates ask at their tick and
// delivery boundaries: is this node down right now, is this PE stalled,
// does this advertisement get lost or delayed, does this delivery drop.
// Window queries (node_down, pe_stalled, advert_delay) are pure functions
// of the schedule and time. Probabilistic draws (advert_lost,
// drop_delivery) consume a per-PE sequence number hashed with splitmix64,
// so the same seed + schedule + event order reproduces the same decisions
// bit-for-bit — the discrete-event simulator's event order is itself
// deterministic, giving bit-identical RunReports. Sequence counters are
// atomic so the threaded runtime can draw from node threads without a lock
// (runtime runs are nondeterministic anyway; atomicity just keeps the
// draws race-free).
//
// Fault events are counted into an optional obs::CounterRegistry under
// fault.* names; substrates report state transitions they own (crash,
// restart, stall onset, SDOs lost to a crash) through the note_* hooks.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "fault/fault_spec.h"
#include "obs/counters.h"

namespace aces::fault {

class FaultInjector {
 public:
  /// `pe_count` sizes the per-PE draw sequences and must cover every PE id
  /// the schedule references. `counters` may be null (no counting).
  FaultInjector(FaultSchedule schedule, std::uint64_t seed,
                std::size_t pe_count,
                obs::CounterRegistry* counters = nullptr);

  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }

  /// True while any crash window covering `t` holds `node` down.
  [[nodiscard]] bool node_down(NodeId node, Seconds t) const;

  /// True while any stall window covering `t` holds `pe` wedged.
  [[nodiscard]] bool pe_stalled(PeId pe, Seconds t) const;

  /// Draws whether the advertisement `pe` emits at time `t` is lost.
  /// Overlapping clauses combine as independent loss events. Counts
  /// fault.advert_lost on a loss.
  bool advert_lost(PeId pe, Seconds t);

  /// Extra latency on `pe`'s advertisement at time `t`: the max delay over
  /// active clauses (0 when none). Counts fault.advert_delayed when > 0.
  Seconds advert_delay(PeId pe, Seconds t);

  /// Draws whether a delivery into `pe` at time `t` is dropped. Counts
  /// fault.delivery_dropped on a drop.
  bool drop_delivery(PeId pe, Seconds t);

  // Transition hooks for state the substrates own.
  void note_node_crash(std::uint64_t lost_sdos);
  void note_node_restart();
  void note_pe_stall();

 private:
  /// Uniform [0,1) draw, deterministic in (seed, salt, pe, draw index).
  double draw(PeId pe, std::uint64_t salt);

  FaultSchedule schedule_;
  std::uint64_t seed_;
  std::size_t pe_count_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> sequences_;

  obs::Counter crashes_;
  obs::Counter restarts_;
  obs::Counter stalls_;
  obs::Counter adverts_lost_;
  obs::Counter adverts_delayed_;
  obs::Counter deliveries_dropped_;
  obs::Counter crash_lost_sdos_;
};

}  // namespace aces::fault
