// Declarative fault schedules for the fault-injection subsystem.
//
// A FaultSchedule is pure data: a list of timed fault clauses covering the
// failure modes an extreme-scale deployment actually sees — processing
// nodes crashing and restarting, PEs stalling, control-plane advertisements
// going missing or arriving late, and delivery drop bursts (buffer
// corruption). fault::FaultInjector turns a schedule plus a seed into
// deterministic run-time decisions; both substrates consume it at the
// NodeController::tick() and delivery boundaries.
//
// Text grammar (parse_fault_spec): clauses separated by ';' or newlines,
// each clause a class name followed by key=value pairs:
//
//   crash node=2 at=10 until=20
//   stall pe=5 at=12 for=1.5
//   advert_loss pe=3 from=10 until=20 prob=0.5
//   advert_delay pe=3 from=10 until=20 delay=0.05
//   drop pe=4 from=15 until=16 prob=1
//   prockill node=1 at=10 restart=20      # distributed runtime only
//
// docs/fault_injection.md documents the grammar, each fault class, and the
// controller response it is expected to provoke.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace aces::graph {
class ProcessingGraph;
}  // namespace aces::graph

namespace aces::fault {

/// A processing node crashes at `at` and restarts at `until`. While down it
/// processes nothing, its controller is silent (no ticks, no
/// advertisements), and deliveries addressed to it are lost. The crash
/// loses everything in flight on the node; the restart re-admits it with
/// drained buffers and reset controller state.
struct NodeCrash {
  Seconds at = 0.0;
  Seconds until = 0.0;
  NodeId node;
};

/// One PE stops processing for `duration` seconds (a wedged operator). Its
/// node — and its controller — stay alive, so flow control observes the
/// stall through the PE's occupancy and collapsing processing rate.
struct PeStall {
  Seconds at = 0.0;
  Seconds duration = 0.0;
  PeId pe;
};

/// Control-plane degradation on the advertisements PE `pe` sends upstream:
/// each advertisement is lost with probability `loss_prob`, and survivors
/// incur `delay` extra seconds of latency. Grammar classes `advert_loss`
/// and `advert_delay` both map here.
struct AdvertFault {
  Seconds from = 0.0;
  Seconds until = 0.0;
  PeId pe;
  double loss_prob = 0.0;
  Seconds delay = 0.0;
};

/// Deliveries into PE `pe`'s input buffer are dropped with probability
/// `prob` during the window (buffer corruption / lossy transport burst).
struct DropBurst {
  Seconds from = 0.0;
  Seconds until = 0.0;
  PeId pe;
  double prob = 1.0;
};

/// The worker process hosting node `node` is SIGKILLed at virtual time `at`
/// (and, when `restart_at` >= 0, respawned fresh at that time). Unlike
/// NodeCrash — a *modeled* outage both substrates act out — this is a real
/// OS-level kill only the distributed runtime can execute: the coordinator
/// kills the process, detects the death through heartbeat loss, clamps the
/// dead node's advertisements, and re-solves tier 1 around it. Other
/// substrates warn and ignore the clause.
struct ProcKill {
  Seconds at = 0.0;
  /// Virtual time to respawn the worker; < 0 means never.
  Seconds restart_at = -1.0;
  NodeId node;
};

struct FaultSchedule {
  std::vector<NodeCrash> crashes;
  std::vector<PeStall> stalls;
  std::vector<AdvertFault> advert_faults;
  std::vector<DropBurst> drop_bursts;
  std::vector<ProcKill> proc_kills;

  [[nodiscard]] bool empty() const {
    return crashes.empty() && stalls.empty() && advert_faults.empty() &&
           drop_bursts.empty() && proc_kills.empty();
  }
  [[nodiscard]] std::size_t size() const {
    return crashes.size() + stalls.size() + advert_faults.size() +
           drop_bursts.size() + proc_kills.size();
  }
};

/// Parses the text grammar above. Clauses may span multiple lines; '#'
/// starts a comment running to end of line. Throws std::runtime_error with
/// the offending clause on any syntax or range error.
FaultSchedule parse_fault_spec(const std::string& spec);

/// Canonical spec text for a schedule; parse_fault_spec(to_string(s))
/// reproduces `s`.
std::string to_string(const FaultSchedule& schedule);

/// Checks every clause against a concrete graph (node/PE ids in range) and
/// internal consistency (windows non-empty, probabilities in [0,1]).
/// Throws CheckFailure on the first violation.
void validate(const FaultSchedule& schedule, const graph::ProcessingGraph& g);

}  // namespace aces::fault
