#include "fault/fault_spec.h"

#include <map>
#include <sstream>
#include <stdexcept>

#include "common/check.h"
#include "graph/processing_graph.h"

namespace aces::fault {

namespace {

/// One clause split into its class name and key=value pairs.
struct Clause {
  std::string kind;
  std::map<std::string, std::string> kv;
  std::string text;  // original text, for error messages
};

[[noreturn]] void fail(const Clause& clause, const std::string& why) {
  throw std::runtime_error("bad fault clause '" + clause.text + "': " + why);
}

double num(const Clause& clause, const std::string& key) {
  const auto it = clause.kv.find(key);
  if (it == clause.kv.end()) fail(clause, "missing " + key + "=");
  try {
    std::size_t pos = 0;
    const double value = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    fail(clause, "invalid number for " + key + "=: '" + it->second + "'");
  }
}

double num_or(const Clause& clause, const std::string& key, double fallback) {
  return clause.kv.contains(key) ? num(clause, key) : fallback;
}

std::uint32_t id(const Clause& clause, const std::string& key) {
  const double value = num(clause, key);
  if (value < 0.0 || value != static_cast<double>(
                                  static_cast<std::uint32_t>(value))) {
    fail(clause, key + "= must be a non-negative integer");
  }
  return static_cast<std::uint32_t>(value);
}

void expect_only(const Clause& clause,
                 std::initializer_list<const char*> keys) {
  for (const auto& [key, value] : clause.kv) {
    bool known = false;
    for (const char* k : keys) known = known || key == k;
    if (!known) fail(clause, "unknown key '" + key + "='");
  }
}

std::vector<Clause> tokenize(const std::string& spec) {
  // Strip comments, then split clauses on ';' and newlines.
  std::string clean;
  bool comment = false;
  for (const char c : spec) {
    if (c == '#') comment = true;
    if (c == '\n') comment = false;
    clean.push_back(comment ? ' ' : (c == '\n' ? ';' : c));
  }
  std::vector<Clause> clauses;
  std::stringstream stream(clean);
  std::string text;
  while (std::getline(stream, text, ';')) {
    std::stringstream words(text);
    Clause clause;
    clause.text = text;
    std::string word;
    while (words >> word) {
      if (clause.kind.empty()) {
        clause.kind = word;
        continue;
      }
      const auto eq = word.find('=');
      if (eq == std::string::npos || eq == 0) {
        fail(clause, "expected key=value, got '" + word + "'");
      }
      clause.kv[word.substr(0, eq)] = word.substr(eq + 1);
    }
    if (!clause.kind.empty()) clauses.push_back(std::move(clause));
  }
  return clauses;
}

}  // namespace

FaultSchedule parse_fault_spec(const std::string& spec) {
  FaultSchedule schedule;
  for (const Clause& clause : tokenize(spec)) {
    if (clause.kind == "crash") {
      expect_only(clause, {"node", "at", "until"});
      NodeCrash crash;
      crash.node = NodeId(id(clause, "node"));
      crash.at = num(clause, "at");
      crash.until = num(clause, "until");
      if (crash.until <= crash.at) fail(clause, "until= must exceed at=");
      schedule.crashes.push_back(crash);
    } else if (clause.kind == "stall") {
      expect_only(clause, {"pe", "at", "for"});
      PeStall stall;
      stall.pe = PeId(id(clause, "pe"));
      stall.at = num(clause, "at");
      stall.duration = num(clause, "for");
      if (stall.duration <= 0.0) fail(clause, "for= must be positive");
      schedule.stalls.push_back(stall);
    } else if (clause.kind == "advert_loss" || clause.kind == "advert_delay") {
      expect_only(clause, {"pe", "from", "until", "prob", "delay"});
      AdvertFault f;
      f.pe = PeId(id(clause, "pe"));
      f.from = num(clause, "from");
      f.until = num(clause, "until");
      f.loss_prob = num_or(clause, "prob",
                           clause.kind == "advert_loss" ? 1.0 : 0.0);
      f.delay = num_or(clause, "delay", 0.0);
      if (f.until <= f.from) fail(clause, "until= must exceed from=");
      if (f.loss_prob < 0.0 || f.loss_prob > 1.0) {
        fail(clause, "prob= must be in [0,1]");
      }
      if (f.delay < 0.0) fail(clause, "delay= must be non-negative");
      if (clause.kind == "advert_delay" && f.delay <= 0.0) {
        fail(clause, "advert_delay needs delay= > 0");
      }
      schedule.advert_faults.push_back(f);
    } else if (clause.kind == "drop") {
      expect_only(clause, {"pe", "from", "until", "prob"});
      DropBurst burst;
      burst.pe = PeId(id(clause, "pe"));
      burst.from = num(clause, "from");
      burst.until = num(clause, "until");
      burst.prob = num_or(clause, "prob", 1.0);
      if (burst.until <= burst.from) fail(clause, "until= must exceed from=");
      if (burst.prob < 0.0 || burst.prob > 1.0) {
        fail(clause, "prob= must be in [0,1]");
      }
      schedule.drop_bursts.push_back(burst);
    } else if (clause.kind == "prockill") {
      expect_only(clause, {"node", "at", "restart"});
      ProcKill kill;
      kill.node = NodeId(id(clause, "node"));
      kill.at = num(clause, "at");
      kill.restart_at = num_or(clause, "restart", -1.0);
      if (kill.restart_at >= 0.0 && kill.restart_at <= kill.at) {
        fail(clause, "restart= must exceed at=");
      }
      schedule.proc_kills.push_back(kill);
    } else {
      fail(clause, "unknown fault class '" + clause.kind +
                       "' (crash|stall|advert_loss|advert_delay|drop|"
                       "prockill)");
    }
  }
  return schedule;
}

std::string to_string(const FaultSchedule& schedule) {
  std::ostringstream os;
  const char* sep = "";
  for (const NodeCrash& c : schedule.crashes) {
    os << sep << "crash node=" << c.node.value() << " at=" << c.at
       << " until=" << c.until;
    sep = "; ";
  }
  for (const PeStall& s : schedule.stalls) {
    os << sep << "stall pe=" << s.pe.value() << " at=" << s.at
       << " for=" << s.duration;
    sep = "; ";
  }
  for (const AdvertFault& f : schedule.advert_faults) {
    os << sep << "advert_loss pe=" << f.pe.value() << " from=" << f.from
       << " until=" << f.until << " prob=" << f.loss_prob;
    if (f.delay > 0.0) os << " delay=" << f.delay;
    sep = "; ";
  }
  for (const DropBurst& b : schedule.drop_bursts) {
    os << sep << "drop pe=" << b.pe.value() << " from=" << b.from
       << " until=" << b.until << " prob=" << b.prob;
    sep = "; ";
  }
  for (const ProcKill& k : schedule.proc_kills) {
    os << sep << "prockill node=" << k.node.value() << " at=" << k.at;
    if (k.restart_at >= 0.0) os << " restart=" << k.restart_at;
    sep = "; ";
  }
  return os.str();
}

void validate(const FaultSchedule& schedule, const graph::ProcessingGraph& g) {
  for (const NodeCrash& c : schedule.crashes) {
    ACES_CHECK_MSG(c.node.valid() && c.node.value() < g.node_count(),
                   "crash references unknown node " << c.node);
    ACES_CHECK_MSG(c.until > c.at, "crash window must be non-empty");
    ACES_CHECK_MSG(c.at >= 0.0, "crash time must be non-negative");
  }
  for (const PeStall& s : schedule.stalls) {
    ACES_CHECK_MSG(s.pe.valid() && s.pe.value() < g.pe_count(),
                   "stall references unknown PE " << s.pe);
    ACES_CHECK_MSG(s.duration > 0.0, "stall duration must be positive");
    ACES_CHECK_MSG(s.at >= 0.0, "stall time must be non-negative");
  }
  for (const AdvertFault& f : schedule.advert_faults) {
    ACES_CHECK_MSG(f.pe.valid() && f.pe.value() < g.pe_count(),
                   "advert fault references unknown PE " << f.pe);
    ACES_CHECK_MSG(f.until > f.from, "advert fault window must be non-empty");
    ACES_CHECK_MSG(f.loss_prob >= 0.0 && f.loss_prob <= 1.0,
                   "advert loss probability out of [0,1]");
    ACES_CHECK_MSG(f.delay >= 0.0, "negative advert delay");
  }
  for (const DropBurst& b : schedule.drop_bursts) {
    ACES_CHECK_MSG(b.pe.valid() && b.pe.value() < g.pe_count(),
                   "drop burst references unknown PE " << b.pe);
    ACES_CHECK_MSG(b.until > b.from, "drop burst window must be non-empty");
    ACES_CHECK_MSG(b.prob >= 0.0 && b.prob <= 1.0,
                   "drop probability out of [0,1]");
  }
  for (const ProcKill& k : schedule.proc_kills) {
    ACES_CHECK_MSG(k.node.valid() && k.node.value() < g.node_count(),
                   "prockill references unknown node " << k.node);
    ACES_CHECK_MSG(k.at >= 0.0, "prockill time must be non-negative");
    ACES_CHECK_MSG(k.restart_at < 0.0 || k.restart_at > k.at,
                   "prockill restart must follow the kill");
  }
}

}  // namespace aces::fault
