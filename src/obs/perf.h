// Hot-path perf probes: the build's telemetry about itself.
//
// The paper's controllers act on resource-usage measurements; this header
// gives the *implementation* the same treatment. A fixed vocabulary of
// stages (scoped timers: steady_clock ns + TSC cycles + call count) and
// events (monotonic counts, including hit/miss pairs for the calendar
// queue and the pooled SDO buffers) is compiled into the hot paths behind
// two macros:
//
//     ACES_PERF_SCOPE(PerfStage::kCalendarInsert);
//     ACES_PERF_COUNT(PerfEvent::kCalendarBucketHit);
//
// Build discipline — zero overhead when off:
//  * Unless the build sets -DACES_PERF_INSTRUMENT (CMake option
//    ACES_PERF_INSTRUMENT=ON), both macros expand to NOTHING. Not a
//    disabled branch, not a null check: the argument tokens are discarded
//    at preprocessing time, so an uninstrumented build carries no probe
//    code at all. CI proves it by diffing RunReport fingerprints between
//    an ON and an OFF build of the same scenario.
//  * When on, writers follow the counters.h idiom: relaxed atomics into
//    cache-line-padded cells sharded by a thread-local id, so probes never
//    make threads share a line. Slots are a fixed static array — no
//    registration, no allocation, safe from any thread at any time.
//  * Probes measure, they never participate in results. Nothing here may
//    feed a RunReport, a fingerprint, or a deterministic JSON field; the
//    snapshot surfaces only through the bench JSON "perf" block, which
//    bench-diff treats as informational.
//
// The snapshot/reset API below is compiled unconditionally (empty results
// when off) so report writers need no #ifdefs. peak_rss_bytes() is also
// unconditional — it reads getrusage, not a probe. alloc_count() reports
// the global operator-new count, which is only tracked when instrumented
// (0 otherwise).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#ifdef ACES_PERF_INSTRUMENT
#include <chrono>

#include "common/atomic_shim.h"
#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif
#endif

namespace aces::obs {

/// Scoped-timing probe sites. Append only; names in perf.cc must match.
enum class PerfStage : unsigned {
  kCalendarInsert = 0,  ///< simulator calendar-queue schedule_at()
  kCalendarDrain,       ///< simulator calendar-queue find_min()+pop
  kControllerTick,      ///< one NodeController::tick()
  kOptimizerSolve,      ///< one tier-1 optimize() solve
  kChannelSend,         ///< runtime channel try_push()/push_wait()
  kChannelRecv,         ///< runtime channel try_pop()/pop_wait()
  kRingDrain,           ///< SPSC ring pop_burst() (batched consumer drain)
  kCount,
};

/// Event-count probe sites (hit/miss pairs and rarities).
enum class PerfEvent : unsigned {
  kCalendarBucketHit = 0,   ///< find_min() served from the cursor day
  kCalendarSparseFallback,  ///< find_min() fell back to a full scan
  kCalendarRebuild,         ///< calendar resized/rewidthed
  kBufferPoolHit,           ///< SDO accepted into a pooled PE buffer
  kBufferPoolMiss,          ///< SDO rejected: pooled buffer full
  kChannelBlock,            ///< channel push had to wait for space
  kChannelWakeup,           ///< channel pop woke from a CV wait
  kRingFullPark,            ///< SPSC producer parked: ring full past spin bound
  kRingEmptyPark,           ///< SPSC consumer parked: ring empty past spin bound
  kRingBatchPublish,        ///< one try_push_n index publish (any size)
  kRingBatchSdos,           ///< SDOs moved by try_push_n publishes
  kRingDrainBurst,          ///< one pop_burst index publish (any size)
  kRingDrainSdos,           ///< SDOs moved by pop_burst drains
  kCount,
};

[[nodiscard]] const char* perf_stage_name(PerfStage stage);
[[nodiscard]] const char* perf_event_name(PerfEvent event);

/// One stage's accumulated totals across all threads.
struct PerfStageSample {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t ns = 0;      ///< steady_clock nanoseconds inside the scope
  std::uint64_t cycles = 0;  ///< TSC cycles (0 on non-x86_64 builds)
};

/// Point-in-time totals for every stage/event that fired at least once.
/// Empty (and `instrumented == false`) in uninstrumented builds.
struct PerfSnapshot {
  bool instrumented = false;
  std::vector<PerfStageSample> stages;
  std::vector<std::pair<std::string, std::uint64_t>> events;
  [[nodiscard]] bool empty() const { return stages.empty() && events.empty(); }
};

/// Global totals since process start (or the last perf_reset()).
[[nodiscard]] PerfSnapshot perf_snapshot();

/// Zero every probe cell. Totals are relaxed atomics, so a concurrent
/// writer may land an increment on either side of the reset; callers
/// quiesce workers first when they need exact windows (benches do).
void perf_reset();

/// True when the build compiled the probes in.
[[nodiscard]] constexpr bool perf_instrumented() {
#ifdef ACES_PERF_INSTRUMENT
  return true;
#else
  return false;
#endif
}

/// Peak resident set size of this process in bytes (getrusage; 0 where
/// unsupported). Monotonic over the process lifetime — a high-water mark,
/// not a current reading. Always compiled; nondeterministic, so it only
/// ever lands in timing-gated report fields.
[[nodiscard]] std::uint64_t peak_rss_bytes();

/// Global operator-new invocation count since process start. Only tracked
/// under ACES_PERF_INSTRUMENT (0 otherwise). Deterministic for a
/// deterministic program — but allocator-library dependent, so treated as
/// a soft (not bit-stable) trajectory field.
[[nodiscard]] std::uint64_t alloc_count();

#ifdef ACES_PERF_INSTRUMENT

namespace perf_detail {

/// Dense per-thread id, same construction as counters.h but a separate
/// counter so perf shard density does not depend on counter usage.
inline std::size_t this_thread_shard() {
  static aces::Atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

inline std::uint64_t read_cycles() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return 0;
#endif
}

constexpr std::size_t kShards = 16;  // power of two; cap on writer spread
constexpr std::size_t kShardMask = kShards - 1;

struct alignas(64) StageCell {
  aces::Atomic<std::uint64_t> calls{0};
  aces::Atomic<std::uint64_t> ns{0};
  aces::Atomic<std::uint64_t> cycles{0};
};

struct alignas(64) EventCell {
  aces::Atomic<std::uint64_t> count{0};
};

/// Fixed-slot registry: [stage-or-event][shard] cell matrix, zero setup.
struct PerfRegistry {
  StageCell stages[static_cast<std::size_t>(PerfStage::kCount)][kShards];
  EventCell events[static_cast<std::size_t>(PerfEvent::kCount)][kShards];

  static PerfRegistry& instance() {
    static PerfRegistry registry;
    return registry;
  }
};

inline void count_event(PerfEvent event, std::uint64_t n = 1) {
  PerfRegistry::instance()
      .events[static_cast<std::size_t>(event)][this_thread_shard() & kShardMask]
      .count.fetch_add(n, std::memory_order_relaxed);
}

/// RAII scope probe: one steady_clock + TSC read at each end, accumulated
/// into the calling thread's shard on destruction.
class ScopedProbe {
 public:
  explicit ScopedProbe(PerfStage stage)
      : cell_(&PerfRegistry::instance()
                   .stages[static_cast<std::size_t>(stage)]
                          [this_thread_shard() & kShardMask]),
        start_ns_(std::chrono::steady_clock::now()),
        start_cycles_(read_cycles()) {}

  ScopedProbe(const ScopedProbe&) = delete;
  ScopedProbe& operator=(const ScopedProbe&) = delete;

  ~ScopedProbe() {
    const std::uint64_t cycles = read_cycles() - start_cycles_;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_ns_)
                        .count();
    cell_->calls.fetch_add(1, std::memory_order_relaxed);
    cell_->ns.fetch_add(static_cast<std::uint64_t>(ns),
                        std::memory_order_relaxed);
    cell_->cycles.fetch_add(cycles, std::memory_order_relaxed);
  }

 private:
  StageCell* cell_;
  std::chrono::steady_clock::time_point start_ns_;
  std::uint64_t start_cycles_;
};

}  // namespace perf_detail

#define ACES_PERF_PASTE2(a, b) a##b
#define ACES_PERF_PASTE(a, b) ACES_PERF_PASTE2(a, b)
#define ACES_PERF_SCOPE(stage)                                      \
  ::aces::obs::perf_detail::ScopedProbe ACES_PERF_PASTE(            \
      aces_perf_probe_, __LINE__)(::aces::obs::stage)
#define ACES_PERF_COUNT(event) \
  ::aces::obs::perf_detail::count_event(::aces::obs::event)
#define ACES_PERF_COUNT_N(event, n) \
  ::aces::obs::perf_detail::count_event(::aces::obs::event, (n))

#else  // !ACES_PERF_INSTRUMENT

// The argument tokens vanish at preprocessing time, so an uninstrumented
// build contains no trace of the probes. ((void)0) keeps the macros valid
// single statements inside unbraced if/else.
#define ACES_PERF_SCOPE(stage) ((void)0)
#define ACES_PERF_COUNT(event) ((void)0)
#define ACES_PERF_COUNT_N(event, n) ((void)0)

#endif  // ACES_PERF_INSTRUMENT

}  // namespace aces::obs
