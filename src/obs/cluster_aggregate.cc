#include "obs/cluster_aggregate.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <sstream>

#include "obs/export.h"

namespace aces::obs {

namespace {

/// Human/scrape formatting, never fingerprinted.
std::string fmt(double v) {
  char buf[40];
  // aces-lint: allow(float-format) status/report exposition for humans and scrapers
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

}  // namespace

ClusterAggregator::Shard& ClusterAggregator::shard(std::uint32_t rank) {
  return shards_[rank];
}

void ClusterAggregator::note_shard(std::uint32_t rank) {
  MutexLock lock(mutex_);
  shard(rank);
}

void ClusterAggregator::note_quantum(std::uint32_t rank,
                                     std::uint64_t quantum) {
  MutexLock lock(mutex_);
  ShardStatus& s = shard(rank).status;
  s.last_quantum = std::max(s.last_quantum, quantum);
}

void ClusterAggregator::note_shard_dead(std::uint32_t rank) {
  MutexLock lock(mutex_);
  shard(rank).status.alive = false;
}

void ClusterAggregator::record_rtt(std::uint32_t rank, double seconds) {
  MutexLock lock(mutex_);
  shard(rank).status.rtt_seconds.add(seconds);
}

void ClusterAggregator::record_step_skew(double seconds) {
  MutexLock lock(mutex_);
  skew_seconds_.add(seconds);
}

void ClusterAggregator::record_frame_sent(std::uint32_t rank,
                                          std::size_t bytes) {
  MutexLock lock(mutex_);
  ShardStatus& s = shard(rank).status;
  s.frames_out += 1;
  s.bytes_out += bytes;
}

void ClusterAggregator::record_frame_received(std::uint32_t rank,
                                              std::size_t bytes) {
  MutexLock lock(mutex_);
  ShardStatus& s = shard(rank).status;
  s.frames_in += 1;
  s.bytes_in += bytes;
}

void ClusterAggregator::record_decode_reject(std::uint32_t rank) {
  MutexLock lock(mutex_);
  shard(rank).status.decode_rejects += 1;
}

void ClusterAggregator::record_heartbeat(std::uint32_t rank) {
  MutexLock lock(mutex_);
  shard(rank).status.heartbeats += 1;
}

void ClusterAggregator::record_relay_dropped(std::uint32_t rank,
                                             std::uint64_t count) {
  MutexLock lock(mutex_);
  shard(rank).status.relay_dropped += count;
}

void ClusterAggregator::absorb_counters(
    std::uint32_t rank,
    const std::vector<std::pair<std::string, std::uint64_t>>& deltas) {
  MutexLock lock(mutex_);
  Shard& s = shard(rank);
  s.status.metrics_reports += 1;
  for (const auto& [name, delta] : deltas) s.counters[name] += delta;
}

void ClusterAggregator::absorb_gauge(std::uint32_t rank,
                                     const std::string& name, double value) {
  MutexLock lock(mutex_);
  shard(rank).gauges[name] = value;
}

void ClusterAggregator::absorb_pe_latency(std::uint32_t rank, std::uint32_t pe,
                                          const LogHistogram& wait,
                                          const LogHistogram& service) {
  MutexLock lock(mutex_);
  shard(rank).pe_latency[pe] = PeSnapshot{wait, service};
}

void ClusterAggregator::absorb_path_latency(std::uint32_t rank,
                                            std::uint64_t id,
                                            const std::string& label,
                                            const LogHistogram& end_to_end) {
  MutexLock lock(mutex_);
  shard(rank).path_latency[id] = PathSnapshot{label, end_to_end};
}

void ClusterAggregator::absorb_perf(std::uint32_t rank, const std::string& name,
                                    std::uint64_t calls, std::uint64_t ns) {
  MutexLock lock(mutex_);
  shard(rank).perf[name] = PerfTotals{calls, ns};
}

void ClusterAggregator::absorb_trace(std::uint32_t rank, TickRecord record) {
  MutexLock lock(mutex_);
  record.shard = static_cast<std::int32_t>(rank);
  trace_.push_back(std::move(record));
}

void ClusterAggregator::absorb_completed_spans(
    std::uint32_t rank, const std::vector<SdoSpan>& spans) {
  MutexLock lock(mutex_);
  Shard& s = shard(rank);
  s.status.span_batches += 1;
  for (const SdoSpan& span : spans) {
    spans_completed_ += 1;
    const double transport = span.transport_time();
    bool stitched = false;
    for (std::uint32_t i = 0; i < span.hop_count; ++i) {
      if (span.hops[i].kind != static_cast<std::uint32_t>(HopKind::kPe)) {
        stitched = true;
        break;
      }
    }
    if (stitched) spans_stitched_ += 1;
    if (span.latency() >= 0.0) {
      transport_seconds_.add(transport);
      compute_seconds_.add(span.latency() - transport);
    }
    // Bounded slowest-first list, same policy as SpanTracer's worst_k.
    constexpr std::size_t kWorst = 8;
    const auto at = std::upper_bound(
        worst_.begin(), worst_.end(), span,
        [](const SdoSpan& a, const SdoSpan& b) {
          return a.latency() > b.latency();
        });
    worst_.insert(at, span);
    if (worst_.size() > kWorst) worst_.resize(kWorst);
  }
}

void ClusterAggregator::absorb_flight_dump(std::uint32_t rank,
                                           ShardFlightDump dump) {
  MutexLock lock(mutex_);
  Shard& s = shard(rank);
  s.status.flight_dumps += 1;
  s.has_dump = true;
  s.dump = std::move(dump);
}

std::size_t ClusterAggregator::shard_count() const {
  MutexLock lock(mutex_);
  return shards_.size();
}

std::size_t ClusterAggregator::shards_alive() const {
  MutexLock lock(mutex_);
  std::size_t alive = 0;
  for (const auto& [rank, s] : shards_) {
    if (s.status.alive) ++alive;
  }
  return alive;
}

std::vector<std::pair<std::string, std::uint64_t>>
ClusterAggregator::cluster_counters() const {
  MutexLock lock(mutex_);
  std::map<std::string, std::uint64_t> totals;
  for (const auto& [rank, s] : shards_) {
    for (const auto& [name, value] : s.counters) totals[name] += value;
  }
  return {totals.begin(), totals.end()};
}

LatencyRegistry ClusterAggregator::merged_latency() const {
  MutexLock lock(mutex_);
  LatencyRegistry merged;
  for (const auto& [rank, s] : shards_) {
    for (const auto& [pe, snap] : s.pe_latency) {
      merged.merge_pe(pe, snap.wait, snap.service);
    }
    for (const auto& [id, snap] : s.path_latency) {
      merged.merge_path(id, snap.label, snap.end_to_end);
    }
  }
  return merged;
}

double ClusterAggregator::max_step_skew() const {
  MutexLock lock(mutex_);
  return skew_seconds_.empty() ? 0.0 : skew_seconds_.max();
}

std::map<std::uint32_t, ShardStatus> ClusterAggregator::shard_statuses()
    const {
  MutexLock lock(mutex_);
  std::map<std::uint32_t, ShardStatus> out;
  for (const auto& [rank, s] : shards_) out.emplace(rank, s.status);
  return out;
}

std::map<std::uint32_t, ShardFlightDump> ClusterAggregator::flight_dumps()
    const {
  MutexLock lock(mutex_);
  std::map<std::uint32_t, ShardFlightDump> out;
  for (const auto& [rank, s] : shards_) {
    if (s.has_dump) out.emplace(rank, s.dump);
  }
  return out;
}

std::vector<TickRecord> ClusterAggregator::trace_records() const {
  MutexLock lock(mutex_);
  std::vector<TickRecord> out = trace_;
  std::stable_sort(out.begin(), out.end(),
                   [](const TickRecord& a, const TickRecord& b) {
                     if (a.time != b.time) return a.time < b.time;
                     if (a.node != b.node) return a.node < b.node;
                     if (a.pe != b.pe) return a.pe < b.pe;
                     return a.shard < b.shard;
                   });
  return out;
}

namespace {

/// One gauge-typed sample with optional labels; header emitted once.
void prom_gauge(std::ostream& os, const char* name, const char* help,
                const PrometheusLabels& labels, double value,
                bool& header_done) {
  if (!header_done) {
    os << "# HELP " << name << ' ' << help << '\n';
    os << "# TYPE " << name << " gauge\n";
    header_done = true;
  }
  os << name;
  if (!labels.empty()) {
    os << '{';
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) os << ',';
      os << labels[i].first << "=\"" << prometheus_label_escape(labels[i].second)
         << '"';
    }
    os << '}';
  }
  os << ' ' << fmt(value) << '\n';
}

/// Counter-typed variant of prom_gauge for integer monotonic samples.
void prom_counter(std::ostream& os, const char* name, const char* help,
                  const PrometheusLabels& labels, std::uint64_t value,
                  bool& header_done) {
  if (!header_done) {
    os << "# HELP " << name << ' ' << help << '\n';
    os << "# TYPE " << name << " counter\n";
    header_done = true;
  }
  os << name;
  if (!labels.empty()) {
    os << '{';
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) os << ',';
      os << labels[i].first << "=\"" << prometheus_label_escape(labels[i].second)
         << '"';
    }
    os << '}';
  }
  os << ' ' << value << '\n';
}

}  // namespace

void ClusterAggregator::write_prometheus(std::ostream& os) const {
  MutexLock lock(mutex_);
  bool hdr;

  hdr = false;
  prom_gauge(os, "aces_cluster_shards", "Worker shards ever seen", {},
             static_cast<double>(shards_.size()), hdr);
  std::size_t alive = 0;
  for (const auto& [rank, s] : shards_) alive += s.status.alive ? 1 : 0;
  hdr = false;
  prom_gauge(os, "aces_cluster_shards_alive", "Worker shards currently alive",
             {}, static_cast<double>(alive), hdr);
  hdr = false;
  prom_gauge(os, "aces_barrier_skew_seconds_max",
             "Largest StepDone spread across one quantum", {},
             skew_seconds_.empty() ? 0.0 : skew_seconds_.max(), hdr);
  hdr = false;
  prom_gauge(os, "aces_barrier_skew_seconds_mean",
             "Mean StepDone spread across quanta", {}, skew_seconds_.mean(),
             hdr);
  hdr = false;
  prom_gauge(os, "aces_cluster_transport_seconds_mean",
             "Mean per-span wire-crossing time", {},
             transport_seconds_.mean(), hdr);
  hdr = false;
  prom_gauge(os, "aces_cluster_compute_seconds_mean",
             "Mean per-span in-shard time", {}, compute_seconds_.mean(), hdr);
  hdr = false;
  prom_counter(os, "aces_cluster_spans_completed_total",
               "Spans finalized cluster-wide", {}, spans_completed_, hdr);
  hdr = false;
  prom_counter(os, "aces_cluster_spans_stitched_total",
               "Completed spans that crossed a process boundary", {},
               spans_stitched_, hdr);

  bool up_hdr = false, quantum_hdr = false, rtt_hdr = false;
  bool frames_hdr = false, bytes_hdr = false, reject_hdr = false;
  bool hb_hdr = false, relay_hdr = false;
  for (const auto& [rank, s] : shards_) {
    const std::string shard_label = std::to_string(rank);
    prom_gauge(os, "aces_shard_up", "1 while the shard is alive",
               {{"shard", shard_label}}, s.status.alive ? 1.0 : 0.0, up_hdr);
    prom_gauge(os, "aces_shard_last_quantum",
               "Newest barrier quantum heard from the shard",
               {{"shard", shard_label}},
               static_cast<double>(s.status.last_quantum), quantum_hdr);
    if (!s.status.rtt_seconds.empty()) {
      prom_gauge(os, "aces_shard_rtt_seconds",
                 "Barrier round-trip wall time (StepGo to StepDone)",
                 {{"shard", shard_label}, {"stat", "mean"}},
                 s.status.rtt_seconds.mean(), rtt_hdr);
      prom_gauge(os, "aces_shard_rtt_seconds",
                 "Barrier round-trip wall time (StepGo to StepDone)",
                 {{"shard", shard_label}, {"stat", "max"}},
                 s.status.rtt_seconds.max(), rtt_hdr);
    }
    prom_counter(os, "aces_shard_frames_total", "Frames per endpoint",
                 {{"shard", shard_label}, {"direction", "in"}},
                 s.status.frames_in, frames_hdr);
    prom_counter(os, "aces_shard_frames_total", "Frames per endpoint",
                 {{"shard", shard_label}, {"direction", "out"}},
                 s.status.frames_out, frames_hdr);
    prom_counter(os, "aces_shard_bytes_total", "Bytes per endpoint",
                 {{"shard", shard_label}, {"direction", "in"}},
                 s.status.bytes_in, bytes_hdr);
    prom_counter(os, "aces_shard_bytes_total", "Bytes per endpoint",
                 {{"shard", shard_label}, {"direction", "out"}},
                 s.status.bytes_out, bytes_hdr);
    prom_counter(os, "aces_shard_decode_rejects_total",
                 "Frames from the shard that failed to decode",
                 {{"shard", shard_label}}, s.status.decode_rejects,
                 reject_hdr);
    prom_counter(os, "aces_shard_heartbeats_total",
                 "Heartbeats received from the shard",
                 {{"shard", shard_label}}, s.status.heartbeats, hb_hdr);
    prom_counter(os, "aces_shard_relay_dropped_total",
                 "Span handoffs dropped because the destination died",
                 {{"shard", shard_label}}, s.status.relay_dropped, relay_hdr);
  }

  bool counter_hdr = false, gauge_hdr = false;
  bool perf_calls_hdr = false, perf_ns_hdr = false;
  for (const auto& [rank, s] : shards_) {
    const std::string shard_label = std::to_string(rank);
    for (const auto& [name, value] : s.counters) {
      prom_counter(os, "aces_cluster_counter_total",
                   "Worker counter, summed deltas per shard",
                   {{"name", name}, {"shard", shard_label}}, value,
                   counter_hdr);
    }
    for (const auto& [name, value] : s.gauges) {
      prom_gauge(os, "aces_cluster_gauge", "Worker gauge, last value wins",
                 {{"name", name}, {"shard", shard_label}}, value, gauge_hdr);
    }
    for (const auto& [name, totals] : s.perf) {
      prom_counter(os, "aces_perf_stage_calls_total",
                   "Perf-probe stage call count",
                   {{"stage", name}, {"shard", shard_label}}, totals.calls,
                   perf_calls_hdr);
      prom_counter(os, "aces_perf_stage_ns_total",
                   "Perf-probe stage nanoseconds",
                   {{"stage", name}, {"shard", shard_label}}, totals.ns,
                   perf_ns_hdr);
    }
  }

  bool wait_hdr = false, service_hdr = false, path_hdr = false;
  for (const auto& [rank, s] : shards_) {
    const std::string shard_label = std::to_string(rank);
    for (const auto& [pe, snap] : s.pe_latency) {
      prometheus_summary(os, "aces_pe_wait_seconds",
                         "Queue wait (enqueue to dequeue) per PE",
                         {{"pe", std::to_string(pe)}, {"shard", shard_label}},
                         snap.wait, wait_hdr);
    }
    for (const auto& [pe, snap] : s.pe_latency) {
      prometheus_summary(os, "aces_pe_service_seconds",
                         "Service time (dequeue to emit) per PE",
                         {{"pe", std::to_string(pe)}, {"shard", shard_label}},
                         snap.service, service_hdr);
    }
    for (const auto& [id, snap] : s.path_latency) {
      prometheus_histogram(os, "aces_path_latency_seconds",
                           "End-to-end latency per source-to-sink path",
                           {{"path", snap.label}, {"shard", shard_label}},
                           snap.end_to_end, path_hdr);
    }
  }
}

void ClusterAggregator::write_status(std::ostream& os) const {
  MutexLock lock(mutex_);
  os << "aces_cluster_shards " << shards_.size() << '\n';
  std::size_t alive = 0;
  std::uint64_t quantum_max = 0;
  for (const auto& [rank, s] : shards_) {
    alive += s.status.alive ? 1 : 0;
    quantum_max = std::max(quantum_max, s.status.last_quantum);
  }
  os << "aces_cluster_shards_alive " << alive << '\n';
  os << "aces_cluster_quantum_max " << quantum_max << '\n';
  os << "aces_cluster_barrier_skew_seconds_max "
     << fmt(skew_seconds_.empty() ? 0.0 : skew_seconds_.max()) << '\n';
  os << "aces_cluster_barrier_skew_seconds_mean " << fmt(skew_seconds_.mean())
     << '\n';
  os << "aces_cluster_spans_completed " << spans_completed_ << '\n';
  os << "aces_cluster_spans_stitched " << spans_stitched_ << '\n';
  os << "aces_cluster_transport_seconds_mean "
     << fmt(transport_seconds_.mean()) << '\n';
  os << "aces_cluster_compute_seconds_mean " << fmt(compute_seconds_.mean())
     << '\n';
  os << "aces_cluster_trace_records " << trace_.size() << '\n';
  for (const auto& [rank, s] : shards_) {
    const std::string p = "aces_shard_" + std::to_string(rank) + '_';
    os << p << "alive " << (s.status.alive ? 1 : 0) << '\n';
    os << p << "quantum " << s.status.last_quantum << '\n';
    os << p << "rtt_seconds_mean " << fmt(s.status.rtt_seconds.mean()) << '\n';
    os << p << "rtt_seconds_max "
       << fmt(s.status.rtt_seconds.empty() ? 0.0 : s.status.rtt_seconds.max())
       << '\n';
    os << p << "frames_in " << s.status.frames_in << '\n';
    os << p << "frames_out " << s.status.frames_out << '\n';
    os << p << "bytes_in " << s.status.bytes_in << '\n';
    os << p << "bytes_out " << s.status.bytes_out << '\n';
    os << p << "decode_rejects " << s.status.decode_rejects << '\n';
    os << p << "heartbeats " << s.status.heartbeats << '\n';
    os << p << "metrics_reports " << s.status.metrics_reports << '\n';
    os << p << "span_batches " << s.status.span_batches << '\n';
    os << p << "flight_dumps " << s.status.flight_dumps << '\n';
    os << p << "relay_dropped " << s.status.relay_dropped << '\n';
  }
}

void ClusterAggregator::write_report(std::ostream& os) const {
  // Renders from the public accessors (each takes the lock) rather than
  // holding the mutex across the whole report.
  const auto statuses = shard_statuses();
  const auto counters = cluster_counters();
  const LatencyRegistry merged = merged_latency();
  const auto dumps = flight_dumps();

  std::size_t alive = 0;
  std::uint64_t quantum_max = 0;
  for (const auto& [rank, s] : statuses) {
    alive += s.alive ? 1 : 0;
    quantum_max = std::max(quantum_max, s.last_quantum);
  }
  os << "cluster: " << statuses.size() << " shard"
     << (statuses.size() == 1 ? "" : "s") << ", " << alive
     << " alive, quantum " << quantum_max << ", barrier skew max "
     << fmt(max_step_skew() * 1e3) << " ms\n";
  {
    MutexLock lock(mutex_);
    os << "spans: completed=" << spans_completed_
       << " stitched=" << spans_stitched_
       << " transport_mean=" << fmt(transport_seconds_.mean() * 1e3)
       << "ms compute_mean=" << fmt(compute_seconds_.mean() * 1e3) << "ms\n";
  }

  os << "\nshard  state  quantum  rtt_mean_ms  rtt_max_ms  frames(in/out)  "
        "bytes(in/out)  rejects  heartbeats  relay_drop\n";
  for (const auto& [rank, s] : statuses) {
    char line[256];
    std::snprintf(
        line, sizeof line,
        // aces-lint: allow(float-format) human shard table, never diffed
        "%5u  %-5s  %7llu  %11.3f  %10.3f  %6llu/%-7llu  %6llu/%-7llu  "
        "%7llu  %10llu  %10llu",
        rank, s.alive ? "up" : "dead",
        static_cast<unsigned long long>(s.last_quantum),
        s.rtt_seconds.mean() * 1e3,
        (s.rtt_seconds.empty() ? 0.0 : s.rtt_seconds.max()) * 1e3,
        static_cast<unsigned long long>(s.frames_in),
        static_cast<unsigned long long>(s.frames_out),
        static_cast<unsigned long long>(s.bytes_in),
        static_cast<unsigned long long>(s.bytes_out),
        static_cast<unsigned long long>(s.decode_rejects),
        static_cast<unsigned long long>(s.heartbeats),
        static_cast<unsigned long long>(s.relay_dropped));
    os << line << '\n';
  }

  if (!counters.empty()) {
    os << "\ncluster counters (summed across shards):\n";
    for (const auto& [name, value] : counters) {
      os << "  " << name << " = " << value << '\n';
    }
  }

  if (!merged.pes().empty()) {
    os << "\nmerged per-PE latency (seconds):\n";
    os << "   pe        n  wait_p50  wait_p99  svc_p50   svc_p99\n";
    for (const auto& [pe, stats] : merged.pes()) {
      const LatencyQuantiles w = quantiles_of(stats.wait);
      const LatencyQuantiles v = quantiles_of(stats.service);
      char line[160];
      std::snprintf(line, sizeof line,
                    // aces-lint: allow(float-format) human table, not diffed
                    "%5u  %7llu  %8.2g  %8.2g  %8.2g  %8.2g", pe,
                    static_cast<unsigned long long>(w.count), w.p50, w.p99,
                    v.p50, v.p99);
      os << line << '\n';
    }
  }
  if (!merged.paths().empty()) {
    os << "\nmerged per-path latency (seconds):\n";
    os << "  path: n p50 p99 max\n";
    for (const auto& [id, stats] : merged.paths()) {
      const LatencyQuantiles q = quantiles_of(stats.end_to_end);
      os << "  " << stats.label << ": " << q.count << ' ' << fmt(q.p50) << ' '
         << fmt(q.p99) << ' ' << fmt(q.max) << '\n';
    }
  }

  {
    MutexLock lock(mutex_);
    if (!worst_.empty()) {
      os << "\nslowest completed spans:\n";
      for (const SdoSpan& span : worst_) {
        os << "  trace " << span.trace_id << " path "
           << path_label(span.hop_pes()) << " latency "
           << fmt(span.latency() * 1e3) << "ms transport "
           << fmt(span.transport_time() * 1e3) << "ms\n";
      }
    }
  }

  if (!dumps.empty()) {
    os << "\nflight-recorder evidence (last dump per shard):\n";
    for (const auto& [rank, dump] : dumps) {
      const auto it = statuses.find(rank);
      const bool dead = it != statuses.end() && !it->second.alive;
      os << "  shard " << rank << (dead ? " [DEAD]" : "") << ": event="
         << dump.event << " t=" << fmt(dump.time)
         << " pushed=" << dump.pushed << " recent=" << dump.recent.size()
         << " in_flight=" << dump.in_flight.size() << '\n';
    }
  }
}

// ---------------------------------------------------------------------------
// StatusServer

StatusServer::StatusServer(const ClusterAggregator* aggregator,
                           std::uint16_t port)
    : aggregator_(aggregator) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return;
  }
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    error_ = std::string("bind: ") + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return;
  }
  if (::listen(fd_, 16) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  thread_ = std::thread(&StatusServer::serve_loop, this);
}

StatusServer::~StatusServer() { stop(); }

void StatusServer::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void StatusServer::serve_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int client = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (client < 0) continue;
    std::ostringstream body;
    aggregator_->write_status(body);
    const std::string text = body.str();
    std::size_t sent = 0;
    while (sent < text.size()) {
      const ssize_t n = ::send(client, text.data() + sent, text.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    ::close(client);
  }
}

}  // namespace aces::obs
