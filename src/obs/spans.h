// Sampled per-SDO tracing: Dapper-style spans piggybacking on SDO handoff.
//
// A span follows one sampled SDO from source acceptance through every PE it
// visits (enqueue / dequeue / emit timestamps per hop) to egress emission.
// Fan-out keeps the trace linear: when a traced SDO is replicated
// downstream, the span continues into the *first* copy only, so a span is
// one root-to-sink path — exactly what the per-path latency histograms and
// the flight recorder want. Drops and node crashes end a span with its
// `dropped` flag set; those partial spans are the post-mortem payload.
//
// Determinism: the sampling decision is a pure function of
// (seed, source PE, per-PE acceptance counter) — the same counter-hash
// scheme as fault::FaultInjector — so a traced simulator run admits the
// same spans regardless of how many sweep jobs run beside it, and traced
// vs. untraced runs produce bit-identical RunReports (hooks never touch
// event order, only record timestamps).
//
// Overhead: substrates hold a nullable SpanTracer*; when null the per-SDO
// cost is one pointer test (the CounterRegistry pattern). When tracing, an
// unsampled SDO costs one atomic fetch_add + hash at the source and a
// handle<0 test per hop. Hop updates on a sampled span are plain stores —
// the span is owned by whichever thread holds the SDO, and queue handoff
// publishes it. Only begin/complete/drop take the tracer mutex, which at
// ~1% sampling is far off the hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "common/types.h"
#include "obs/latency.h"

namespace aces::obs {

/// One PE visit. Timestamps are substrate time (sim virtual seconds or
/// runtime virtual-clock seconds); negative means "not reached".
struct SpanHop {
  std::uint32_t pe = 0;
  Seconds enqueue = -1.0;
  Seconds dequeue = -1.0;
  Seconds emit = -1.0;
};

/// A completed or in-flight trace of one SDO. Trivially copyable: the
/// flight recorder snapshots these through a seqlock with memcpy semantics.
struct SdoSpan {
  static constexpr std::size_t kMaxHops = 16;

  std::uint64_t trace_id = 0;
  std::uint32_t source_pe = 0;
  Seconds start = -1.0;  // source acceptance
  Seconds end = -1.0;    // egress emission (or drop time)
  std::uint32_t hop_count = 0;
  bool dropped = false;
  bool truncated = false;  // visited more than kMaxHops PEs
  SpanHop hops[kMaxHops];

  /// End-to-end latency; -1 while in flight.
  [[nodiscard]] Seconds latency() const {
    return end >= 0.0 ? end - start : -1.0;
  }
  /// Hop PE ids in visit order, for path_id()/path_label().
  [[nodiscard]] std::vector<std::uint32_t> hop_pes() const;
};
static_assert(std::is_trivially_copyable_v<SdoSpan>);

/// Fixed-size ring of recently completed spans. Writers are lock-free
/// (ticket from an atomic head, per-slot seqlock); readers copy slots and
/// discard torn ones. Sized small: this is a black box, not a log.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity);

  void push(const SdoSpan& span);

  /// Most-recent-last copy of the intact completed slots. Safe to call
  /// while writers run; concurrently-written slots are skipped.
  [[nodiscard]] std::vector<SdoSpan> snapshot() const;

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::uint64_t pushed() const {
    return head_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    // Even = stable, odd = write in progress. A writer with ticket T sets
    // 2T+1, copies, then sets 2T+2, so a reader seeing the same even value
    // before and after its copy knows the payload is the ticket-T span.
    std::atomic<std::uint64_t> seq{0};
    SdoSpan span;
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> head_{0};
};

/// One automatic dump taken when a fault.* event fired: the recorder's
/// recent completions plus every span that was still in flight.
struct FlightDump {
  std::string event;  // e.g. "fault.node_crash"
  Seconds time = 0.0;
  std::vector<SdoSpan> recent;
  std::vector<SdoSpan> in_flight;
};

struct SpanTracerOptions {
  double sample_rate = 0.01;  // fraction of source SDOs traced
  std::uint64_t seed = 1;
  std::size_t max_in_flight = 4096;  // span pool size
  std::size_t ring_capacity = 256;   // flight recorder slots
  std::size_t worst_k = 8;           // slowest completed spans retained
  std::size_t max_dumps = 8;         // fault dumps retained per run
};

class SpanTracer {
 public:
  explicit SpanTracer(SpanTracerOptions options);

  /// Sampling draw at source acceptance. Returns a span handle, or -1 when
  /// the SDO is unsampled (or the pool is exhausted — counted, not fatal).
  /// `pe_count` is implied by use; any source PE id is accepted.
  [[nodiscard]] std::int32_t begin(PeId source_pe, Seconds t);

  // Hop lifecycle. All tolerate handle < 0 so call sites stay branch-light.
  void on_enqueue(std::int32_t handle, PeId pe, Seconds t);
  void on_dequeue(std::int32_t handle, Seconds t);
  void on_emit(std::int32_t handle, Seconds t);

  /// Egress emission: finalizes the span into the latency registry, the
  /// flight recorder, and the worst-span list, then recycles the slot.
  void complete(std::int32_t handle, Seconds t);
  /// Delivery drop / crash loss: finalizes with dropped=true. Per-hop
  /// histograms still absorb the hops that finished; the path histogram
  /// does not (an unfinished path is not an end-to-end sample).
  void drop(std::int32_t handle, Seconds t);

  /// Records a FlightDump for `event` (a fault.* counter name). Bounded by
  /// max_dumps; later events past the cap are counted but not retained.
  void fault_dump(const std::string& event, Seconds t);

  [[nodiscard]] const SpanTracerOptions& options() const { return options_; }
  [[nodiscard]] const LatencyRegistry& latency() const { return latency_; }
  [[nodiscard]] const std::vector<FlightDump>& dumps() const { return dumps_; }
  /// Completed spans, slowest first, at most worst_k.
  [[nodiscard]] const std::vector<SdoSpan>& worst_spans() const {
    return worst_;
  }
  [[nodiscard]] const FlightRecorder& recorder() const { return recorder_; }

  [[nodiscard]] std::uint64_t spans_started() const { return started_; }
  [[nodiscard]] std::uint64_t spans_completed() const { return completed_; }
  [[nodiscard]] std::uint64_t spans_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t pool_exhausted() const { return exhausted_; }
  [[nodiscard]] std::uint64_t dumps_taken() const { return dumps_taken_; }

 private:
  /// True iff the seq-th SDO accepted at `pe` is sampled. Pure in
  /// (seed, pe, seq) — mirrors fault::FaultInjector::draw.
  [[nodiscard]] bool sampled(std::uint32_t pe, std::uint64_t seq) const;

  void finalize(std::int32_t handle, Seconds t, bool dropped);

  SpanTracerOptions options_;
  std::uint64_t threshold_;  // sample_rate as a 64-bit hash threshold

  // Per-source-PE acceptance counters, guarded by mutex_ (begin() holds it
  // anyway to touch the span pool).
  std::vector<std::uint64_t> sequences_;

  std::vector<SdoSpan> pool_;
  std::vector<std::int32_t> free_;
  std::vector<bool> active_;

  LatencyRegistry latency_;
  FlightRecorder recorder_;
  std::vector<SdoSpan> worst_;
  std::vector<FlightDump> dumps_;

  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t exhausted_ = 0;
  std::uint64_t dumps_taken_ = 0;

  mutable std::mutex mutex_;
};

}  // namespace aces::obs
