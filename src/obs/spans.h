// Sampled per-SDO tracing: Dapper-style spans piggybacking on SDO handoff.
//
// A span follows one sampled SDO from source acceptance through every PE it
// visits (enqueue / dequeue / emit timestamps per hop) to egress emission.
// Fan-out keeps the trace linear: when a traced SDO is replicated
// downstream, the span continues into the *first* copy only, so a span is
// one root-to-sink path — exactly what the per-path latency histograms and
// the flight recorder want. Drops and node crashes end a span with its
// `dropped` flag set; those partial spans are the post-mortem payload.
//
// Determinism: the sampling decision is a pure function of
// (seed, source PE, per-PE acceptance counter) — the same counter-hash
// scheme as fault::FaultInjector — so a traced simulator run admits the
// same spans regardless of how many sweep jobs run beside it, and traced
// vs. untraced runs produce bit-identical RunReports (hooks never touch
// event order, only record timestamps).
//
// Overhead: substrates hold a nullable SpanTracer*; when null the per-SDO
// cost is one pointer test (the CounterRegistry pattern). When tracing, an
// unsampled SDO costs one atomic fetch_add + hash at the source and a
// handle<0 test per hop. Every operation on a *sampled* span (begin, hop
// updates, complete/drop) takes the tracer mutex: hop state must be
// mutually excluded against fault_dump(), which walks the in-flight pool
// from whichever node thread observed the fault. At ~1% sampling the lock
// is far off the hot path, and -Wthread-safety proves the discipline.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "common/atomic_shim.h"
#include "common/mutex.h"
#include "common/seqlock.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "obs/latency.h"

namespace aces::obs {

/// What a hop represents. kPe hops are PE visits and define the span's
/// path identity; the wire_* kinds mark a process boundary in the
/// distributed runtime (serialize at the sender, send at quantum end,
/// receive at the next quantum start) so cross-shard latency decomposes
/// into compute vs. transport without perturbing path ids.
enum class HopKind : std::uint32_t {
  kPe = 0,
  kWireSerialize = 1,
  kWireSend = 2,
  kWireRecv = 3,
};

/// One PE visit (or wire crossing). Timestamps are substrate time (sim
/// virtual seconds or runtime virtual-clock seconds); negative means "not
/// reached". `kind` occupies what used to be padding, so SpanHop stays the
/// same size the flight recorder's seqlock layout was proven against.
struct SpanHop {
  std::uint32_t pe = 0;
  std::uint32_t kind = 0;  // HopKind; raw int keeps the struct trivial
  Seconds enqueue = -1.0;
  Seconds dequeue = -1.0;
  Seconds emit = -1.0;
};

/// A completed or in-flight trace of one SDO. Trivially copyable: the
/// flight recorder snapshots these through a seqlock with word-wise copy
/// semantics.
struct SdoSpan {
  static constexpr std::size_t kMaxHops = 16;

  std::uint64_t trace_id = 0;
  std::uint32_t source_pe = 0;
  Seconds start = -1.0;  // source acceptance
  Seconds end = -1.0;    // egress emission (or drop time)
  std::uint32_t hop_count = 0;
  bool dropped = false;
  bool truncated = false;  // visited more than kMaxHops PEs
  SpanHop hops[kMaxHops];

  /// End-to-end latency; -1 while in flight.
  [[nodiscard]] Seconds latency() const {
    return end >= 0.0 ? end - start : -1.0;
  }
  /// PE ids of the kPe hops in visit order, for path_id()/path_label().
  /// Wire hops are excluded so a span stitched across processes keeps the
  /// same path identity as its in-process equivalent.
  [[nodiscard]] std::vector<std::uint32_t> hop_pes() const;
  /// Sum of (emit - enqueue) over the wire hops: time the SDO spent
  /// crossing process boundaries. 0 for purely local spans.
  [[nodiscard]] Seconds transport_time() const;
};
static_assert(std::is_trivially_copyable_v<SdoSpan>);
static_assert(sizeof(SpanHop) == 32,
              "SpanHop::kind must live in former padding; growing the hop "
              "changes the flight recorder's published word layout");

/// Fixed-size ring of recently completed spans.
///
/// Concurrency contract: push() calls must be externally serialized (the
/// SpanTracer holds its mutex across every push), but snapshot() is safe
/// from ANY thread at ANY time without a lock — that is the point of the
/// per-slot seqlock. The payload is stored as relaxed-atomic 64-bit words,
/// never as a raw struct, so a reader racing a writer reads *atomic* data
/// (no C++ data race / UB) and the sequence check discards torn copies.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity);

  /// Publishes `span` into the ring. Callers must serialize push() calls
  /// (SpanTracer's mutex does); concurrent snapshot() readers are fine.
  void push(const SdoSpan& span);

  /// Most-recent-last copy of the intact completed slots. Safe to call
  /// while a writer runs; concurrently-written slots are skipped.
  [[nodiscard]] std::vector<SdoSpan> snapshot() const;

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::uint64_t pushed() const {
    return head_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kSpanWords = sizeof(SdoSpan) / 8;
  static_assert(sizeof(SdoSpan) % 8 == 0,
                "SdoSpan must be a whole number of 64-bit words for the "
                "seqlock's word-wise atomic copy");

  // The Boehm seqlock protocol lives in common/seqlock.h (where the
  // ordering argument is documented and the bounded model checker verifies
  // it on a 2-word instance — tests/check/seqlock_mc_test.cc); the
  // recorder just stamps tickets and copies spans word-wise.
  using Slot = SeqLockSlot<kSpanWords>;

  std::vector<Slot> slots_;
  Atomic<std::uint64_t> head_{0};
};

/// One automatic dump taken when a fault.* event fired: the recorder's
/// recent completions plus every span that was still in flight.
struct FlightDump {
  std::string event;  // e.g. "fault.node_crash"
  Seconds time = 0.0;
  std::vector<SdoSpan> recent;
  std::vector<SdoSpan> in_flight;
};

struct SpanTracerOptions {
  double sample_rate = 0.01;  // fraction of source SDOs traced
  std::uint64_t seed = 1;
  std::size_t max_in_flight = 4096;  // span pool size
  std::size_t ring_capacity = 256;   // flight recorder slots
  std::size_t worst_k = 8;           // slowest completed spans retained
  std::size_t max_dumps = 8;         // fault dumps retained per run
  /// Buffer every finalized span for take_completed() — the distributed
  /// worker drains this each barrier epoch to ship spans to the
  /// coordinator. Off by default: single-process substrates aggregate in
  /// place and must not grow a drain buffer nobody reads.
  bool keep_completed = false;
};

class SpanTracer {
 public:
  explicit SpanTracer(SpanTracerOptions options);

  /// Sampling draw at source acceptance. Returns a span handle, or -1 when
  /// the SDO is unsampled (or the pool is exhausted — counted, not fatal).
  /// `pe_count` is implied by use; any source PE id is accepted.
  [[nodiscard]] std::int32_t begin(PeId source_pe, Seconds t)
      ACES_EXCLUDES(mutex_);

  // Hop lifecycle. All tolerate handle < 0 so call sites stay branch-light
  // (the unsampled path never touches the lock).
  void on_enqueue(std::int32_t handle, PeId pe, Seconds t)
      ACES_EXCLUDES(mutex_);
  void on_dequeue(std::int32_t handle, Seconds t) ACES_EXCLUDES(mutex_);
  void on_emit(std::int32_t handle, Seconds t) ACES_EXCLUDES(mutex_);

  /// Egress emission: finalizes the span into the latency registry, the
  /// flight recorder, and the worst-span list, then recycles the slot.
  void complete(std::int32_t handle, Seconds t) ACES_EXCLUDES(mutex_);
  /// Delivery drop / crash loss: finalizes with dropped=true. Per-hop
  /// histograms still absorb the hops that finished; the path histogram
  /// does not (an unfinished path is not an end-to-end sample).
  void drop(std::int32_t handle, Seconds t) ACES_EXCLUDES(mutex_);

  /// Records a FlightDump for `event` (a fault.* counter name). Bounded by
  /// max_dumps; later events past the cap are counted but not retained.
  void fault_dump(const std::string& event, Seconds t) ACES_EXCLUDES(mutex_);

  // Cross-process stitching. When a traced SDO leaves the worker, the
  // sender detaches the span (no finalization — the trace continues
  // elsewhere) and ships the partial SdoSpan over the wire; the receiving
  // worker adopts it into a fresh slot and keeps appending hops. Sampling
  // stays a pure function of (seed, source PE, acceptance counter) because
  // only the source worker draws; adopted spans were already sampled.

  /// Allocates a slot holding a copy of `prefix` (an in-flight span
  /// arriving from another process). Returns -1 when the pool is exhausted
  /// (counted). Does not count as a new started span.
  [[nodiscard]] std::int32_t adopt(const SdoSpan& prefix)
      ACES_EXCLUDES(mutex_);
  /// Copies the in-flight span out and frees the slot WITHOUT finalizing:
  /// no histogram contribution, no recorder push — the adopting process
  /// finalizes. Returns false for stale/inactive handles.
  bool detach(std::int32_t handle, SdoSpan* out) ACES_EXCLUDES(mutex_);
  /// Appends a wire hop (kind != kPe) with all three timestamps = t.
  /// Tolerates handle < 0; sets `truncated` past kMaxHops like on_enqueue.
  void append_wire_hop(std::int32_t handle, PeId pe, HopKind kind, Seconds t)
      ACES_EXCLUDES(mutex_);
  /// Drains the keep_completed buffer (empty unless the option is set).
  [[nodiscard]] std::vector<SdoSpan> take_completed() ACES_EXCLUDES(mutex_);

  [[nodiscard]] const SpanTracerOptions& options() const { return options_; }
  /// Read-after-quiesce accessor: valid once every substrate thread that
  /// held span handles has joined. Deliberately unlocked — it returns a
  /// reference the lock could not protect anyway.
  [[nodiscard]] const LatencyRegistry& latency() const
      ACES_NO_THREAD_SAFETY_ANALYSIS {
    return latency_;
  }
  /// Read-after-quiesce accessor (see latency()).
  [[nodiscard]] const std::vector<FlightDump>& dumps() const
      ACES_NO_THREAD_SAFETY_ANALYSIS {
    return dumps_;
  }
  /// Completed spans, slowest first, at most worst_k. Read-after-quiesce
  /// accessor (see latency()).
  [[nodiscard]] const std::vector<SdoSpan>& worst_spans() const
      ACES_NO_THREAD_SAFETY_ANALYSIS {
    return worst_;
  }
  [[nodiscard]] const FlightRecorder& recorder() const { return recorder_; }

  [[nodiscard]] std::uint64_t spans_started() const ACES_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return started_;
  }
  [[nodiscard]] std::uint64_t spans_completed() const ACES_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return completed_;
  }
  [[nodiscard]] std::uint64_t spans_dropped() const ACES_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return dropped_;
  }
  [[nodiscard]] std::uint64_t pool_exhausted() const ACES_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return exhausted_;
  }
  [[nodiscard]] std::uint64_t dumps_taken() const ACES_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return dumps_taken_;
  }

 private:
  /// True iff the seq-th SDO accepted at `pe` is sampled. Pure in
  /// (seed, pe, seq) — mirrors fault::FaultInjector::draw.
  [[nodiscard]] bool sampled(std::uint32_t pe, std::uint64_t seq) const;

  void finalize(std::int32_t handle, Seconds t, bool dropped)
      ACES_EXCLUDES(mutex_);

  SpanTracerOptions options_;
  std::uint64_t threshold_;  // sample_rate as a 64-bit hash threshold

  /// Per-source-PE acceptance counters.
  std::vector<std::uint64_t> sequences_ ACES_GUARDED_BY(mutex_);

  std::vector<SdoSpan> pool_ ACES_GUARDED_BY(mutex_);
  std::vector<std::int32_t> free_ ACES_GUARDED_BY(mutex_);
  std::vector<bool> active_ ACES_GUARDED_BY(mutex_);

  LatencyRegistry latency_ ACES_GUARDED_BY(mutex_);
  FlightRecorder recorder_;  // internally synchronized (seqlock)
  std::vector<SdoSpan> worst_ ACES_GUARDED_BY(mutex_);
  std::vector<FlightDump> dumps_ ACES_GUARDED_BY(mutex_);
  std::vector<SdoSpan> completed_buffer_ ACES_GUARDED_BY(mutex_);

  std::uint64_t started_ ACES_GUARDED_BY(mutex_) = 0;
  std::uint64_t completed_ ACES_GUARDED_BY(mutex_) = 0;
  std::uint64_t dropped_ ACES_GUARDED_BY(mutex_) = 0;
  std::uint64_t exhausted_ ACES_GUARDED_BY(mutex_) = 0;
  std::uint64_t dumps_taken_ ACES_GUARDED_BY(mutex_) = 0;

  mutable Mutex mutex_;
};

}  // namespace aces::obs
