#include "obs/latency.h"

#include "common/rng.h"

namespace aces::obs {

LatencyQuantiles quantiles_of(const LogHistogram& h) {
  LatencyQuantiles q;
  q.count = h.count();
  if (q.count == 0) return q;
  q.p50 = h.median();
  q.p90 = h.p90();
  q.p99 = h.p99();
  q.p999 = h.p999();
  q.mean = h.mean();
  q.max = h.max();
  return q;
}

std::uint64_t path_id(const std::vector<std::uint32_t>& hop_pes) {
  // Fold each hop into a SplitMix64 chain. The +1 keeps PE 0 from being a
  // no-op against a zero state; the constant seeds the empty path.
  std::uint64_t state = 0xACE5ACE5ACE5ACE5ULL;
  for (const std::uint32_t pe : hop_pes) {
    state ^= 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(pe) + 1);
    state = splitmix64(state);
  }
  return state;
}

std::string path_label(const std::vector<std::uint32_t>& hop_pes) {
  std::string label;
  for (std::size_t i = 0; i < hop_pes.size(); ++i) {
    if (i > 0) label.push_back('>');
    label += std::to_string(hop_pes[i]);
  }
  return label;
}

LogHistogram LatencyRegistry::make_histogram() {
  // Latencies in seconds: sub-microsecond to 10^4 s covers everything the
  // substrates produce; 20 buckets/decade bounds relative error near 12%.
  return LogHistogram(1e-6, 1e4, 20);
}

void LatencyRegistry::record_hop(std::uint32_t pe, double wait_s,
                                 double service_s) {
  auto it = pes_.find(pe);
  if (it == pes_.end()) {
    it = pes_.emplace(pe, PeStats{make_histogram(), make_histogram()}).first;
  }
  if (wait_s >= 0.0) it->second.wait.add(wait_s);
  if (service_s >= 0.0) it->second.service.add(service_s);
}

void LatencyRegistry::record_path(const std::vector<std::uint32_t>& hop_pes,
                                  double e2e_s) {
  const std::uint64_t id = path_id(hop_pes);
  auto it = paths_.find(id);
  if (it == paths_.end()) {
    it = paths_.emplace(id, PathStats{path_label(hop_pes), make_histogram()})
             .first;
  }
  if (e2e_s >= 0.0) it->second.end_to_end.add(e2e_s);
}

void LatencyRegistry::merge(const LatencyRegistry& other) {
  for (const auto& [pe, stats] : other.pes_) {
    auto it = pes_.find(pe);
    if (it == pes_.end()) {
      pes_.emplace(pe, stats);
    } else {
      it->second.wait.merge(stats.wait);
      it->second.service.merge(stats.service);
    }
  }
  for (const auto& [id, stats] : other.paths_) {
    auto it = paths_.find(id);
    if (it == paths_.end()) {
      paths_.emplace(id, stats);
    } else {
      it->second.end_to_end.merge(stats.end_to_end);
    }
  }
}

void LatencyRegistry::merge_pe(std::uint32_t pe, const LogHistogram& wait,
                               const LogHistogram& service) {
  auto it = pes_.find(pe);
  if (it == pes_.end()) {
    pes_.emplace(pe, PeStats{wait, service});
  } else {
    it->second.wait.merge(wait);
    it->second.service.merge(service);
  }
}

void LatencyRegistry::merge_path(std::uint64_t id, const std::string& label,
                                 const LogHistogram& end_to_end) {
  auto it = paths_.find(id);
  if (it == paths_.end()) {
    paths_.emplace(id, PathStats{label, end_to_end});
  } else {
    it->second.end_to_end.merge(end_to_end);
  }
}

void LatencyRegistry::reset() {
  pes_.clear();
  paths_.clear();
}

}  // namespace aces::obs
