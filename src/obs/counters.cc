#include "obs/counters.h"

#include <mutex>

namespace aces::obs {

Counter CounterRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& cell = counters_[name];
  if (cell == nullptr) cell = std::make_unique<std::atomic<std::uint64_t>>(0);
  return Counter(cell.get());
}

Gauge CounterRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& cell = gauges_[name];
  if (cell == nullptr) cell = std::make_unique<std::atomic<double>>(0.0);
  return Gauge(cell.get());
}

CounterSnapshot CounterRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CounterSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) {
    snap.counters.emplace_back(name, cell->load(std::memory_order_relaxed));
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, cell] : gauges_) {
    snap.gauges.emplace_back(name, cell->load(std::memory_order_relaxed));
  }
  return snap;
}

Counter make_counter(CounterRegistry* registry, const std::string& name) {
  return registry != nullptr ? registry->counter(name) : Counter();
}

Gauge make_gauge(CounterRegistry* registry, const std::string& name) {
  return registry != nullptr ? registry->gauge(name) : Gauge();
}

}  // namespace aces::obs
