#include "obs/counters.h"

namespace aces::obs {

namespace {
constexpr std::size_t kMaxShards = 256;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

CounterRegistry::CounterRegistry(std::size_t shards)
    : shard_count_(std::min(round_up_pow2(shards == 0 ? 1 : shards),
                            kMaxShards)) {}

Counter CounterRegistry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& cells = counters_[name];
  if (cells == nullptr) cells = std::make_unique<CounterCell[]>(shard_count_);
  return Counter(cells.get(), shard_count_ - 1);
}

Gauge CounterRegistry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& cell = gauges_[name];
  if (cell == nullptr) cell = std::make_unique<Atomic<double>>(0.0);
  return Gauge(cell.get());
}

CounterSnapshot CounterRegistry::snapshot() const {
  MutexLock lock(mutex_);
  CounterSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, cells] : counters_) {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < shard_count_; ++s) {
      total += cells[s].value.load(std::memory_order_relaxed);
    }
    snap.counters.emplace_back(name, total);
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, cell] : gauges_) {
    snap.gauges.emplace_back(name, cell->load(std::memory_order_relaxed));
  }
  return snap;
}

Counter make_counter(CounterRegistry* registry, const std::string& name) {
  return registry != nullptr ? registry->counter(name) : Counter();
}

Gauge make_gauge(CounterRegistry* registry, const std::string& name) {
  return registry != nullptr ? registry->gauge(name) : Gauge();
}

}  // namespace aces::obs
