// Per-PE stability analysis over a recorded control trace.
//
// Computes the paper's §V-E convergence measures — settling time of the
// buffer-occupancy trajectory and post-settling oscillation amplitude —
// directly from TickRecords, via metrics::TimeSeries::settling_time. The
// steady-state target is estimated from the trailing window of the trace
// (the trace does not carry b0), which matches how Figure 3 reads: "does
// the buffer stop moving, and how fast did it get there".
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.h"
#include "obs/trace.h"

namespace aces::obs {

struct TraceSummaryOptions {
  /// Fraction of the trace's time span, at the end, used to estimate the
  /// steady-state occupancy target.
  double tail_fraction = 0.25;
  /// Settling tolerance as a fraction of the observed occupancy range.
  double tolerance_fraction = 0.1;
  /// Tolerance floor in SDOs (occupancy is integral; sub-SDO tolerances
  /// would declare a settled buffer oscillating).
  double min_tolerance = 1.0;
};

struct PeTraceSummary {
  std::uint32_t pe = 0;
  std::uint32_t node = 0;
  std::size_t ticks = 0;
  double occupancy_mean = 0.0;
  double occupancy_min = 0.0;
  double occupancy_max = 0.0;
  /// Steady-state occupancy estimate (trailing-window mean).
  double steady_target = 0.0;
  /// Tolerance band actually used for settling_time.
  double tolerance = 0.0;
  /// Absolute time after which occupancy stays within `tolerance` of
  /// `steady_target`; +inf when the trajectory never settles.
  Seconds settling_time = std::numeric_limits<double>::infinity();
  /// Stddev of occupancy after settling (after the tail window when the
  /// trajectory never settles) — the oscillation amplitude.
  double oscillation_amplitude = 0.0;
  double share_mean = 0.0;
  /// Final cumulative drop count at this PE.
  std::uint64_t drops = 0;
};

/// One summary per PE appearing in `records`, ordered by PE id. Records may
/// arrive in any order (the threaded runtime interleaves nodes); they are
/// sorted by time per PE internally.
std::vector<PeTraceSummary> summarize_trace(
    const std::vector<TickRecord>& records,
    const TraceSummaryOptions& options = {});

}  // namespace aces::obs
