// Serialization of telemetry: JSONL and CSV for traces and counter
// snapshots, plus a human-readable phase-profile summary.
//
// JSONL (one flat JSON object per line) is the interchange format —
// `aces trace-summary` reads it back — and CSV is for spreadsheets and
// plotting scripts. Non-finite doubles (the +inf "no constraint"
// advertisements) serialize as JSON `null` / CSV `inf` and parse back to
// +infinity.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "obs/counters.h"
#include "obs/scoped_timer.h"
#include "obs/spans.h"
#include "obs/trace.h"

namespace aces::obs {

/// One JSON object per record per line. Keys: time, node, pe, buffer,
/// arrived, processed, cpu_share, cpu_used, advertised_rmax,
/// downstream_rmax, tokens, blocked, drops.
void write_trace_jsonl(std::ostream& os, const std::vector<TickRecord>& records);

/// Header + one row per record, columns in the JSONL key order.
void write_trace_csv(std::ostream& os, const std::vector<TickRecord>& records);

/// Parses write_trace_jsonl output (tolerant of unknown keys; missing keys
/// keep their defaults). Blank lines are skipped.
std::vector<TickRecord> read_trace_jsonl(std::istream& is);

/// One JSON object per cell: {"name":...,"type":"counter"|"gauge","value":...}.
void write_counters_jsonl(std::ostream& os, const CounterSnapshot& snapshot);

/// CSV with header name,type,value.
void write_counters_csv(std::ostream& os, const CounterSnapshot& snapshot);

/// Per-phase count / median / p99 in microseconds, one line per phase.
void write_profile_summary(std::ostream& os, const PhaseProfiler& profiler);

/// Escapes a string for use inside a Prometheus label value: `\` -> `\\`,
/// `"` -> `\"`, newline -> `\n` (the three escapes the text exposition
/// format defines). Every exporter label value goes through this so a
/// pathological PE or path name cannot corrupt the scrape.
std::string prometheus_label_escape(const std::string& value);

/// Label set for one Prometheus sample, rendered in order as
/// `key="escaped-value"` pairs. Values are escaped by the emitters; keys
/// are trusted identifiers.
using PrometheusLabels = std::vector<std::pair<std::string, std::string>>;

/// Emits one summary-typed family member: quantile-labelled samples plus
/// `_sum`/`_count`. `header_done` tracks whether the family's `# HELP` /
/// `# TYPE` preamble has been written — callers pass one flag per family
/// so the preamble appears exactly once no matter how many label sets are
/// emitted.
void prometheus_summary(std::ostream& os, const char* name, const char* help,
                        const PrometheusLabels& labels, const LogHistogram& h,
                        bool& header_done);

/// Emits one histogram-typed family member with cumulative `le` buckets at
/// every quarter decade of the log-bucketed histogram (keeps the scrape
/// small), the underflow folded into the first boundary, a closing `+Inf`
/// bucket, and `_sum`/`_count`. Same once-per-family header contract as
/// prometheus_summary.
void prometheus_histogram(std::ostream& os, const char* name, const char* help,
                          const PrometheusLabels& labels, const LogHistogram& h,
                          bool& header_done);

/// Prometheus text exposition of the data-plane latency state: span
/// lifecycle counters (aces_spans_*_total), per-PE wait/service summaries
/// (quantile-labelled), and per-path end-to-end histograms with
/// log-spaced `le` boundaries (one boundary per quarter decade keeps the
/// output scrape-sized; counts are cumulative as the format requires).
void write_latency_prometheus(std::ostream& os, const SpanTracer& tracer);

/// JSONL exposition of the same state, one kind-tagged flat object per
/// line: "meta" (run/sampling info), "pe" (per-PE wait+service
/// percentiles), "path" (per-path end-to-end percentiles), "span" (the
/// worst_k slowest completed spans), "dump" + "dump_span" (flight-recorder
/// fault dumps). Hop lists are encoded as a compact string
/// ("pe@enq/deq/emit|...") so the flat-scanner JSONL conventions hold.
void write_spans_jsonl(std::ostream& os, const SpanTracer& tracer);

}  // namespace aces::obs
