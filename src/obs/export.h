// Serialization of telemetry: JSONL and CSV for traces and counter
// snapshots, plus a human-readable phase-profile summary.
//
// JSONL (one flat JSON object per line) is the interchange format —
// `aces trace-summary` reads it back — and CSV is for spreadsheets and
// plotting scripts. Non-finite doubles (the +inf "no constraint"
// advertisements) serialize as JSON `null` / CSV `inf` and parse back to
// +infinity.
#pragma once

#include <iosfwd>
#include <vector>

#include "obs/counters.h"
#include "obs/scoped_timer.h"
#include "obs/spans.h"
#include "obs/trace.h"

namespace aces::obs {

/// One JSON object per record per line. Keys: time, node, pe, buffer,
/// arrived, processed, cpu_share, cpu_used, advertised_rmax,
/// downstream_rmax, tokens, blocked, drops.
void write_trace_jsonl(std::ostream& os, const std::vector<TickRecord>& records);

/// Header + one row per record, columns in the JSONL key order.
void write_trace_csv(std::ostream& os, const std::vector<TickRecord>& records);

/// Parses write_trace_jsonl output (tolerant of unknown keys; missing keys
/// keep their defaults). Blank lines are skipped.
std::vector<TickRecord> read_trace_jsonl(std::istream& is);

/// One JSON object per cell: {"name":...,"type":"counter"|"gauge","value":...}.
void write_counters_jsonl(std::ostream& os, const CounterSnapshot& snapshot);

/// CSV with header name,type,value.
void write_counters_csv(std::ostream& os, const CounterSnapshot& snapshot);

/// Per-phase count / median / p99 in microseconds, one line per phase.
void write_profile_summary(std::ostream& os, const PhaseProfiler& profiler);

/// Prometheus text exposition of the data-plane latency state: span
/// lifecycle counters (aces_spans_*_total), per-PE wait/service summaries
/// (quantile-labelled), and per-path end-to-end histograms with
/// log-spaced `le` boundaries (one boundary per quarter decade keeps the
/// output scrape-sized; counts are cumulative as the format requires).
void write_latency_prometheus(std::ostream& os, const SpanTracer& tracer);

/// JSONL exposition of the same state, one kind-tagged flat object per
/// line: "meta" (run/sampling info), "pe" (per-PE wait+service
/// percentiles), "path" (per-path end-to-end percentiles), "span" (the
/// worst_k slowest completed spans), "dump" + "dump_span" (flight-recorder
/// fault dumps). Hop lists are encoded as a compact string
/// ("pe@enq/deq/emit|...") so the flat-scanner JSONL conventions hold.
void write_spans_jsonl(std::ostream& os, const SpanTracer& tracer);

}  // namespace aces::obs
