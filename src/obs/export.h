// Serialization of telemetry: JSONL and CSV for traces and counter
// snapshots, plus a human-readable phase-profile summary.
//
// JSONL (one flat JSON object per line) is the interchange format —
// `aces trace-summary` reads it back — and CSV is for spreadsheets and
// plotting scripts. Non-finite doubles (the +inf "no constraint"
// advertisements) serialize as JSON `null` / CSV `inf` and parse back to
// +infinity.
#pragma once

#include <iosfwd>
#include <vector>

#include "obs/counters.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"

namespace aces::obs {

/// One JSON object per record per line. Keys: time, node, pe, buffer,
/// arrived, processed, cpu_share, cpu_used, advertised_rmax,
/// downstream_rmax, tokens, blocked, drops.
void write_trace_jsonl(std::ostream& os, const std::vector<TickRecord>& records);

/// Header + one row per record, columns in the JSONL key order.
void write_trace_csv(std::ostream& os, const std::vector<TickRecord>& records);

/// Parses write_trace_jsonl output (tolerant of unknown keys; missing keys
/// keep their defaults). Blank lines are skipped.
std::vector<TickRecord> read_trace_jsonl(std::istream& is);

/// One JSON object per cell: {"name":...,"type":"counter"|"gauge","value":...}.
void write_counters_jsonl(std::ostream& os, const CounterSnapshot& snapshot);

/// CSV with header name,type,value.
void write_counters_csv(std::ostream& os, const CounterSnapshot& snapshot);

/// Per-phase count / median / p99 in microseconds, one line per phase.
void write_profile_summary(std::ostream& os, const PhaseProfiler& profiler);

}  // namespace aces::obs
