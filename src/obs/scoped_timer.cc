#include "obs/scoped_timer.h"

namespace aces::obs {

namespace {
/// Control phases run sub-microsecond (a controller tick ≈ 0.3 µs) up to
/// milliseconds (a tier-1 solve); the default LogHistogram span starts at
/// 1 µs and would underflow, so phase histograms use a wider span.
LogHistogram make_phase_histogram() { return LogHistogram(1e-9, 1e3, 20); }
}  // namespace

void PhaseProfiler::add(const std::string& phase, double seconds) {
  MutexLock lock(mutex_);
  auto it = phases_.find(phase);
  if (it == phases_.end()) {
    it = phases_.emplace(phase, make_phase_histogram()).first;
  }
  it->second.add(seconds);
}

std::vector<std::string> PhaseProfiler::phases() const {
  MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(phases_.size());
  for (const auto& [name, histogram] : phases_) names.push_back(name);
  return names;
}

LogHistogram PhaseProfiler::histogram(const std::string& phase) const {
  MutexLock lock(mutex_);
  const auto it = phases_.find(phase);
  return it != phases_.end() ? it->second : make_phase_histogram();
}

}  // namespace aces::obs
