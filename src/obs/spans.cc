#include "obs/spans.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/rng.h"

namespace aces::obs {

std::vector<std::uint32_t> SdoSpan::hop_pes() const {
  std::vector<std::uint32_t> pes;
  pes.reserve(hop_count);
  for (std::uint32_t i = 0; i < hop_count; ++i) {
    if (hops[i].kind == static_cast<std::uint32_t>(HopKind::kPe)) {
      pes.push_back(hops[i].pe);
    }
  }
  return pes;
}

Seconds SdoSpan::transport_time() const {
  // Each process crossing contributes (first wire stamp .. recv stamp).
  // The sender appends kWireSerialize (and kWireSend); the receiver
  // appends kWireRecv; the next kPe hop closes the crossing.
  Seconds total = 0.0;
  Seconds crossing_start = -1.0;
  for (std::uint32_t i = 0; i < hop_count; ++i) {
    const SpanHop& hop = hops[i];
    const auto kind = static_cast<HopKind>(hop.kind);
    if (kind == HopKind::kPe) {
      crossing_start = -1.0;
      continue;
    }
    if (crossing_start < 0.0) crossing_start = hop.enqueue;
    if (kind == HopKind::kWireRecv && crossing_start >= 0.0 &&
        hop.emit >= crossing_start) {
      total += hop.emit - crossing_start;
      crossing_start = -1.0;
    }
  }
  return total;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(std::max<std::size_t>(1, capacity)) {}

void FlightRecorder::push(const SdoSpan& span) {
  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % slots_.size()];
  std::uint64_t words[kSpanWords];
  std::memcpy(words, &span, sizeof(SdoSpan));
  slot.publish(ticket, words);
}

std::vector<SdoSpan> FlightRecorder::snapshot() const {
  // A slot whose sequence is odd or changed across the copy was being
  // written and is skipped; the full tear-freedom argument lives on
  // SeqLockSlot (common/seqlock.h).
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  const std::uint64_t first = head > cap ? head - cap : 0;
  std::vector<SdoSpan> out;
  out.reserve(static_cast<std::size_t>(head - first));
  for (std::uint64_t ticket = first; ticket < head; ++ticket) {
    std::uint64_t words[kSpanWords];
    if (!slots_[ticket % cap].try_read(words)) continue;
    SdoSpan copy;
    std::memcpy(&copy, words, sizeof(SdoSpan));
    out.push_back(copy);
  }
  return out;
}

SpanTracer::SpanTracer(SpanTracerOptions options)
    : options_(options), recorder_(options.ring_capacity) {
  ACES_CHECK(options_.sample_rate >= 0.0 && options_.sample_rate <= 1.0);
  ACES_CHECK(options_.max_in_flight > 0);
  if (options_.sample_rate >= 1.0) {
    threshold_ = ~0ULL;
  } else {
    threshold_ = static_cast<std::uint64_t>(
        std::ldexp(options_.sample_rate, 64));
  }
  pool_.resize(options_.max_in_flight);
  active_.assign(options_.max_in_flight, false);
  free_.reserve(options_.max_in_flight);
  // Hand out low indices first so deterministic runs allocate identically.
  for (std::size_t i = options_.max_in_flight; i > 0; --i) {
    free_.push_back(static_cast<std::int32_t>(i - 1));
  }
}

bool SpanTracer::sampled(std::uint32_t pe, std::uint64_t seq) const {
  if (threshold_ == ~0ULL) return true;
  std::uint64_t state = options_.seed ^
                        (0x9E3779B97F4A7C15ULL * (pe + 1ULL)) ^
                        (seq * 0xBF58476D1CE4E5B9ULL);
  return splitmix64(state) < threshold_;
}

std::int32_t SpanTracer::begin(PeId source_pe, Seconds t) {
  const std::uint32_t pe = source_pe.value();
  MutexLock lock(mutex_);
  if (pe >= sequences_.size()) sequences_.resize(pe + 1, 0);
  const std::uint64_t seq = sequences_[pe]++;
  if (!sampled(pe, seq)) return -1;
  if (free_.empty()) {
    ++exhausted_;
    return -1;
  }
  const std::int32_t handle = free_.back();
  free_.pop_back();
  active_[static_cast<std::size_t>(handle)] = true;
  SdoSpan& span = pool_[static_cast<std::size_t>(handle)];
  span = SdoSpan{};
  // Deterministic trace id: same hash family as the sampling draw, salted
  // so the id stream is independent of the accept/reject stream.
  std::uint64_t state = options_.seed ^ 0x5DA7A5DA7A5DA75DULL ^
                        (0x9E3779B97F4A7C15ULL * (pe + 1ULL)) ^
                        (seq * 0x94D049BB133111EBULL);
  span.trace_id = splitmix64(state);
  span.source_pe = pe;
  span.start = t;
  ++started_;
  return handle;
}

void SpanTracer::on_enqueue(std::int32_t handle, PeId pe, Seconds t) {
  if (handle < 0) return;
  // The lock excludes fault_dump(), which copies in-flight spans from
  // whichever node thread observed a fault while this thread updates hops.
  MutexLock lock(mutex_);
  SdoSpan& span = pool_[static_cast<std::size_t>(handle)];
  // Re-stamp, don't append, when the same hop is enqueued twice — the
  // Lock-Step path records the hop before a push that may fail and be
  // retried later from the pending queue.
  if (span.hop_count > 0) {
    SpanHop& last = span.hops[span.hop_count - 1];
    if (last.kind == static_cast<std::uint32_t>(HopKind::kPe) &&
        last.pe == pe.value() && last.dequeue < 0.0) {
      last.enqueue = t;
      return;
    }
  }
  if (span.hop_count >= SdoSpan::kMaxHops) {
    span.truncated = true;
    return;
  }
  SpanHop& hop = span.hops[span.hop_count++];
  hop.pe = pe.value();
  hop.enqueue = t;
}

void SpanTracer::on_dequeue(std::int32_t handle, Seconds t) {
  if (handle < 0) return;
  MutexLock lock(mutex_);
  SdoSpan& span = pool_[static_cast<std::size_t>(handle)];
  if (span.truncated || span.hop_count == 0) return;
  span.hops[span.hop_count - 1].dequeue = t;
}

void SpanTracer::on_emit(std::int32_t handle, Seconds t) {
  if (handle < 0) return;
  MutexLock lock(mutex_);
  SdoSpan& span = pool_[static_cast<std::size_t>(handle)];
  if (span.truncated || span.hop_count == 0) return;
  span.hops[span.hop_count - 1].emit = t;
}

void SpanTracer::finalize(std::int32_t handle, Seconds t, bool dropped) {
  if (handle < 0) return;
  MutexLock lock(mutex_);
  const auto index = static_cast<std::size_t>(handle);
  if (!active_[index]) return;  // already finalized (double-drop guard)
  SdoSpan& span = pool_[index];
  span.end = t;
  span.dropped = dropped;
  for (std::uint32_t i = 0; i < span.hop_count; ++i) {
    const SpanHop& hop = span.hops[i];
    // Wire hops carry a single boundary timestamp, not a queue visit; only
    // real PE visits feed the per-PE wait/service histograms.
    if (hop.kind != static_cast<std::uint32_t>(HopKind::kPe)) continue;
    const double wait = (hop.enqueue >= 0.0 && hop.dequeue >= 0.0)
                            ? hop.dequeue - hop.enqueue
                            : -1.0;
    const double service =
        (hop.dequeue >= 0.0 && hop.emit >= 0.0) ? hop.emit - hop.dequeue
                                                : -1.0;
    latency_.record_hop(hop.pe, wait, service);
  }
  if (!dropped && !span.truncated) {
    latency_.record_path(span.hop_pes(), span.latency());
    ++completed_;
    // Worst-span list: insertion into a tiny sorted vector.
    const auto pos = std::upper_bound(
        worst_.begin(), worst_.end(), span,
        [](const SdoSpan& a, const SdoSpan& b) {
          return a.latency() > b.latency();
        });
    if (pos != worst_.end() || worst_.size() < options_.worst_k) {
      worst_.insert(pos, span);
      if (worst_.size() > options_.worst_k) worst_.pop_back();
    }
  } else {
    ++dropped_;
  }
  recorder_.push(span);
  if (options_.keep_completed) completed_buffer_.push_back(span);
  active_[index] = false;
  free_.push_back(handle);
}

void SpanTracer::complete(std::int32_t handle, Seconds t) {
  finalize(handle, t, /*dropped=*/false);
}

void SpanTracer::drop(std::int32_t handle, Seconds t) {
  finalize(handle, t, /*dropped=*/true);
}

std::int32_t SpanTracer::adopt(const SdoSpan& prefix) {
  MutexLock lock(mutex_);
  if (free_.empty()) {
    ++exhausted_;
    return -1;
  }
  const std::int32_t handle = free_.back();
  free_.pop_back();
  active_[static_cast<std::size_t>(handle)] = true;
  pool_[static_cast<std::size_t>(handle)] = prefix;
  pool_[static_cast<std::size_t>(handle)].end = -1.0;
  return handle;
}

bool SpanTracer::detach(std::int32_t handle, SdoSpan* out) {
  if (handle < 0) return false;
  MutexLock lock(mutex_);
  const auto index = static_cast<std::size_t>(handle);
  if (!active_[index]) return false;
  *out = pool_[index];
  active_[index] = false;
  free_.push_back(handle);
  return true;
}

void SpanTracer::append_wire_hop(std::int32_t handle, PeId pe, HopKind kind,
                                 Seconds t) {
  if (handle < 0) return;
  MutexLock lock(mutex_);
  SdoSpan& span = pool_[static_cast<std::size_t>(handle)];
  if (span.hop_count >= SdoSpan::kMaxHops) {
    span.truncated = true;
    return;
  }
  SpanHop& hop = span.hops[span.hop_count++];
  hop.pe = pe.value();
  hop.kind = static_cast<std::uint32_t>(kind);
  hop.enqueue = t;
  hop.dequeue = t;
  hop.emit = t;
}

std::vector<SdoSpan> SpanTracer::take_completed() {
  MutexLock lock(mutex_);
  std::vector<SdoSpan> out;
  out.swap(completed_buffer_);
  return out;
}

void SpanTracer::fault_dump(const std::string& event, Seconds t) {
  MutexLock lock(mutex_);
  ++dumps_taken_;
  if (dumps_.size() >= options_.max_dumps) return;
  FlightDump dump;
  dump.event = event;
  dump.time = t;
  dump.recent = recorder_.snapshot();
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    if (active_[i]) dump.in_flight.push_back(pool_[i]);
  }
  dumps_.push_back(std::move(dump));
}

}  // namespace aces::obs
