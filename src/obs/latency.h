// Data-plane latency aggregation: per-PE and per-path log-bucketed
// histograms fed by completed SDO spans.
//
// Two axes, matching the questions Figures 3-4 of the paper ask:
//  * per PE — where does an SDO spend its time inside one element:
//    queue wait (enqueue -> dequeue) and service (dequeue -> emit);
//  * per path — end-to-end delay for each distinct source->sink hop
//    chain, keyed by a deterministic hash of the hop PE ids so the same
//    logical path gets the same id in the simulator and the threaded
//    runtime (the ids are what the cross-substrate tests compare).
//
// Registries are mergeable (parallel sweep shards, one registry per run)
// and snapshot into plain Quantiles structs for the exporters and the
// `aces latency-report` table. Not internally synchronized: SpanTracer
// serializes writes behind its completion mutex, and readers snapshot
// after the run quiesces.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"

namespace aces::obs {

/// Point-in-time percentile summary of one histogram.
struct LatencyQuantiles {
  std::uint64_t count = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

LatencyQuantiles quantiles_of(const LogHistogram& h);

/// Deterministic id for a hop chain: a splitmix64 hash fold over the PE
/// ids in order. Identical chains hash identically in every substrate.
std::uint64_t path_id(const std::vector<std::uint32_t>& hop_pes);

/// Human label for a hop chain, e.g. "0>4>7".
std::string path_label(const std::vector<std::uint32_t>& hop_pes);

class LatencyRegistry {
 public:
  struct PeStats {
    LogHistogram wait;     // enqueue -> dequeue, seconds
    LogHistogram service;  // dequeue -> emit, seconds
  };
  struct PathStats {
    std::string label;      // "0>4>7"
    LogHistogram end_to_end;  // span start -> completion, seconds
  };

  /// Record one hop's timings for `pe`. Negative durations (hop never
  /// dequeued/emitted, e.g. a dropped span) are skipped per-histogram.
  void record_hop(std::uint32_t pe, double wait_s, double service_s);

  /// Record one completed end-to-end traversal of `hop_pes`.
  void record_path(const std::vector<std::uint32_t>& hop_pes, double e2e_s);

  /// Bucket-wise merge; geometries always match (all histograms share the
  /// registry's fixed latency geometry).
  void merge(const LatencyRegistry& other);
  /// Merge one PE's wait/service histograms in (the cluster aggregator
  /// rebuilds a registry from per-shard wire snapshots).
  void merge_pe(std::uint32_t pe, const LogHistogram& wait,
                const LogHistogram& service);
  /// Merge one path's end-to-end histogram in, keyed by its stable id.
  void merge_path(std::uint64_t id, const std::string& label,
                  const LogHistogram& end_to_end);
  void reset();

  [[nodiscard]] const std::map<std::uint32_t, PeStats>& pes() const {
    return pes_;
  }
  [[nodiscard]] const std::map<std::uint64_t, PathStats>& paths() const {
    return paths_;
  }
  [[nodiscard]] bool empty() const { return pes_.empty() && paths_.empty(); }

 private:
  static LogHistogram make_histogram();

  std::map<std::uint32_t, PeStats> pes_;
  std::map<std::uint64_t, PathStats> paths_;
};

}  // namespace aces::obs
