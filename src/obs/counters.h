// Runtime counter registry: named monotonic counters and gauges cheap
// enough for the threaded runtime's data plane.
//
// Design constraints, in order:
//  * the disabled path (no registry attached) must cost ~a nanosecond per
//    event — a null-pointer test on an inlined handle;
//  * the enabled path must be wait-free for writers — a relaxed atomic
//    fetch_add, no lock, no allocation;
//  * under many concurrent writers (a parallel sweep with a shared
//    registry) writers must not contend on one cache line — a registry
//    constructed with `shards` > 1 gives each writer thread its own
//    cache-line-padded cell, selected by a thread-local shard id; reads sum
//    across shards;
//  * snapshots must work at any instant without stopping workers — readers
//    take the registry mutex only to walk the name table; cell reads are
//    relaxed loads.
//
// Registration (counter()/gauge()) is mutex-guarded and intended for setup
// time; handles are then free-floating pointers into registry-owned cells,
// valid for the registry's lifetime.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/atomic_shim.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace aces::obs {

class CounterRegistry;

/// One cache line per cell so sharded writers never false-share.
struct alignas(64) CounterCell {
  Atomic<std::uint64_t> value{0};
};

namespace detail {
/// Small dense id for the calling thread, assigned on first use.
inline std::size_t this_thread_shard() {
  static Atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}
}  // namespace detail

/// Handle to a counter's shard array. Default-constructed handles are
/// *disabled*: inc() is a branch on nullptr and nothing else, which is what
/// the hot paths hold when telemetry is off.
class Counter {
 public:
  Counter() = default;

  void inc(std::uint64_t n = 1) {
    // Relaxed ordering invariant: a counter cell is a pure commutative sum
    // — no reader infers the state of OTHER memory from its value, so no
    // acquire/release edge is needed; atomicity alone guarantees no lost
    // increments. Readers (value()/snapshot()) consequently see a possibly
    // stale lower bound while writers run, and the exact total once the
    // writing threads have joined (thread join supplies the ordering).
    if (cells_ != nullptr) {
      cells_[detail::this_thread_shard() & shard_mask_].value.fetch_add(
          n, std::memory_order_relaxed);
    }
  }
  /// Sum over shards; exact once writers have quiesced, a live lower-bound
  /// sample otherwise.
  [[nodiscard]] std::uint64_t value() const {
    if (cells_ == nullptr) return 0;
    std::uint64_t total = 0;
    for (std::size_t s = 0; s <= shard_mask_; ++s) {
      total += cells_[s].value.load(std::memory_order_relaxed);
    }
    return total;
  }
  [[nodiscard]] bool enabled() const { return cells_ != nullptr; }

 private:
  friend class CounterRegistry;
  Counter(CounterCell* cells, std::size_t shard_mask)
      : cells_(cells), shard_mask_(shard_mask) {}
  CounterCell* cells_ = nullptr;
  std::size_t shard_mask_ = 0;
};

/// Handle to a last-value-wins gauge cell (relaxed atomic double). Gauges
/// are not sharded: "last write wins" has no meaningful per-thread merge.
class Gauge {
 public:
  Gauge() = default;

  void set(double v) {
    if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return cell_ != nullptr ? cell_->load(std::memory_order_relaxed) : 0.0;
  }
  [[nodiscard]] bool enabled() const { return cell_ != nullptr; }

 private:
  friend class CounterRegistry;
  explicit Gauge(Atomic<double>* cell) : cell_(cell) {}
  Atomic<double>* cell_ = nullptr;
};

/// Point-in-time copy of every registered cell, sorted by name. Counter
/// values are summed across shards.
struct CounterSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
};

class CounterRegistry {
 public:
  /// `shards` is rounded up to a power of two and capped; 1 (the default)
  /// reproduces the single-cell layout. Size it to the writer thread count
  /// (e.g. the sweep's --jobs) when counters stay enabled under load.
  explicit CounterRegistry(std::size_t shards = 1);

  /// Returns (registering on first use) the counter called `name`.
  Counter counter(const std::string& name) ACES_EXCLUDES(mutex_);
  /// Returns (registering on first use) the gauge called `name`.
  Gauge gauge(const std::string& name) ACES_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }

  [[nodiscard]] CounterSnapshot snapshot() const ACES_EXCLUDES(mutex_);

 private:
  /// Set once in the constructor, immutable afterwards — safe to read
  /// without the lock.
  std::size_t shard_count_ = 1;
  mutable Mutex mutex_;
  // The name tables are guarded; the pointed-to cells are NOT — handles
  // write them lock-free with relaxed atomics (see the header comment for
  // why relaxed suffices: counters are commutative sums whose readers
  // tolerate momentarily-stale per-shard values; no other data is
  // published through them, so no acquire/release edge is needed).
  std::map<std::string, std::unique_ptr<CounterCell[]>> counters_
      ACES_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Atomic<double>>> gauges_
      ACES_GUARDED_BY(mutex_);
};

/// Null-safe handle acquisition: disabled handle when `registry` is null.
Counter make_counter(CounterRegistry* registry, const std::string& name);
Gauge make_gauge(CounterRegistry* registry, const std::string& name);

}  // namespace aces::obs
