// Runtime counter registry: named monotonic counters and gauges cheap
// enough for the threaded runtime's data plane.
//
// Design constraints, in order:
//  * the disabled path (no registry attached) must cost ~a nanosecond per
//    event — a null-pointer test on an inlined handle;
//  * the enabled path must be wait-free for writers — a relaxed atomic
//    fetch_add, no lock, no allocation;
//  * snapshots must work at any instant without stopping workers — readers
//    take the registry mutex only to walk the name table; cell reads are
//    relaxed loads.
//
// Registration (counter()/gauge()) is mutex-guarded and intended for setup
// time; handles are then free-floating pointers into registry-owned cells,
// valid for the registry's lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace aces::obs {

class CounterRegistry;

/// Handle to a monotonic counter cell. Default-constructed handles are
/// *disabled*: inc() is a branch on nullptr and nothing else, which is what
/// the hot paths hold when telemetry is off.
class Counter {
 public:
  Counter() = default;

  void inc(std::uint64_t n = 1) {
    if (cell_ != nullptr) cell_->fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return cell_ != nullptr ? cell_->load(std::memory_order_relaxed) : 0;
  }
  [[nodiscard]] bool enabled() const { return cell_ != nullptr; }

 private:
  friend class CounterRegistry;
  explicit Counter(std::atomic<std::uint64_t>* cell) : cell_(cell) {}
  std::atomic<std::uint64_t>* cell_ = nullptr;
};

/// Handle to a last-value-wins gauge cell (relaxed atomic double).
class Gauge {
 public:
  Gauge() = default;

  void set(double v) {
    if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return cell_ != nullptr ? cell_->load(std::memory_order_relaxed) : 0.0;
  }
  [[nodiscard]] bool enabled() const { return cell_ != nullptr; }

 private:
  friend class CounterRegistry;
  explicit Gauge(std::atomic<double>* cell) : cell_(cell) {}
  std::atomic<double>* cell_ = nullptr;
};

/// Point-in-time copy of every registered cell, sorted by name.
struct CounterSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
};

class CounterRegistry {
 public:
  /// Returns (registering on first use) the counter called `name`.
  Counter counter(const std::string& name);
  /// Returns (registering on first use) the gauge called `name`.
  Gauge gauge(const std::string& name);

  [[nodiscard]] CounterSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>> counters_;
  std::map<std::string, std::unique_ptr<std::atomic<double>>> gauges_;
};

/// Null-safe handle acquisition: disabled handle when `registry` is null.
Counter make_counter(CounterRegistry* registry, const std::string& name);
Gauge make_gauge(CounterRegistry* registry, const std::string& name);

}  // namespace aces::obs
