// Coordinator-side merge of per-shard telemetry into one cluster view.
//
// The distributed runtime's workers ship MetricsReport / SpanBatch /
// FlightDump frames (runtime/wire.h) at barrier-epoch cadence; the
// coordinator feeds their *contents* — plain obs types, so this layer
// never depends on the wire format — into a ClusterAggregator. The
// aggregator answers the questions a single-process run answers for free:
//
//  * counters: per-shard deltas summed into exact cluster totals (deltas,
//    not absolutes, so a restarted shard cannot replay its history);
//  * latency: per-PE wait/service and per-path end-to-end histograms
//    merged bucket-wise into one LatencyRegistry — path ids are the same
//    splitmix64 fold in every shard, so cross-shard spans land in the
//    same family as their in-process equivalents;
//  * spans: completed spans (stitched across process hops) decomposed
//    into compute vs. transport via SdoSpan::transport_time();
//  * cluster health gauges: per-worker heartbeat RTT (Welford), barrier
//    step skew, frames/bytes per transport endpoint, decode rejects;
//  * evidence: the last FlightDump per rank survives the worker — a
//    prockill'd shard's final milliseconds are readable at the
//    coordinator after the process is gone.
//
// Rendered three ways: write_prometheus (every family shard-labelled),
// write_status (the `--status-port` line protocol: one `key value` pair
// per line, machine-greppable), and write_report (the `aces
// cluster-report` human tables).
//
// Internally synchronized: the coordinator's recv loop absorbs from its
// control thread while a StatusServer connection renders from the accept
// thread, so every method takes the aggregator mutex. All absorb methods
// are idempotent-per-epoch in the last-writer-wins sense histograms and
// gauges need; counters are the only accumulate-on-absorb state, which is
// why the wire carries them as deltas.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/atomic_shim.h"
#include "common/histogram.h"
#include "common/mutex.h"
#include "common/stats.h"
#include "common/thread_annotations.h"
#include "obs/latency.h"
#include "obs/spans.h"
#include "obs/trace.h"

namespace aces::obs {

/// Last-received flight-recorder evidence from one shard, with provenance.
struct ShardFlightDump {
  std::string event;  ///< "epoch", a fault.* counter name, or "shutdown"
  double time = 0.0;  ///< virtual seconds of the snapshot
  std::uint64_t pushed = 0;  ///< recorder ring tickets at snapshot time
  std::vector<SdoSpan> recent;
  std::vector<SdoSpan> in_flight;
};

/// Control-plane health of one worker shard as the coordinator sees it.
struct ShardStatus {
  bool alive = true;
  std::uint64_t last_quantum = 0;   ///< newest quantum heard from the shard
  std::uint64_t frames_in = 0;      ///< frames received from the shard
  std::uint64_t frames_out = 0;     ///< frames sent to the shard
  std::uint64_t bytes_in = 0;       ///< header+payload bytes received
  std::uint64_t bytes_out = 0;      ///< header+payload bytes sent
  std::uint64_t decode_rejects = 0; ///< frames that failed to decode
  std::uint64_t heartbeats = 0;
  std::uint64_t metrics_reports = 0;
  std::uint64_t span_batches = 0;
  std::uint64_t flight_dumps = 0;
  std::uint64_t relay_dropped = 0;  ///< span handoffs dropped (rank dead)
  OnlineStats rtt_seconds;          ///< StepGo send -> StepDone recv, wall
};

class ClusterAggregator {
 public:
  // --- absorb side (coordinator control loop) ----------------------------

  /// Registers `rank` (idempotent); called when a worker says Hello.
  void note_shard(std::uint32_t rank) ACES_EXCLUDES(mutex_);
  /// Advances the shard's newest-quantum watermark (monotonic max).
  void note_quantum(std::uint32_t rank, std::uint64_t quantum)
      ACES_EXCLUDES(mutex_);
  /// Marks the shard dead. Its retained telemetry stays readable — that
  /// is the point of retaining it.
  void note_shard_dead(std::uint32_t rank) ACES_EXCLUDES(mutex_);
  /// One barrier round trip for `rank`, wall-clock seconds.
  void record_rtt(std::uint32_t rank, double seconds) ACES_EXCLUDES(mutex_);
  /// Spread between the first and last StepDone of one quantum, wall
  /// seconds. The status endpoint exposes the running max and mean.
  void record_step_skew(double seconds) ACES_EXCLUDES(mutex_);
  void record_frame_sent(std::uint32_t rank, std::size_t bytes)
      ACES_EXCLUDES(mutex_);
  void record_frame_received(std::uint32_t rank, std::size_t bytes)
      ACES_EXCLUDES(mutex_);
  void record_decode_reject(std::uint32_t rank) ACES_EXCLUDES(mutex_);
  void record_heartbeat(std::uint32_t rank) ACES_EXCLUDES(mutex_);
  /// Span handoffs that could not be relayed because the destination shard
  /// was dead (the SDOs themselves are replayed by the restart path; the
  /// spans are telemetry and may lawfully be lost — but counted).
  void record_relay_dropped(std::uint32_t rank, std::uint64_t count)
      ACES_EXCLUDES(mutex_);

  /// Adds counter *deltas* (exact cluster sums across shard restarts).
  void absorb_counters(
      std::uint32_t rank,
      const std::vector<std::pair<std::string, std::uint64_t>>& deltas)
      ACES_EXCLUDES(mutex_);
  /// Last-writer-wins gauge sample from one shard.
  void absorb_gauge(std::uint32_t rank, const std::string& name, double value)
      ACES_EXCLUDES(mutex_);
  /// Whole-state per-PE histogram snapshot (replaces the shard's previous
  /// snapshot for this PE — a lost epoch self-heals on the next one).
  void absorb_pe_latency(std::uint32_t rank, std::uint32_t pe,
                         const LogHistogram& wait, const LogHistogram& service)
      ACES_EXCLUDES(mutex_);
  /// Whole-state per-path histogram snapshot, keyed by the stable path id.
  void absorb_path_latency(std::uint32_t rank, std::uint64_t id,
                           const std::string& label,
                           const LogHistogram& end_to_end)
      ACES_EXCLUDES(mutex_);
  /// Cumulative perf-probe stage totals (whole-state, last-writer-wins).
  void absorb_perf(std::uint32_t rank, const std::string& name,
                   std::uint64_t calls, std::uint64_t ns)
      ACES_EXCLUDES(mutex_);
  /// One control-tick record; the aggregator stamps `record.shard = rank`.
  void absorb_trace(std::uint32_t rank, TickRecord record)
      ACES_EXCLUDES(mutex_);
  /// Spans finalized on `rank` this epoch: counts them, decomposes each
  /// into compute vs. transport, and keeps a bounded worst-latency list.
  void absorb_completed_spans(std::uint32_t rank,
                              const std::vector<SdoSpan>& spans)
      ACES_EXCLUDES(mutex_);
  /// Retains `dump` as the shard's latest flight-recorder evidence.
  void absorb_flight_dump(std::uint32_t rank, ShardFlightDump dump)
      ACES_EXCLUDES(mutex_);

  // --- render side (status endpoint, CLI, tests) -------------------------

  [[nodiscard]] std::size_t shard_count() const ACES_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t shards_alive() const ACES_EXCLUDES(mutex_);
  /// Cluster-total counters (sum of absorbed deltas), sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  cluster_counters() const ACES_EXCLUDES(mutex_);
  /// One registry holding every shard's histograms merged bucket-wise —
  /// comparable 1:1 with a single-process run's SpanTracer::latency().
  [[nodiscard]] LatencyRegistry merged_latency() const ACES_EXCLUDES(mutex_);
  [[nodiscard]] double max_step_skew() const ACES_EXCLUDES(mutex_);
  [[nodiscard]] std::map<std::uint32_t, ShardStatus> shard_statuses() const
      ACES_EXCLUDES(mutex_);
  [[nodiscard]] std::map<std::uint32_t, ShardFlightDump> flight_dumps() const
      ACES_EXCLUDES(mutex_);
  /// All absorbed control-tick records, shard-stamped, sorted by
  /// (time, node, pe, shard) so the trace exporters emit deterministically.
  [[nodiscard]] std::vector<TickRecord> trace_records() const
      ACES_EXCLUDES(mutex_);

  /// Prometheus text exposition: cluster health gauges, per-shard counter /
  /// gauge / perf families (`shard` label on every sample), and the merged
  /// latency registry re-exposed per shard-of-origin.
  void write_prometheus(std::ostream& os) const ACES_EXCLUDES(mutex_);
  /// `--status-port` line protocol: one `key value` pair per line, keys
  /// flat and grep-stable (documented in docs/observability.md).
  void write_status(std::ostream& os) const ACES_EXCLUDES(mutex_);
  /// `aces cluster-report` human tables.
  void write_report(std::ostream& os) const ACES_EXCLUDES(mutex_);

 private:
  struct PeSnapshot {
    LogHistogram wait;
    LogHistogram service;
  };
  struct PathSnapshot {
    std::string label;
    LogHistogram end_to_end;
  };
  struct PerfTotals {
    std::uint64_t calls = 0;
    std::uint64_t ns = 0;
  };
  struct Shard {
    ShardStatus status;
    std::map<std::string, std::uint64_t> counters;  // summed deltas
    std::map<std::string, double> gauges;           // last-writer-wins
    std::map<std::uint32_t, PeSnapshot> pe_latency;
    std::map<std::uint64_t, PathSnapshot> path_latency;
    std::map<std::string, PerfTotals> perf;
    bool has_dump = false;
    ShardFlightDump dump;
  };

  Shard& shard(std::uint32_t rank) ACES_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::map<std::uint32_t, Shard> shards_ ACES_GUARDED_BY(mutex_);
  std::vector<TickRecord> trace_ ACES_GUARDED_BY(mutex_);
  OnlineStats skew_seconds_ ACES_GUARDED_BY(mutex_);
  std::uint64_t spans_completed_ ACES_GUARDED_BY(mutex_) = 0;
  std::uint64_t spans_stitched_ ACES_GUARDED_BY(mutex_) = 0;
  OnlineStats transport_seconds_ ACES_GUARDED_BY(mutex_);
  OnlineStats compute_seconds_ ACES_GUARDED_BY(mutex_);
  std::vector<SdoSpan> worst_ ACES_GUARDED_BY(mutex_);  // slowest-first
};

/// Live plain-text status endpoint: a loopback TCP listener whose every
/// accepted connection receives one ClusterAggregator::write_status
/// rendering and an immediate close — the HTTP-free protocol `curl` and
/// the CI smoke's python one-liner can both read. The aggregator outlives
/// the server; the accept thread only ever touches it through the
/// internally-synchronized render API.
class StatusServer {
 public:
  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port) and starts the
  /// accept thread. Throws nothing: on failure `listening()` is false and
  /// `error()` says why.
  StatusServer(const ClusterAggregator* aggregator, std::uint16_t port);
  ~StatusServer();

  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  [[nodiscard]] bool listening() const { return fd_ >= 0; }
  /// Bound port (the ephemeral resolution when constructed with 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Stops accepting and joins the thread. Idempotent; the destructor
  /// calls it.
  void stop();

 private:
  void serve_loop();

  const ClusterAggregator* aggregator_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::string error_;
  Atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace aces::obs
