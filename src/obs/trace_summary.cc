#include "obs/trace_summary.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/stats.h"
#include "metrics/timeseries.h"

namespace aces::obs {

std::vector<PeTraceSummary> summarize_trace(
    const std::vector<TickRecord>& records,
    const TraceSummaryOptions& options) {
  std::map<std::uint32_t, std::vector<const TickRecord*>> by_pe;
  for (const TickRecord& r : records) by_pe[r.pe].push_back(&r);

  std::vector<PeTraceSummary> summaries;
  summaries.reserve(by_pe.size());
  for (auto& [pe, rows] : by_pe) {
    std::stable_sort(rows.begin(), rows.end(),
                     [](const TickRecord* a, const TickRecord* b) {
                       return a->time < b->time;
                     });
    PeTraceSummary s;
    s.pe = pe;
    s.node = rows.front()->node;
    s.ticks = rows.size();

    metrics::TimeSeries occupancy;
    OnlineStats occ_stats;
    OnlineStats share_stats;
    for (const TickRecord* r : rows) {
      occupancy.append(r->time, r->buffer_occupancy);
      occ_stats.add(r->buffer_occupancy);
      share_stats.add(r->cpu_share);
    }
    s.occupancy_mean = occ_stats.mean();
    s.occupancy_min = occ_stats.min();
    s.occupancy_max = occ_stats.max();
    s.share_mean = share_stats.mean();
    s.drops = rows.back()->dropped_total;

    const Seconds t0 = rows.front()->time;
    const Seconds t1 = rows.back()->time;
    const Seconds tail_start = t1 - options.tail_fraction * (t1 - t0);
    s.steady_target = occupancy.stats_after(tail_start).mean();
    s.tolerance =
        std::max(options.min_tolerance,
                 options.tolerance_fraction * (occ_stats.max() - occ_stats.min()));
    s.settling_time = occupancy.settling_time(s.steady_target, s.tolerance);
    const Seconds osc_from =
        std::isfinite(s.settling_time) ? s.settling_time : tail_start;
    s.oscillation_amplitude = occupancy.stats_after(osc_from).stddev();
    summaries.push_back(s);
  }
  return summaries;
}

}  // namespace aces::obs
