// Self-profiling of control-plane phases.
//
// The claim that the distributed controller is "computationally light"
// (paper §V-C) should be visible from any run, not just the micro-bench: a
// PhaseProfiler holds one LogHistogram per named phase, and a ScopedTimer
// stamps the enclosing scope into it. A null profiler disables timing
// entirely (no clock read), so the substrates thread an optional pointer
// through with zero cost when profiling is off.
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace aces::obs {

/// Canonical phase names used by the substrates.
inline constexpr const char* kPhaseControllerTick = "controller_tick";
inline constexpr const char* kPhaseOptimizerSolve = "optimizer_solve";

/// Named phase → LogHistogram of durations in seconds. Thread-safe: node
/// threads of the runtime record concurrently.
class PhaseProfiler {
 public:
  /// Records one `seconds`-long occurrence of `phase`.
  void add(const std::string& phase, double seconds) ACES_EXCLUDES(mutex_);

  [[nodiscard]] std::vector<std::string> phases() const
      ACES_EXCLUDES(mutex_);
  /// Copy of the histogram for `phase`; empty histogram if never recorded.
  [[nodiscard]] LogHistogram histogram(const std::string& phase) const
      ACES_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::map<std::string, LogHistogram> phases_ ACES_GUARDED_BY(mutex_);
};

/// Times its own lifetime into `profiler` (no-op when null).
class ScopedTimer {
 public:
  ScopedTimer(PhaseProfiler* profiler, const char* phase)
      : profiler_(profiler), phase_(phase) {
    if (profiler_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (profiler_ == nullptr) return;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    profiler_->add(phase_, elapsed.count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  PhaseProfiler* profiler_;
  const char* phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace aces::obs
