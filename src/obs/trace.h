// Control-plane telemetry: per-tick trace records.
//
// The paper's contribution (§IV–V) is a *trajectory* claim — buffers settle,
// rates converge, the LQR flow controller damps burstiness — but RunReport
// aggregates the trajectory away. A ControlTraceRecorder captures one
// structured record per control tick per PE at the NodeController::tick()
// boundary, in either substrate, so stability analysis (settling time,
// oscillation amplitude, Figures 3–5 shapes) works on real runs instead of
// ad-hoc bench instrumentation.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace aces::obs {

/// One control tick of one PE, as seen at the tick boundary: what the
/// substrate reported to the controller (PeTickInput) plus what the
/// controller decided (PeTickOutput) plus controller internals worth
/// plotting. All rates are SDOs/sec, all times virtual seconds.
struct TickRecord {
  /// Virtual time of the tick.
  Seconds time = 0.0;
  /// Hosting node.
  std::uint32_t node = 0;
  /// The PE this record describes.
  std::uint32_t pe = 0;
  /// SDOs in the input buffer at tick time.
  double buffer_occupancy = 0.0;
  /// SDOs accepted into the buffer during the elapsed interval.
  double arrived_sdos = 0.0;
  /// SDOs whose processing completed during the elapsed interval.
  double processed_sdos = 0.0;
  /// CPU fraction granted for the NEXT interval (0 while in outage).
  double cpu_share = 0.0;
  /// CPU seconds consumed during the elapsed interval.
  double cpu_seconds_used = 0.0;
  /// r_max advertised upstream for the next interval; +inf when the policy
  /// does not advertise.
  double advertised_rmax = std::numeric_limits<double>::infinity();
  /// Freshest max over downstream advertisements; +inf for egress PEs.
  double downstream_rmax = std::numeric_limits<double>::infinity();
  /// Token-bucket level after accrual/charge, in CPU-seconds.
  double token_fill = 0.0;
  /// Lock-Step: the PE was asleep on a full downstream buffer.
  bool output_blocked = false;
  /// Cumulative SDOs lost at this PE's full input buffer since run start.
  std::uint64_t dropped_total = 0;
  /// Bitwise OR of kFault* flags describing injected-fault conditions
  /// active at this tick; 0 on healthy runs.
  std::uint8_t fault_flags = 0;
  /// Which flow policy produced this record. Empty on single-run traces
  /// (the policy is implicit); sweep-combined traces tag every record so
  /// `aces trace-summary` can report policies side by side.
  std::string policy;
  /// Worker shard that produced this record; -1 on single-process traces.
  /// Cluster-tagged trace files carry the shard on every record, and the
  /// readers refuse to mix tagged and untagged records in one analysis.
  std::int32_t shard = -1;
};

/// TickRecord::fault_flags bit: the PE was held in an injected stall.
inline constexpr std::uint8_t kFaultPeStalled = 1u << 0;
/// TickRecord::fault_flags bit: every downstream advertisement had aged
/// past the controller's staleness timeout at tick time.
inline constexpr std::uint8_t kFaultAdvertStale = 1u << 1;

/// Thread-safe append-only sink for TickRecords. Both substrates accept an
/// optional (non-owned) recorder; the simulator writes from its single
/// event-loop thread, the threaded runtime from every node thread, so
/// record() takes a mutex — acceptable because the control plane ticks at
/// ~10 Hz per node, far off the data-plane hot path.
class ControlTraceRecorder {
 public:
  void record(const TickRecord& record) ACES_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const ACES_EXCLUDES(mutex_);
  [[nodiscard]] bool empty() const { return size() == 0; }
  /// Copies the records accumulated so far (safe while a run is live).
  [[nodiscard]] std::vector<TickRecord> snapshot() const
      ACES_EXCLUDES(mutex_);
  void clear() ACES_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::vector<TickRecord> records_ ACES_GUARDED_BY(mutex_);
};

}  // namespace aces::obs
