#include "obs/trace.h"

namespace aces::obs {

void ControlTraceRecorder::record(const TickRecord& record) {
  MutexLock lock(mutex_);
  records_.push_back(record);
}

std::size_t ControlTraceRecorder::size() const {
  MutexLock lock(mutex_);
  return records_.size();
}

std::vector<TickRecord> ControlTraceRecorder::snapshot() const {
  MutexLock lock(mutex_);
  return records_;
}

void ControlTraceRecorder::clear() {
  MutexLock lock(mutex_);
  records_.clear();
}

}  // namespace aces::obs
