#include "obs/trace.h"

namespace aces::obs {

void ControlTraceRecorder::record(const TickRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(record);
}

std::size_t ControlTraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::vector<TickRecord> ControlTraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

void ControlTraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
}

}  // namespace aces::obs
