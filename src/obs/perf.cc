#include "obs/perf.h"

#include <cstddef>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#ifdef ACES_PERF_INSTRUMENT
#include <atomic>
#include <cstdlib>
#include <new>
#endif

namespace aces::obs {

namespace {

constexpr const char* kStageNames[] = {
    "calendar_insert", "calendar_drain", "controller_tick",
    "optimizer_solve", "channel_send",   "channel_recv",
    "ring_drain",
};
static_assert(sizeof(kStageNames) / sizeof(kStageNames[0]) ==
                  static_cast<std::size_t>(PerfStage::kCount),
              "kStageNames must cover every PerfStage");

constexpr const char* kEventNames[] = {
    "calendar_bucket_hit", "calendar_sparse_fallback",
    "calendar_rebuild",    "buffer_pool_hit",
    "buffer_pool_miss",    "channel_block",
    "channel_wakeup",      "ring_full_park",
    "ring_empty_park",     "ring_batch_publish",
    "ring_batch_sdos",     "ring_drain_burst",
    "ring_drain_sdos",
};
static_assert(sizeof(kEventNames) / sizeof(kEventNames[0]) ==
                  static_cast<std::size_t>(PerfEvent::kCount),
              "kEventNames must cover every PerfEvent");

}  // namespace

const char* perf_stage_name(PerfStage stage) {
  return kStageNames[static_cast<std::size_t>(stage)];
}

const char* perf_event_name(PerfEvent event) {
  return kEventNames[static_cast<std::size_t>(event)];
}

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // already bytes
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // kilobytes
#endif
#else
  return 0;
#endif
}

#ifdef ACES_PERF_INSTRUMENT

namespace perf_detail {
namespace {
// Operator-new hit counter. Plain malloc backing: the override must not
// itself allocate, and must compose with sanitizer interceptors being OFF
// in instrumented builds (CI never combines the two). Deliberately NOT
// aces::Atomic: the shim would make every allocation a model schedule
// point — including the checker's own allocations — and CI keeps
// ACES_PERF_INSTRUMENT and ACES_MODEL_CHECK disjoint anyway.
// aces-lint: allow(raw-atomic) operator-new counter must never become a model schedule point
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

std::uint64_t allocation_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* counted_alloc_aligned(std::size_t size, std::size_t alignment) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::aligned_alloc(alignment, (size + alignment - 1) / alignment *
                                           alignment);
}

}  // namespace perf_detail

PerfSnapshot perf_snapshot() {
  PerfSnapshot snapshot;
  snapshot.instrumented = true;
  auto& registry = perf_detail::PerfRegistry::instance();
  for (std::size_t s = 0; s < static_cast<std::size_t>(PerfStage::kCount);
       ++s) {
    PerfStageSample sample;
    sample.name = kStageNames[s];
    for (std::size_t shard = 0; shard < perf_detail::kShards; ++shard) {
      const auto& cell = registry.stages[s][shard];
      sample.calls += cell.calls.load(std::memory_order_relaxed);
      sample.ns += cell.ns.load(std::memory_order_relaxed);
      sample.cycles += cell.cycles.load(std::memory_order_relaxed);
    }
    if (sample.calls != 0) snapshot.stages.push_back(std::move(sample));
  }
  for (std::size_t e = 0; e < static_cast<std::size_t>(PerfEvent::kCount);
       ++e) {
    std::uint64_t total = 0;
    for (std::size_t shard = 0; shard < perf_detail::kShards; ++shard) {
      total += registry.events[e][shard].count.load(std::memory_order_relaxed);
    }
    if (total != 0) snapshot.events.emplace_back(kEventNames[e], total);
  }
  return snapshot;
}

void perf_reset() {
  auto& registry = perf_detail::PerfRegistry::instance();
  for (auto& row : registry.stages) {
    for (auto& cell : row) {
      cell.calls.store(0, std::memory_order_relaxed);
      cell.ns.store(0, std::memory_order_relaxed);
      cell.cycles.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& row : registry.events) {
    for (auto& cell : row) cell.count.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t alloc_count() { return perf_detail::allocation_count(); }

#else  // !ACES_PERF_INSTRUMENT

PerfSnapshot perf_snapshot() { return PerfSnapshot{}; }

void perf_reset() {}

std::uint64_t alloc_count() { return 0; }

#endif  // ACES_PERF_INSTRUMENT

}  // namespace aces::obs

#ifdef ACES_PERF_INSTRUMENT

// Global allocation counting. Every replaceable form funnels through the
// two counted helpers; delete stays free()-based to match. Only compiled
// under ACES_PERF_INSTRUMENT, which CI keeps disjoint from sanitizer
// builds (their interceptors want the default operators).
void* operator new(std::size_t size) {
  if (void* p = aces::obs::perf_detail::counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = aces::obs::perf_detail::counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return aces::obs::perf_detail::counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return aces::obs::perf_detail::counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  if (void* p = aces::obs::perf_detail::counted_alloc_aligned(
          size, static_cast<std::size_t>(alignment))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  if (void* p = aces::obs::perf_detail::counted_alloc_aligned(
          size, static_cast<std::size_t>(alignment))) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // ACES_PERF_INSTRUMENT
