#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <istream>
#include <limits>
#include <ostream>
#include <string>

namespace aces::obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Shortest round-trippable decimal form; "%.12g" preserves everything the
/// trace needs (occupancies, rates, token levels) without noise digits.
std::string number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

/// JSON has no infinity; +inf ("no constraint") becomes null.
std::string json_number(double v) {
  return std::isfinite(v) ? number(v) : std::string("null");
}

/// CSV counterpart: std::stod round-trips "inf".
std::string csv_number(double v) {
  return std::isfinite(v) ? number(v) : std::string("inf");
}

/// Value of `"key":` in a flat one-line JSON object; nullopt-like empty
/// string when absent. Values in trace lines are numbers, null, or booleans
/// — never strings — so scanning to the next ',' or '}' is sufficient.
std::string find_raw(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return {};
  const auto start = pos + needle.size();
  auto end = line.find_first_of(",}", start);
  if (end == std::string::npos) end = line.size();
  auto value = line.substr(start, end - start);
  while (!value.empty() && (value.front() == ' ' || value.front() == '\t'))
    value.erase(value.begin());
  while (!value.empty() && (value.back() == ' ' || value.back() == '\t'))
    value.pop_back();
  return value;
}

double parse_double(const std::string& raw, double fallback) {
  if (raw.empty()) return fallback;
  if (raw == "null") return kInf;  // the only non-finite the writer emits
  try {
    return std::stod(raw);
  } catch (const std::exception&) {
    return fallback;
  }
}

std::uint64_t parse_u64(const std::string& raw, std::uint64_t fallback) {
  if (raw.empty()) return fallback;
  try {
    return std::stoull(raw);
  } catch (const std::exception&) {
    return fallback;
  }
}

}  // namespace

void write_trace_jsonl(std::ostream& os,
                       const std::vector<TickRecord>& records) {
  for (const TickRecord& r : records) {
    os << "{\"time\":" << number(r.time) << ",\"node\":" << r.node
       << ",\"pe\":" << r.pe << ",\"buffer\":" << number(r.buffer_occupancy)
       << ",\"arrived\":" << number(r.arrived_sdos)
       << ",\"processed\":" << number(r.processed_sdos)
       << ",\"cpu_share\":" << number(r.cpu_share)
       << ",\"cpu_used\":" << number(r.cpu_seconds_used)
       << ",\"advertised_rmax\":" << json_number(r.advertised_rmax)
       << ",\"downstream_rmax\":" << json_number(r.downstream_rmax)
       << ",\"tokens\":" << number(r.token_fill)
       << ",\"blocked\":" << (r.output_blocked ? "true" : "false")
       << ",\"drops\":" << r.dropped_total
       << ",\"fault\":" << static_cast<unsigned>(r.fault_flags) << "}\n";
  }
}

void write_trace_csv(std::ostream& os, const std::vector<TickRecord>& records) {
  os << "time,node,pe,buffer,arrived,processed,cpu_share,cpu_used,"
        "advertised_rmax,downstream_rmax,tokens,blocked,drops,fault\n";
  for (const TickRecord& r : records) {
    os << number(r.time) << ',' << r.node << ',' << r.pe << ','
       << number(r.buffer_occupancy) << ',' << number(r.arrived_sdos) << ','
       << number(r.processed_sdos) << ',' << number(r.cpu_share) << ','
       << number(r.cpu_seconds_used) << ',' << csv_number(r.advertised_rmax)
       << ',' << csv_number(r.downstream_rmax) << ',' << number(r.token_fill)
       << ',' << (r.output_blocked ? 1 : 0) << ',' << r.dropped_total << ','
       << static_cast<unsigned>(r.fault_flags) << '\n';
  }
}

std::vector<TickRecord> read_trace_jsonl(std::istream& is) {
  std::vector<TickRecord> records;
  std::string line;
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] != '{') continue;  // not a JSON object; skip, don't
                                       // fabricate a default record
    TickRecord r;
    r.time = parse_double(find_raw(line, "time"), r.time);
    r.node = static_cast<std::uint32_t>(parse_u64(find_raw(line, "node"), 0));
    r.pe = static_cast<std::uint32_t>(parse_u64(find_raw(line, "pe"), 0));
    r.buffer_occupancy =
        parse_double(find_raw(line, "buffer"), r.buffer_occupancy);
    r.arrived_sdos = parse_double(find_raw(line, "arrived"), r.arrived_sdos);
    r.processed_sdos =
        parse_double(find_raw(line, "processed"), r.processed_sdos);
    r.cpu_share = parse_double(find_raw(line, "cpu_share"), r.cpu_share);
    r.cpu_seconds_used =
        parse_double(find_raw(line, "cpu_used"), r.cpu_seconds_used);
    r.advertised_rmax =
        parse_double(find_raw(line, "advertised_rmax"), r.advertised_rmax);
    r.downstream_rmax =
        parse_double(find_raw(line, "downstream_rmax"), r.downstream_rmax);
    r.token_fill = parse_double(find_raw(line, "tokens"), r.token_fill);
    r.output_blocked = find_raw(line, "blocked") == "true";
    r.dropped_total = parse_u64(find_raw(line, "drops"), r.dropped_total);
    // "fault" is absent in pre-fault-subsystem traces; default 0 (healthy).
    r.fault_flags =
        static_cast<std::uint8_t>(parse_u64(find_raw(line, "fault"), 0));
    records.push_back(r);
  }
  return records;
}

void write_counters_jsonl(std::ostream& os, const CounterSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    os << "{\"name\":\"" << name << "\",\"type\":\"counter\",\"value\":"
       << value << "}\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    os << "{\"name\":\"" << name << "\",\"type\":\"gauge\",\"value\":"
       << json_number(value) << "}\n";
  }
}

void write_counters_csv(std::ostream& os, const CounterSnapshot& snapshot) {
  os << "name,type,value\n";
  for (const auto& [name, value] : snapshot.counters) {
    os << name << ",counter," << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    os << name << ",gauge," << csv_number(value) << '\n';
  }
}

void write_profile_summary(std::ostream& os, const PhaseProfiler& profiler) {
  for (const std::string& phase : profiler.phases()) {
    const LogHistogram h = profiler.histogram(phase);
    os << phase << ": count=" << h.count()
       << " p50=" << number(h.median() * 1e6)
       << "us p99=" << number(h.p99() * 1e6) << "us\n";
  }
}

}  // namespace aces::obs
