#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <istream>
#include <limits>
#include <ostream>
#include <string>

namespace aces::obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Shortest round-trippable decimal form; "%.12g" preserves everything the
/// trace needs (occupancies, rates, token levels) without noise digits.
std::string number(double v) {
  char buf[40];
  // aces-lint: allow(float-format) trace exposition for humans/Prometheus, not a fingerprinted report
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

/// JSON has no infinity; +inf ("no constraint") becomes null.
std::string json_number(double v) {
  return std::isfinite(v) ? number(v) : std::string("null");
}

/// CSV counterpart: std::stod round-trips "inf".
std::string csv_number(double v) {
  return std::isfinite(v) ? number(v) : std::string("inf");
}

/// Value of `"key":` in a flat one-line JSON object; nullopt-like empty
/// string when absent. Values in trace lines are numbers, null, or booleans
/// — never strings — so scanning to the next ',' or '}' is sufficient.
std::string find_raw(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return {};
  const auto start = pos + needle.size();
  auto end = line.find_first_of(",}", start);
  if (end == std::string::npos) end = line.size();
  auto value = line.substr(start, end - start);
  while (!value.empty() && (value.front() == ' ' || value.front() == '\t'))
    value.erase(value.begin());
  while (!value.empty() && (value.back() == ' ' || value.back() == '\t'))
    value.pop_back();
  return value;
}

double parse_double(const std::string& raw, double fallback) {
  if (raw.empty()) return fallback;
  if (raw == "null") return kInf;  // the only non-finite the writer emits
  try {
    return std::stod(raw);
  } catch (const std::exception&) {
    return fallback;
  }
}

std::uint64_t parse_u64(const std::string& raw, std::uint64_t fallback) {
  if (raw.empty()) return fallback;
  try {
    return std::stoull(raw);
  } catch (const std::exception&) {
    return fallback;
  }
}

}  // namespace

void write_trace_jsonl(std::ostream& os,
                       const std::vector<TickRecord>& records) {
  for (const TickRecord& r : records) {
    os << "{\"time\":" << number(r.time) << ",\"node\":" << r.node
       << ",\"pe\":" << r.pe << ",\"buffer\":" << number(r.buffer_occupancy)
       << ",\"arrived\":" << number(r.arrived_sdos)
       << ",\"processed\":" << number(r.processed_sdos)
       << ",\"cpu_share\":" << number(r.cpu_share)
       << ",\"cpu_used\":" << number(r.cpu_seconds_used)
       << ",\"advertised_rmax\":" << json_number(r.advertised_rmax)
       << ",\"downstream_rmax\":" << json_number(r.downstream_rmax)
       << ",\"tokens\":" << number(r.token_fill)
       << ",\"blocked\":" << (r.output_blocked ? "true" : "false")
       << ",\"drops\":" << r.dropped_total
       << ",\"fault\":" << static_cast<unsigned>(r.fault_flags);
    // Only sweep-combined records carry a policy tag, and only
    // cluster-tagged (distributed) records carry a shard; plain traces
    // keep their pre-tag byte layout.
    if (!r.policy.empty()) os << ",\"policy\":\"" << r.policy << "\"";
    if (r.shard >= 0) os << ",\"shard\":" << r.shard;
    os << "}\n";
  }
}

void write_trace_csv(std::ostream& os, const std::vector<TickRecord>& records) {
  os << "time,node,pe,buffer,arrived,processed,cpu_share,cpu_used,"
        "advertised_rmax,downstream_rmax,tokens,blocked,drops,fault\n";
  for (const TickRecord& r : records) {
    os << number(r.time) << ',' << r.node << ',' << r.pe << ','
       << number(r.buffer_occupancy) << ',' << number(r.arrived_sdos) << ','
       << number(r.processed_sdos) << ',' << number(r.cpu_share) << ','
       << number(r.cpu_seconds_used) << ',' << csv_number(r.advertised_rmax)
       << ',' << csv_number(r.downstream_rmax) << ',' << number(r.token_fill)
       << ',' << (r.output_blocked ? 1 : 0) << ',' << r.dropped_total << ','
       << static_cast<unsigned>(r.fault_flags) << '\n';
  }
}

std::vector<TickRecord> read_trace_jsonl(std::istream& is) {
  std::vector<TickRecord> records;
  std::string line;
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] != '{') continue;  // not a JSON object; skip, don't
                                       // fabricate a default record
    TickRecord r;
    r.time = parse_double(find_raw(line, "time"), r.time);
    r.node = static_cast<std::uint32_t>(parse_u64(find_raw(line, "node"), 0));
    r.pe = static_cast<std::uint32_t>(parse_u64(find_raw(line, "pe"), 0));
    r.buffer_occupancy =
        parse_double(find_raw(line, "buffer"), r.buffer_occupancy);
    r.arrived_sdos = parse_double(find_raw(line, "arrived"), r.arrived_sdos);
    r.processed_sdos =
        parse_double(find_raw(line, "processed"), r.processed_sdos);
    r.cpu_share = parse_double(find_raw(line, "cpu_share"), r.cpu_share);
    r.cpu_seconds_used =
        parse_double(find_raw(line, "cpu_used"), r.cpu_seconds_used);
    r.advertised_rmax =
        parse_double(find_raw(line, "advertised_rmax"), r.advertised_rmax);
    r.downstream_rmax =
        parse_double(find_raw(line, "downstream_rmax"), r.downstream_rmax);
    r.token_fill = parse_double(find_raw(line, "tokens"), r.token_fill);
    r.output_blocked = find_raw(line, "blocked") == "true";
    r.dropped_total = parse_u64(find_raw(line, "drops"), r.dropped_total);
    // "fault" is absent in pre-fault-subsystem traces; default 0 (healthy).
    r.fault_flags =
        static_cast<std::uint8_t>(parse_u64(find_raw(line, "fault"), 0));
    // Optional sweep policy tag: find_raw keeps the surrounding quotes
    // (policy names contain neither commas nor escapes).
    std::string policy = find_raw(line, "policy");
    if (policy.size() >= 2 && policy.front() == '"' && policy.back() == '"') {
      r.policy = policy.substr(1, policy.size() - 2);
    }
    // Cluster-tagged records carry the producing shard; absent = -1.
    const std::string shard = find_raw(line, "shard");
    if (!shard.empty()) {
      r.shard = static_cast<std::int32_t>(parse_u64(shard, 0));
    }
    records.push_back(r);
  }
  return records;
}

void write_counters_jsonl(std::ostream& os, const CounterSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    os << "{\"name\":\"" << name << "\",\"type\":\"counter\",\"value\":"
       << value << "}\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    os << "{\"name\":\"" << name << "\",\"type\":\"gauge\",\"value\":"
       << json_number(value) << "}\n";
  }
}

void write_counters_csv(std::ostream& os, const CounterSnapshot& snapshot) {
  os << "name,type,value\n";
  for (const auto& [name, value] : snapshot.counters) {
    os << name << ",counter," << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    os << name << ",gauge," << csv_number(value) << '\n';
  }
}

void write_profile_summary(std::ostream& os, const PhaseProfiler& profiler) {
  for (const std::string& phase : profiler.phases()) {
    const LogHistogram h = profiler.histogram(phase);
    os << phase << ": count=" << h.count()
       << " p50=" << number(h.median() * 1e6)
       << "us p99=" << number(h.p99() * 1e6) << "us\n";
  }
}

std::string prometheus_label_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

/// `key="escaped"` pairs joined by commas, without the surrounding braces
/// (emitters append extra reserved labels like `quantile` / `le`).
std::string label_block(const PrometheusLabels& labels) {
  std::string out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += labels[i].first;
    out += "=\"";
    out += prometheus_label_escape(labels[i].second);
    out += '"';
  }
  return out;
}

/// "{...}" around a non-empty label block; empty string otherwise (an
/// unlabelled sample takes no braces at all).
std::string braced(const std::string& block) {
  return block.empty() ? std::string() : '{' + block + '}';
}

void family_header(std::ostream& os, const char* name, const char* help,
                   const char* type, bool& header_done) {
  if (header_done) return;
  os << "# HELP " << name << ' ' << help << '\n';
  os << "# TYPE " << name << ' ' << type << '\n';
  header_done = true;
}

}  // namespace

void prometheus_summary(std::ostream& os, const char* name, const char* help,
                        const PrometheusLabels& labels, const LogHistogram& h,
                        bool& header_done) {
  family_header(os, name, help, "summary", header_done);
  const std::string base = label_block(labels);
  const std::string sep = base.empty() ? "" : ",";
  const LatencyQuantiles q = quantiles_of(h);
  const double quantiles[][2] = {
      {0.5, q.p50}, {0.9, q.p90}, {0.99, q.p99}, {0.999, q.p999}};
  for (const auto& [which, value] : quantiles) {
    os << name << '{' << base << sep << "quantile=\"" << number(which)
       << "\"} " << number(value) << '\n';
  }
  os << name << "_sum" << braced(base) << ' ' << number(h.sum()) << '\n';
  os << name << "_count" << braced(base) << ' ' << h.count() << '\n';
}

void prometheus_histogram(std::ostream& os, const char* name, const char* help,
                          const PrometheusLabels& labels, const LogHistogram& h,
                          bool& header_done) {
  family_header(os, name, help, "histogram", header_done);
  const std::string base = label_block(labels);
  const std::string sep = base.empty() ? "" : ",";
  // Cumulative buckets at every quarter decade; the underflow bucket folds
  // into the first boundary, +Inf closes the member.
  std::uint64_t cumulative = h.underflow();
  std::size_t next_boundary = 5;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    cumulative += h.bucket_value(i);
    if (i + 1 == next_boundary) {
      os << name << "_bucket{" << base << sep << "le=\""
         << number(h.bucket_lower(i + 1)) << "\"} " << cumulative << '\n';
      next_boundary += 5;
    }
  }
  os << name << "_bucket{" << base << sep << "le=\"+Inf\"} " << h.count()
     << '\n';
  os << name << "_sum" << braced(base) << ' ' << number(h.sum()) << '\n';
  os << name << "_count" << braced(base) << ' ' << h.count() << '\n';
}

void write_latency_prometheus(std::ostream& os, const SpanTracer& tracer) {
  const auto counter = [&os](const char* name, const char* help,
                             std::uint64_t value) {
    os << "# HELP " << name << ' ' << help << '\n';
    os << "# TYPE " << name << " counter\n";
    os << name << ' ' << value << '\n';
  };
  counter("aces_spans_started_total", "SDO spans begun at the sources",
          tracer.spans_started());
  counter("aces_spans_completed_total", "Spans finished at an egress",
          tracer.spans_completed());
  counter("aces_spans_dropped_total", "Spans ended by a drop or crash",
          tracer.spans_dropped());
  counter("aces_spans_pool_exhausted_total",
          "Sampled SDOs skipped because the span pool was full",
          tracer.pool_exhausted());
  counter("aces_span_fault_dumps_total", "Flight-recorder fault dumps",
          tracer.dumps_taken());

  bool wait_header = false, service_header = false;
  for (const auto& [pe, stats] : tracer.latency().pes()) {
    prometheus_summary(os, "aces_pe_wait_seconds",
                       "Queue wait (enqueue to dequeue) per PE",
                       {{"pe", std::to_string(pe)}}, stats.wait, wait_header);
  }
  for (const auto& [pe, stats] : tracer.latency().pes()) {
    prometheus_summary(os, "aces_pe_service_seconds",
                       "Service time (dequeue to emit) per PE",
                       {{"pe", std::to_string(pe)}}, stats.service,
                       service_header);
  }

  bool path_header = false;
  for (const auto& [id, stats] : tracer.latency().paths()) {
    prometheus_histogram(os, "aces_path_latency_seconds",
                         "End-to-end latency per source-to-sink path",
                         {{"path", stats.label}}, stats.end_to_end,
                         path_header);
  }
}

namespace {

/// "pe@enqueue/dequeue/emit|..." — flat-scanner-safe (no commas/brackets);
/// unreached timestamps print as "-".
std::string hops_string(const SdoSpan& span) {
  std::string out;
  for (std::uint32_t i = 0; i < span.hop_count; ++i) {
    const SpanHop& hop = span.hops[i];
    if (i > 0) out.push_back('|');
    out += std::to_string(hop.pe);
    out.push_back('@');
    out += hop.enqueue >= 0.0 ? number(hop.enqueue) : std::string("-");
    out.push_back('/');
    out += hop.dequeue >= 0.0 ? number(hop.dequeue) : std::string("-");
    out.push_back('/');
    out += hop.emit >= 0.0 ? number(hop.emit) : std::string("-");
  }
  return out;
}

void span_json_fields(std::ostream& os, const SdoSpan& span) {
  os << "\"trace_id\":" << span.trace_id << ",\"source_pe\":" << span.source_pe
     << ",\"start\":" << number(span.start) << ",\"end\":"
     << (span.end >= 0.0 ? number(span.end) : std::string("null"))
     << ",\"latency\":"
     << (span.end >= 0.0 ? number(span.latency()) : std::string("null"))
     << ",\"dropped\":" << (span.dropped ? "true" : "false")
     << ",\"path\":\"" << path_label(span.hop_pes()) << "\",\"hops\":\""
     << hops_string(span) << '"';
}

void quantile_fields(std::ostream& os, const char* prefix,
                     const LogHistogram& h) {
  const LatencyQuantiles q = quantiles_of(h);
  os << '"' << prefix << "_count\":" << q.count << ",\"" << prefix
     << "_p50\":" << number(q.p50) << ",\"" << prefix
     << "_p90\":" << number(q.p90) << ",\"" << prefix
     << "_p99\":" << number(q.p99) << ",\"" << prefix
     << "_p999\":" << number(q.p999) << ",\"" << prefix
     << "_mean\":" << number(q.mean) << ",\"" << prefix
     << "_max\":" << number(q.max);
}

}  // namespace

void write_spans_jsonl(std::ostream& os, const SpanTracer& tracer) {
  const SpanTracerOptions& opt = tracer.options();
  os << "{\"kind\":\"meta\",\"sample_rate\":" << number(opt.sample_rate)
     << ",\"seed\":" << opt.seed << ",\"started\":" << tracer.spans_started()
     << ",\"completed\":" << tracer.spans_completed()
     << ",\"dropped\":" << tracer.spans_dropped()
     << ",\"pool_exhausted\":" << tracer.pool_exhausted()
     << ",\"fault_dumps\":" << tracer.dumps_taken() << "}\n";
  for (const auto& [pe, stats] : tracer.latency().pes()) {
    os << "{\"kind\":\"pe\",\"pe\":" << pe << ',';
    quantile_fields(os, "wait", stats.wait);
    os << ',';
    quantile_fields(os, "service", stats.service);
    os << "}\n";
  }
  for (const auto& [id, stats] : tracer.latency().paths()) {
    os << "{\"kind\":\"path\",\"path\":\"" << stats.label
       << "\",\"path_id\":" << id << ',';
    quantile_fields(os, "e2e", stats.end_to_end);
    os << "}\n";
  }
  for (const SdoSpan& span : tracer.worst_spans()) {
    os << "{\"kind\":\"span\",";
    span_json_fields(os, span);
    os << "}\n";
  }
  const auto& dumps = tracer.dumps();
  for (std::size_t d = 0; d < dumps.size(); ++d) {
    const FlightDump& dump = dumps[d];
    os << "{\"kind\":\"dump\",\"index\":" << d << ",\"event\":\""
       << dump.event << "\",\"time\":" << number(dump.time)
       << ",\"recent\":" << dump.recent.size()
       << ",\"in_flight\":" << dump.in_flight.size() << "}\n";
    for (const SdoSpan& span : dump.recent) {
      os << "{\"kind\":\"dump_span\",\"index\":" << d
         << ",\"group\":\"recent\",";
      span_json_fields(os, span);
      os << "}\n";
    }
    for (const SdoSpan& span : dump.in_flight) {
      os << "{\"kind\":\"dump_span\",\"index\":" << d
         << ",\"group\":\"in_flight\",";
      span_json_fields(os, span);
      os << "}\n";
    }
  }
}

}  // namespace aces::obs
