// Plain-text serialization of processing graphs.
//
// A simple line-oriented format so experiments are reproducible across runs
// and machines: topologies generated once can be archived next to their
// results, reloaded by examples, and diffed by humans.
//
//   aces-topology 1
//   node <capacity> <name>
//   stream <mean_rate> <burstiness> <name>
//   pe <kind> <node> <t0> <t1> <sojourn0> <sojourn1> <selectivity>
//      <bytes> <weight> <buffer> <overhead> <stream|->        (one line)
//   edge <from> <to>
//
// Names may not contain spaces (writer rejects them); ids are the dense
// creation indices, so a round-trip reproduces identical ids.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/processing_graph.h"

namespace aces::graph {

/// Writes `g` in the text format above.
void write_topology(const ProcessingGraph& g, std::ostream& os);
std::string to_string(const ProcessingGraph& g);

/// Parses a topology; throws CheckFailure on malformed input.
ProcessingGraph read_topology(std::istream& is);
ProcessingGraph topology_from_string(const std::string& text);

}  // namespace aces::graph
