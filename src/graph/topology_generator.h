// Random topology generation (paper §VI-A).
//
// "The topologies for the simulation were generated through a topology
//  generation tool that takes as input the number of CPUs in the system, the
//  number of ingress, egress and intermediate PEs in the system, and the
//  average degree of interconnectivity between the PEs. The output of the
//  generator is a PE graph, the assignment of the PEs to the CPUs, the
//  time-averaged CPU allocations of the PEs and the parameters for each PE."
//
// CPU allocation targets are produced separately by opt::GlobalOptimizer; the
// generator emits the graph, the placement, and per-PE parameters.
#pragma once

#include <cstdint>

#include "graph/processing_graph.h"

namespace aces::graph {

/// Parameters of the random topology generator. Defaults reproduce the
/// paper's §VI-C configuration.
struct TopologyParams {
  int num_nodes = 10;
  int num_ingress = 10;
  int num_intermediate = 40;
  int num_egress = 10;
  /// Degree caps (paper: max fan-out 4, max fan-in 3).
  int max_fan_in = 3;
  int max_fan_out = 4;
  /// Number of intermediate layers. PEs are organized ingress → `depth`
  /// layers of intermediates → egress, and edges connect adjacent (or
  /// occasionally earlier) layers, which bounds path length — stream
  /// applications are shallow pipelines, not 40-stage chains.
  int depth = 4;
  /// Fraction of PEs with multiple inputs or multiple outputs (paper: 20%).
  double multi_degree_fraction = 0.2;
  /// Per-SDO CPU time in the fast / slow PE state (paper: T0=2ms, T1=20ms).
  double service_time_fast = 0.002;
  double service_time_slow = 0.020;
  /// Mean sojourn in the fast / slow state, seconds (paper: λ_S=10, λ_m=1;
  /// see DESIGN.md §5 for our reading).
  double sojourn_fast = 10.0;
  double sojourn_slow = 1.0;
  /// Selectivity is drawn uniformly from this range.
  double selectivity_min = 0.8;
  double selectivity_max = 1.2;
  /// Egress weights are drawn uniformly from integer range [1, max].
  int max_weight = 10;
  double bytes_per_sdo = 1024.0;
  int buffer_capacity = 50;
  /// Offered-load factor ρ (paper §VI-C): source rates are scaled so that
  /// processing the entire offered load would consume exactly ρ of the
  /// busiest node's CPU. Long-run load is therefore feasible; the two-state
  /// service bursts still overload nodes transiently.
  double load_factor = 0.5;
  /// Arrival burstiness handed to every stream descriptor.
  double source_burstiness = 0.5;

  /// Convenience: total PE count.
  [[nodiscard]] int total_pes() const {
    return num_ingress + num_intermediate + num_egress;
  }
};

/// Generates a random connected-enough layered DAG honouring the degree caps,
/// places PEs on nodes with balanced counts, sizes source rates from
/// `load_factor`, and assigns random weights/selectivities.
///
/// Deterministic for a given (params, seed).
ProcessingGraph generate_topology(const TopologyParams& params,
                                  std::uint64_t seed);

}  // namespace aces::graph
