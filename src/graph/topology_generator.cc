#include "graph/topology_generator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/log.h"
#include "common/rng.h"

namespace aces::graph {

namespace {

/// Fisher-Yates shuffle driven by our deterministic Rng (std::shuffle's
/// output is implementation-defined, which would break cross-platform
/// reproducibility of topologies).
template <typename T>
void shuffle(std::vector<T>& items, Rng& rng) {
  for (std::size_t i = items.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(items[i - 1], items[j]);
  }
}

}  // namespace

ProcessingGraph generate_topology(const TopologyParams& params,
                                  std::uint64_t seed) {
  ACES_CHECK_MSG(params.num_nodes > 0, "need at least one node");
  ACES_CHECK_MSG(params.num_ingress > 0, "need at least one ingress PE");
  ACES_CHECK_MSG(params.num_egress > 0, "need at least one egress PE");
  ACES_CHECK_MSG(params.num_intermediate >= 0, "negative intermediate count");
  ACES_CHECK_MSG(params.max_fan_in >= 1 && params.max_fan_out >= 1,
                 "degree caps must be at least 1");
  ACES_CHECK_MSG(params.multi_degree_fraction >= 0.0 &&
                     params.multi_degree_fraction <= 1.0,
                 "multi_degree_fraction out of [0,1]");
  ACES_CHECK_MSG(params.load_factor > 0.0, "load factor must be positive");
  ACES_CHECK_MSG(params.depth >= 0, "depth must be non-negative");

  Rng rng(seed);
  ProcessingGraph g;

  for (int i = 0; i < params.num_nodes; ++i) {
    g.add_node(NodeDescriptor{1.0, "node" + std::to_string(i)});
  }

  const int total = params.total_pes();

  // Balanced placement: deal PEs onto a shuffled node sequence so each node
  // hosts total/num_nodes PEs (±1) and the kind mix per node is random.
  std::vector<NodeId> placement;
  placement.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    placement.emplace_back(
        static_cast<NodeId::value_type>(i % params.num_nodes));
  }
  shuffle(placement, rng);

  // PEs are created in "layer" order (ingress, intermediates, egress); edges
  // only go from earlier to later positions, which guarantees acyclicity.
  auto base_descriptor = [&](PeKind kind, int position) {
    PeDescriptor d;
    d.kind = kind;
    d.node = placement[static_cast<std::size_t>(position)];
    d.service_time[0] = params.service_time_fast;
    d.service_time[1] = params.service_time_slow;
    d.sojourn_mean[0] = params.sojourn_fast;
    d.sojourn_mean[1] = params.sojourn_slow;
    d.selectivity = rng.uniform(params.selectivity_min, params.selectivity_max);
    d.bytes_per_sdo = params.bytes_per_sdo;
    d.buffer_capacity = params.buffer_capacity;
    d.weight = 1.0;
    return d;
  };

  // Layer assignment: ingress = layer 0, intermediates spread over layers
  // 1..depth (each layer non-empty when counts allow), egress = depth + 1.
  // Intermediates need at least one layer of their own even when depth = 0.
  const int depth =
      params.num_intermediate > 0 ? std::max(params.depth, 1) : 0;
  const int last_layer = depth + 1;
  std::vector<std::vector<PeId>> layers(
      static_cast<std::size_t>(last_layer) + 1);
  int position = 0;
  for (int i = 0; i < params.num_ingress; ++i, ++position) {
    StreamDescriptor sd;
    sd.name = "stream" + std::to_string(i);
    sd.burstiness = params.source_burstiness;
    const StreamId stream = g.add_stream(sd);
    PeDescriptor d = base_descriptor(PeKind::kIngress, position);
    d.input_stream = stream;
    layers[0].push_back(g.add_pe(d));
  }
  for (int i = 0; i < params.num_intermediate; ++i, ++position) {
    const auto layer = static_cast<std::size_t>(
        1 + (i < depth ? i  // guarantee non-empty layers first
                       : static_cast<int>(rng.uniform_int(0, depth - 1))));
    layers[std::min<std::size_t>(layer, static_cast<std::size_t>(depth))]
        .push_back(g.add_pe(base_descriptor(PeKind::kIntermediate, position)));
  }
  for (int i = 0; i < params.num_egress; ++i, ++position) {
    PeDescriptor d = base_descriptor(PeKind::kEgress, position);
    d.weight = static_cast<double>(rng.uniform_int(1, params.max_weight));
    layers[static_cast<std::size_t>(last_layer)].push_back(g.add_pe(d));
  }
  // Collapse empty intermediate layers (possible when num_intermediate <
  // depth) so "previous layer" is always meaningful.
  std::erase_if(layers, [](const auto& l) { return l.empty(); });

  /// PEs in layers strictly before `layer` with spare fan-out, nearest layer
  /// first.
  auto producer_candidates = [&](std::size_t layer) {
    std::vector<PeId> candidates;
    for (std::size_t l = layer; l-- > 0;) {
      std::vector<PeId> tier;
      for (PeId id : layers[l]) {
        if (g.downstream(id).size() <
            static_cast<std::size_t>(params.max_fan_out))
          tier.push_back(id);
      }
      shuffle(tier, rng);
      // Producers still lacking a consumer go first within their tier.
      std::stable_partition(tier.begin(), tier.end(), [&](PeId id) {
        return g.downstream(id).empty();
      });
      candidates.insert(candidates.end(), tier.begin(), tier.end());
    }
    return candidates;
  };

  // Wire every non-ingress PE to producers in earlier layers (nearest layer
  // preferred, so path lengths track `depth`).
  for (std::size_t layer = 1; layer < layers.size(); ++layer) {
    for (PeId consumer : layers[layer]) {
      int fan_in = 1;
      if (params.max_fan_in > 1 &&
          rng.bernoulli(params.multi_degree_fraction)) {
        fan_in = static_cast<int>(rng.uniform_int(2, params.max_fan_in));
      }
      std::vector<PeId> candidates = producer_candidates(layer);
      if (candidates.empty()) {
        // Every earlier PE is at its fan-out cap (possible when one thin
        // layer feeds a much wider one). Degree caps are generation
        // targets; connectivity is an invariant — take the least-loaded
        // earlier producer as a last resort.
        PeId fallback;
        std::size_t fallback_degree = std::numeric_limits<std::size_t>::max();
        for (std::size_t l = 0; l < layer; ++l) {
          for (PeId producer : layers[l]) {
            if (g.downstream(producer).size() < fallback_degree) {
              fallback = producer;
              fallback_degree = g.downstream(producer).size();
            }
          }
        }
        ACES_CHECK_MSG(fallback.valid(),
                       "no earlier PE exists for " << consumer);
        ACES_LOG(LogLevel::kWarn,
                 "topology wiring exceeds max_fan_out at " << fallback);
        candidates.push_back(fallback);
      }
      const int links =
          std::min<int>(fan_in, static_cast<int>(candidates.size()));
      for (int k = 0; k < links; ++k)
        g.add_edge(candidates[static_cast<std::size_t>(k)], consumer);
    }
  }

  // Fix-up: every non-egress PE needs a consumer (validate() requires it).
  // Runs BEFORE the multi-output promotion so promotions cannot consume the
  // fan-in budget this pass depends on. If the caps genuinely cannot
  // accommodate a producer (extreme layer-size ratios), the edge is placed
  // on the later PE with the smallest fan-in as a last resort — degree caps
  // are generation targets, acyclicity and connectivity are invariants.
  for (std::size_t layer = 0; layer + 1 < layers.size(); ++layer) {
    for (PeId producer : layers[layer]) {
      if (!g.downstream(producer).empty()) continue;
      PeId best;
      PeId fallback;
      std::size_t fallback_fan_in = std::numeric_limits<std::size_t>::max();
      for (std::size_t l = layer + 1; l < layers.size() && !best.valid();
           ++l) {
        for (PeId consumer : layers[l]) {
          const std::size_t fan_in = g.upstream(consumer).size();
          if (fan_in < static_cast<std::size_t>(params.max_fan_in)) {
            best = consumer;
            break;
          }
          if (fan_in < fallback_fan_in) {
            fallback = consumer;
            fallback_fan_in = fan_in;
          }
        }
      }
      if (!best.valid()) {
        ACES_CHECK_MSG(fallback.valid(),
                       "no later PE exists for " << producer);
        ACES_LOG(LogLevel::kWarn,
                 "topology fix-up exceeds max_fan_in at " << fallback);
        best = fallback;
      }
      g.add_edge(producer, best);
    }
  }

  // Multi-output pass: promote a random subset of single-consumer producers
  // to multiple consumers (paper: 20% of PEs have multiple inputs/outputs).
  {
    std::vector<std::pair<std::size_t, PeId>> single_out;  // (layer, pe)
    for (std::size_t layer = 0; layer + 1 < layers.size(); ++layer) {
      for (PeId id : layers[layer])
        if (g.downstream(id).size() == 1) single_out.emplace_back(layer, id);
    }
    shuffle(single_out, rng);
    const auto promote = static_cast<std::size_t>(
        params.multi_degree_fraction * static_cast<double>(single_out.size()));
    for (std::size_t i = 0; i < promote; ++i) {
      const auto [layer, producer] = single_out[i];
      const int extra = static_cast<int>(rng.uniform_int(
          1, std::max<std::int64_t>(1, params.max_fan_out - 1)));
      std::vector<PeId> later;
      for (std::size_t l = layer + 1; l < layers.size(); ++l)
        later.insert(later.end(), layers[l].begin(), layers[l].end());
      shuffle(later, rng);
      int added = 0;
      for (PeId consumer : later) {
        if (added >= extra) break;
        if (g.upstream(consumer).size() >=
            static_cast<std::size_t>(params.max_fan_in))
          continue;
        const auto& downs = g.downstream(producer);
        if (std::find(downs.begin(), downs.end(), consumer) != downs.end())
          continue;
        g.add_edge(producer, consumer);
        ++added;
      }
    }
  }

  // Source-rate calibration. With fan-in merging sums, fan-out copying, and
  // selectivity scaling, the offered flow at every PE is linear in the
  // source rates; the CPU a node needs to process everything is affine,
  //   node_cpu(s) = s · L_n + O_n,
  // where L_n is the flow-proportional part at a reference rate and O_n the
  // fixed per-PE overheads of the rate map h(c) = a·c − b. Solving
  // s·L_n + O_n = load_factor · capacity_n per node and taking the minimum
  // realizes the paper's ρ exactly: the busiest node would spend exactly ρ
  // of its CPU to process the full offered load. Averages are then feasible
  // while the two-state service bursts still overload nodes transiently.
  {
    constexpr double kReferenceRate = 100.0;  // SDOs/sec per stream
    std::vector<double> flow(g.pe_count(), 0.0);  // offered input, SDO/s
    std::vector<double> node_load(g.node_count(), 0.0);      // L_n
    std::vector<double> node_overhead(g.node_count(), 0.0);  // O_n
    for (PeId id : g.topological_order()) {
      const PeDescriptor& d = g.pe(id);
      double offered = 0.0;
      if (d.kind == PeKind::kIngress) {
        offered = kReferenceRate;
      } else {
        for (PeId up : g.upstream(id))
          offered += g.pe(up).selectivity * flow[up.value()];
      }
      flow[id.value()] = offered;
      node_load[d.node.value()] +=
          offered * d.bytes_per_sdo / d.rate_map_slope();
      node_overhead[d.node.value()] += d.cpu_overhead;
    }
    double scale = std::numeric_limits<double>::infinity();
    for (NodeId n : g.all_nodes()) {
      const double budget =
          params.load_factor * g.node(n).cpu_capacity -
          node_overhead[n.value()];
      ACES_CHECK_MSG(budget > 0.0, "load factor below fixed PE overheads on "
                                       << n);
      if (node_load[n.value()] > 0.0)
        scale = std::min(scale, budget / node_load[n.value()]);
    }
    ACES_CHECK_MSG(std::isfinite(scale) && scale > 0.0,
                   "degenerate topology: no load anywhere");
    for (std::size_t s = 0; s < g.stream_count(); ++s)
      g.stream(StreamId(static_cast<StreamId::value_type>(s))).mean_rate =
          kReferenceRate * scale;
  }

  g.validate();
  return g;
}

}  // namespace aces::graph
