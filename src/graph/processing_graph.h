// The processing graph: PEs wired into a DAG, placed onto nodes.
//
// This is the single source of truth for application structure consumed by
// the tier-1 optimizer, the simulator, and the threaded runtime.
#pragma once

#include <vector>

#include "common/types.h"
#include "graph/descriptors.h"

namespace aces::graph {

/// A directed producer→consumer connection between two PEs.
struct Edge {
  PeId from;
  PeId to;
};

/// Mutable builder + immutable-after-validate container for the PE DAG.
///
/// Ids are dense indices assigned in insertion order, so modules may keep
/// per-PE state in flat vectors indexed by `PeId::value()`.
class ProcessingGraph {
 public:
  NodeId add_node(NodeDescriptor desc = {});
  StreamId add_stream(StreamDescriptor desc = {});
  /// Adds a PE; `desc.node` must reference an existing node, and ingress PEs
  /// must reference an existing stream.
  PeId add_pe(PeDescriptor desc);
  /// Adds an edge; endpoints must exist and differ.
  EdgeId add_edge(PeId from, PeId to);

  [[nodiscard]] std::size_t pe_count() const { return pes_.size(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t stream_count() const { return streams_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  [[nodiscard]] const PeDescriptor& pe(PeId id) const;
  [[nodiscard]] PeDescriptor& pe(PeId id);
  [[nodiscard]] const NodeDescriptor& node(NodeId id) const;
  [[nodiscard]] NodeDescriptor& node(NodeId id);
  [[nodiscard]] const StreamDescriptor& stream(StreamId id) const;
  [[nodiscard]] StreamDescriptor& stream(StreamId id);
  [[nodiscard]] const Edge& edge(EdgeId id) const;

  /// PEs feeding data to `id` (paper: U(p_j)).
  [[nodiscard]] const std::vector<PeId>& upstream(PeId id) const;
  /// PEs fed by `id` (paper: D(p_j)).
  [[nodiscard]] const std::vector<PeId>& downstream(PeId id) const;
  /// PEs placed on node `id` (paper: N_i).
  [[nodiscard]] const std::vector<PeId>& pes_on_node(NodeId id) const;

  /// All PE ids in insertion order.
  [[nodiscard]] std::vector<PeId> all_pes() const;
  [[nodiscard]] std::vector<NodeId> all_nodes() const;

  /// Kahn topological order over the PE DAG. Throws CheckFailure on a cycle.
  [[nodiscard]] std::vector<PeId> topological_order() const;

  /// Structural invariants from the paper's model: acyclicity; ingress PEs
  /// have a stream and no upstream PEs; egress PEs have no downstream PEs;
  /// intermediates have both; every placement refers to a real node.
  /// Throws CheckFailure with a description of the first violation.
  void validate() const;

  /// Maximum fan-in / fan-out over all PEs (used by tests to verify the
  /// topology generator honours the paper's degree caps).
  [[nodiscard]] std::size_t max_fan_in() const;
  [[nodiscard]] std::size_t max_fan_out() const;

 private:
  std::vector<PeDescriptor> pes_;
  std::vector<NodeDescriptor> nodes_;
  std::vector<StreamDescriptor> streams_;
  std::vector<Edge> edges_;
  std::vector<std::vector<PeId>> upstream_;    // indexed by PeId
  std::vector<std::vector<PeId>> downstream_;  // indexed by PeId
  std::vector<std::vector<PeId>> on_node_;     // indexed by NodeId
};

}  // namespace aces::graph
