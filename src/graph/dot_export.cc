#include "graph/dot_export.h"

#include <sstream>

namespace aces::graph {

std::string to_dot(const ProcessingGraph& g) {
  std::ostringstream os;
  os << "digraph aces {\n  rankdir=LR;\n  node [shape=circle];\n";
  for (NodeId node : g.all_nodes()) {
    os << "  subgraph cluster_" << node.value() << " {\n"
       << "    label=\"" << g.node(node).name << "\";\n";
    for (PeId pe : g.pes_on_node(node)) {
      const PeDescriptor& d = g.pe(pe);
      os << "    pe" << pe.value() << " [label=\"pe" << pe.value();
      if (d.kind == PeKind::kEgress) os << "\\nw=" << d.weight;
      os << "\"";
      if (d.kind == PeKind::kIngress) os << ", shape=triangle";
      if (d.kind == PeKind::kEgress) os << ", shape=doublecircle";
      os << "];\n";
    }
    os << "  }\n";
  }
  for (std::size_t i = 0; i < g.edge_count(); ++i) {
    const Edge& e = g.edge(EdgeId(static_cast<EdgeId::value_type>(i)));
    os << "  pe" << e.from.value() << " -> pe" << e.to.value() << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace aces::graph
