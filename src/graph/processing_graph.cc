#include "graph/processing_graph.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace aces::graph {

const char* to_string(PeKind kind) {
  switch (kind) {
    case PeKind::kIngress: return "ingress";
    case PeKind::kIntermediate: return "intermediate";
    case PeKind::kEgress: return "egress";
  }
  return "?";
}

NodeId ProcessingGraph::add_node(NodeDescriptor desc) {
  ACES_CHECK_MSG(desc.cpu_capacity > 0.0, "node capacity must be positive");
  nodes_.push_back(std::move(desc));
  on_node_.emplace_back();
  return NodeId(static_cast<NodeId::value_type>(nodes_.size() - 1));
}

StreamId ProcessingGraph::add_stream(StreamDescriptor desc) {
  ACES_CHECK_MSG(desc.mean_rate >= 0.0, "stream rate must be non-negative");
  streams_.push_back(std::move(desc));
  return StreamId(static_cast<StreamId::value_type>(streams_.size() - 1));
}

PeId ProcessingGraph::add_pe(PeDescriptor desc) {
  ACES_CHECK_MSG(desc.node.valid() && desc.node.value() < nodes_.size(),
                 "PE placed on unknown node");
  ACES_CHECK_MSG(desc.service_time[0] > 0.0 && desc.service_time[1] > 0.0,
                 "service times must be positive");
  ACES_CHECK_MSG(desc.sojourn_mean[0] > 0.0 && desc.sojourn_mean[1] > 0.0,
                 "sojourn means must be positive");
  ACES_CHECK_MSG(desc.selectivity >= 0.0, "selectivity must be non-negative");
  ACES_CHECK_MSG(desc.buffer_capacity > 0, "buffer capacity must be positive");
  ACES_CHECK_MSG(desc.weight >= 0.0, "weight must be non-negative");
  if (desc.kind == PeKind::kIngress) {
    ACES_CHECK_MSG(
        desc.input_stream.valid() && desc.input_stream.value() < streams_.size(),
        "ingress PE must reference an existing stream");
  } else {
    ACES_CHECK_MSG(!desc.input_stream.valid(),
                   "only ingress PEs may reference a stream");
  }
  const PeId id(static_cast<PeId::value_type>(pes_.size()));
  pes_.push_back(desc);
  upstream_.emplace_back();
  downstream_.emplace_back();
  on_node_[desc.node.value()].push_back(id);
  return id;
}

EdgeId ProcessingGraph::add_edge(PeId from, PeId to) {
  ACES_CHECK_MSG(from.valid() && from.value() < pes_.size(), "bad edge source");
  ACES_CHECK_MSG(to.valid() && to.value() < pes_.size(), "bad edge target");
  ACES_CHECK_MSG(from != to, "self-loop edge");
  const auto& existing = downstream_[from.value()];
  ACES_CHECK_MSG(std::find(existing.begin(), existing.end(), to) ==
                     existing.end(),
                 "duplicate edge " << from << " -> " << to);
  edges_.push_back(Edge{from, to});
  downstream_[from.value()].push_back(to);
  upstream_[to.value()].push_back(from);
  return EdgeId(static_cast<EdgeId::value_type>(edges_.size() - 1));
}

const PeDescriptor& ProcessingGraph::pe(PeId id) const {
  ACES_CHECK(id.valid() && id.value() < pes_.size());
  return pes_[id.value()];
}

PeDescriptor& ProcessingGraph::pe(PeId id) {
  ACES_CHECK(id.valid() && id.value() < pes_.size());
  return pes_[id.value()];
}

const NodeDescriptor& ProcessingGraph::node(NodeId id) const {
  ACES_CHECK(id.valid() && id.value() < nodes_.size());
  return nodes_[id.value()];
}

NodeDescriptor& ProcessingGraph::node(NodeId id) {
  ACES_CHECK(id.valid() && id.value() < nodes_.size());
  return nodes_[id.value()];
}

const StreamDescriptor& ProcessingGraph::stream(StreamId id) const {
  ACES_CHECK(id.valid() && id.value() < streams_.size());
  return streams_[id.value()];
}

StreamDescriptor& ProcessingGraph::stream(StreamId id) {
  ACES_CHECK(id.valid() && id.value() < streams_.size());
  return streams_[id.value()];
}

const Edge& ProcessingGraph::edge(EdgeId id) const {
  ACES_CHECK(id.valid() && id.value() < edges_.size());
  return edges_[id.value()];
}

const std::vector<PeId>& ProcessingGraph::upstream(PeId id) const {
  ACES_CHECK(id.valid() && id.value() < pes_.size());
  return upstream_[id.value()];
}

const std::vector<PeId>& ProcessingGraph::downstream(PeId id) const {
  ACES_CHECK(id.valid() && id.value() < pes_.size());
  return downstream_[id.value()];
}

const std::vector<PeId>& ProcessingGraph::pes_on_node(NodeId id) const {
  ACES_CHECK(id.valid() && id.value() < nodes_.size());
  return on_node_[id.value()];
}

std::vector<PeId> ProcessingGraph::all_pes() const {
  std::vector<PeId> out;
  out.reserve(pes_.size());
  for (std::size_t i = 0; i < pes_.size(); ++i)
    out.emplace_back(static_cast<PeId::value_type>(i));
  return out;
}

std::vector<NodeId> ProcessingGraph::all_nodes() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    out.emplace_back(static_cast<NodeId::value_type>(i));
  return out;
}

std::vector<PeId> ProcessingGraph::topological_order() const {
  std::vector<std::size_t> in_degree(pes_.size(), 0);
  for (const auto& e : edges_) ++in_degree[e.to.value()];
  std::deque<PeId> ready;
  for (std::size_t i = 0; i < pes_.size(); ++i)
    if (in_degree[i] == 0) ready.emplace_back(static_cast<PeId::value_type>(i));
  std::vector<PeId> order;
  order.reserve(pes_.size());
  while (!ready.empty()) {
    const PeId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (PeId next : downstream_[id.value()]) {
      if (--in_degree[next.value()] == 0) ready.push_back(next);
    }
  }
  ACES_CHECK_MSG(order.size() == pes_.size(), "processing graph has a cycle");
  return order;
}

void ProcessingGraph::validate() const {
  (void)topological_order();  // throws on cycle
  for (std::size_t i = 0; i < pes_.size(); ++i) {
    const PeId id(static_cast<PeId::value_type>(i));
    const PeDescriptor& d = pes_[i];
    switch (d.kind) {
      case PeKind::kIngress:
        ACES_CHECK_MSG(upstream_[i].empty(),
                       id << " is ingress but has upstream PEs");
        ACES_CHECK_MSG(!downstream_[i].empty(),
                       id << " is ingress but feeds nothing");
        break;
      case PeKind::kIntermediate:
        ACES_CHECK_MSG(!upstream_[i].empty(),
                       id << " is intermediate but has no upstream PEs");
        ACES_CHECK_MSG(!downstream_[i].empty(),
                       id << " is intermediate but feeds nothing");
        break;
      case PeKind::kEgress:
        ACES_CHECK_MSG(!upstream_[i].empty(),
                       id << " is egress but has no upstream PEs");
        ACES_CHECK_MSG(downstream_[i].empty(),
                       id << " is egress but has downstream PEs");
        break;
    }
  }
}

std::size_t ProcessingGraph::max_fan_in() const {
  std::size_t worst = 0;
  for (const auto& ups : upstream_) worst = std::max(worst, ups.size());
  return worst;
}

std::size_t ProcessingGraph::max_fan_out() const {
  std::size_t worst = 0;
  for (const auto& downs : downstream_) worst = std::max(worst, downs.size());
  return worst;
}

}  // namespace aces::graph
