// Graphviz DOT rendering of a processing graph, clustered by node.
#pragma once

#include <string>

#include "graph/processing_graph.h"

namespace aces::graph {

/// Renders the PE DAG as DOT text: one cluster per processing node, ingress
/// PEs as triangles, egress as double circles annotated with their weight.
std::string to_dot(const ProcessingGraph& g);

}  // namespace aces::graph
