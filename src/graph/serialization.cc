#include "graph/serialization.h"

#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace aces::graph {

namespace {

const char* kind_token(PeKind kind) {
  switch (kind) {
    case PeKind::kIngress: return "ingress";
    case PeKind::kIntermediate: return "intermediate";
    case PeKind::kEgress: return "egress";
  }
  return "?";
}

PeKind parse_kind(const std::string& token) {
  if (token == "ingress") return PeKind::kIngress;
  if (token == "intermediate") return PeKind::kIntermediate;
  if (token == "egress") return PeKind::kEgress;
  ACES_CHECK_MSG(false, "unknown PE kind '" << token << "'");
  return PeKind::kIntermediate;  // unreachable
}

std::string sanitize_name(const std::string& name) {
  ACES_CHECK_MSG(name.find_first_of(" \t\n") == std::string::npos,
                 "names may not contain whitespace: '" << name << "'");
  return name.empty() ? "-" : name;
}

}  // namespace

void write_topology(const ProcessingGraph& g, std::ostream& os) {
  os << "aces-topology 1\n";
  os << std::setprecision(17);
  for (NodeId n : g.all_nodes()) {
    const auto& d = g.node(n);
    os << "node " << d.cpu_capacity << ' ' << sanitize_name(d.name) << '\n';
  }
  for (std::size_t s = 0; s < g.stream_count(); ++s) {
    const auto& d = g.stream(StreamId(static_cast<StreamId::value_type>(s)));
    os << "stream " << d.mean_rate << ' ' << d.burstiness << ' '
       << sanitize_name(d.name) << '\n';
  }
  for (PeId id : g.all_pes()) {
    const auto& d = g.pe(id);
    os << "pe " << kind_token(d.kind) << ' ' << d.node.value() << ' '
       << d.service_time[0] << ' ' << d.service_time[1] << ' '
       << d.sojourn_mean[0] << ' ' << d.sojourn_mean[1] << ' '
       << d.selectivity << ' ' << d.bytes_per_sdo << ' ' << d.weight << ' '
       << d.buffer_capacity << ' ' << d.cpu_overhead << ' ';
    if (d.input_stream.valid()) {
      os << d.input_stream.value();
    } else {
      os << '-';
    }
    os << '\n';
  }
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(EdgeId(static_cast<EdgeId::value_type>(e)));
    os << "edge " << edge.from.value() << ' ' << edge.to.value() << '\n';
  }
}

std::string to_string(const ProcessingGraph& g) {
  std::ostringstream oss;
  write_topology(g, oss);
  return oss.str();
}

ProcessingGraph read_topology(std::istream& is) {
  ProcessingGraph g;
  std::string header;
  int version = 0;
  is >> header >> version;
  ACES_CHECK_MSG(header == "aces-topology" && version == 1,
                 "not an aces-topology v1 document");
  std::string tag;
  while (is >> tag) {
    if (tag == "node") {
      NodeDescriptor d;
      is >> d.cpu_capacity >> d.name;
      ACES_CHECK_MSG(is.good() || is.eof(), "malformed node line");
      if (d.name == "-") d.name.clear();
      g.add_node(d);
    } else if (tag == "stream") {
      StreamDescriptor d;
      is >> d.mean_rate >> d.burstiness >> d.name;
      ACES_CHECK_MSG(is.good() || is.eof(), "malformed stream line");
      if (d.name == "-") d.name.clear();
      g.add_stream(d);
    } else if (tag == "pe") {
      PeDescriptor d;
      std::string kind;
      NodeId::value_type node = 0;
      std::string stream;
      is >> kind >> node >> d.service_time[0] >> d.service_time[1] >>
          d.sojourn_mean[0] >> d.sojourn_mean[1] >> d.selectivity >>
          d.bytes_per_sdo >> d.weight >> d.buffer_capacity >>
          d.cpu_overhead >> stream;
      ACES_CHECK_MSG(is.good() || is.eof(), "malformed pe line");
      d.kind = parse_kind(kind);
      d.node = NodeId(node);
      if (stream != "-") {
        d.input_stream = StreamId(static_cast<StreamId::value_type>(
            std::stoul(stream)));
      }
      g.add_pe(d);
    } else if (tag == "edge") {
      PeId::value_type from = 0;
      PeId::value_type to = 0;
      is >> from >> to;
      ACES_CHECK_MSG(is.good() || is.eof(), "malformed edge line");
      g.add_edge(PeId(from), PeId(to));
    } else {
      ACES_CHECK_MSG(false, "unknown record '" << tag << "'");
    }
  }
  return g;
}

ProcessingGraph topology_from_string(const std::string& text) {
  std::istringstream iss(text);
  return read_topology(iss);
}

}  // namespace aces::graph
