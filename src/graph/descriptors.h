// Descriptors for the static structure of a stream-processing application:
// processing elements (PEs), processing nodes (PNs), and external streams.
//
// These mirror §III and §VI-B of the paper: a PE is a two-state state machine
// with state-dependent per-SDO service time (the burstiness model), a
// selectivity M (output SDOs per input SDO), a weight w_j used by the
// weighted-throughput objective, and a bounded input buffer of B SDOs.
#pragma once

#include <string>

#include "common/types.h"

namespace aces::graph {

/// Position of a PE in the processing DAG.
enum class PeKind {
  kIngress,       ///< fed by an external stream
  kIntermediate,  ///< fed by and feeding other PEs
  kEgress,        ///< produces a system output stream (weighted throughput)
};

const char* to_string(PeKind kind);

/// Static parameters of one processing element.
struct PeDescriptor {
  PeKind kind = PeKind::kIntermediate;
  /// Placement: which processing node hosts this PE.
  NodeId node;
  /// CPU seconds consumed per SDO in state 0 / state 1 (paper: T0, T1).
  double service_time[2] = {0.002, 0.020};
  /// Mean sojourn time (seconds) in state 0 / state 1; sojourns are
  /// exponentially distributed (paper §VI-B).
  double sojourn_mean[2] = {10.0, 1.0};
  /// Mean SDOs emitted per SDO consumed (paper: M). Fractional values are
  /// realized with credit-conserving stochastic rounding.
  double selectivity = 1.0;
  /// Size of one input SDO in bytes (rates in the optimizer are bytes/sec).
  double bytes_per_sdo = 1024.0;
  /// Relative importance w_j; enters the tier-1 objective and, for egress
  /// PEs, the weighted-throughput metric.
  double weight = 1.0;
  /// Input buffer capacity in SDOs (paper: B).
  int buffer_capacity = 50;
  /// Fraction of any CPU grant lost to fixed overhead (data-structure setup,
  /// function calls — the `b` of the paper's rate map h(c) = a·c − b).
  double cpu_overhead = 0.002;
  /// External stream feeding this PE; valid iff kind == kIngress.
  StreamId input_stream;

  /// Stationary probability of being in state 1 (the slow state).
  [[nodiscard]] double state1_fraction() const {
    return sojourn_mean[1] / (sojourn_mean[0] + sojourn_mean[1]);
  }
  /// Mean CPU seconds per SDO under the stationary state distribution
  /// (arithmetic mean; the expected cost of one SDO drawn at a random time).
  [[nodiscard]] double mean_service_time() const {
    const double p1 = state1_fraction();
    return (1.0 - p1) * service_time[0] + p1 * service_time[1];
  }
  /// Service time governing the *sustained* processing rate of a saturated,
  /// work-conserving PE: during a state-s sojourn the PE completes c/T_s
  /// SDOs per second, so the long-run rate is c·(π0/T0 + π1/T1) and the
  /// effective per-SDO time is the time-weighted harmonic mean. This is the
  /// value an empirical fit of the paper's rate map h(c) = a·c − b would
  /// observe, so the optimizer uses it for the slope `a`.
  [[nodiscard]] double effective_service_time() const {
    const double p1 = state1_fraction();
    return 1.0 / ((1.0 - p1) / service_time[0] + p1 / service_time[1]);
  }
  /// Rate-map slope `a` in bytes per CPU-second: input bytes processed per
  /// unit of CPU allocation (paper footnote 3).
  [[nodiscard]] double rate_map_slope() const {
    return bytes_per_sdo / effective_service_time();
  }
  /// Rate-map intercept `b` in bytes/sec.
  [[nodiscard]] double rate_map_intercept() const {
    return rate_map_slope() * cpu_overhead;
  }
  /// h(c) = max(a·c − b, 0): sustainable input byte rate at CPU share c.
  [[nodiscard]] double input_rate_at_cpu(double cpu) const {
    const double r = rate_map_slope() * cpu - rate_map_intercept();
    return r > 0.0 ? r : 0.0;
  }
  /// h⁻¹(r): CPU share needed to sustain input byte rate r (paper g⁻¹).
  [[nodiscard]] double cpu_for_input_rate(double rate) const {
    return (rate + rate_map_intercept()) / rate_map_slope();
  }
};

/// Static parameters of one processing node.
struct NodeDescriptor {
  /// Normalized CPU capacity; tier-1 enforces Σ c̄_j ≤ capacity (Eq. 4).
  double cpu_capacity = 1.0;
  std::string name;
};

/// An external input stream entering the system at an ingress PE.
struct StreamDescriptor {
  /// Long-run average offered rate in SDOs per second.
  double mean_rate = 100.0;
  /// Burstiness of arrivals: 0 = constant rate, 1 = on/off with on-fraction
  /// 0.5 (instantaneous rate doubles while on).
  double burstiness = 0.0;
  std::string name;
};

}  // namespace aces::graph
