#include "opt/fluid_model.h"

#include <algorithm>

namespace aces::opt {

FlowState fluid_forward(const graph::ProcessingGraph& g,
                        const std::vector<double>& cpu, const Utility& u,
                        bool egress_only) {
  const auto order = g.topological_order();
  FlowState fs;
  fs.xin.assign(g.pe_count(), 0.0);
  fs.xout.assign(g.pe_count(), 0.0);
  fs.cpu_bound.assign(g.pe_count(), false);
  for (PeId id : order) {
    const auto& d = g.pe(id);
    const std::size_t i = id.value();
    double offered;
    if (d.kind == graph::PeKind::kIngress) {
      offered = g.stream(d.input_stream).mean_rate;
    } else {
      offered = 0.0;
      for (PeId up : g.upstream(id)) offered += fs.xout[up.value()];
    }
    const double cpu_cap =
        d.input_rate_at_cpu(cpu[i]) / d.bytes_per_sdo;  // SDO/s
    fs.cpu_bound[i] = cpu_cap < offered;
    fs.xin[i] = std::min(cpu_cap, offered);
    fs.xout[i] = d.selectivity * fs.xin[i];
    const bool counts = !egress_only || d.kind == graph::PeKind::kEgress;
    if (counts) fs.utility += d.weight * u.value(fs.xout[i]);
    if (d.kind == graph::PeKind::kEgress)
      fs.weighted_throughput += d.weight * fs.xout[i];
  }
  return fs;
}

std::vector<double> fluid_supergradient(
    const graph::ProcessingGraph& g, const FlowState& fs, const Utility& u,
    bool egress_only, const std::vector<double>* extra_output_marginal) {
  const auto order = g.topological_order();
  std::vector<double> du(g.pe_count(), 0.0);
  std::vector<double> grad(g.pe_count(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const PeId id = *it;
    const std::size_t i = id.value();
    const auto& d = g.pe(id);
    const bool counts = !egress_only || d.kind == graph::PeKind::kEgress;
    double marginal = counts ? d.weight * u.derivative(fs.xout[i]) : 0.0;
    if (extra_output_marginal != nullptr) {
      marginal += (*extra_output_marginal)[i];
    }
    for (PeId down : g.downstream(id)) {
      if (!fs.cpu_bound[down.value()]) marginal += du[down.value()];
    }
    du[i] = d.selectivity * marginal;
    if (fs.cpu_bound[i]) {
      // dx_in/dc = h'(c)/bytes = 1/T_eff.
      grad[i] = du[i] / d.effective_service_time();
    }
  }
  return grad;
}

}  // namespace aces::opt
