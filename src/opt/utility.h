// Utility functions for the tier-1 objective (paper §V-B).
//
// "We parameterize the utility function of the various PEs as
//  U_j(r̄_out,j) = w_j · U(r̄_out,j) ... For example, we could set
//  U(x) = 1 − e^{−x}; U(x) = log(x+1); U(x) = x."
//
// All three are strictly increasing and concave; the scale parameter maps
// raw rates into the regime where the curvature of the saturating utilities
// is meaningful (a rate equal to `scale` sits at the knee).
#pragma once

#include "common/types.h"

namespace aces::opt {

enum class UtilityKind {
  kLinear,         ///< U(x) = x / s
  kLog,            ///< U(x) = log(1 + x / s)
  kExpSaturating,  ///< U(x) = 1 − e^{−x / s}
};

const char* to_string(UtilityKind kind);

/// A concave, strictly increasing, differentiable utility U(x; scale).
class Utility {
 public:
  explicit Utility(UtilityKind kind, double scale = 1.0);

  [[nodiscard]] double value(double x) const;
  /// dU/dx; strictly positive for x >= 0.
  [[nodiscard]] double derivative(double x) const;
  [[nodiscard]] UtilityKind kind() const { return kind_; }
  [[nodiscard]] double scale() const { return scale_; }

 private:
  UtilityKind kind_;
  double scale_;
};

}  // namespace aces::opt
