#include "opt/global_optimizer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "obs/perf.h"
#include "opt/fluid_model.h"

namespace aces::opt {

namespace {

/// Penalized objective: utility minus floor-shortfall penalty. The penalty
/// is concave (negative of a convex hinge), so ascent machinery still
/// applies.
double penalized_objective(const FlowState& fs, const Utility& u,
                           const OptimizerConfig& config) {
  double objective = fs.utility;
  const double unit = config.floor_penalty * u.derivative(0.0);
  for (const RateFloor& floor : config.rate_floors) {
    objective -=
        unit * std::max(0.0, floor.min_rout_sdo - fs.xout[floor.pe.value()]);
  }
  return objective;
}

/// Per-PE extra output marginal from violated floors (the hinge gradient).
std::vector<double> floor_marginals(const graph::ProcessingGraph& g,
                                    const FlowState& fs, const Utility& u,
                                    const OptimizerConfig& config) {
  std::vector<double> extra(g.pe_count(), 0.0);
  const double unit = config.floor_penalty * u.derivative(0.0);
  for (const RateFloor& floor : config.rate_floors) {
    ACES_CHECK_MSG(floor.pe.valid() && floor.pe.value() < g.pe_count(),
                   "rate floor references unknown PE");
    ACES_CHECK_MSG(floor.min_rout_sdo >= 0.0, "negative rate floor");
    if (fs.xout[floor.pe.value()] < floor.min_rout_sdo) {
      extra[floor.pe.value()] += unit;
    }
  }
  return extra;
}

double floor_shortfall(const FlowState& fs, const OptimizerConfig& config) {
  double shortfall = 0.0;
  for (const RateFloor& floor : config.rate_floors) {
    shortfall +=
        std::max(0.0, floor.min_rout_sdo - fs.xout[floor.pe.value()]);
  }
  return shortfall;
}

}  // namespace

void project_to_capacity(std::vector<double>& values, double capacity) {
  ACES_CHECK(capacity >= 0.0);
  for (auto& v : values) v = std::max(v, 0.0);
  const double sum = std::accumulate(values.begin(), values.end(), 0.0);
  if (sum <= capacity) return;
  // Project onto the simplex {v >= 0, Σv = capacity} (Duchi et al. 2008).
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double cumulative = 0.0;
  double theta = 0.0;
  std::size_t active = 0;
  for (std::size_t k = 0; k < sorted.size(); ++k) {
    cumulative += sorted[k];
    const double candidate =
        (cumulative - capacity) / static_cast<double>(k + 1);
    if (sorted[k] - candidate > 0.0) {
      theta = candidate;
      active = k + 1;
    }
  }
  ACES_CHECK(active > 0);
  for (auto& v : values) v = std::max(v - theta, 0.0);
}

AllocationPlan evaluate_allocation(const graph::ProcessingGraph& g,
                                   const std::vector<double>& cpu,
                                   const OptimizerConfig& config) {
  ACES_CHECK_MSG(cpu.size() == g.pe_count(), "cpu vector size mismatch");
  const Utility u(config.utility, config.utility_scale);
  const FlowState fs =
      fluid_forward(g, cpu, u, config.egress_only_objective);
  AllocationPlan plan;
  plan.pe.resize(g.pe_count());
  plan.node_usage.assign(g.node_count(), 0.0);
  for (std::size_t i = 0; i < g.pe_count(); ++i) {
    plan.pe[i] = PeAllocation{cpu[i], fs.xin[i], fs.xout[i]};
    plan.node_usage[g.pe(PeId(static_cast<PeId::value_type>(i))).node.value()] +=
        cpu[i];
  }
  plan.aggregate_utility = fs.utility;
  plan.weighted_throughput = fs.weighted_throughput;
  plan.floor_shortfall = floor_shortfall(fs, config);
  return plan;
}

AllocationPlan optimize(const graph::ProcessingGraph& g,
                        const OptimizerConfig& config) {
  ACES_PERF_SCOPE(PerfStage::kOptimizerSolve);
  ACES_CHECK_MSG(config.iterations > 0, "iterations must be positive");
  ACES_CHECK_MSG(config.step > 0.0, "step must be positive");
  ACES_CHECK_MSG(config.headroom >= 1.0, "headroom must be >= 1");
  g.validate();
  const Utility u(config.utility, config.utility_scale);

  // Start from an equal split of every node.
  std::vector<double> cpu(g.pe_count(), 0.0);
  for (NodeId node : g.all_nodes()) {
    const auto& pes = g.pes_on_node(node);
    if (pes.empty()) continue;
    const double share =
        g.node(node).cpu_capacity / static_cast<double>(pes.size());
    for (PeId id : pes) cpu[id.value()] = share;
  }

  std::vector<double> best_cpu = cpu;
  double best_objective = penalized_objective(
      fluid_forward(g, cpu, u, config.egress_only_objective), u, config);

  std::vector<double> node_values;
  for (int iter = 0; iter < config.iterations; ++iter) {
    const FlowState fs =
        fluid_forward(g, cpu, u, config.egress_only_objective);
    const double objective = penalized_objective(fs, u, config);
    if (objective > best_objective) {
      best_objective = objective;
      best_cpu = cpu;
    }
    const std::vector<double> extra = floor_marginals(g, fs, u, config);
    std::vector<double> grad = fluid_supergradient(
        g, fs, u, config.egress_only_objective, &extra);
    double gmax = 0.0;
    for (double v : grad) gmax = std::max(gmax, std::abs(v));
    if (gmax < 1e-15) break;  // flat: everything offered-load-bound
    const double step =
        config.step / std::sqrt(1.0 + static_cast<double>(iter));
    for (std::size_t i = 0; i < cpu.size(); ++i)
      cpu[i] += step * grad[i] / gmax;
    // Project each node back onto its capacity simplex.
    for (NodeId node : g.all_nodes()) {
      const auto& pes = g.pes_on_node(node);
      if (pes.empty()) continue;
      node_values.clear();
      for (PeId id : pes) node_values.push_back(cpu[id.value()]);
      project_to_capacity(node_values, g.node(node).cpu_capacity);
      for (std::size_t k = 0; k < pes.size(); ++k)
        cpu[pes[k].value()] = node_values[k];
    }
  }

  return finalize_plan(g, best_cpu, config);
}

AllocationPlan optimize_excluding(const graph::ProcessingGraph& g,
                                  const std::vector<NodeId>& failed,
                                  const OptimizerConfig& config) {
  if (failed.empty()) return optimize(g, config);
  // Re-solve on a copy whose failed nodes have vanishing capacity. A true
  // zero is disallowed by the graph invariants (and would divide water-
  // filling weights by zero); epsilon capacity yields targets that round to
  // nothing while keeping every projection well-defined.
  graph::ProcessingGraph degraded = g;
  for (NodeId node : failed) {
    ACES_CHECK_MSG(node.valid() && node.value() < g.node_count(),
                   "optimize_excluding: unknown node " << node);
    degraded.node(node).cpu_capacity = 1e-6;
  }
  AllocationPlan plan = optimize(degraded, config);
  for (NodeId node : failed) {
    for (PeId id : g.pes_on_node(node)) plan.pe[id.value()].cpu = 0.0;
  }
  return plan;
}

AllocationPlan finalize_plan(const graph::ProcessingGraph& g,
                             const std::vector<double>& cpu,
                             const OptimizerConfig& config) {
  ACES_CHECK_MSG(cpu.size() == g.pe_count(), "cpu vector size mismatch");
  ACES_CHECK_MSG(config.headroom >= 1.0, "headroom must be >= 1");
  const Utility u(config.utility, config.utility_scale);
  // Trim each PE's CPU to what its achieved flow actually needs, then hand
  // out headroom from the node's slack so the tier-2 token buckets have
  // room to absorb bursts.
  const FlowState fs =
      fluid_forward(g, cpu, u, config.egress_only_objective);
  std::vector<double> needed(g.pe_count(), 0.0);
  for (std::size_t i = 0; i < g.pe_count(); ++i) {
    const PeId id(static_cast<PeId::value_type>(i));
    const auto& d = g.pe(id);
    if (fs.xin[i] > 1e-12) {
      needed[i] =
          std::min(d.cpu_for_input_rate(fs.xin[i] * d.bytes_per_sdo), cpu[i]);
    }
  }
  std::vector<double> final_cpu(g.pe_count(), 0.0);
  for (NodeId node : g.all_nodes()) {
    const auto& pes = g.pes_on_node(node);
    double total_needed = 0.0;
    double total_extra_wanted = 0.0;
    for (PeId id : pes) {
      total_needed += needed[id.value()];
      total_extra_wanted += (config.headroom - 1.0) * needed[id.value()];
    }
    const double leftover =
        std::max(g.node(node).cpu_capacity - total_needed, 0.0);
    const double grant_fraction =
        total_extra_wanted > 1e-12
            ? std::min(1.0, leftover / total_extra_wanted)
            : 0.0;
    for (PeId id : pes) {
      const std::size_t i = id.value();
      final_cpu[i] =
          needed[i] + grant_fraction * (config.headroom - 1.0) * needed[i];
    }
  }

  AllocationPlan plan = evaluate_allocation(g, final_cpu, config);
  // Report the fluid-optimal flows (the trimmed CPU sustains them exactly).
  for (std::size_t i = 0; i < g.pe_count(); ++i) {
    plan.pe[i].rin_sdo = fs.xin[i];
    plan.pe[i].rout_sdo = fs.xout[i];
  }
  plan.aggregate_utility = fs.utility;
  plan.weighted_throughput = fs.weighted_throughput;
  plan.floor_shortfall = floor_shortfall(fs, config);
  return plan;
}

}  // namespace aces::opt
