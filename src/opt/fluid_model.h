// The fluid-flow model both tier-1 solvers evaluate (paper §V-B).
//
// Fan-out uses copy semantics (every consumer is offered the full output
// stream, Fig. 2); fan-in merges offered flows into one buffer, the
// aggregate reading of Eq. 5's per-edge conservation. Flows are linear in
// CPU until the offered load binds, so the utility of a CPU vector is
// concave and a supergradient exists everywhere.
#pragma once

#include <vector>

#include "graph/processing_graph.h"
#include "opt/utility.h"

namespace aces::opt {

/// Result of one fluid forward sweep for a fixed CPU vector.
struct FlowState {
  std::vector<double> xin;      ///< consumed input rate, SDO/s, by PeId
  std::vector<double> xout;     ///< produced output rate, SDO/s, by PeId
  std::vector<bool> cpu_bound;  ///< true if CPU (not offered load) binds x_in
  double utility = 0.0;         ///< Σ w_j U(x_out,j) over counted PEs
  double weighted_throughput = 0.0;  ///< Σ over egress of w_j · x_out,j
};

/// Propagates flows down the DAG for CPU vector `cpu` (indexed by PeId).
FlowState fluid_forward(const graph::ProcessingGraph& g,
                        const std::vector<double>& cpu, const Utility& u,
                        bool egress_only);

/// Supergradient of the utility w.r.t. each CPU target at `fs`.
/// Convention: below the rate map's overhead knee (where h(c) clamps to 0)
/// the affine extension's slope is used — an ascent-friendly choice that
/// lets the solver climb out of the dead zone; the exact supergradient
/// property therefore holds on the smooth region c > overhead.
/// Marginal utility flows backward only through PEs whose input is
/// offered-load-bound (a CPU-bound PE would drop extra input).
/// `extra_output_marginal`, when non-null (indexed by PeId), adds to each
/// PE's own marginal utility per unit of output rate — the hook through
/// which policy constraints (e.g. SLA rate floors) enter the objective.
std::vector<double> fluid_supergradient(
    const graph::ProcessingGraph& g, const FlowState& fs, const Utility& u,
    bool egress_only,
    const std::vector<double>* extra_output_marginal = nullptr);

}  // namespace aces::opt
