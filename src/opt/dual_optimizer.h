// Lagrangian dual-decomposition solver for the tier-1 problem.
//
// The paper states "We use Lagrange multipliers to maximize Equation 3"; this
// solver follows that route directly. The per-node CPU capacity constraints
// (Eq. 4) are dualized with prices ν_n ≥ 0:
//
//   L(c, ν) = Σ_j w_j U(x_out,j(c)) − Σ_n ν_n (Σ_{j on n} c_j − capacity_n)
//
// For fixed prices the inner problem is concave and unconstrained up to
// c ≥ 0, so a few supergradient steps solve it; the outer loop adjusts the
// prices multiplicatively toward complementary slackness (usage ≈ capacity
// on binding nodes). A final projection restores exact feasibility before
// the shared finalize_plan emits targets.
//
// Deliberately kept as an *independent second solver*: tests cross-validate
// it against the projected-gradient solver, which guards both against
// implementation bugs in either.
#pragma once

#include "opt/global_optimizer.h"

namespace aces::opt {

struct DualOptimizerConfig {
  OptimizerConfig base;
  /// Outer price-update rounds.
  int outer_iterations = 40;
  /// Inner supergradient steps per round.
  int inner_iterations = 50;
  /// Multiplicative price aggressiveness (log-step per unit of relative
  /// capacity violation); decays as 1/sqrt(round). Needs to be large enough
  /// that prices can climb from the marginal-utility seed to the dual
  /// optimum within the configured rounds.
  double price_step = 6.0;
};

/// Diagnostics alongside the plan (tests assert convergence quality).
struct DualSolution {
  AllocationPlan plan;
  /// Final prices per node (index NodeId).
  std::vector<double> prices;
  /// Max over nodes of usage/capacity *before* the final projection; values
  /// near 1 indicate the prices converged.
  double worst_violation = 0.0;
};

DualSolution optimize_dual(const graph::ProcessingGraph& g,
                           const DualOptimizerConfig& config = {});

}  // namespace aces::opt
