#include "opt/utility.h"

#include <cmath>

#include "common/check.h"

namespace aces::opt {

const char* to_string(UtilityKind kind) {
  switch (kind) {
    case UtilityKind::kLinear: return "linear";
    case UtilityKind::kLog: return "log";
    case UtilityKind::kExpSaturating: return "exp";
  }
  return "?";
}

Utility::Utility(UtilityKind kind, double scale) : kind_(kind), scale_(scale) {
  ACES_CHECK_MSG(scale > 0.0, "utility scale must be positive");
}

double Utility::value(double x) const {
  const double z = x / scale_;
  switch (kind_) {
    case UtilityKind::kLinear: return z;
    case UtilityKind::kLog: return std::log1p(z);
    case UtilityKind::kExpSaturating: return -std::expm1(-z);
  }
  return 0.0;
}

double Utility::derivative(double x) const {
  const double z = x / scale_;
  switch (kind_) {
    case UtilityKind::kLinear: return 1.0 / scale_;
    case UtilityKind::kLog: return 1.0 / (scale_ * (1.0 + z));
    case UtilityKind::kExpSaturating: return std::exp(-z) / scale_;
  }
  return 0.0;
}

}  // namespace aces::opt
