// Tier-1 global optimization (paper §V-B).
//
// Maximizes the aggregate utility  Σ_j w_j U(r̄_out,j)  over long-term CPU
// targets c̄_j, subject to
//   (Eq. 4)  Σ_{j on node i} c̄_j ≤ capacity_i
//   (Eq. 5)  r̄_in,j ≤ r̄_out,i          for every upstream i of j
//   (Eq. 6)  r̄_in,j ≤ h_j(c̄_j)         (rate map; binding at the optimum)
// plus the offered-load cap at ingress PEs (r̄_in ≤ stream rate).
//
// The achieved flow x(c) is concave piecewise-linear in c and the utility is
// concave nondecreasing, so the composite objective is concave; we solve it
// with projected supergradient ascent. The supergradient is computed by a
// backward sweep that routes each PE's marginal utility to the binding
// bottleneck (CPU or upstream flow), and iterates are projected onto the
// per-node capacity simplex.
#pragma once

#include <vector>

#include "graph/processing_graph.h"
#include "opt/utility.h"

namespace aces::opt {

/// A policy constraint: PE `pe`'s output rate should not fall below
/// `min_rout_sdo` SDOs/sec (an SLA floor). Enforced as a penalty, so an
/// infeasible floor degrades gracefully instead of failing the solve.
struct RateFloor {
  PeId pe;
  double min_rout_sdo = 0.0;
};

struct OptimizerConfig {
  UtilityKind utility = UtilityKind::kLog;
  /// Rate (SDOs/sec) at the knee of the saturating utilities.
  double utility_scale = 50.0;
  /// Supergradient iterations.
  int iterations = 600;
  /// Initial step size in CPU-fraction units; decays as 1/sqrt(iter).
  double step = 0.05;
  /// If true, only egress PEs contribute to the objective (pure weighted
  /// throughput); otherwise all PEs do, per Eq. 3 of the paper.
  bool egress_only_objective = false;
  /// Multiplier applied to the CPU actually needed by the optimal flow when
  /// emitting targets. Must exceed 1: after a slow-state burst a PE can only
  /// clear its backlog if its long-term target (the token accrual rate)
  /// exceeds its average demand. Headroom is granted from each node's slack
  /// and degrades proportionally on oversubscribed nodes.
  double headroom = 2.0;
  /// Policy constraints (paper §V: tier 1 "can take into account
  /// arbitrarily complex policy constraints"): minimum output rates,
  /// enforced via penalty in the objective.
  std::vector<RateFloor> rate_floors;
  /// Penalty per SDO/sec of floor shortfall, in units of the marginal
  /// utility at rate 0 (i.e. multiplied by U'(0)); large values make floors
  /// effectively hard when feasible.
  double floor_penalty = 25.0;
};

/// Long-term targets for one PE, in the units the controller consumes.
struct PeAllocation {
  /// CPU target c̄_j (fraction of the node).
  double cpu = 0.0;
  /// Sustainable input rate at the optimum, SDOs per second.
  double rin_sdo = 0.0;
  /// Output rate at the optimum, SDOs per second.
  double rout_sdo = 0.0;
};

/// The tier-1 output: per-PE targets plus plan-level diagnostics.
struct AllocationPlan {
  std::vector<PeAllocation> pe;  ///< indexed by PeId::value()
  std::vector<double> node_usage;  ///< Σ cpu per node, indexed by NodeId
  double aggregate_utility = 0.0;  ///< Eq. 3 at the optimum
  /// Σ over egress PEs of weight × rout_sdo — the paper's measure of
  /// effectiveness, evaluated on the fluid model.
  double weighted_throughput = 0.0;
  /// Σ over configured rate floors of max(0, floor − rout): 0 when every
  /// policy constraint is met.
  double floor_shortfall = 0.0;

  [[nodiscard]] const PeAllocation& at(PeId id) const {
    return pe[id.value()];
  }
};

/// Runs the tier-1 optimization on a validated graph.
AllocationPlan optimize(const graph::ProcessingGraph& g,
                        const OptimizerConfig& config = {});

/// Re-solves with the listed nodes treated as failed: their capacity is
/// collapsed to (effectively) zero so their PEs receive no CPU and flows
/// route around them, while surviving nodes absorb the redistributed
/// utility. Targets for PEs on failed nodes come back ~0, which the tier-2
/// controllers enforce as "do not schedule". An empty `failed` list is
/// exactly optimize(). Used by the fault-degradation path when a node
/// crash is detected mid-run.
AllocationPlan optimize_excluding(const graph::ProcessingGraph& g,
                                  const std::vector<NodeId>& failed,
                                  const OptimizerConfig& config = {});

/// Evaluates the fluid-model flow and utilities for a *given* vector of CPU
/// targets (indexed by PeId). Used by tests (perturbation optimality checks)
/// and by the allocation-error ablation bench.
AllocationPlan evaluate_allocation(const graph::ProcessingGraph& g,
                                   const std::vector<double>& cpu,
                                   const OptimizerConfig& config = {});

/// Projects `values` onto {v : v ≥ 0, Σ v ≤ capacity} in Euclidean norm
/// (Duchi et al. simplex projection; exposed for unit testing).
void project_to_capacity(std::vector<double>& values, double capacity);

/// Turns a feasible CPU vector into an AllocationPlan: computes the fluid
/// flows it sustains, trims each PE to the CPU those flows need, then grants
/// burst headroom from node slack (see OptimizerConfig::headroom). Shared by
/// the projected-gradient and dual solvers.
AllocationPlan finalize_plan(const graph::ProcessingGraph& g,
                             const std::vector<double>& cpu,
                             const OptimizerConfig& config);

}  // namespace aces::opt
