#include "opt/dual_optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "opt/fluid_model.h"

namespace aces::opt {

DualSolution optimize_dual(const graph::ProcessingGraph& g,
                           const DualOptimizerConfig& config) {
  ACES_CHECK_MSG(config.outer_iterations > 0, "outer iterations > 0 required");
  ACES_CHECK_MSG(config.inner_iterations > 0, "inner iterations > 0 required");
  ACES_CHECK_MSG(config.price_step > 0.0, "price step must be positive");
  g.validate();
  const Utility u(config.base.utility, config.base.utility_scale);
  const bool egress_only = config.base.egress_only_objective;

  // Start from an equal split; seed prices with the mean marginal utility
  // of CPU on each node so the first inner solve is already in scale.
  std::vector<double> cpu(g.pe_count(), 0.0);
  for (NodeId node : g.all_nodes()) {
    const auto& pes = g.pes_on_node(node);
    for (PeId id : pes)
      cpu[id.value()] =
          g.node(node).cpu_capacity / static_cast<double>(pes.size());
  }
  std::vector<double> prices(g.node_count(), 0.0);
  {
    const FlowState fs = fluid_forward(g, cpu, u, egress_only);
    const auto grad = fluid_supergradient(g, fs, u, egress_only);
    for (NodeId node : g.all_nodes()) {
      const auto& pes = g.pes_on_node(node);
      double sum = 0.0;
      for (PeId id : pes) sum += grad[id.value()];
      prices[node.value()] =
          std::max(sum / std::max<double>(pes.size(), 1), 1e-9);
    }
  }

  // Ergodic averaging of the primal iterates: with piecewise-linear flows
  // the inner argmax jumps as prices cross marginal-utility thresholds, so
  // the raw iterates oscillate; their average converges (standard remedy
  // for dual decomposition on non-strictly-concave problems).
  std::vector<double> avg_cpu(g.pe_count(), 0.0);
  int averaged_rounds = 0;
  double worst_violation = 0.0;
  for (int outer = 0; outer < config.outer_iterations; ++outer) {
    // Inner: maximize the Lagrangian over c >= 0 (prices replace the
    // simplex projection of the primal solver).
    for (int inner = 0; inner < config.inner_iterations; ++inner) {
      const FlowState fs = fluid_forward(g, cpu, u, egress_only);
      auto grad = fluid_supergradient(g, fs, u, egress_only);
      double gmax = 0.0;
      for (std::size_t i = 0; i < grad.size(); ++i) {
        grad[i] -= prices[g.pe(PeId(static_cast<PeId::value_type>(i)))
                              .node.value()];
        gmax = std::max(gmax, std::abs(grad[i]));
      }
      if (gmax < 1e-15) break;
      const double step = config.base.step /
                          std::sqrt(1.0 + static_cast<double>(inner));
      for (std::size_t i = 0; i < cpu.size(); ++i) {
        const double cap =
            g.node(g.pe(PeId(static_cast<PeId::value_type>(i))).node)
                .cpu_capacity;
        cpu[i] = std::clamp(cpu[i] + step * grad[i] / gmax, 0.0, cap);
      }
    }

    // Average the iterates from the second half of the rounds (prices have
    // roughly converged by then; earlier iterates would bias the mean).
    if (outer >= config.outer_iterations / 2) {
      ++averaged_rounds;
      for (std::size_t i = 0; i < cpu.size(); ++i) {
        avg_cpu[i] += (cpu[i] - avg_cpu[i]) / averaged_rounds;
      }
    }

    // Outer: multiplicative price update toward usage == capacity.
    worst_violation = 0.0;
    const double eta =
        config.price_step / std::sqrt(1.0 + static_cast<double>(outer));
    for (NodeId node : g.all_nodes()) {
      double usage = 0.0;
      for (PeId id : g.pes_on_node(node)) usage += cpu[id.value()];
      const double relative = usage / g.node(node).cpu_capacity;
      worst_violation = std::max(worst_violation, relative);
      prices[node.value()] = std::max(
          prices[node.value()] * std::exp(eta * (relative - 1.0)), 1e-12);
    }
  }

  // Restore exact feasibility for both candidates (the last iterate and the
  // ergodic average), then keep whichever scores higher.
  const auto project_all = [&](std::vector<double> values) {
    std::vector<double> node_values;
    for (NodeId node : g.all_nodes()) {
      const auto& pes = g.pes_on_node(node);
      if (pes.empty()) continue;
      node_values.clear();
      for (PeId id : pes) node_values.push_back(values[id.value()]);
      project_to_capacity(node_values, g.node(node).cpu_capacity);
      for (std::size_t k = 0; k < pes.size(); ++k)
        values[pes[k].value()] = node_values[k];
    }
    return values;
  };
  const std::vector<double> last = project_all(cpu);
  const std::vector<double> averaged = project_all(avg_cpu);
  const double last_utility =
      fluid_forward(g, last, u, egress_only).utility;
  const double averaged_utility =
      fluid_forward(g, averaged, u, egress_only).utility;

  DualSolution solution;
  solution.plan = finalize_plan(
      g, averaged_utility >= last_utility ? averaged : last, config.base);
  solution.prices = std::move(prices);
  solution.worst_violation = worst_violation;
  return solution;
}

}  // namespace aces::opt
