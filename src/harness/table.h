// Fixed-width table printing for bench output.
//
// Benches print the same rows/series the paper's figures plot; a tiny table
// formatter keeps those outputs legible and diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace aces::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; cells are printed right-aligned, numbers pre-formatted by
  /// the caller (use cell() helpers).
  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule and column padding.
  void print(std::ostream& os) const;

  /// Renders as CSV (header row + data rows) for downstream plotting.
  /// Cells containing commas or quotes are quoted per RFC 4180.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` digits after the point.
std::string cell(double value, int precision = 2);
std::string cell(std::uint64_t value);

/// Prints `table` as CSV when `csv` is set, aligned text otherwise.
void print_table(const Table& table, bool csv, std::ostream& os);

}  // namespace aces::harness
