#include "harness/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace aces::harness {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ACES_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  ACES_CHECK_MSG(cells.size() == headers_.size(),
                 "row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      const std::string& value = row[c];
      if (value.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (const char ch : value) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << value;
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string cell(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

std::string cell(std::uint64_t value) { return std::to_string(value); }

void print_table(const Table& table, bool csv, std::ostream& os) {
  if (csv) {
    table.print_csv(os);
  } else {
    table.print(os);
  }
}

}  // namespace aces::harness
