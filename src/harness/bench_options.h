// Command-line scaling for the figure benches.
//
// Benches run with defaults sized for a laptop (`for b in build/bench/*; do
// $b; done` completes in minutes); users reproducing at paper fidelity can
// scale them up without editing code:
//
//   ./bench/fig5_burstiness --scale=4 --seeds=10
//
// --scale=X   multiplies simulated duration and warm-up by X
// --seeds=N   averages over seeds 1..N instead of the bench default
// --csv       emits result tables as CSV (for plotting pipelines)
// --json=F    also writes a BENCH_*.json perf document (see bench_json.h)
// --help      prints usage and exits
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace aces::harness {

struct BenchOptions {
  double duration_scale = 1.0;
  int seed_count = 0;  ///< 0: keep the bench's default seed list
  bool csv = false;    ///< emit tables as CSV instead of aligned text
  std::string json;    ///< when non-empty, BENCH_*.json output path

  /// Seeds 1..seed_count (call only when seed_count > 0).
  [[nodiscard]] std::vector<std::uint64_t> seeds() const;

  /// Applies overrides to a (duration, warmup, seeds) triple in place.
  void apply(double& duration, double& warmup,
             std::vector<std::uint64_t>& seed_list) const;
};

/// Parses argv; on --help (or a malformed flag) prints usage to stdout /
/// stderr and exits the process.
BenchOptions parse_bench_options(int argc, char** argv);

}  // namespace aces::harness
