#include "harness/bench_json.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>

#include "obs/perf.h"

namespace aces::harness {

namespace {
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

BenchJsonWriter::BenchJsonWriter(std::string bench_name)
    : name_(std::move(bench_name)) {}

void BenchJsonWriter::add_run(const std::string& label, double wall_ms,
                              double weighted_throughput, double latency_p50,
                              double latency_p99) {
  runs_.push_back(
      Run{label, wall_ms, weighted_throughput, latency_p50, latency_p99});
}

void BenchJsonWriter::set_perf_work(std::uint64_t events_executed,
                                    std::uint64_t sdos_processed,
                                    std::uint64_t reoptimizations) {
  has_perf_ = true;
  events_executed_ = events_executed;
  sdos_processed_ = sdos_processed;
  reoptimizations_ = reoptimizations;
}

void BenchJsonWriter::set_perf_memory(double peak_rss_mb,
                                      std::uint64_t alloc_count) {
  has_perf_ = true;
  peak_rss_mb_ = peak_rss_mb;
  alloc_count_ = alloc_count;
}

std::string BenchJsonWriter::to_json() const {
  double total_ms = 0.0;
  double mean = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  std::size_t measured = 0;
  for (const Run& r : runs_) {
    total_ms += r.wall_ms;
    if (r.weighted_throughput < 0.0) continue;
    if (measured == 0) {
      lo = hi = r.weighted_throughput;
    } else {
      lo = std::min(lo, r.weighted_throughput);
      hi = std::max(hi, r.weighted_throughput);
    }
    mean += r.weighted_throughput;
    ++measured;
  }
  if (measured > 0) mean /= static_cast<double>(measured);

  std::ostringstream os;
  os << "{\"bench\":\"" << escape_json(name_) << "\",\"schema\":1"
     << ",\"runs\":" << runs_.size()
     << ",\"total_wall_ms\":" << num(total_ms) << ",\"runs_per_sec\":"
     << num(total_ms > 0.0
                ? static_cast<double>(runs_.size()) / (total_ms / 1e3)
                : 0.0);
  if (measured > 0) {
    os << ",\"weighted_throughput\":{\"mean\":" << num(mean)
       << ",\"min\":" << num(lo) << ",\"max\":" << num(hi) << "}";
  }
  if (has_perf_) {
    // "work" holds the deterministic totals (bench-diff: zero tolerance);
    // everything else in "perf" is timing/memory/probe telemetry that
    // varies run to run and only ever soft-fails or informs.
    os << ",\"perf\":{\"instrumented\":"
       << (obs::perf_instrumented() ? "true" : "false")
       << ",\"work\":{\"events_executed\":" << events_executed_
       << ",\"sdos_processed\":" << sdos_processed_
       << ",\"reoptimizations\":" << reoptimizations_ << "}"
       << ",\"peak_rss_mb\":" << num(peak_rss_mb_)
       << ",\"alloc_count\":" << alloc_count_;
    const obs::PerfSnapshot snapshot = obs::perf_snapshot();
    if (!snapshot.stages.empty()) {
      os << ",\"stages\":{";
      for (std::size_t i = 0; i < snapshot.stages.size(); ++i) {
        const obs::PerfStageSample& s = snapshot.stages[i];
        if (i > 0) os << ",";
        os << "\"" << escape_json(s.name) << "\":{\"calls\":" << s.calls
           << ",\"ns\":" << s.ns << ",\"cycles\":" << s.cycles
           << ",\"ns_per_call\":"
           << num(static_cast<double>(s.ns) / static_cast<double>(s.calls))
           << "}";
      }
      os << "}";
    }
    if (!snapshot.events.empty()) {
      os << ",\"events\":{";
      for (std::size_t i = 0; i < snapshot.events.size(); ++i) {
        if (i > 0) os << ",";
        os << "\"" << escape_json(snapshot.events[i].first)
           << "\":" << snapshot.events[i].second;
      }
      os << "}";
    }
    os << "}";
  }
  os << ",\"per_run\":[";
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    const Run& r = runs_[i];
    if (i > 0) os << ",";
    os << "{\"label\":\"" << escape_json(r.label) << "\",\"wall_ms\":"
       << num(r.wall_ms);
    if (r.weighted_throughput >= 0.0) {
      os << ",\"weighted_throughput\":" << num(r.weighted_throughput);
    }
    if (r.latency_p50 >= 0.0) {
      os << ",\"latency_p50\":" << num(r.latency_p50);
    }
    if (r.latency_p99 >= 0.0) {
      os << ",\"latency_p99\":" << num(r.latency_p99);
    }
    os << "}";
  }
  os << "]}\n";
  return os.str();
}

bool BenchJsonWriter::write_file(const std::string& path) const {
  if (path.empty()) return true;
  std::ofstream file(path);
  if (!file) {
    std::cerr << "cannot open bench json output: " << path << '\n';
    return false;
  }
  file << to_json();
  std::cerr << "wrote " << runs_.size() << " bench records to " << path
            << '\n';
  return static_cast<bool>(file);
}

}  // namespace aces::harness
