// bench-diff: compare two BENCH_*.json documents and classify the drift.
//
// The regression gate behind `aces bench-diff OLD.json NEW.json`. Runs are
// aligned by label (order-independent), then every field is classified:
//
//  * HARD — deterministic work totals (the "perf.work" block, per-run
//    events_executed / sdos_processed / reoptimizations, run counts and
//    statuses, identity fields). These are bit-stable for a fixed workload,
//    so ANY change is a behaviour change, not noise: zero tolerance.
//  * SOFT — wall clock, latency, throughput, memory: real measurements
//    with real noise. Fail only beyond a configurable relative threshold.
//  * INFO — probe telemetry (perf stages/events), jobs, instrumented flag:
//    reported when drifted, never a failure.
//
// Exit-code contract (CI-friendly): 0 clean, 1 soft failures only, 2 any
// hard failure, 3 usage / I/O / malformed JSON. Malformed input reports
// the offending line number.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace aces::harness {

/// Minimal JSON value tree, just enough for BENCH documents. Objects keep
/// insertion order; lookups are linear (documents are small).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;  ///< string value; raw token text for numbers
  std::vector<JsonValue> items;                            ///< kArray
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
};

/// Parses a complete JSON document. Throws std::runtime_error with a
/// "line N: ..." message on malformed input (including trailing garbage).
JsonValue parse_json(const std::string& text);

/// How a drifted field is judged; see the header comment.
enum class BenchFieldClass { kHard, kSoft, kInfo };

/// Classifies a field by its JSON pointer-ish path (e.g.
/// "per_run[tiny/aces/s0].events_executed" or "perf.work.sdos_processed").
[[nodiscard]] BenchFieldClass classify_bench_field(const std::string& path);

struct BenchDiffOptions {
  /// Relative tolerance for SOFT fields: |new - old| / max(|old|, eps).
  double threshold = 0.25;
  /// CI mode: SOFT drift is reported but never fails (exit stays 0 unless
  /// a HARD failure occurs). For shared runners whose wall clock is noise.
  bool hard_only = false;
};

struct BenchDiffEntry {
  std::string path;
  std::string old_value;
  std::string new_value;
  double relative_delta = 0.0;  ///< 0 for non-numeric differences
};

struct BenchDiffResult {
  std::vector<BenchDiffEntry> hard;
  std::vector<BenchDiffEntry> soft;  ///< beyond threshold
  std::vector<BenchDiffEntry> info;  ///< drifted but never failing
  int compared_fields = 0;

  /// 0 clean, 1 soft failures (unless hard_only), 2 hard failures.
  [[nodiscard]] int exit_code(const BenchDiffOptions& options) const;
};

/// Diffs two parsed BENCH documents.
BenchDiffResult bench_diff(const JsonValue& old_doc, const JsonValue& new_doc,
                           const BenchDiffOptions& options);

/// Human-readable report of every entry, most severe first.
void write_bench_diff_report(std::ostream& os, const BenchDiffResult& result,
                             const BenchDiffOptions& options);

}  // namespace aces::harness
