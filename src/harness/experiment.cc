#include "harness/experiment.h"

#include <algorithm>

#include "common/check.h"
#include "obs/perf.h"

namespace aces::harness {

RunSummary summarize(const metrics::RunReport& report, double fluid_bound) {
  RunSummary s;
  s.weighted_throughput = report.weighted_throughput;
  s.fluid_bound = fluid_bound;
  s.latency_mean = report.latency.mean();
  s.latency_std = report.latency.stddev();
  s.latency_p50 = report.latency_histogram.median();
  s.latency_p99 = report.latency_histogram.p99();
  s.ingress_drops_per_sec =
      static_cast<double>(report.ingress_drops) / report.measured_seconds;
  s.internal_drops_per_sec =
      static_cast<double>(report.internal_drops) / report.measured_seconds;
  s.cpu_utilization = report.cpu_utilization;
  s.buffer_fill_mean = report.buffer_fill.mean();
  s.output_rate = report.output_rate;
  s.events_executed = report.events_executed;
  s.sdos_processed = report.sdos_processed;
  s.reoptimizations = report.reoptimizations;
  return s;
}

RunSummary average(const std::vector<RunSummary>& runs) {
  ACES_CHECK_MSG(!runs.empty(), "cannot average zero runs");
  RunSummary mean;
  const double n = static_cast<double>(runs.size());
  for (const RunSummary& r : runs) {
    mean.weighted_throughput += r.weighted_throughput / n;
    mean.fluid_bound += r.fluid_bound / n;
    mean.latency_mean += r.latency_mean / n;
    mean.latency_std += r.latency_std / n;
    mean.latency_p50 += r.latency_p50 / n;
    mean.latency_p99 += r.latency_p99 / n;
    mean.ingress_drops_per_sec += r.ingress_drops_per_sec / n;
    mean.internal_drops_per_sec += r.internal_drops_per_sec / n;
    mean.cpu_utilization += r.cpu_utilization / n;
    mean.buffer_fill_mean += r.buffer_fill_mean / n;
    mean.output_rate += r.output_rate / n;
    // Work totals aggregate by sum (exact), RSS by max (high-water mark).
    mean.events_executed += r.events_executed;
    mean.sdos_processed += r.sdos_processed;
    mean.reoptimizations += r.reoptimizations;
    mean.alloc_count += r.alloc_count;
    mean.peak_rss_mb = std::max(mean.peak_rss_mb, r.peak_rss_mb);
  }
  return mean;
}

RunSummary run_single(const graph::ProcessingGraph& graph,
                      const opt::AllocationPlan& plan,
                      const sim::SimOptions& sim_options) {
  const std::uint64_t allocs_before = obs::alloc_count();
  const metrics::RunReport report = sim::simulate(graph, plan, sim_options);
  RunSummary s = summarize(report, plan.weighted_throughput);
  s.alloc_count = obs::alloc_count() - allocs_before;
  s.peak_rss_mb =
      static_cast<double>(obs::peak_rss_bytes()) / (1024.0 * 1024.0);
  return s;
}

ExperimentResult run_experiment(const ExperimentSpec& spec,
                                control::FlowPolicy policy) {
  ACES_CHECK_MSG(!spec.seeds.empty(), "experiment needs at least one seed");
  ExperimentResult result;
  for (const std::uint64_t seed : spec.seeds) {
    const graph::ProcessingGraph g = generate_topology(spec.topology, seed);
    const opt::AllocationPlan plan = opt::optimize(g, spec.optimizer);
    sim::SimOptions sim_options = spec.sim;
    sim_options.controller.policy = policy;
    sim_options.seed = seed * 0x9E3779B9ULL + 17;
    result.runs.push_back(run_single(g, plan, sim_options));
  }
  result.mean = average(result.runs);
  return result;
}

}  // namespace aces::harness
