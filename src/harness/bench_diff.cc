#include "harness/bench_diff.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <ostream>
#include <set>
#include <stdexcept>
#include <string>

namespace aces::harness {

namespace {

/// Recursive-descent JSON parser tracking the current line for error
/// messages. Depth-limited so a pathological file cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("line " + std::to_string(line_) + ": " + why);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool consume_literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  std::string parse_string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\n') fail("raw newline inside string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          // Decoded only far enough for field names; BENCH documents are
          // ASCII, so the code point is appended raw when it fits a byte.
          const std::string digits = text_.substr(pos_, 4);
          char* end = nullptr;
          const long code = std::strtol(digits.c_str(), &end, 16);
          if (end != digits.c_str() + 4) fail("bad \\u escape");
          pos_ += 4;
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else {
            out += '?';
          }
          break;
        }
        default:
          fail(std::string("unknown escape \\") + esc);
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.text = text_.substr(start, pos_ - start);
    char* end = nullptr;
    value.number = std::strtod(value.text.c_str(), &end);
    if (value.text.empty() || end != value.text.c_str() + value.text.size()) {
      fail("malformed number '" + value.text + "'");
    }
    return value;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    const char c = peek();
    JsonValue value;
    if (c == '{') {
      ++pos_;
      value.kind = JsonValue::Kind::kObject;
      if (peek() == '}') {
        ++pos_;
        return value;
      }
      while (true) {
        if (peek() != '"') fail("expected string object key");
        std::string key = parse_string_body();
        expect(':');
        value.members.emplace_back(std::move(key), parse_value(depth + 1));
        const char next = peek();
        if (next == ',') {
          ++pos_;
          continue;
        }
        if (next == '}') {
          ++pos_;
          return value;
        }
        fail("expected ',' or '}' in object");
      }
    }
    if (c == '[') {
      ++pos_;
      value.kind = JsonValue::Kind::kArray;
      if (peek() == ']') {
        ++pos_;
        return value;
      }
      while (true) {
        value.items.push_back(parse_value(depth + 1));
        const char next = peek();
        if (next == ',') {
          ++pos_;
          continue;
        }
        if (next == ']') {
          ++pos_;
          return value;
        }
        fail("expected ',' or ']' in array");
      }
    }
    if (c == '"') {
      value.kind = JsonValue::Kind::kString;
      value.text = parse_string_body();
      return value;
    }
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      value.kind = JsonValue::Kind::kBool;
      value.boolean = false;
      return value;
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      value.kind = JsonValue::Kind::kNull;
      return value;
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return parse_number();
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

std::string render(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return v.boolean ? "true" : "false";
    case JsonValue::Kind::kNumber: return v.text;
    case JsonValue::Kind::kString: return "\"" + v.text + "\"";
    case JsonValue::Kind::kArray:
      return "[" + std::to_string(v.items.size()) + " items]";
    case JsonValue::Kind::kObject:
      return "{" + std::to_string(v.members.size()) + " members}";
  }
  return "?";
}

/// The last key segment of a path like "per_run[x].events_executed".
std::string last_key(const std::string& path) {
  const auto dot = path.find_last_of('.');
  return dot == std::string::npos ? path : path.substr(dot + 1);
}

bool numbers_equal(const JsonValue& a, const JsonValue& b) {
  // %.17g round-trips doubles exactly, so value comparison is exact; the
  // raw-text fallback catches formats strtod collapses (it should not
  // happen in our own documents).
  return a.number == b.number || a.text == b.text;
}

double relative_delta(const JsonValue& a, const JsonValue& b) {
  if (numbers_equal(a, b)) return 0.0;
  const double base = std::fmax(std::fabs(a.number), 1e-12);
  return std::fabs(b.number - a.number) / base;
}

class Differ {
 public:
  Differ(const BenchDiffOptions& options, BenchDiffResult& result)
      : options_(options), result_(result) {}

  void diff_value(const std::string& path, const JsonValue& old_value,
                  const JsonValue& new_value) {
    ++result_.compared_fields;
    if (old_value.kind != new_value.kind) {
      record(classify_bench_field(path), path, render(old_value),
             render(new_value), 0.0);
      return;
    }
    switch (old_value.kind) {
      case JsonValue::Kind::kObject:
        diff_object(path, old_value, new_value);
        return;
      case JsonValue::Kind::kArray:
        diff_array(path, old_value, new_value);
        return;
      case JsonValue::Kind::kNumber: {
        if (numbers_equal(old_value, new_value)) return;
        const BenchFieldClass cls = classify_bench_field(path);
        const double delta = relative_delta(old_value, new_value);
        if (cls == BenchFieldClass::kSoft && delta <= options_.threshold) {
          return;  // within the noise budget
        }
        record(cls, path, old_value.text, new_value.text, delta);
        return;
      }
      case JsonValue::Kind::kString:
        if (old_value.text != new_value.text) {
          record(classify_bench_field(path), path, render(old_value),
                 render(new_value), 0.0);
        }
        return;
      case JsonValue::Kind::kBool:
        if (old_value.boolean != new_value.boolean) {
          record(classify_bench_field(path), path, render(old_value),
                 render(new_value), 0.0);
        }
        return;
      case JsonValue::Kind::kNull:
        return;
    }
  }

 private:
  void record(BenchFieldClass cls, const std::string& path,
              std::string old_value, std::string new_value, double delta) {
    BenchDiffEntry entry{path, std::move(old_value), std::move(new_value),
                         delta};
    switch (cls) {
      case BenchFieldClass::kHard: result_.hard.push_back(std::move(entry)); break;
      case BenchFieldClass::kSoft: result_.soft.push_back(std::move(entry)); break;
      case BenchFieldClass::kInfo: result_.info.push_back(std::move(entry)); break;
    }
  }

  void diff_object(const std::string& path, const JsonValue& old_value,
                   const JsonValue& new_value) {
    std::set<std::string> seen;
    for (const auto& [key, old_member] : old_value.members) {
      seen.insert(key);
      const std::string child = path.empty() ? key : path + "." + key;
      if (const JsonValue* new_member = new_value.find(key)) {
        diff_value(child, old_member, *new_member);
      } else {
        record(missing_class(child), child, render(old_member), "(absent)",
               0.0);
      }
    }
    for (const auto& [key, new_member] : new_value.members) {
      if (seen.count(key) != 0) continue;
      const std::string child = path.empty() ? key : path + "." + key;
      record(missing_class(child), child, "(absent)", render(new_member), 0.0);
    }
  }

  /// A key present on only one side. Hard-class keys stay hard (a work
  /// total vanishing is as bad as it changing); soft/info keys demote to
  /// info — schema growth (a new timing field) is not a regression.
  static BenchFieldClass missing_class(const std::string& path) {
    return classify_bench_field(path) == BenchFieldClass::kHard
               ? BenchFieldClass::kHard
               : BenchFieldClass::kInfo;
  }

  void diff_array(const std::string& path, const JsonValue& old_value,
                  const JsonValue& new_value) {
    if (last_key(path) == "per_run") {
      diff_per_run(path, old_value, new_value);
      return;
    }
    if (old_value.items.size() != new_value.items.size()) {
      record(classify_bench_field(path), path,
             std::to_string(old_value.items.size()) + " items",
             std::to_string(new_value.items.size()) + " items", 0.0);
      return;
    }
    for (std::size_t i = 0; i < old_value.items.size(); ++i) {
      diff_value(path + "[" + std::to_string(i) + "]", old_value.items[i],
                 new_value.items[i]);
    }
  }

  /// Runs are aligned by label, not position, so a reordering is not a
  /// diff. A run missing from either side is HARD: the workload changed.
  void diff_per_run(const std::string& path, const JsonValue& old_value,
                    const JsonValue& new_value) {
    const auto index_runs = [&](const JsonValue& array) {
      std::map<std::string, const JsonValue*> by_label;
      for (std::size_t i = 0; i < array.items.size(); ++i) {
        const JsonValue& run = array.items[i];
        const JsonValue* label = run.find("label");
        const std::string key =
            (label != nullptr && label->kind == JsonValue::Kind::kString)
                ? label->text
                : "#" + std::to_string(i);
        by_label.emplace(key, &run);
      }
      return by_label;
    };
    const auto old_runs = index_runs(old_value);
    const auto new_runs = index_runs(new_value);
    for (const auto& [label, old_run] : old_runs) {
      const auto it = new_runs.find(label);
      const std::string child = path + "[" + label + "]";
      if (it == new_runs.end()) {
        record(BenchFieldClass::kHard, child, "present", "(missing run)", 0.0);
        continue;
      }
      diff_value(child, *old_run, *it->second);
    }
    for (const auto& [label, run] : new_runs) {
      (void)run;
      if (old_runs.count(label) == 0) {
        record(BenchFieldClass::kHard, path + "[" + label + "]",
               "(missing run)", "present", 0.0);
      }
    }
  }

  const BenchDiffOptions& options_;
  BenchDiffResult& result_;
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse_document();
}

BenchFieldClass classify_bench_field(const std::string& path) {
  const std::string key = last_key(path);
  // Probe telemetry and run-environment facts: informational only. The
  // stage timings and event counts exist to explain a regression the work
  // totals or wall clock caught, not to be a gate themselves.
  if (path.find(".stages.") != std::string::npos ||
      path.find(".events.") != std::string::npos || key == "stages" ||
      key == "events" || key == "instrumented" || key == "jobs") {
    return BenchFieldClass::kInfo;
  }
  // Deterministic identity and work-total fields: zero tolerance.
  static const std::set<std::string> kHardKeys = {
      "bench",         "schema",          "label",
      "policy",        "status",          "error",
      "index",         "topology_seed",   "sim_seed",
      "runs",          "completed",       "failed",
      "cancelled",     "events_executed", "sdos_processed",
      "reoptimizations"};
  if (kHardKeys.count(key) != 0 ||
      path.find("perf.work") != std::string::npos) {
    return BenchFieldClass::kHard;
  }
  // Everything else — wall clock, latency, throughput, drops-per-sec,
  // memory — is a measurement with noise: threshold applies.
  return BenchFieldClass::kSoft;
}

int BenchDiffResult::exit_code(const BenchDiffOptions& options) const {
  if (!hard.empty()) return 2;
  if (!soft.empty() && !options.hard_only) return 1;
  return 0;
}

void write_bench_diff_report(std::ostream& os, const BenchDiffResult& result,
                             const BenchDiffOptions& options) {
  const auto write_entries = [&os](const char* tag,
                                   const std::vector<BenchDiffEntry>& list) {
    for (const BenchDiffEntry& e : list) {
      os << tag << ' ' << e.path << ": " << e.old_value << " -> "
         << e.new_value;
      if (e.relative_delta >= 0.001) {
        os << " (" << static_cast<long long>(e.relative_delta * 1000.0) / 10.0
           << "% off)";
      } else if (e.relative_delta > 0.0) {
        os << " (<0.1% off)";
      }
      os << '\n';
    }
  };
  write_entries("HARD", result.hard);
  write_entries("SOFT", result.soft);
  write_entries("INFO", result.info);
  os << "bench-diff: " << result.hard.size() << " hard, "
     << result.soft.size() << " soft (threshold "
     << static_cast<long long>(options.threshold * 1000.0) / 10.0 << "%), "
     << result.info.size() << " informational; " << result.compared_fields
     << " nodes compared\n";
}

BenchDiffResult bench_diff(const JsonValue& old_doc, const JsonValue& new_doc,
                           const BenchDiffOptions& options) {
  BenchDiffResult result;
  Differ differ(options, result);
  differ.diff_value("", old_doc, new_doc);
  return result;
}

}  // namespace aces::harness
