#include "harness/sweep_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/rng.h"
#include "obs/export.h"
#include "obs/perf.h"
#include "opt/global_optimizer.h"
#include "sim/stream_simulation.h"

namespace aces::harness {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

control::FlowPolicy parse_policy_name(const std::string& name) {
  if (name == "aces") return control::FlowPolicy::kAces;
  if (name == "udp") return control::FlowPolicy::kUdp;
  if (name == "lockstep") return control::FlowPolicy::kLockStep;
  if (name == "threshold") return control::FlowPolicy::kThreshold;
  throw std::runtime_error("unknown policy: " + name +
                           " (aces|udp|lockstep|threshold)");
}

/// %.17g round-trips doubles exactly, so identical results serialize to
/// identical bytes — the property the determinism test leans on.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string hex(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* status_name(SweepRunStatus status) {
  switch (status) {
    case SweepRunStatus::kOk: return "ok";
    case SweepRunStatus::kFailed: return "failed";
    case SweepRunStatus::kCancelled: return "cancelled";
  }
  return "unknown";
}

/// Emits the deterministic RunSummary fields as "key":value pairs.
void write_summary_fields(std::ostream& os, const RunSummary& s) {
  os << "\"weighted_throughput\":" << num(s.weighted_throughput)
     << ",\"fluid_bound\":" << num(s.fluid_bound)
     << ",\"normalized_throughput\":" << num(s.normalized_throughput())
     << ",\"latency_ms_mean\":" << num(s.latency_mean * 1e3)
     << ",\"latency_ms_p50\":" << num(s.latency_p50 * 1e3)
     << ",\"latency_ms_p99\":" << num(s.latency_p99 * 1e3)
     << ",\"ingress_drops_per_sec\":" << num(s.ingress_drops_per_sec)
     << ",\"internal_drops_per_sec\":" << num(s.internal_drops_per_sec)
     << ",\"cpu_utilization\":" << num(s.cpu_utilization)
     << ",\"output_rate\":" << num(s.output_rate)
     << ",\"events_executed\":" << s.events_executed
     << ",\"sdos_processed\":" << s.sdos_processed
     << ",\"reoptimizations\":" << s.reoptimizations;
}

}  // namespace

std::uint64_t derive_sweep_seed(std::uint64_t base_seed,
                                std::uint64_t run_index,
                                std::uint64_t stream) {
  // A short SplitMix64 chain keyed by all three inputs. Deliberately not
  // base_seed + run_index arithmetic: neighbouring grids must not share
  // run seeds.
  std::uint64_t state = base_seed ^ 0x632BE59BD9B4E019ULL;
  state = splitmix64(state);
  state ^= run_index * 0x9E3779B97F4A7C15ULL;
  state = splitmix64(state);
  state ^= stream * 0xBF58476D1CE4E5B9ULL;
  return splitmix64(state);
}

std::size_t SweepReport::completed() const {
  return static_cast<std::size_t>(
      std::count_if(results.begin(), results.end(), [](const auto& r) {
        return r.status == SweepRunStatus::kOk;
      }));
}

std::size_t SweepReport::failed() const {
  return static_cast<std::size_t>(
      std::count_if(results.begin(), results.end(), [](const auto& r) {
        return r.status == SweepRunStatus::kFailed;
      }));
}

std::size_t SweepReport::cancelled() const {
  return static_cast<std::size_t>(
      std::count_if(results.begin(), results.end(), [](const auto& r) {
        return r.status == SweepRunStatus::kCancelled;
      }));
}

double SweepReport::runs_per_sec() const {
  if (total_wall_ms <= 0.0) return 0.0;
  return static_cast<double>(completed()) / (total_wall_ms / 1e3);
}

void SweepReport::throughput_summary(double& mean, double& lo,
                                     double& hi) const {
  mean = 0.0;
  lo = 0.0;
  hi = 0.0;
  std::size_t n = 0;
  for (const SweepRunResult& r : results) {
    if (r.status != SweepRunStatus::kOk) continue;
    const double w = r.summary.weighted_throughput;
    if (n == 0) {
      lo = hi = w;
    } else {
      lo = std::min(lo, w);
      hi = std::max(hi, w);
    }
    mean += w;
    ++n;
  }
  if (n > 0) mean /= static_cast<double>(n);
}

SweepRunner::SweepRunner(SweepGrid grid) : grid_(std::move(grid)) {
  ACES_CHECK_MSG(!grid_.cells.empty(), "sweep grid has no topology cells");
  ACES_CHECK_MSG(!grid_.policies.empty(), "sweep grid has no policies");
  ACES_CHECK_MSG(grid_.seeds_per_cell > 0, "seeds_per_cell must be positive");
  std::size_t index = 0;
  for (std::size_t c = 0; c < grid_.cells.size(); ++c) {
    const SweepCell& cell = grid_.cells[c];
    const std::string cell_name =
        cell.name.empty() ? "cell" + std::to_string(c) : cell.name;
    for (const control::FlowPolicy policy : grid_.policies) {
      for (int k = 0; k < grid_.seeds_per_cell; ++k) {
        SweepRunConfig cfg;
        cfg.run_index = index;
        cfg.label = cell_name + "/" + control::to_string(policy) + "/s" +
                    std::to_string(k);
        cfg.topology = cell.topology;
        cfg.policy = policy;
        cfg.topology_seed = derive_sweep_seed(grid_.base_seed, index, 0);
        cfg.sim_seed = derive_sweep_seed(grid_.base_seed, index, 1);
        configs_.push_back(std::move(cfg));
        ++index;
      }
    }
  }
}

void SweepRunner::execute_run(std::size_t index, SweepReport& report) const {
  const SweepRunConfig& cfg = configs_[index];
  SweepRunResult& slot = report.results[index];
  const auto start = Clock::now();
  try {
    const graph::ProcessingGraph g =
        graph::generate_topology(cfg.topology, cfg.topology_seed);
    const opt::AllocationPlan plan = opt::optimize(g);
    sim::SimOptions options;
    options.duration = grid_.duration;
    options.warmup = grid_.warmup;
    options.dt = grid_.dt;
    options.reoptimize_interval = grid_.reoptimize_interval;
    options.seed = cfg.sim_seed;
    options.controller.policy = cfg.policy;
    obs::ControlTraceRecorder recorder;
    if (grid_.record_traces) options.trace = &recorder;
    slot.summary = run_single(g, plan, options);
    if (grid_.record_traces) {
      slot.trace = recorder.snapshot();
      // Tag every record with its policy so the combined sweep trace can be
      // split back apart by trace-summary.
      for (obs::TickRecord& r : slot.trace) {
        r.policy = control::to_string(cfg.policy);
      }
    }
    slot.status = SweepRunStatus::kOk;
  } catch (const std::exception& e) {
    slot.status = SweepRunStatus::kFailed;
    slot.error = e.what();
  }
  slot.wall_ms = ms_since(start);
}

SweepReport SweepRunner::run(int jobs) {
  jobs = std::max(1, jobs);
  SweepReport report;
  report.configs = configs_;
  report.results.assign(configs_.size(), SweepRunResult{});
  report.jobs = jobs;
  const auto start = Clock::now();

  Mutex done_mutex;  // serializes on_run_done across workers
  const auto finish_run = [&](std::size_t index) {
    execute_run(index, report);
    if (on_run_done) {
      MutexLock lock(done_mutex);
      on_run_done(configs_[index], report.results[index]);
    }
  };

  if (jobs == 1 || configs_.size() <= 1) {
    for (std::size_t i = 0; i < configs_.size(); ++i) {
      if (cancelled_.load(std::memory_order_relaxed)) break;
      finish_run(i);
    }
  } else {
    // Work-stealing pool: run indices are dealt round-robin onto per-worker
    // deques; a worker drains its own deque from the front and steals from
    // the back of a victim's when empty. Determinism is unaffected by who
    // executes what — results are slot-addressed by run index.
    struct WorkQueue {
      Mutex mutex;
      std::deque<std::size_t> items ACES_GUARDED_BY(mutex);
    };
    std::vector<WorkQueue> queues(static_cast<std::size_t>(jobs));
    {
      // Seeding happens before the workers exist, but the analysis has no
      // notion of "not yet shared" for non-members, so lock pro forma.
      for (std::size_t i = 0; i < configs_.size(); ++i) {
        WorkQueue& q = queues[i % static_cast<std::size_t>(jobs)];
        MutexLock lock(q.mutex);
        q.items.push_back(i);
      }
    }
    const auto take = [&queues](std::size_t worker, std::size_t& out) {
      {  // own queue first, oldest item first
        WorkQueue& own = queues[worker];
        MutexLock lock(own.mutex);
        if (!own.items.empty()) {
          out = own.items.front();
          own.items.pop_front();
          return true;
        }
      }
      for (std::size_t v = 1; v < queues.size(); ++v) {
        WorkQueue& victim = queues[(worker + v) % queues.size()];
        MutexLock lock(victim.mutex);
        if (!victim.items.empty()) {
          out = victim.items.back();  // steal from the cold end
          victim.items.pop_back();
          return true;
        }
      }
      return false;  // nothing anywhere: the sweep is drained
    };

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(jobs));
    for (int w = 0; w < jobs; ++w) {
      workers.emplace_back([&, w] {
        std::size_t index = 0;
        while (!cancelled_.load(std::memory_order_relaxed) &&
               take(static_cast<std::size_t>(w), index)) {
          finish_run(index);
        }
      });
    }
    for (std::thread& t : workers) t.join();
  }

  report.total_wall_ms = ms_since(start);
  return report;
}

SweepGrid parse_sweep_grid(const std::string& text) {
  SweepGrid grid;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens(line);
    std::string head;
    if (!(tokens >> head)) continue;  // blank / comment-only line

    const auto fail = [&](const std::string& why) -> std::runtime_error {
      return std::runtime_error("sweep grid line " + std::to_string(line_no) +
                                ": " + why);
    };
    const auto number = [&](const std::string& raw) {
      try {
        std::size_t pos = 0;
        const double v = std::stod(raw, &pos);
        if (pos != raw.size()) throw std::invalid_argument("garbage");
        return v;
      } catch (const std::exception&) {
        throw fail("expected a number, got '" + raw + "'");
      }
    };

    if (head == "topology") {
      SweepCell cell;
      std::string kv;
      while (tokens >> kv) {
        const auto eq = kv.find('=');
        if (eq == std::string::npos) throw fail("expected key=value: " + kv);
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        graph::TopologyParams& t = cell.topology;
        if (key == "name") cell.name = value;
        else if (key == "nodes") t.num_nodes = static_cast<int>(number(value));
        else if (key == "ingress") t.num_ingress = static_cast<int>(number(value));
        else if (key == "intermediate") t.num_intermediate = static_cast<int>(number(value));
        else if (key == "egress") t.num_egress = static_cast<int>(number(value));
        else if (key == "depth") t.depth = static_cast<int>(number(value));
        else if (key == "buffer") t.buffer_capacity = static_cast<int>(number(value));
        else if (key == "load") t.load_factor = number(value);
        else if (key == "burstiness") t.source_burstiness = number(value);
        else if (key == "fanin") t.max_fan_in = static_cast<int>(number(value));
        else if (key == "fanout") t.max_fan_out = static_cast<int>(number(value));
        else throw fail("unknown topology key: " + key);
      }
      grid.cells.push_back(std::move(cell));
      continue;
    }

    // Scalar directive: "key = value" (or "key=value").
    std::string key = head;
    std::string value;
    if (const auto eq = key.find('='); eq != std::string::npos) {
      value = key.substr(eq + 1);
      key.erase(eq);
    }
    std::string tok;
    while (tokens >> tok) {
      if (tok == "=") continue;
      if (tok.front() == '=') tok.erase(0, 1);
      if (!value.empty()) throw fail("trailing token: " + tok);
      value = tok;
    }
    if (value.empty()) throw fail("directive '" + key + "' needs a value");

    if (key == "base_seed") {
      grid.base_seed = static_cast<std::uint64_t>(number(value));
    } else if (key == "seeds") {
      grid.seeds_per_cell = static_cast<int>(number(value));
      if (grid.seeds_per_cell <= 0) throw fail("seeds must be positive");
    } else if (key == "duration") {
      grid.duration = number(value);
    } else if (key == "warmup") {
      grid.warmup = number(value);
    } else if (key == "dt") {
      grid.dt = number(value);
    } else if (key == "reoptimize") {
      grid.reoptimize_interval = number(value);
    } else if (key == "policies") {
      grid.policies.clear();
      std::istringstream list(value);
      std::string name;
      while (std::getline(list, name, ',')) {
        if (!name.empty()) grid.policies.push_back(parse_policy_name(name));
      }
      if (grid.policies.empty()) throw fail("policies list is empty");
    } else {
      throw fail("unknown directive: " + key);
    }
  }
  if (grid.cells.empty()) {
    throw std::runtime_error("sweep grid defines no topology cells");
  }
  return grid;
}

void write_sweep_json(std::ostream& os, const SweepReport& report,
                      bool include_timing) {
  double mean = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  report.throughput_summary(mean, lo, hi);
  os << "{\"bench\":\"sweep\",\"schema\":1";
  if (include_timing) {
    os << ",\"jobs\":" << report.jobs << ",\"total_wall_ms\":"
       << num(report.total_wall_ms)
       << ",\"runs_per_sec\":" << num(report.runs_per_sec());
  }
  os << ",\"runs\":" << report.results.size()
     << ",\"completed\":" << report.completed()
     << ",\"failed\":" << report.failed()
     << ",\"cancelled\":" << report.cancelled()
     << ",\"weighted_throughput\":{\"mean\":" << num(mean)
     << ",\"min\":" << num(lo) << ",\"max\":" << num(hi) << "}";

  // Deterministic work totals over completed runs: bit-stable for a fixed
  // grid, so bench-diff hard-fails any drift. Emitted regardless of
  // --no-timing — they are part of the deterministic document.
  {
    std::uint64_t events = 0;
    std::uint64_t sdos = 0;
    std::uint64_t reopts = 0;
    for (const SweepRunResult& r : report.results) {
      if (r.status != SweepRunStatus::kOk) continue;
      events += r.summary.events_executed;
      sdos += r.summary.sdos_processed;
      reopts += r.summary.reoptimizations;
    }
    os << ",\"perf\":{\"instrumented\":"
       << (obs::perf_instrumented() ? "true" : "false")
       << ",\"work\":{\"events_executed\":" << events
       << ",\"sdos_processed\":" << sdos << ",\"reoptimizations\":" << reopts
       << "}";
    // Everything else in "perf" varies with machine, thread count, or
    // allocator, so it rides with the timing fields (--no-timing keeps the
    // document byte-comparable across --jobs).
    if (include_timing) {
      os << ",\"peak_rss_mb\":"
         << num(static_cast<double>(obs::peak_rss_bytes()) / (1024.0 * 1024.0))
         << ",\"alloc_count\":" << obs::alloc_count();
      const obs::PerfSnapshot snapshot = obs::perf_snapshot();
      if (!snapshot.stages.empty()) {
        os << ",\"stages\":{";
        for (std::size_t i = 0; i < snapshot.stages.size(); ++i) {
          const obs::PerfStageSample& s = snapshot.stages[i];
          if (i > 0) os << ",";
          os << "\"" << escape_json(s.name) << "\":{\"calls\":" << s.calls
             << ",\"ns\":" << s.ns << ",\"cycles\":" << s.cycles
             << ",\"ns_per_call\":"
             << num(static_cast<double>(s.ns) / static_cast<double>(s.calls))
             << "}";
        }
        os << "}";
      }
      if (!snapshot.events.empty()) {
        os << ",\"events\":{";
        for (std::size_t i = 0; i < snapshot.events.size(); ++i) {
          if (i > 0) os << ",";
          os << "\"" << escape_json(snapshot.events[i].first)
             << "\":" << snapshot.events[i].second;
        }
        os << "}";
      }
    }
    os << "}";
  }

  // Per-policy latency/throughput aggregates over completed runs. Results
  // are visited in run-index order and keyed by policy name in a std::map,
  // so the block is byte-identical for any jobs count.
  struct PolicyAgg {
    std::size_t runs = 0;
    double throughput_sum = 0.0;
    double p50_sum = 0.0;
    double p99_sum = 0.0;
    double p50_max = 0.0;
    double p99_max = 0.0;
  };
  std::map<std::string, PolicyAgg> policies;
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    const SweepRunResult& r = report.results[i];
    if (r.status != SweepRunStatus::kOk) continue;
    PolicyAgg& agg = policies[control::to_string(report.configs[i].policy)];
    ++agg.runs;
    agg.throughput_sum += r.summary.weighted_throughput;
    agg.p50_sum += r.summary.latency_p50;
    agg.p99_sum += r.summary.latency_p99;
    agg.p50_max = std::max(agg.p50_max, r.summary.latency_p50);
    agg.p99_max = std::max(agg.p99_max, r.summary.latency_p99);
  }
  os << ",\"policies\":{";
  bool first_policy = true;
  for (const auto& [name, agg] : policies) {
    const double n = static_cast<double>(agg.runs);
    if (!first_policy) os << ",";
    first_policy = false;
    os << "\"" << escape_json(name) << "\":{\"runs\":" << agg.runs
       << ",\"weighted_throughput_mean\":" << num(agg.throughput_sum / n)
       << ",\"latency_ms_p50_mean\":" << num(agg.p50_sum / n * 1e3)
       << ",\"latency_ms_p99_mean\":" << num(agg.p99_sum / n * 1e3)
       << ",\"latency_ms_p50_max\":" << num(agg.p50_max * 1e3)
       << ",\"latency_ms_p99_max\":" << num(agg.p99_max * 1e3) << "}";
  }
  os << "}"
     << ",\"per_run\":[";
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    const SweepRunConfig& cfg = report.configs[i];
    const SweepRunResult& r = report.results[i];
    if (i > 0) os << ",";
    os << "{\"index\":" << cfg.run_index << ",\"label\":\""
       << escape_json(cfg.label) << "\",\"policy\":\""
       << control::to_string(cfg.policy) << "\",\"topology_seed\":"
       << cfg.topology_seed << ",\"sim_seed\":" << cfg.sim_seed
       << ",\"status\":\"" << status_name(r.status) << "\"";
    if (include_timing) os << ",\"wall_ms\":" << num(r.wall_ms);
    if (r.status == SweepRunStatus::kOk) {
      os << ",";
      write_summary_fields(os, r.summary);
      // Per-run memory fields are polluted by concurrent runs (the alloc
      // delta and RSS high-water mark are process-global), so they are
      // timing-class: omitted from the deterministic document.
      if (include_timing) {
        os << ",\"peak_rss_mb\":" << num(r.summary.peak_rss_mb)
           << ",\"alloc_count\":" << r.summary.alloc_count;
      }
    } else if (r.status == SweepRunStatus::kFailed) {
      os << ",\"error\":\"" << escape_json(r.error) << "\"";
    }
    os << "}";
  }
  os << "]}\n";
}

void write_sweep_trace_jsonl(std::ostream& os, const SweepReport& report) {
  for (const SweepRunResult& r : report.results) {
    if (!r.trace.empty()) obs::write_trace_jsonl(os, r.trace);
  }
}

std::string sweep_fingerprint(const SweepReport& report) {
  std::ostringstream os;
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    const SweepRunConfig& cfg = report.configs[i];
    const SweepRunResult& r = report.results[i];
    os << i << '|' << cfg.label << '|' << cfg.topology_seed << '|'
       << cfg.sim_seed << '|' << status_name(r.status);
    if (r.status == SweepRunStatus::kOk) {
      const RunSummary& s = r.summary;
      for (const double v :
           {s.weighted_throughput, s.fluid_bound, s.latency_mean,
            s.latency_std, s.latency_p50, s.latency_p99,
            s.ingress_drops_per_sec,
            s.internal_drops_per_sec, s.cpu_utilization, s.buffer_fill_mean,
            s.output_rate}) {
        os << '|' << hex(v);
      }
      os << '|' << s.events_executed << '|' << s.sdos_processed << '|'
         << s.reoptimizations;
    } else if (r.status == SweepRunStatus::kFailed) {
      os << '|' << r.error;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace aces::harness
