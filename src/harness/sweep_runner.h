// Parallel deterministic sweep runner.
//
// A sweep fans a grid of experiment configurations — topology cells ×
// policies × seeds — across a work-stealing thread pool, one full
// generate → optimize → simulate pipeline per run. Three properties make
// sweeps reproducible evidence rather than one-off timings:
//
//  * Strict seed derivation: every run's topology and simulation seeds are
//    pure functions of (base_seed, run_index) via SplitMix64, never of
//    which thread picked the run up or in what order.
//  * Slot-addressed results: run `i` writes results[i]; the report is
//    bit-identical to a serial (`jobs = 1`) sweep for any thread count and
//    any scheduling interleaving.
//  * Failure isolation: a run that throws records its error string in its
//    slot; the rest of the sweep proceeds.
//
// Output is a machine-readable BENCH_*.json document (runs/sec, per-run
// wall ms, weighted-throughput summary) — the perf-trajectory format
// described in docs/benchmarking.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "control/config.h"
#include "graph/topology_generator.h"
#include "harness/experiment.h"
#include "obs/trace.h"

namespace aces::harness {

/// One topology cell of the grid (before policy × seed expansion).
struct SweepCell {
  std::string name;  ///< label fragment; defaults to "cell<k>"
  graph::TopologyParams topology;
};

/// The sweep grid: cells × policies × seeds_per_cell runs.
struct SweepGrid {
  std::vector<SweepCell> cells;
  std::vector<control::FlowPolicy> policies = {control::FlowPolicy::kAces};
  /// Independent repetitions per (cell, policy); each gets fresh topology
  /// and workload randomness derived from (base_seed, run_index).
  int seeds_per_cell = 3;
  std::uint64_t base_seed = 1;
  /// Simulation window shared by every run.
  double duration = 30.0;
  double warmup = 5.0;
  double dt = 0.1;
  /// Tier-1 re-optimization interval (0 disables), as in SimOptions.
  double reoptimize_interval = 0.0;
  /// Record a per-run control trace (policy-tagged TickRecords in each
  /// result slot) for `write_sweep_trace_jsonl`. Off by default: traces
  /// cost memory proportional to ticks x PEs x runs.
  bool record_traces = false;
};

/// One fully-expanded run of the grid.
struct SweepRunConfig {
  std::size_t run_index = 0;
  std::string label;  ///< "<cell>/<policy>/s<k>"
  graph::TopologyParams topology;
  control::FlowPolicy policy = control::FlowPolicy::kAces;
  std::uint64_t topology_seed = 0;  ///< derive_sweep_seed(base, index, 0)
  std::uint64_t sim_seed = 0;       ///< derive_sweep_seed(base, index, 1)
};

enum class SweepRunStatus { kOk, kFailed, kCancelled };

/// Result slot for one run; wall_ms is the only nondeterministic field.
struct SweepRunResult {
  SweepRunStatus status = SweepRunStatus::kCancelled;
  RunSummary summary;        ///< valid when status == kOk
  double wall_ms = 0.0;      ///< per-run wall clock (excluded from hashes)
  std::string error;         ///< exception text when status == kFailed
  /// Control trace of the run, policy-tagged; populated only when
  /// SweepGrid::record_traces is set. Slot-addressed like every other
  /// result field, so the combined trace is jobs-independent.
  std::vector<obs::TickRecord> trace;
};

struct SweepReport {
  std::vector<SweepRunConfig> configs;  ///< indexed by run_index
  std::vector<SweepRunResult> results;  ///< indexed by run_index
  int jobs = 1;
  double total_wall_ms = 0.0;
  [[nodiscard]] std::size_t completed() const;
  [[nodiscard]] std::size_t failed() const;
  [[nodiscard]] std::size_t cancelled() const;
  /// Completed runs per wall second.
  [[nodiscard]] double runs_per_sec() const;
  /// Mean/min/max weighted throughput over completed runs.
  void throughput_summary(double& mean, double& lo, double& hi) const;
};

/// Per-run seed derivation: a SplitMix64 chain over (base, run_index,
/// stream). Pure, collision-resistant across the grid, and independent of
/// scheduling — the determinism contract of the sweep.
std::uint64_t derive_sweep_seed(std::uint64_t base_seed,
                                std::uint64_t run_index,
                                std::uint64_t stream);

class SweepRunner {
 public:
  explicit SweepRunner(SweepGrid grid);

  [[nodiscard]] const std::vector<SweepRunConfig>& runs() const {
    return configs_;
  }
  [[nodiscard]] std::size_t run_count() const { return configs_.size(); }

  /// Invoked (from worker threads, serialized by an internal mutex) after
  /// each run finishes; gives progress reporting and tests a hook to
  /// cancel mid-sweep.
  std::function<void(const SweepRunConfig&, const SweepRunResult&)>
      on_run_done;

  /// Stops workers from starting new runs; in-flight runs finish and
  /// not-yet-started runs report SweepRunStatus::kCancelled. Callable from
  /// any thread (including on_run_done).
  void request_cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Executes the sweep on `jobs` worker threads (clamped to >= 1). The
  /// deterministic fields of the report depend only on the grid, never on
  /// `jobs`.
  SweepReport run(int jobs);

 private:
  void execute_run(std::size_t index, SweepReport& report) const;

  SweepGrid grid_;
  std::vector<SweepRunConfig> configs_;
  std::atomic<bool> cancelled_{false};
};

/// Grid-file grammar (one directive per line, '#' comments):
///
///   base_seed = 42
///   seeds = 4
///   duration = 20
///   warmup = 5
///   dt = 0.1
///   reoptimize = 0
///   policies = aces,udp,lockstep,threshold
///   topology name=small nodes=4 ingress=2 intermediate=6 egress=2
///            load=0.7 buffer=50 depth=2 burstiness=0.5   (one line)
///
/// `topology` lines append cells (keys mirror `aces generate` flags);
/// scalar directives apply to the whole grid. Throws std::runtime_error
/// with the offending line on any unknown key or malformed value.
SweepGrid parse_sweep_grid(const std::string& text);

/// Writes the BENCH_*.json document (schema in docs/benchmarking.md).
/// `include_timing` = false omits every wall-clock field, leaving only
/// deterministic content — the byte-identity format the determinism test
/// compares across thread counts.
void write_sweep_json(std::ostream& os, const SweepReport& report,
                      bool include_timing = true);

/// Full-precision (hexfloat) serialization of every deterministic result
/// field, for byte-identity assertions across jobs counts.
std::string sweep_fingerprint(const SweepReport& report);

/// Writes the combined policy-tagged control trace: every run's TickRecords
/// in run-index order, each line carrying a "policy" key so
/// `aces trace-summary` can split policies back apart. Requires the sweep to
/// have run with SweepGrid::record_traces.
void write_sweep_trace_jsonl(std::ostream& os, const SweepReport& report);

}  // namespace aces::harness
