#include "harness/bench_options.h"

#include <cstdlib>
#include <iostream>
#include <string>

namespace aces::harness {

std::vector<std::uint64_t> BenchOptions::seeds() const {
  std::vector<std::uint64_t> out;
  for (int i = 1; i <= seed_count; ++i)
    out.push_back(static_cast<std::uint64_t>(i));
  return out;
}

void BenchOptions::apply(double& duration, double& warmup,
                         std::vector<std::uint64_t>& seed_list) const {
  duration *= duration_scale;
  warmup *= duration_scale;
  if (seed_count > 0) seed_list = seeds();
}

namespace {
[[noreturn]] void usage(const char* program, int exit_code) {
  (exit_code == 0 ? std::cout : std::cerr)
      << "usage: " << program
      << " [--scale=X] [--seeds=N] [--csv] [--json=FILE]\n"
      << "  --scale=X   multiply simulated duration and warm-up by X\n"
      << "  --seeds=N   average over seeds 1..N\n"
      << "  --csv       emit result tables as CSV\n"
      << "  --json=F    also write a BENCH_*.json perf document\n";
  std::exit(exit_code);
}
}  // namespace

BenchOptions parse_bench_options(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage(argv[0], 0);
    if (arg == "--csv") {
      options.csv = true;
      continue;
    }
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    try {
      if (key == "--scale") {
        options.duration_scale = std::stod(value);
        if (options.duration_scale <= 0.0) usage(argv[0], 2);
      } else if (key == "--seeds") {
        options.seed_count = std::stoi(value);
        if (options.seed_count <= 0) usage(argv[0], 2);
      } else if (key == "--json") {
        if (value.empty()) usage(argv[0], 2);
        options.json = value;
      } else {
        std::cerr << "unknown flag: " << arg << '\n';
        usage(argv[0], 2);
      }
    } catch (const std::exception&) {
      std::cerr << "malformed value in: " << arg << '\n';
      usage(argv[0], 2);
    }
  }
  return options;
}

}  // namespace aces::harness
