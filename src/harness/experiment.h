// Experiment driver: topology → tier-1 plan → simulated run(s) → summary.
//
// Every bench reproducing a paper figure goes through this module so that
// the pipeline (generation, optimization, simulation, measurement) is
// identical across experiments and the benches contain only sweep logic.
#pragma once

#include <cstdint>
#include <vector>

#include "control/config.h"
#include "graph/topology_generator.h"
#include "metrics/run_report.h"
#include "opt/global_optimizer.h"
#include "sim/stream_simulation.h"

namespace aces::harness {

/// Everything needed to reproduce one experimental cell.
struct ExperimentSpec {
  graph::TopologyParams topology;
  sim::SimOptions sim;
  opt::OptimizerConfig optimizer;
  /// One full run (fresh topology + fresh workload randomness) per seed;
  /// results are averaged, matching the paper's "multiple randomly generated
  /// topologies ... averaged over the multiple runs".
  std::vector<std::uint64_t> seeds = {1, 2, 3};
};

/// Scalar summary of one run (or the mean of several).
struct RunSummary {
  double weighted_throughput = 0.0;
  /// Tier-1 fluid-model optimum for the same topology: an upper reference
  /// for weighted throughput.
  double fluid_bound = 0.0;
  double latency_mean = 0.0;
  double latency_std = 0.0;
  double latency_p50 = 0.0;
  double latency_p99 = 0.0;
  double ingress_drops_per_sec = 0.0;
  double internal_drops_per_sec = 0.0;
  double cpu_utilization = 0.0;
  double buffer_fill_mean = 0.0;
  double output_rate = 0.0;

  /// Deterministic work totals (perf trajectory): bit-stable for a fixed
  /// (topology, seed, options), so bench-diff hard-fails on any change.
  /// average() SUMS these across seeds — a total over the cell, not a mean
  /// — keeping the aggregate integral and exactly reproducible.
  std::uint64_t events_executed = 0;
  std::uint64_t sdos_processed = 0;
  std::uint64_t reoptimizations = 0;

  /// Memory trajectory. peak_rss_mb is the process high-water mark after
  /// the run (monotonic across runs in one process — comparable between
  /// processes, not between runs of one bench); average() takes the max.
  /// alloc_count is the operator-new delta across the run, summed like the
  /// work totals; 0 unless the build sets ACES_PERF_INSTRUMENT. Both are
  /// environment-dependent, so reports treat them as soft fields.
  double peak_rss_mb = 0.0;
  std::uint64_t alloc_count = 0;

  /// Weighted throughput normalized by the fluid bound, in [0, ~1].
  [[nodiscard]] double normalized_throughput() const {
    return fluid_bound > 0.0 ? weighted_throughput / fluid_bound : 0.0;
  }
};

struct ExperimentResult {
  std::vector<RunSummary> runs;  ///< per seed
  RunSummary mean;               ///< field-wise average over runs
};

/// Collapses a RunReport + plan into a RunSummary.
RunSummary summarize(const metrics::RunReport& report, double fluid_bound);

/// Field-wise mean of summaries.
RunSummary average(const std::vector<RunSummary>& runs);

/// Runs the spec under `policy`: for each seed, generates the topology,
/// optimizes, simulates, summarizes.
ExperimentResult run_experiment(const ExperimentSpec& spec,
                                control::FlowPolicy policy);

/// Single run on a pre-built graph + plan (used by calibration and examples).
RunSummary run_single(const graph::ProcessingGraph& graph,
                      const opt::AllocationPlan& plan,
                      const sim::SimOptions& sim_options);

}  // namespace aces::harness
