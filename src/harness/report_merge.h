// Merging per-worker partial RunReports from the distributed runtime.
//
// Each worker process measures only the PEs it hosts and ships its partial
// RunReport to the coordinator with the accumulator internals intact
// (OnlineStats / LogHistogram raw transfer, runtime/wire.h). merge_reports
// folds the partials — in rank order, so the result is deterministic —
// into the report an equivalent single-process run would produce.
#pragma once

#include <vector>

#include "metrics/run_report.h"

namespace aces::harness {

/// Merges per-worker partial reports (rank order) into one RunReport:
/// counters and rates sum, latency / buffer-fill accumulators merge
/// exactly, and positional vectors (egress_outputs, per_pe) combine
/// elementwise. Workers compute cpu_utilization against the *global*
/// capacity, so utilizations also sum. `reoptimizations` is summed but the
/// coordinator normally overwrites it (it owns the tier-1 solve count).
/// An empty input yields a default-constructed report.
metrics::RunReport merge_reports(
    const std::vector<metrics::RunReport>& partials);

}  // namespace aces::harness
