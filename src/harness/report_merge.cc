#include "harness/report_merge.h"

#include <algorithm>
#include <cstddef>

namespace aces::harness {

metrics::RunReport merge_reports(
    const std::vector<metrics::RunReport>& partials) {
  metrics::RunReport merged;
  if (partials.empty()) return merged;
  merged.measured_seconds = partials.front().measured_seconds;
  for (const metrics::RunReport& part : partials) {
    merged.measured_seconds =
        std::max(merged.measured_seconds, part.measured_seconds);
    merged.weighted_throughput += part.weighted_throughput;
    merged.output_rate += part.output_rate;
    merged.latency.merge(part.latency);
    merged.latency_histogram.merge(part.latency_histogram);
    merged.internal_drops += part.internal_drops;
    merged.ingress_drops += part.ingress_drops;
    merged.sdos_processed += part.sdos_processed;
    merged.cpu_utilization += part.cpu_utilization;
    merged.buffer_fill.merge(part.buffer_fill);
    if (part.egress_outputs.size() > merged.egress_outputs.size())
      merged.egress_outputs.resize(part.egress_outputs.size(), 0);
    for (std::size_t i = 0; i < part.egress_outputs.size(); ++i)
      merged.egress_outputs[i] += part.egress_outputs[i];
    if (part.per_pe.size() > merged.per_pe.size())
      merged.per_pe.resize(part.per_pe.size());
    for (std::size_t i = 0; i < part.per_pe.size(); ++i) {
      metrics::PeAccounting& acc = merged.per_pe[i];
      const metrics::PeAccounting& in = part.per_pe[i];
      acc.arrived += in.arrived;
      acc.processed += in.processed;
      acc.emitted += in.emitted;
      acc.dropped_input += in.dropped_input;
      acc.cpu_seconds += in.cpu_seconds;
    }
    merged.events_executed += part.events_executed;
    merged.reoptimizations += part.reoptimizations;
  }
  return merged;
}

}  // namespace aces::harness
