// Machine-readable perf output for the bench/ targets.
//
// Every figure bench can emit a BENCH_*.json document (--json=FILE via
// BenchOptions) with one record per experimental run: label, wall ms, and
// weighted throughput. The documents share the schema described in
// docs/benchmarking.md, so a CI job or a plotting script can track the
// perf trajectory (runs/sec, per-run wall ms) across commits without
// scraping tables.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace aces::harness {

/// Collects per-run perf records and writes one BENCH_*.json document.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name);

  /// Records one run. `weighted_throughput` < 0 means "not applicable"
  /// (micro benches); the field is then omitted. Same convention for the
  /// optional end-to-end latency percentiles (seconds).
  void add_run(const std::string& label, double wall_ms,
               double weighted_throughput = -1.0, double latency_p50 = -1.0,
               double latency_p99 = -1.0);

  [[nodiscard]] std::size_t runs() const { return runs_.size(); }

  /// Deterministic work totals over the whole bench, summed across runs.
  /// Setting them turns on the document's "perf" block. These are
  /// bit-stable for a fixed workload, so `aces bench-diff` hard-fails on
  /// any change — a silent behaviour change, not noise.
  void set_perf_work(std::uint64_t events_executed,
                     std::uint64_t sdos_processed,
                     std::uint64_t reoptimizations);

  /// Memory-trajectory fields for the "perf" block: process peak RSS (MB)
  /// and the operator-new count (0 unless ACES_PERF_INSTRUMENT). Both are
  /// environment-dependent, so bench-diff treats them as soft fields.
  void set_perf_memory(double peak_rss_mb, std::uint64_t alloc_count);

  /// Serializes {bench, runs, total_wall_ms, runs_per_sec, per_run[],
  /// weighted_throughput{mean,min,max}}.
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path`; returns false (and prints to stderr) on
  /// I/O failure. No-op returning true when `path` is empty.
  bool write_file(const std::string& path) const;

 private:
  struct Run {
    std::string label;
    double wall_ms = 0.0;
    double weighted_throughput = -1.0;
    double latency_p50 = -1.0;  ///< seconds; < 0 omits the field
    double latency_p99 = -1.0;  ///< seconds; < 0 omits the field
  };
  std::string name_;
  std::vector<Run> runs_;
  bool has_perf_ = false;
  std::uint64_t events_executed_ = 0;
  std::uint64_t sdos_processed_ = 0;
  std::uint64_t reoptimizations_ = 0;
  double peak_rss_mb_ = 0.0;
  std::uint64_t alloc_count_ = 0;
};

/// Wall-clock stopwatch for bench loops.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace aces::harness
