// The paper's default experimental configuration (§VI-C), in one place.
//
// "Experiments were run on topologies consisting of 60 PEs running on 10
//  nodes in the SPC and the C-SIM simulator. ... Subsequently, experiments
//  were run on the simulator on topologies of 200 PEs running on 80 nodes.
//  ... the buffer size of each PE was set to B = 50 SDOs, the parameter b0
//  was set to B/2 SDOs, the maximum allowable fan-out degree was set to 4,
//  the maximum allowable fan-in degree was set to 3, the fraction of PEs
//  that had multiple inputs or multiple outputs was set to 20% and the
//  parameters of the PEs were set to λ_S = 10, λ_m = 1, ρ = 0.5, T0 = 2 ms
//  and T1 = 20 ms."
#pragma once

#include "graph/topology_generator.h"
#include "sim/stream_simulation.h"

namespace aces::harness {

/// 60 PEs / 10 nodes: the SPC-scale calibration configuration.
inline graph::TopologyParams calibration_topology() {
  graph::TopologyParams p;
  p.num_nodes = 10;
  p.num_ingress = 10;
  p.num_intermediate = 40;
  p.num_egress = 10;
  return p;  // remaining defaults already match §VI-C
}

/// 200 PEs / 80 nodes: the scaled simulator configuration.
inline graph::TopologyParams scaled_topology() {
  graph::TopologyParams p;
  p.num_nodes = 80;
  p.num_ingress = 34;
  p.num_intermediate = 132;
  p.num_egress = 34;
  return p;
}

/// Simulation window used by the figure benches: long enough for steady
/// state, short enough that a sweep of many cells completes in minutes.
inline sim::SimOptions default_sim_options() {
  sim::SimOptions o;
  o.dt = 0.1;
  o.duration = 60.0;
  o.warmup = 15.0;
  return o;
}

/// Scales the burstiness of every PE in `params` by `factor`: sojourn times
/// stretch (states persist longer → longer congested episodes) while the
/// stationary state mix — and hence the mean service time and the tier-1
/// plan — stays fixed. This is the paper's Fig. 5 x-axis (λ_s sweep).
inline graph::TopologyParams with_burstiness(graph::TopologyParams params,
                                             double factor) {
  params.sojourn_fast *= factor;
  params.sojourn_slow *= factor;
  return params;
}

/// Overrides every PE's buffer capacity (Fig. 3/4 x-axis).
inline graph::TopologyParams with_buffer_size(graph::TopologyParams params,
                                              int buffer_sdos) {
  params.buffer_capacity = buffer_sdos;
  return params;
}

}  // namespace aces::harness
