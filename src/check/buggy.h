// Deliberately-buggy protocol variants: the checker's self-tests. Each is a
// minimal standalone copy of one repo protocol with one known ordering bug
// planted; tests/check/explorer_test.cc asserts the explorer FINDS each bug
// (and that the correct twin passes). If a refactor ever blinds the model
// to one of these, the self-test fails before the blindness can hide a
// real regression.
//
// These are reference bugs, not reference implementations — the real
// protocols live in runtime/spsc_ring.h and common/seqlock.h.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>

#include "check/shadow.h"
#include "common/atomic_shim.h"

namespace aces::check {

/// Lamport SPSC ring with the tail publish DEMOTED to relaxed (the release
/// fence/store dropped). The consumer's acquire load of tail_ then reads a
/// store that synchronizes nothing, so the slot read races the slot write —
/// the model reports a plain-memory data race. The same harness against
/// runtime::SpscRing (release publish) passes.
template <std::size_t N = 4>
class BuggyPublishRing {
 public:
  BuggyPublishRing() {
    tail_.set_check_name("buggy.tail_");
    head_.set_check_name("buggy.head_");
  }

  bool try_push(std::uint64_t v) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) >= N) return false;
    slots_[tail % N] = Shadow<std::uint64_t>(v);
    tail_.store(tail + 1, std::memory_order_relaxed);  // BUG: not release
    return true;
  }

  std::optional<std::uint64_t> try_pop() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return std::nullopt;
    const std::uint64_t v = slots_[head % N].value();
    head_.store(head + 1, std::memory_order_release);
    return v;
  }

 private:
  std::array<Shadow<std::uint64_t>, N> slots_{};
  aces::Atomic<std::uint64_t> tail_{0};
  aces::Atomic<std::uint64_t> head_{0};
};

/// The close/drain protocol of SpscRing::pop_wait, parameterized on the
/// memory order of the consumer's `closed_` load. With
/// std::memory_order_relaxed this reproduces the lost-backlog bug PR'd out
/// of the real ring: the consumer can observe closed == true without the
/// happens-before edge to the producer's final tail publish, conclude
/// "closed and drained" while an item is still invisible in the ring, and
/// lose it. With std::memory_order_acquire the conclusion is sound and the
/// identical harness passes.
template <std::memory_order kCloseOrder>
class MiniDrainRing {
 public:
  enum class Poll { kEmpty, kItem, kClosedDrained };

  MiniDrainRing() {
    tail_.set_check_name("mini.tail_");
    head_.set_check_name("mini.head_");
    closed_.set_check_name("mini.closed_");
  }

  bool try_push(std::uint64_t v) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) >= kSlots) return false;
    slots_[tail % kSlots] = Shadow<std::uint64_t>(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  void close() { closed_.store(true, std::memory_order_seq_cst); }

  /// One consumer attempt: an item, "nothing yet", or the terminal
  /// "closed and fully drained" verdict.
  Poll poll(std::uint64_t* out) {
    if (auto v = try_pop()) {
      *out = *v;
      return Poll::kItem;
    }
    if (closed_.load(kCloseOrder)) {
      if (auto v = try_pop()) {
        *out = *v;
        return Poll::kItem;
      }
      return Poll::kClosedDrained;
    }
    return Poll::kEmpty;
  }

 private:
  static constexpr std::size_t kSlots = 2;

  std::optional<std::uint64_t> try_pop() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return std::nullopt;
    const std::uint64_t v = slots_[head % kSlots].value();
    head_.store(head + 1, std::memory_order_release);
    return v;
  }

  std::array<Shadow<std::uint64_t>, kSlots> slots_{};
  aces::Atomic<std::uint64_t> tail_{0};
  aces::Atomic<std::uint64_t> head_{0};
  aces::Atomic<bool> closed_{false};
};

/// common/seqlock.h with the writer's release FENCE between the odd
/// sequence store and the payload words dropped. A reader can then copy a
/// fresh payload word without the odd sequence becoming visible to its
/// re-read, and accepts a torn copy — the exact failure the Boehm protocol
/// exists to prevent. try_read is verbatim from the correct slot; only
/// publish differs.
template <std::size_t NWords>
class BuggySeqLockSlot {
 public:
  void publish(std::uint64_t ticket, const std::uint64_t* words) {
    seq_.store(2 * ticket + 1, std::memory_order_relaxed);
    // BUG: no atomic_fence(release) here.
    for (std::size_t i = 0; i < NWords; ++i) {
      words_[i].store(words[i], std::memory_order_relaxed);
    }
    seq_.store(2 * ticket + 2, std::memory_order_release);
  }

  [[nodiscard]] bool try_read(std::uint64_t* out) const {
    const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
    if (s1 % 2 != 0 || s1 == 0) return false;
    for (std::size_t i = 0; i < NWords; ++i) {
      out[i] = words_[i].load(std::memory_order_relaxed);
    }
    aces::atomic_fence(std::memory_order_acquire);
    return seq_.load(std::memory_order_relaxed) == s1;
  }

 private:
  aces::Atomic<std::uint64_t> seq_{0};
  std::array<aces::Atomic<std::uint64_t>, NWords> words_{};
};

}  // namespace aces::check
