#include "check/memory.h"

#include <cstdio>

namespace aces::check {

VarState& MemoryModel::touch(const void* var, std::uint64_t latest) {
  auto it = vars_.find(var);
  if (it != vars_.end()) return it->second;
  VarState& v = vars_[var];
  Store seed;
  seed.value = latest;
  seed.thread = -1;  // pre-history: happens-before every thread
  v.stores.push_back(seed);
  v.seen.fill(0);
  return v;
}

std::pair<int, int> MemoryModel::visible_range(const VarState& v, int t,
                                               const ThreadClocks& tc) const {
  const int hi = static_cast<int>(v.stores.size()) - 1;
  // Newest store that already happens-before t: everything older is
  // superseded from t's point of view and may no longer be read.
  int hb_floor = 0;
  for (int i = hi; i >= 0; --i) {
    const Store& s = v.stores[static_cast<std::size_t>(i)];
    if (tc.cur.covers(s.thread, s.seq)) {
      hb_floor = i;
      break;
    }
  }
  const int lo =
      hb_floor > v.seen[static_cast<std::size_t>(t)]
          ? hb_floor
          : v.seen[static_cast<std::size_t>(t)];
  return {lo, hi};
}

std::uint64_t MemoryModel::commit_load(VarState& v, int idx, int t,
                                       ThreadClocks& tc,
                                       std::uint64_t /*event_seq*/,
                                       bool acquire) {
  const Store& s = v.stores[static_cast<std::size_t>(idx)];
  if (idx > v.seen[static_cast<std::size_t>(t)]) {
    v.seen[static_cast<std::size_t>(t)] = idx;
  }
  if (acquire) {
    tc.cur.join(s.rel);
  } else {
    tc.acq_pending.join(s.rel);
  }
  return s.value;
}

void MemoryModel::commit_store(VarState& v, std::uint64_t value, int t,
                               const ThreadClocks& tc,
                               std::uint64_t event_seq, bool release) {
  Store s;
  s.value = value;
  s.thread = t;
  s.seq = event_seq;
  s.rel = release ? tc.cur : tc.fence_rel;
  v.stores.push_back(s);
  v.seen[static_cast<std::size_t>(t)] =
      static_cast<int>(v.stores.size()) - 1;
}

std::uint64_t MemoryModel::commit_rmw_read(VarState& v, int t,
                                           ThreadClocks& tc,
                                           std::uint64_t /*event_seq*/,
                                           bool acquire) {
  const int idx = static_cast<int>(v.stores.size()) - 1;
  const Store& s = v.stores[static_cast<std::size_t>(idx)];
  v.seen[static_cast<std::size_t>(t)] = idx;
  if (acquire) {
    tc.cur.join(s.rel);
  } else {
    tc.acq_pending.join(s.rel);
  }
  return s.value;
}

void MemoryModel::commit_rmw_write(VarState& v, std::uint64_t new_value,
                                   int t, const ThreadClocks& tc,
                                   std::uint64_t event_seq, bool release) {
  Store s;
  s.value = new_value;
  s.thread = t;
  s.seq = event_seq;
  s.rel = release ? tc.cur : tc.fence_rel;
  // Release-sequence continuation: an acquire reader of this RMW's store
  // also synchronizes with the store it replaced.
  s.rel.join(v.stores.back().rel);
  v.stores.push_back(s);
  v.seen[static_cast<std::size_t>(t)] =
      static_cast<int>(v.stores.size()) - 1;
}

void MemoryModel::commit_fence(ThreadClocks& tc, bool acquire, bool release) {
  if (acquire) tc.cur.join(tc.acq_pending);
  if (release) tc.fence_rel = tc.cur;
}

void MemoryModel::advance_floors_to_latest(int t) {
  for (auto& [addr, v] : vars_) {
    (void)addr;
    v.seen[static_cast<std::size_t>(t)] =
        static_cast<int>(v.stores.size()) - 1;
  }
}

bool MemoryModel::floors_at_latest(int t) const {
  for (const auto& [addr, v] : vars_) {
    (void)addr;
    if (v.seen[static_cast<std::size_t>(t)] <
        static_cast<int>(v.stores.size()) - 1) {
      return false;
    }
  }
  return true;
}

std::string MemoryModel::plain_read(const void* addr, int t,
                                    const ThreadClocks& tc,
                                    std::uint64_t event_seq) {
  ShadowCell& cell = shadow_[addr];
  if (cell.last_write_thread >= 0 && cell.last_write_thread != t &&
      !tc.cur.covers(cell.last_write_thread, cell.last_write_seq)) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "data race: plain read by T%d of a location last written "
                  "by T%d without happens-before",
                  t, cell.last_write_thread);
    return buf;
  }
  cell.readers.emplace_back(t, event_seq);
  return {};
}

std::string MemoryModel::plain_write(const void* addr, int t,
                                     const ThreadClocks& tc,
                                     std::uint64_t event_seq) {
  ShadowCell& cell = shadow_[addr];
  if (cell.last_write_thread >= 0 && cell.last_write_thread != t &&
      !tc.cur.covers(cell.last_write_thread, cell.last_write_seq)) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "data race: plain write by T%d over a write by T%d "
                  "without happens-before",
                  t, cell.last_write_thread);
    return buf;
  }
  for (const auto& [rt, rs] : cell.readers) {
    if (rt != t && !tc.cur.covers(rt, rs)) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "data race: plain write by T%d concurrent with a read "
                    "by T%d",
                    t, rt);
      return buf;
    }
  }
  cell.last_write_thread = t;
  cell.last_write_seq = event_seq;
  cell.readers.clear();
  return {};
}

std::string MemoryModel::name_of(const void* var) const {
  auto it = names_.find(var);
  if (it != names_.end()) return it->second;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "var@%p", var);
  return buf;
}

}  // namespace aces::check
