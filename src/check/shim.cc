// Bridges the atomic-shim hooks (common/atomic_shim.h) to the exploring
// scheduler. Every hook is a no-op passthrough unless the calling OS
// thread is inside check::explore(): the scheduler pointer and the
// current-fiber id are thread_local, so the rest of a model-check build —
// including the full multi-threaded test suite running in the same binary
// — never pays more than one TLS read per atomic operation.
#include "common/atomic_shim.h"

#include "check/scheduler.h"

namespace aces::check {

#if defined(ACES_MODEL_CHECK)
bool active() noexcept { return Scheduler::on_fiber(); }
#endif

std::uint64_t shim_load(const void* var, std::uint64_t latest,
                        std::memory_order order) {
  Scheduler* s = Scheduler::current();
  if (s == nullptr || !Scheduler::on_fiber()) return latest;
  return s->hook_load(var, latest, order);
}

void shim_store(const void* var, std::uint64_t latest, std::uint64_t value,
                std::memory_order order) {
  Scheduler* s = Scheduler::current();
  if (s == nullptr || !Scheduler::on_fiber()) return;
  s->hook_store(var, latest, value, order);
}

std::uint64_t shim_rmw(const void* var, std::uint64_t latest, RmwOp op,
                       std::uint64_t operand, std::memory_order order,
                       bool is_signed, unsigned width_bytes) {
  (void)is_signed;  // two's-complement masking covers signed payloads
  Scheduler* s = Scheduler::current();
  if (s == nullptr || !Scheduler::on_fiber()) return latest;
  return s->hook_rmw(var, latest, static_cast<int>(op), operand, order,
                     width_bytes);
}

bool shim_cas(const void* var, std::uint64_t latest, std::uint64_t expected,
              std::uint64_t desired, std::memory_order order,
              std::uint64_t* observed) {
  Scheduler* s = Scheduler::current();
  if (s == nullptr || !Scheduler::on_fiber()) {
    *observed = latest;
    return latest == expected;
  }
  return s->hook_cas(var, latest, expected, desired, order, observed);
}

void shim_fence(std::memory_order order) {
  Scheduler* s = Scheduler::current();
  if (s == nullptr || !Scheduler::on_fiber()) return;
  s->hook_fence(order);
}

bool shim_park_after_store(const void* var, std::uint64_t latest,
                           std::uint64_t value, std::memory_order order,
                           const void* tag) {
  Scheduler* s = Scheduler::current();
  if (s == nullptr || !Scheduler::on_fiber()) return false;
  return s->hook_park(var, latest, value, order, tag);
}

void shim_notify(const void* tag) {
  Scheduler* s = Scheduler::current();
  if (s == nullptr || !Scheduler::on_fiber()) return;
  s->hook_notify(tag);
}

void shim_yield() {
  Scheduler* s = Scheduler::current();
  if (s == nullptr || !Scheduler::on_fiber()) return;
  s->hook_yield();
}

void shim_name(const void* var, const char* name) {
  // Name registration is useful from the harness body (no fiber yet), so
  // only the scheduler's presence gates it — but exclusively on the
  // exploring OS thread: Scheduler::current() is thread_local, so rings
  // built concurrently by ordinary tests never touch the model's maps.
  Scheduler* s = Scheduler::current();
  if (s == nullptr) return;
  s->hook_name(var, name);
}

void shim_plain_read(const void* addr) {
  Scheduler* s = Scheduler::current();
  if (s == nullptr) return;
  s->hook_plain(addr, /*is_write=*/false);
}

void shim_plain_write(const void* addr) {
  Scheduler* s = Scheduler::current();
  if (s == nullptr) return;
  s->hook_plain(addr, /*is_write=*/true);
}

}  // namespace aces::check
