#include "check/model.h"

#include <cstdio>
#include <cstdlib>

#include "check/scheduler.h"

namespace aces::check {
namespace {

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "model checker misuse: %s\n", what);
  std::abort();
}

}  // namespace

Result explore(const Options& opts, const std::function<void()>& body) {
  Scheduler sched;
  return sched.explore(opts, body);
}

void spawn(std::function<void()> fn) {
  Scheduler* s = Scheduler::current();
  if (s == nullptr) die("spawn() outside explore()");
  s->spawn(std::move(fn));
}

void finally(std::function<void()> fn) {
  Scheduler* s = Scheduler::current();
  if (s == nullptr) die("finally() outside explore()");
  s->add_final(std::move(fn));
}

void fail(const std::string& msg) {
  Scheduler* s = Scheduler::current();
  if (s == nullptr) die("fail() outside explore()");
  if (Scheduler::on_fiber()) {
    s->fail_from_fiber(msg);  // throws, does not return
  }
  s->fail_from_host(msg);
}

}  // namespace aces::check
