// Store-buffer memory model for the bounded checker: simulates C++11
// relaxed/acquire/release visibility so ordering bugs surface that x86's
// strong hardware hides (TSan executes on the host memory model and only
// ever *observes* SC-like interleavings; this model *generates* the weak
// ones).
//
// Representation (one VarState per aces::Atomic address):
//   * the variable's full modification order as a vector of Stores, each
//     carrying {value, writing thread, that thread's event number at the
//     store, and the vector clock the store releases};
//   * per-thread coherence floors `seen[t]` — the newest store index thread
//     t has read or written, which later reads may not go behind
//     (read-read/write-read coherence).
//
// A load by thread t may return any store with index >= max(seen[t],
// hb_floor), where hb_floor is the newest store that happens-before t (a
// superseded store that already happened-before the reader is gone for
// good). Which one it returns is a DFS decision owned by the scheduler.
//
// Clock rules (release/acquire as vector-clock joins, Lamport-style):
//   * release store publishes the thread's current clock; relaxed store
//     publishes the clock as of the thread's last release *fence*
//     (fence_rel), which is exactly the Boehm seqlock's dependency;
//   * acquire load joins the read store's published clock into the reader;
//     relaxed load banks it in acq_pending, which a later acquire *fence*
//     joins — the other half of the seqlock protocol;
//   * RMW reads the newest store (atomic RMWs never read stale) and its
//     store joins the previous head's published clock, continuing the
//     release sequence;
//   * seq_cst is modeled as acquire/release plus read-newest. That is
//     exact for SC-per-location and for the store-buffering litmus the
//     repo's protocols rely on, but deliberately stronger than C++ seq_cst
//     mixed with weaker orders — see docs/model_checking.md ("what the
//     model simplifies").
//
// Plain (non-atomic) memory is race-checked, not value-modeled: Shadow<T>
// (shadow.h) reports every access here, and a read of a location whose last
// write does not happen-before the reader — or a write racing a prior
// unordered read/write — fails the execution (FastTrack-style, exact for
// the <=4 threads a harness spawns).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace aces::check {

inline constexpr int kMaxThreads = 4;

/// Vector clock over fiber event counters. Component t counts thread t's
/// committed operations; joins implement happens-before.
struct Clock {
  std::array<std::uint64_t, kMaxThreads> c{};

  void join(const Clock& o) {
    for (int i = 0; i < kMaxThreads; ++i) {
      if (o.c[i] > c[i]) c[i] = o.c[i];
    }
  }
  /// Does the event (thread u, event number s) happen-before this clock?
  [[nodiscard]] bool covers(int u, std::uint64_t s) const {
    return u < 0 || c[static_cast<std::size_t>(u)] >= s;
  }
};

/// One entry in a variable's modification order.
struct Store {
  std::uint64_t value = 0;
  int thread = -1;        ///< -1: pre-history (initial value seed)
  std::uint64_t seq = 0;  ///< writer's event number at the store
  Clock rel;              ///< clock an acquire reader of this store joins
};

struct VarState {
  std::vector<Store> stores;
  std::array<int, kMaxThreads> seen{};  ///< coherence floor per thread
};

/// Shadow state for one plain-memory location (see shadow.h).
struct ShadowCell {
  int last_write_thread = -1;
  std::uint64_t last_write_seq = 0;
  /// Reads since the last write, as (thread, event number).
  std::vector<std::pair<int, std::uint64_t>> readers;
};

/// Per-thread view of the memory model.
struct ThreadClocks {
  Clock cur;          ///< this thread's happens-before knowledge
  Clock fence_rel;    ///< cur as of the last release fence
  Clock acq_pending;  ///< banked rel-clocks of relaxed-read stores
};

/// The per-execution memory state. The scheduler owns one instance, resets
/// it between executions, and routes every shim hook through it. Methods
/// that need a visibility decision take the chosen index from the scheduler
/// (which owns the DFS); visible_range() reports the legal choices.
class MemoryModel {
 public:
  void reset() {
    vars_.clear();
    shadow_.clear();
    names_.clear();
  }

  /// Ensures `var` exists, seeding its modification order with `latest`
  /// (the production atomic's current value) as a pre-history store that
  /// happens-before everyone.
  VarState& touch(const void* var, std::uint64_t latest);

  /// [lo, hi] indices a load by `t` may legally return. hi is always the
  /// newest store.
  std::pair<int, int> visible_range(const VarState& v, int t,
                                    const ThreadClocks& tc) const;

  /// Commits a load of stores[idx]: coherence floor + clock effects.
  /// Returns the value read.
  std::uint64_t commit_load(VarState& v, int idx, int t, ThreadClocks& tc,
                            std::uint64_t event_seq, bool acquire);

  /// Commits a store of `value`: appends to the modification order.
  void commit_store(VarState& v, std::uint64_t value, int t,
                    const ThreadClocks& tc, std::uint64_t event_seq,
                    bool release);

  /// Commits an RMW: reads the newest store, appends `new_value`,
  /// continues the release sequence. Returns the value read.
  std::uint64_t commit_rmw_read(VarState& v, int t, ThreadClocks& tc,
                                std::uint64_t event_seq, bool acquire);
  void commit_rmw_write(VarState& v, std::uint64_t new_value, int t,
                        const ThreadClocks& tc, std::uint64_t event_seq,
                        bool release);

  void commit_fence(ThreadClocks& tc, bool acquire, bool release);

  /// Bounded-staleness timeout wake: every variable's coherence floor for
  /// `t` jumps to its newest store (one park slice of real time elapsed;
  /// hardware has propagated everything). No happens-before is created.
  void advance_floors_to_latest(int t);

  /// True when thread `t`'s coherence floor already sits at the newest
  /// store of every variable — a timeout wake (whose only effect is
  /// advance_floors_to_latest) could not change anything it reads.
  [[nodiscard]] bool floors_at_latest(int t) const;

  /// Plain-memory access checks; return empty string or a race description.
  std::string plain_read(const void* addr, int t, const ThreadClocks& tc,
                         std::uint64_t event_seq);
  std::string plain_write(const void* addr, int t, const ThreadClocks& tc,
                          std::uint64_t event_seq);

  void set_name(const void* var, const char* name) { names_[var] = name; }
  [[nodiscard]] std::string name_of(const void* var) const;

 private:
  std::map<const void*, VarState> vars_;
  std::map<const void*, ShadowCell> shadow_;
  std::map<const void*, std::string> names_;
};

}  // namespace aces::check
