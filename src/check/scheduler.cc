#include "check/scheduler.h"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <utility>

#include "common/atomic_shim.h"

namespace aces::check {
namespace {

// Internal-invariant assert. Deliberately not ACES_CHECK: the checker
// library must not depend on aces_common (aces_common links *us* in
// model-check builds).
#define ACES_MC_INTERNAL(cond)                                            \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "model checker internal error: %s @ %s:%d\n",  \
                   #cond, __FILE__, __LINE__);                            \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

constexpr std::size_t kFiberStackBytes = 256 * 1024;

// All exploration state lives on one OS thread; these are thread_local so
// that unrelated threads in the same process (the rest of the test suite)
// see "no scheduler" and take the production passthrough.
thread_local Scheduler* t_scheduler = nullptr;
thread_local int t_fiber = -1;  // id of the fiber running right now

bool is_acquire(std::memory_order o) {
  return o == std::memory_order_acquire || o == std::memory_order_consume ||
         o == std::memory_order_acq_rel || o == std::memory_order_seq_cst;
}
bool is_release(std::memory_order o) {
  return o == std::memory_order_release || o == std::memory_order_acq_rel ||
         o == std::memory_order_seq_cst;
}

std::uint64_t width_mask(unsigned width) {
  return width >= 8 ? ~0ULL : (1ULL << (8 * width)) - 1;
}

const char* kind_name(OpKind k) {
  switch (k) {
    case OpKind::kStart: return "start";
    case OpKind::kLoad: return "load";
    case OpKind::kStore: return "store";
    case OpKind::kRmw: return "rmw";
    case OpKind::kCas: return "cas";
    case OpKind::kFence: return "fence";
    case OpKind::kYield: return "yield";
    case OpKind::kPark: return "park";
    case OpKind::kTimeout: return "timeout-wake";
    case OpKind::kWake: return "notify-wake";
    case OpKind::kNotify: return "notify";
  }
  return "?";
}

const char* order_name(std::memory_order o) {
  switch (o) {
    case std::memory_order_relaxed: return "relaxed";
    case std::memory_order_consume: return "consume";
    case std::memory_order_acquire: return "acquire";
    case std::memory_order_release: return "release";
    case std::memory_order_acq_rel: return "acq_rel";
    case std::memory_order_seq_cst: return "seq_cst";
  }
  return "?";
}

}  // namespace

Scheduler::Scheduler() = default;
Scheduler::~Scheduler() = default;

Scheduler* Scheduler::current() { return t_scheduler; }
bool Scheduler::on_fiber() { return t_scheduler != nullptr && t_fiber >= 0; }

// ---------------------------------------------------------------------------
// Exploration driver

Result Scheduler::explore(const Options& opts,
                          const std::function<void()>& body) {
  ACES_MC_INTERNAL(t_scheduler == nullptr);  // not reentrant
  t_scheduler = this;
  opts_ = opts;
  result_ = Result{};
  nodes_.clear();
  sleep_active_ = opts.sleep_sets && opts.preemption_bound < 0;

  while (true) {
    run_one(body);
    ++result_.executions;
    if (!failure_msg_.empty()) {
      result_.ok = false;
      result_.failure = failure_msg_;
      result_.trace = render_trace();
      break;
    }
    if (result_.executions >= opts.max_executions) {
      result_.hit_execution_cap = true;
      result_.ok = true;
      break;
    }
    if (!backtrack()) {
      result_.ok = true;
      break;
    }
  }
  fibers_.clear();
  finals_.clear();
  t_scheduler = nullptr;
  return result_;
}

void Scheduler::run_one(const std::function<void()>& body) {
  mm_.reset();
  fibers_.clear();
  finals_.clear();
  trace_.clear();
  depth_ = 0;
  prev_ = -1;
  preempts_ = 0;
  steps_ = 0;
  running_sleep_.clear();
  redundant_ = false;
  abort_ = false;
  failure_msg_.clear();

  in_body_ = true;
  body();
  in_body_ = false;

  while (failure_msg_.empty() && !redundant_) {
    bool any_alive = false;
    for (const Fiber& f : fibers_) {
      if (f.st != Fiber::St::kDone) any_alive = true;
    }
    if (!any_alive) break;
    step();
    if (++steps_ > opts_.max_steps_per_execution) {
      fail_from_host(
          "step cap exceeded (livelock, or a harness too large to bound)");
    }
  }
  if (!failure_msg_.empty() || redundant_) abort_live_fibers();

  if (failure_msg_.empty() && !redundant_) {
    in_finals_ = true;
    try {
      for (const auto& fn : finals_) fn();
    } catch (const AbortExecution&) {
      // fail_from_host() recorded the message.
    }
    in_finals_ = false;
  }
  // Destroy fiber closures (and with them the harness's shared state)
  // before the next execution rebuilds everything.
  fibers_.clear();
  finals_.clear();
}

bool Scheduler::backtrack() {
  while (!nodes_.empty()) {
    Node& n = nodes_.back();
    if (!n.alts.empty()) {
      if (n.sched) {
        n.tried.push_back(n.chosen);
        n.chosen = n.alts.front();
        n.alts.erase(n.alts.begin());
        // Sleep set handed to the successor: everything already explored
        // here stays asleep as long as it is independent of the new choice
        // (Godefroid's sleep-set update rule).
        n.child_sleep.clear();
        if (sleep_active_) {
          const OpDesc& chosen_op = n.pending.at(n.chosen);
          for (int t : n.sleep) {
            auto it = n.pending.find(t);
            if (it != n.pending.end() &&
                op_independent(it->second, chosen_op)) {
              n.child_sleep.insert(t);
            }
          }
          for (int t : n.tried) {
            auto it = n.pending.find(t);
            if (it != n.pending.end() &&
                op_independent(it->second, chosen_op)) {
              n.child_sleep.insert(t);
            }
          }
        }
      } else {
        n.chosen = n.alts.front();
        n.alts.erase(n.alts.begin());
      }
      return true;
    }
    nodes_.pop_back();
  }
  return false;
}

// ---------------------------------------------------------------------------
// One step: pick an enabled thread, commit its pending operation.

OpDesc Scheduler::enabled_op(const Fiber& f) const {
  switch (f.st) {
    case Fiber::St::kNotStarted: {
      OpDesc d;
      d.kind = OpKind::kStart;
      return d;
    }
    case Fiber::St::kRunnable:
      return f.pending;
    case Fiber::St::kParked: {
      OpDesc d;
      d.kind = OpKind::kTimeout;
      return d;
    }
    case Fiber::St::kDone:
      break;
  }
  ACES_MC_INTERNAL(false);
  return OpDesc{};
}

void Scheduler::step() {
  std::vector<int> enabled;
  for (const Fiber& f : fibers_) {
    switch (f.st) {
      case Fiber::St::kNotStarted:
      case Fiber::St::kRunnable:
        enabled.push_back(f.id);
        break;
      case Fiber::St::kParked:
        if (f.timeout_budget > 0) enabled.push_back(f.id);
        break;
      case Fiber::St::kDone:
        break;
    }
  }
  if (enabled.empty()) {
    // Every live fiber is parked with its timeout budget spent. The parks
    // the shim models are TIMED (bounded slices), so in the real system a
    // sleeper always returns eventually — the budget bounds how much
    // timeout branching the search explores, not liveness. A fiber whose
    // coherence floors lag some variable's newest store gets a forced
    // timeout wake: the wake advances its floors to latest, so its
    // re-check runs against the true current state and either progresses
    // or proves the blockage real. A fiber already at latest would re-read
    // exactly what made it park — waking it is pointless, and when that
    // holds for every sleeper the state is a genuine deadlock. (A protocol
    // whose sleepers forever re-park each other fails via the step cap as
    // a livelock instead.)
    for (const Fiber& f : fibers_) {
      if (f.st == Fiber::St::kParked && !mm_.floors_at_latest(f.id)) {
        enabled.push_back(f.id);
      }
    }
  }
  if (enabled.empty()) {
    fail_from_host(
        "deadlock: every live thread is parked with no timeout budget "
        "left (lost wakeup?)");
    return;
  }
  const int c = choose_thread(enabled);
  if (c < 0) return;  // sleep-set blocked: execution is redundant
  // A switch costs preemption budget only when the displaced thread could
  // have kept running (kRunnable). Switching away from a thread that just
  // parked or finished is a voluntary yield.
  const bool preempted = prev_ >= 0 && prev_ != c &&
                         fibers_[static_cast<std::size_t>(prev_)].st ==
                             Fiber::St::kRunnable;
  if (preempted) ++preempts_;
  commit(c);
  prev_ = c;
  ++result_.transitions;
}

int Scheduler::choose_thread(const std::vector<int>& enabled) {
  if (depth_ < nodes_.size()) {
    Node& n = nodes_[depth_];
    ACES_MC_INTERNAL(n.sched);
    ++depth_;
    running_sleep_ = n.child_sleep;
    return n.chosen;
  }

  // Candidate order: keep running the previous thread when possible (the
  // zero-preemption schedule comes first), then ascending id.
  std::vector<int> candidates;
  bool prev_enabled = false;
  for (int id : enabled) {
    if (id == prev_) prev_enabled = true;
  }
  if (prev_enabled) candidates.push_back(prev_);
  for (int id : enabled) {
    if (id != prev_) candidates.push_back(id);
  }

  if (sleep_active_) {
    std::vector<int> awake;
    for (int id : candidates) {
      if (running_sleep_.count(id) == 0) awake.push_back(id);
    }
    if (awake.empty()) {
      // Every enabled transition is asleep: this execution is equivalent
      // to one already explored. End it here.
      redundant_ = true;
      return -1;
    }
    candidates = std::move(awake);
  }

  if (opts_.preemption_bound >= 0) {
    const bool prev_runnable =
        prev_ >= 0 && fibers_[static_cast<std::size_t>(prev_)].st ==
                          Fiber::St::kRunnable;
    std::vector<int> within;
    for (int id : candidates) {
      const int cost = (prev_runnable && id != prev_) ? 1 : 0;
      if (preempts_ + cost <= opts_.preemption_bound) within.push_back(id);
    }
    ACES_MC_INTERNAL(!within.empty());  // running prev_ always costs 0
    candidates = std::move(within);
  }

  Node n;
  n.sched = true;
  n.sleep = running_sleep_;
  n.preempts_before = preempts_;
  for (int id : enabled) {
    n.pending[id] = enabled_op(fibers_[static_cast<std::size_t>(id)]);
  }
  n.chosen = candidates.front();
  n.alts.assign(candidates.begin() + 1, candidates.end());
  if (sleep_active_) {
    const OpDesc& chosen_op = n.pending.at(n.chosen);
    for (int t : n.sleep) {
      auto it = n.pending.find(t);
      if (it != n.pending.end() && op_independent(it->second, chosen_op)) {
        n.child_sleep.insert(t);
      }
    }
  }
  nodes_.push_back(std::move(n));
  ++depth_;
  running_sleep_ = nodes_.back().child_sleep;
  return nodes_.back().chosen;
}

int Scheduler::choose_value(int lo, int hi) {
  if (depth_ < nodes_.size()) {
    Node& n = nodes_[depth_];
    ACES_MC_INTERNAL(!n.sched);
    ++depth_;
    return n.chosen;
  }
  Node n;
  n.sched = false;
  n.chosen = hi;  // the newest store first: the SC-like execution leads
  for (int i = hi - 1; i >= lo; --i) n.alts.push_back(i);
  nodes_.push_back(std::move(n));
  ++depth_;
  ++result_.load_choices;
  return hi;
}

void Scheduler::commit(int c) {
  Fiber& f = fibers_[static_cast<std::size_t>(c)];
  const OpDesc op = enabled_op(f);
  switch (op.kind) {
    case OpKind::kStart:
      record(c, op, 0, -1, false);
      resume(f);
      return;
    case OpKind::kLoad:
      do_load(f);
      resume(f);
      return;
    case OpKind::kStore:
      do_store(f);
      resume(f);
      return;
    case OpKind::kRmw:
      do_rmw(f);
      resume(f);
      return;
    case OpKind::kCas:
      do_cas(f);
      resume(f);
      return;
    case OpKind::kFence:
      ++f.tc.cur.c[static_cast<std::size_t>(f.id)];
      mm_.commit_fence(f.tc, is_acquire(op.order), is_release(op.order));
      record(c, op, 0, -1, false);
      resume(f);
      return;
    case OpKind::kYield:
      record(c, op, 0, -1, false);
      resume(f);
      return;
    case OpKind::kPark: {
      // Store + park as one transition (the real code stores the waiter
      // flag under the park mutex that the notifier must also take).
      ++f.tc.cur.c[static_cast<std::size_t>(f.id)];
      VarState& v = mm_.touch(op.var, op.latest);
      mm_.commit_store(v, op.a, f.id, f.tc,
                       f.tc.cur.c[static_cast<std::size_t>(f.id)],
                       is_release(op.order));
      f.st = Fiber::St::kParked;
      f.park_tag = op.tag;
      record(c, op, op.a, -1, false);
      return;  // no resume: the fiber sleeps inside the park hook
    }
    case OpKind::kTimeout: {
      // One park slice elapsed: the sleeper re-checks with fresh eyes
      // (coherence floors advance — bounded staleness), but gains no
      // happens-before edge. Forced wakes (deadlock rescue in step())
      // arrive with the budget already at zero — don't go negative.
      if (f.timeout_budget > 0) --f.timeout_budget;
      ++result_.timeout_wakes;
      mm_.advance_floors_to_latest(f.id);
      f.st = Fiber::St::kRunnable;
      f.op_flag = false;
      record(c, op, 0, -1, false);
      resume(f);
      return;
    }
    case OpKind::kWake:
      f.op_flag = true;
      record(c, op, 0, -1, true);
      resume(f);
      return;
    case OpKind::kNotify: {
      ++f.tc.cur.c[static_cast<std::size_t>(f.id)];
      for (Fiber& p : fibers_) {
        if (p.st == Fiber::St::kParked && p.park_tag == op.tag) {
          p.st = Fiber::St::kRunnable;
          OpDesc wake;
          wake.kind = OpKind::kWake;
          p.pending = wake;
          // The notifier's clock transfers: mutex hand-off plus condvar.
          p.tc.cur.join(f.tc.cur);
        }
      }
      record(c, op, 0, -1, false);
      resume(f);
      return;
    }
  }
  ACES_MC_INTERNAL(false);
}

void Scheduler::do_load(Fiber& f) {
  const OpDesc& op = f.pending;
  ++f.tc.cur.c[static_cast<std::size_t>(f.id)];
  VarState& v = mm_.touch(op.var, op.latest);
  const auto [lo, hi] = mm_.visible_range(v, f.id, f.tc);
  int idx = hi;
  if (op.order != std::memory_order_seq_cst && lo < hi) {
    idx = choose_value(lo, hi);
  }
  f.op_result = mm_.commit_load(v, idx, f.id, f.tc,
                                f.tc.cur.c[static_cast<std::size_t>(f.id)],
                                is_acquire(op.order));
  record(f.id, op, f.op_result, idx, false);
}

void Scheduler::do_store(Fiber& f) {
  const OpDesc& op = f.pending;
  ++f.tc.cur.c[static_cast<std::size_t>(f.id)];
  VarState& v = mm_.touch(op.var, op.latest);
  mm_.commit_store(v, op.a, f.id, f.tc,
                   f.tc.cur.c[static_cast<std::size_t>(f.id)],
                   is_release(op.order));
  record(f.id, op, op.a, -1, false);
}

void Scheduler::do_rmw(Fiber& f) {
  const OpDesc& op = f.pending;
  ++f.tc.cur.c[static_cast<std::size_t>(f.id)];
  VarState& v = mm_.touch(op.var, op.latest);
  const std::uint64_t old = mm_.commit_rmw_read(
      v, f.id, f.tc, f.tc.cur.c[static_cast<std::size_t>(f.id)],
      is_acquire(op.order));
  const std::uint64_t mask = width_mask(op.width);
  std::uint64_t next = 0;
  switch (static_cast<RmwOp>(op.rmw)) {
    case RmwOp::kAdd: next = (old + op.a) & mask; break;
    case RmwOp::kSub: next = (old - op.a) & mask; break;
    case RmwOp::kExchange: next = op.a & mask; break;
  }
  mm_.commit_rmw_write(v, next, f.id, f.tc,
                       f.tc.cur.c[static_cast<std::size_t>(f.id)],
                       is_release(op.order));
  f.op_result = old;
  record(f.id, op, old, -1, false);
}

void Scheduler::do_cas(Fiber& f) {
  const OpDesc& op = f.pending;
  ++f.tc.cur.c[static_cast<std::size_t>(f.id)];
  VarState& v = mm_.touch(op.var, op.latest);
  const std::uint64_t old = mm_.commit_rmw_read(
      v, f.id, f.tc, f.tc.cur.c[static_cast<std::size_t>(f.id)],
      is_acquire(op.order));
  const bool ok = old == op.b;
  if (ok) {
    mm_.commit_rmw_write(v, op.a, f.id, f.tc,
                         f.tc.cur.c[static_cast<std::size_t>(f.id)],
                         is_release(op.order));
  }
  f.op_result = old;
  f.op_flag = ok;
  record(f.id, op, old, -1, ok);
}

// ---------------------------------------------------------------------------
// Independence (sleep sets)

bool Scheduler::op_independent(const OpDesc& x, const OpDesc& y) {
  auto local = [](const OpDesc& d) {
    return d.kind == OpKind::kFence || d.kind == OpKind::kYield ||
           d.kind == OpKind::kWake || d.kind == OpKind::kStart;
  };
  if (local(x) || local(y)) return true;
  auto global = [](const OpDesc& d) {
    // Parking, notification and timeout wakeups touch scheduler state and
    // (for timeouts) every variable's coherence floor: conservatively
    // dependent with everything.
    return d.kind == OpKind::kPark || d.kind == OpKind::kNotify ||
           d.kind == OpKind::kTimeout;
  };
  if (global(x) || global(y)) return false;
  if (x.var != y.var) return true;
  return x.kind == OpKind::kLoad && y.kind == OpKind::kLoad;
}

// ---------------------------------------------------------------------------
// Fibers

void Scheduler::trampoline() {
  t_scheduler->run_current_fiber();
}

void Scheduler::run_current_fiber() {
  Fiber& f = fibers_[static_cast<std::size_t>(t_fiber)];
  try {
    f.fn();
  } catch (const AbortExecution&) {
    // Unwound by the scheduler; nothing to do.
  }
  f.st = Fiber::St::kDone;
  swapcontext(&f.ctx, &host_ctx_);
  ACES_MC_INTERNAL(false);  // a done fiber is never resumed
}

void Scheduler::resume(Fiber& f) {
  if (f.st == Fiber::St::kNotStarted) {
    f.stack.resize(kFiberStackBytes);
    getcontext(&f.ctx);
    f.ctx.uc_stack.ss_sp = f.stack.data();
    f.ctx.uc_stack.ss_size = f.stack.size();
    f.ctx.uc_link = &host_ctx_;
    makecontext(&f.ctx, &Scheduler::trampoline, 0);
    f.st = Fiber::St::kRunnable;
  }
  const int saved = t_fiber;
  t_fiber = f.id;
  swapcontext(&host_ctx_, &f.ctx);
  t_fiber = saved;
}

void Scheduler::announce(Fiber& f, const OpDesc& op) {
  f.pending = op;
  swapcontext(&f.ctx, &host_ctx_);
  if (abort_) throw AbortExecution{};
}

void Scheduler::abort_live_fibers() {
  abort_ = true;
  for (Fiber& f : fibers_) {
    if (f.st == Fiber::St::kRunnable || f.st == Fiber::St::kParked) {
      // Resuming makes the announce/park hook throw AbortExecution, which
      // unwinds the fiber's stack (running destructors) back to its entry.
      resume(f);
      ACES_MC_INTERNAL(f.st == Fiber::St::kDone);
    }
  }
}

// ---------------------------------------------------------------------------
// model.h entry points

void Scheduler::spawn(std::function<void()> fn) {
  ACES_MC_INTERNAL(in_body_);
  if (fibers_.size() >= static_cast<std::size_t>(kMaxThreads)) {
    fail_from_host("spawn: more threads than kMaxThreads");
    return;
  }
  Fiber f;
  f.id = static_cast<int>(fibers_.size());
  f.fn = std::move(fn);
  f.timeout_budget = opts_.park_timeout_budget;
  fibers_.push_back(std::move(f));
}

void Scheduler::add_final(std::function<void()> fn) {
  ACES_MC_INTERNAL(in_body_);
  finals_.push_back(std::move(fn));
}

void Scheduler::fail_from_fiber(const std::string& msg) {
  if (failure_msg_.empty()) failure_msg_ = msg;
  throw AbortExecution{};
}

void Scheduler::fail_from_host(const std::string& msg) {
  if (failure_msg_.empty()) failure_msg_ = msg;
  // From a finally() oracle, unwind the rest of the callback (its later
  // statements may rely on the assertion that just failed); run_one
  // catches. From the stepping loop (deadlock / step cap), recording is
  // enough — the loop checks failure_msg_ every iteration.
  if (in_finals_) throw AbortExecution{};
}

// ---------------------------------------------------------------------------
// Shim hooks (fiber side)

std::uint64_t Scheduler::hook_load(const void* var, std::uint64_t latest,
                                   std::memory_order order) {
  Fiber& f = fibers_[static_cast<std::size_t>(t_fiber)];
  if (abort_) {
    if (std::uncaught_exceptions() == 0) throw AbortExecution{};
    return latest;  // passthrough during unwinding destructors
  }
  OpDesc op;
  op.kind = OpKind::kLoad;
  op.var = var;
  op.order = order;
  op.latest = latest;
  announce(f, op);
  return f.op_result;
}

void Scheduler::hook_store(const void* var, std::uint64_t latest,
                           std::uint64_t value, std::memory_order order) {
  Fiber& f = fibers_[static_cast<std::size_t>(t_fiber)];
  if (abort_) {
    if (std::uncaught_exceptions() == 0) throw AbortExecution{};
    return;
  }
  OpDesc op;
  op.kind = OpKind::kStore;
  op.var = var;
  op.order = order;
  op.latest = latest;
  op.a = value;
  announce(f, op);
}

std::uint64_t Scheduler::hook_rmw(const void* var, std::uint64_t latest,
                                  int rmw, std::uint64_t operand,
                                  std::memory_order order, unsigned width) {
  Fiber& f = fibers_[static_cast<std::size_t>(t_fiber)];
  if (abort_) {
    if (std::uncaught_exceptions() == 0) throw AbortExecution{};
    return latest;
  }
  OpDesc op;
  op.kind = OpKind::kRmw;
  op.var = var;
  op.order = order;
  op.latest = latest;
  op.a = operand;
  op.rmw = rmw;
  op.width = width;
  announce(f, op);
  return f.op_result;
}

bool Scheduler::hook_cas(const void* var, std::uint64_t latest,
                         std::uint64_t expected, std::uint64_t desired,
                         std::memory_order order, std::uint64_t* observed) {
  Fiber& f = fibers_[static_cast<std::size_t>(t_fiber)];
  if (abort_) {
    if (std::uncaught_exceptions() == 0) throw AbortExecution{};
    *observed = latest;
    return latest == expected;
  }
  OpDesc op;
  op.kind = OpKind::kCas;
  op.var = var;
  op.order = order;
  op.latest = latest;
  op.a = desired;
  op.b = expected;
  announce(f, op);
  *observed = f.op_result;
  return f.op_flag;
}

void Scheduler::hook_fence(std::memory_order order) {
  Fiber& f = fibers_[static_cast<std::size_t>(t_fiber)];
  if (abort_) {
    if (std::uncaught_exceptions() == 0) throw AbortExecution{};
    return;
  }
  OpDesc op;
  op.kind = OpKind::kFence;
  op.order = order;
  announce(f, op);
}

bool Scheduler::hook_park(const void* var, std::uint64_t latest,
                          std::uint64_t value, std::memory_order order,
                          const void* tag) {
  Fiber& f = fibers_[static_cast<std::size_t>(t_fiber)];
  if (abort_) {
    if (std::uncaught_exceptions() == 0) throw AbortExecution{};
    return false;
  }
  OpDesc op;
  op.kind = OpKind::kPark;
  op.var = var;
  op.order = order;
  op.latest = latest;
  op.a = value;
  op.tag = tag;
  announce(f, op);
  return f.op_flag;
}

void Scheduler::hook_notify(const void* tag) {
  Fiber& f = fibers_[static_cast<std::size_t>(t_fiber)];
  if (abort_) {
    if (std::uncaught_exceptions() == 0) throw AbortExecution{};
    return;
  }
  OpDesc op;
  op.kind = OpKind::kNotify;
  op.tag = tag;
  announce(f, op);
}

void Scheduler::hook_yield() {
  Fiber& f = fibers_[static_cast<std::size_t>(t_fiber)];
  if (abort_) {
    if (std::uncaught_exceptions() == 0) throw AbortExecution{};
    return;
  }
  OpDesc op;
  op.kind = OpKind::kYield;
  announce(f, op);
}

void Scheduler::hook_name(const void* var, const char* name) {
  mm_.set_name(var, name);
}

void Scheduler::hook_plain(const void* addr, bool is_write) {
  if (t_fiber < 0) return;  // body or finally context: single-threaded
  Fiber& f = fibers_[static_cast<std::size_t>(t_fiber)];
  if (abort_) return;
  ++f.tc.cur.c[static_cast<std::size_t>(f.id)];
  const std::uint64_t seq = f.tc.cur.c[static_cast<std::size_t>(f.id)];
  const std::string err = is_write
                              ? mm_.plain_write(addr, f.id, f.tc, seq)
                              : mm_.plain_read(addr, f.id, f.tc, seq);
  if (!err.empty()) fail_from_fiber(err);
}

// ---------------------------------------------------------------------------
// Trace rendering

void Scheduler::record(int thread, const OpDesc& op, std::uint64_t value,
                       int idx, bool flag) {
  TraceStep s;
  s.thread = thread;
  s.op = op;
  s.value = value;
  s.store_idx = idx;
  s.flag = flag;
  trace_.push_back(s);
}

std::string Scheduler::render_trace() const {
  std::string out;
  char line[256];
  int i = 0;
  for (const TraceStep& s : trace_) {
    const std::string var =
        s.op.var != nullptr ? mm_.name_of(s.op.var) : std::string();
    switch (s.op.kind) {
      case OpKind::kLoad:
        std::snprintf(line, sizeof(line),
                      "#%-4d T%d  load   %-20s = %llu  (%s, store#%d)\n", i,
                      s.thread, var.c_str(),
                      static_cast<unsigned long long>(s.value),
                      order_name(s.op.order), s.store_idx);
        break;
      case OpKind::kStore:
      case OpKind::kPark:
        std::snprintf(line, sizeof(line),
                      "#%-4d T%d  %-6s %-20s = %llu  (%s)\n", i, s.thread,
                      kind_name(s.op.kind), var.c_str(),
                      static_cast<unsigned long long>(s.value),
                      order_name(s.op.order));
        break;
      case OpKind::kRmw:
        std::snprintf(line, sizeof(line),
                      "#%-4d T%d  rmw    %-20s read %llu  (%s)\n", i,
                      s.thread, var.c_str(),
                      static_cast<unsigned long long>(s.value),
                      order_name(s.op.order));
        break;
      case OpKind::kCas:
        std::snprintf(line, sizeof(line),
                      "#%-4d T%d  cas    %-20s read %llu %s  (%s)\n", i,
                      s.thread, var.c_str(),
                      static_cast<unsigned long long>(s.value),
                      s.flag ? "ok" : "failed", order_name(s.op.order));
        break;
      case OpKind::kFence:
        std::snprintf(line, sizeof(line), "#%-4d T%d  fence  (%s)\n", i,
                      s.thread, order_name(s.op.order));
        break;
      default:
        std::snprintf(line, sizeof(line), "#%-4d T%d  %s\n", i, s.thread,
                      kind_name(s.op.kind));
        break;
    }
    out += line;
    ++i;
  }
  return out;
}

#undef ACES_MC_INTERNAL

}  // namespace aces::check
