// Public API of the bounded concurrency model checker (docs/model_checking.md).
//
// A checked harness is a body that builds fresh shared state and registers
// 2-3 small thread bodies:
//
//   auto r = check::explore(opts, [] {
//     auto ring = std::make_shared<runtime::SpscRing<check::Shadow<u64>>>(2);
//     check::spawn([ring] { ring->try_push(41); ring->close(); });
//     check::spawn([ring] { auto v = ring->pop_wait(1h); ... });
//     check::finally([ring] { MC_CHECK(ring->size() == 0, "drained"); });
//   });
//   ASSERT_TRUE(r.ok) << r.failure << "\n" << r.trace;
//   ASSERT_FALSE(r.hit_execution_cap);  // bounds exhausted, not sampled
//
// explore() re-runs the body once per execution, enumerating by DFS every
// schedule decision (which thread commits its announced operation next) and
// every load-visibility decision (which unsuperseded prior store a
// relaxed/acquire load returns, per the store-buffer model in memory.h).
// Capture shared state in shared_ptrs: the body returns before the fibers
// run. The whole exploration runs on the calling OS thread — thread bodies
// are cooperative fibers that switch at every shim operation — so harness
// state needs no real synchronization beyond the algorithm under test.
//
// Exploration is deterministic: two runs of the same harness visit the same
// executions in the same order (the acceptance self-test in
// tests/check/explorer_test.cc re-runs every harness and compares counts).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace aces::check {

struct Options {
  /// Max context switches away from a still-enabled thread (Musuvathi &
  /// Qadeer preemption bounding); -1 explores the full interleaving space.
  /// Bugs in small protocols near-universally need <= 2 preemptions; the
  /// checked harnesses use 3 (docs/model_checking.md discusses the trade).
  int preemption_bound = 3;
  /// Sleep-set (Godefroid) redundancy pruning. Only applied when
  /// preemption_bound < 0: under a bound, pruning an interleaving whose
  /// Mazurkiewicz representative exceeds the bound would lose coverage.
  bool sleep_sets = true;
  /// Hard caps: exploration stops (hit_execution_cap) rather than run away.
  /// A harness that trips them is too big — shrink it.
  long max_executions = 2000000;
  int max_steps_per_execution = 20000;
  /// Timeout wakeups each fiber may take per execution while parked. A
  /// timeout-wake models one elapsed park slice (SpscRing::kParkSliceNs):
  /// the sleeper re-checks with its visibility floors advanced to the
  /// newest stores (bounded staleness — real hardware propagates stores
  /// within a slice). 0 forbids timeouts, so any missed wakeup that the
  /// bounded-slice design would absorb becomes a reported deadlock.
  int park_timeout_budget = 2;
};

struct Result {
  bool ok = false;
  /// Complete executions explored (a sleep-set-pruned prefix counts too).
  long executions = 0;
  /// Total committed transitions across all executions.
  long long transitions = 0;
  /// Load-visibility decision points that had more than one option.
  long long load_choices = 0;
  /// Park wakeups by timeout (vs notify) across all executions.
  long timeout_wakes = 0;
  bool hit_execution_cap = false;
  std::string failure;  ///< empty iff ok
  std::string trace;    ///< rendered interleaving of the failing execution
};

/// Runs `body` under the instrumented scheduler until the decision space is
/// exhausted, a failure is found, or a cap is hit. Not reentrant; one
/// exploration per process at a time (harnesses are sequential tests).
Result explore(const Options& opts, const std::function<void()>& body);

/// Registers a thread body for the current execution. Call from explore()'s
/// body (before the fibers start) only.
void spawn(std::function<void()> fn);

/// Registers a post-condition callback run after every fiber of an
/// execution completes (inactive context: atomics read their final values).
/// May call fail().
void finally(std::function<void()> fn);

/// Fails the current execution with `msg`; explore() stops, renders the
/// interleaving trace, and returns ok=false. Callable from a fiber or a
/// finally() callback. Does not return when called from a fiber.
void fail(const std::string& msg);

/// fail() unless `cond`. The harness-side assert.
#define ACES_MC_CHECK(cond, msg)                     \
  do {                                               \
    if (!(cond)) ::aces::check::fail((msg));         \
  } while (0)

}  // namespace aces::check
