// The explorer behind check::explore() (model.h): cooperative ucontext
// fibers for thread bodies, a DFS over schedule and load-visibility
// decisions with stateless replay, sleep-set pruning (Godefroid) for
// unbounded runs, and preemption bounding (Musuvathi & Qadeer) for the
// rest. One instance per exploration; everything runs on the calling OS
// thread.
//
// The announce/commit split: a fiber that reaches a shim operation records
// it as `pending` and suspends. The scheduler therefore always sees every
// enabled thread's NEXT operation before deciding who runs — which is what
// the sleep-set independence check needs — and commits the chosen
// operation itself (including the load-visibility decision) before
// resuming the fiber.
//
// A committed step also runs the fiber's code up to its next announce;
// that tail may touch plain shared memory (e.g. a ring slot). Sleep sets
// stay sound anyway: racy plain accesses are detected symmetrically in
// either order (MemoryModel::plain_*), and non-racy ones are
// happens-before-ordered, which independence-respecting commutation
// preserves (the hb chain runs through same-variable atomic ops, which are
// never treated as independent).
#pragma once

#include <ucontext.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "check/memory.h"
#include "check/model.h"

namespace aces::check {

enum class OpKind {
  kStart,    // run a not-yet-started fiber to its first announce
  kLoad,
  kStore,
  kRmw,
  kCas,
  kFence,
  kYield,
  kPark,     // store + park, one transition (Atomic::park_after_store)
  kTimeout,  // budgeted wakeup of a parked fiber (one park slice elapsed)
  kWake,     // resume a fiber that notify() made runnable
  kNotify,
};

struct OpDesc {
  OpKind kind = OpKind::kStart;
  const void* var = nullptr;
  std::memory_order order = std::memory_order_seq_cst;
  std::uint64_t latest = 0;  ///< production value, seeds the store history
  std::uint64_t a = 0;       ///< store value / RMW operand / CAS desired
  std::uint64_t b = 0;       ///< CAS expected
  int rmw = 0;               ///< RmwOp as int
  unsigned width = 8;        ///< payload width in bytes (masks RMW math)
  const void* tag = nullptr; ///< park/notify channel
};

/// Thrown into fibers to unwind them when an execution ends early (failure
/// elsewhere, or a sleep-set-redundant prefix). Caught at the fiber entry.
struct AbortExecution {};

class Scheduler {
 public:
  Scheduler();
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  Result explore(const Options& opts, const std::function<void()>& body);

  // model.h entry points (valid during explore()).
  void spawn(std::function<void()> fn);
  void add_final(std::function<void()> fn);
  [[noreturn]] void fail_from_fiber(const std::string& msg);
  void fail_from_host(const std::string& msg);

  // Shim hooks (called on a fiber; see shim.cc).
  std::uint64_t hook_load(const void* var, std::uint64_t latest,
                          std::memory_order order);
  void hook_store(const void* var, std::uint64_t latest, std::uint64_t value,
                  std::memory_order order);
  std::uint64_t hook_rmw(const void* var, std::uint64_t latest, int op,
                         std::uint64_t operand, std::memory_order order,
                         unsigned width);
  bool hook_cas(const void* var, std::uint64_t latest, std::uint64_t expected,
                std::uint64_t desired, std::memory_order order,
                std::uint64_t* observed);
  void hook_fence(std::memory_order order);
  bool hook_park(const void* var, std::uint64_t latest, std::uint64_t value,
                 std::memory_order order, const void* tag);
  void hook_notify(const void* tag);
  void hook_yield();
  void hook_name(const void* var, const char* name);
  void hook_plain(const void* addr, bool is_write);

  /// The scheduler driving the calling OS thread right now, if any.
  static Scheduler* current();
  /// The fiber running on the calling OS thread right now, if any.
  static bool on_fiber();

 private:
  struct Fiber {
    int id = 0;
    std::function<void()> fn;
    ucontext_t ctx{};
    std::vector<char> stack;
    enum class St { kNotStarted, kRunnable, kParked, kDone } st = St::kNotStarted;
    ThreadClocks tc;
    OpDesc pending;
    const void* park_tag = nullptr;
    int timeout_budget = 0;
    std::uint64_t op_result = 0;  ///< value handed back to the hook
    bool op_flag = false;         ///< CAS success / park-was-notified
  };

  struct TraceStep {
    int thread = 0;
    OpDesc op;
    std::uint64_t value = 0;  ///< load result / stored value
    int store_idx = -1;       ///< which store a load read
    bool flag = false;        ///< CAS success / park notified
  };

  /// One DFS decision. Schedule nodes choose a thread; value nodes choose
  /// which visible store a load returns.
  struct Node {
    bool sched = true;
    int chosen = -1;
    std::vector<int> alts;  ///< untried alternatives, in exploration order
    // Schedule nodes only:
    std::vector<int> tried;        ///< fully explored threads (sleep sets)
    std::map<int, OpDesc> pending; ///< enabled threads' ops at this state
    std::set<int> sleep;           ///< sleep set on entry
    std::set<int> child_sleep;     ///< sleep set handed to the next state
    int preempts_before = 0;
  };

  void run_one(const std::function<void()>& body);
  bool backtrack();
  void step();
  void commit(int c);
  void resume(Fiber& f);
  /// Fiber side: record `op` as pending and switch to the host until the
  /// scheduler commits it. Throws AbortExecution when the execution is
  /// being torn down.
  void announce(Fiber& f, const OpDesc& op);
  void abort_live_fibers();
  void do_load(Fiber& f);
  void do_store(Fiber& f);
  void do_rmw(Fiber& f);
  void do_cas(Fiber& f);
  int choose_value(int lo, int hi);
  int choose_thread(const std::vector<int>& enabled);
  [[nodiscard]] OpDesc enabled_op(const Fiber& f) const;
  [[nodiscard]] std::string render_trace() const;
  void record(int thread, const OpDesc& op, std::uint64_t value, int idx,
              bool flag);
  static bool op_independent(const OpDesc& x, const OpDesc& y);
  static void trampoline();
  void run_current_fiber();

  Options opts_;
  Result result_;
  MemoryModel mm_;
  std::vector<Fiber> fibers_;
  std::vector<std::function<void()>> finals_;
  std::vector<Node> nodes_;
  std::vector<TraceStep> trace_;
  ucontext_t host_ctx_{};

  std::size_t depth_ = 0;       ///< next node index while stepping
  int prev_ = -1;               ///< thread that committed the last step
  int preempts_ = 0;
  int steps_ = 0;
  std::set<int> running_sleep_; ///< sleep set of the current state
  bool sleep_active_ = false;
  bool redundant_ = false;      ///< sleep-set-blocked: end execution early
  bool abort_ = false;
  bool in_body_ = false;
  bool in_finals_ = false;
  std::string failure_msg_;
};

}  // namespace aces::check
