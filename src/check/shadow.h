// Shadow<T>: a plain-memory payload wrapper that reports every read and
// write to the model's race detector (MemoryModel::plain_*). Instantiate
// the structure under test with a Shadow payload — e.g.
// SpscRing<Shadow<std::uint64_t>> — and any execution in which a slot read
// races a slot write without a happens-before edge fails with the full
// interleaving, exactly like TSan but exhaustive over the bounded space.
//
// Outside a running exploration (including all production builds) every
// access is a plain access: Shadow<T> adds no code the optimizer keeps.
// Accesses are NOT schedule points — plain memory has no visibility
// choices; only the happens-before bookkeeping runs.
#pragma once

#include <utility>

#include "common/atomic_shim.h"

namespace aces::check {

template <typename T>
class Shadow {
 public:
  Shadow() = default;
  Shadow(T v) : v_(std::move(v)) {}  // NOLINT(google-explicit-constructor): payload wrapper

  Shadow(const Shadow& o) : v_(o.checked_get()) { on_write(); }
  Shadow(Shadow&& o) noexcept : v_(std::move(o.checked_ref())) {
    on_write();
  }
  Shadow& operator=(const Shadow& o) {
    if (this != &o) {
      T tmp = o.checked_get();
      on_write();
      v_ = std::move(tmp);
    }
    return *this;
  }
  Shadow& operator=(Shadow&& o) noexcept {
    if (this != &o) {
      T tmp = std::move(o.checked_ref());
      on_write();
      v_ = std::move(tmp);
    }
    return *this;
  }
  ~Shadow() = default;

  [[nodiscard]] T value() const { return checked_get(); }

 private:
  [[nodiscard]] T checked_get() const {
    on_read();
    return v_;
  }
  [[nodiscard]] T& checked_ref() {
    on_read();
    return v_;
  }
  void on_read() const {
#if defined(ACES_MODEL_CHECK)
    shim_plain_read(this);
#endif
  }
  void on_write() {
#if defined(ACES_MODEL_CHECK)
    shim_plain_write(this);
#endif
  }

  T v_{};
};

}  // namespace aces::check
