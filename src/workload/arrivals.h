// Arrival processes for external input streams.
//
// The paper's evaluation stresses "highly bursty workloads"; we provide three
// arrival models with a common interface so the simulator and the threaded
// runtime draw from identical distributions:
//   * CBR      — constant bit rate, zero burstiness
//   * Poisson  — memoryless arrivals
//   * On/Off   — Markov-modulated Poisson (MMPP): Poisson at a peak rate
//                while ON, silent while OFF; the classic bursty-source model
#pragma once

#include <memory>

#include "common/rng.h"
#include "common/types.h"
#include "graph/descriptors.h"

namespace aces::workload {

/// Generator of successive inter-arrival gaps for one stream.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  /// Seconds until the next SDO arrives (strictly positive).
  virtual Seconds next_interarrival() = 0;
  /// Long-run average rate in SDOs per second.
  [[nodiscard]] virtual double mean_rate() const = 0;
};

/// Evenly spaced arrivals at exactly `rate` SDOs/sec.
class CbrArrivals final : public ArrivalProcess {
 public:
  explicit CbrArrivals(double rate);
  Seconds next_interarrival() override { return gap_; }
  [[nodiscard]] double mean_rate() const override { return 1.0 / gap_; }

 private:
  Seconds gap_;
};

/// Poisson arrivals at `rate` SDOs/sec.
class PoissonArrivals final : public ArrivalProcess {
 public:
  PoissonArrivals(double rate, Rng rng);
  Seconds next_interarrival() override;
  [[nodiscard]] double mean_rate() const override { return rate_; }

 private:
  double rate_;
  Rng rng_;
};

/// Markov-modulated Poisson: ON phases emit Poisson arrivals at
/// `mean_rate / on_fraction`; OFF phases emit nothing. Phase durations are
/// exponential with means `cycle_mean * on_fraction` / `cycle_mean *
/// (1 - on_fraction)`, preserving the requested long-run mean rate.
class OnOffArrivals final : public ArrivalProcess {
 public:
  OnOffArrivals(double mean_rate, double on_fraction, double cycle_mean,
                Rng rng);
  Seconds next_interarrival() override;
  [[nodiscard]] double mean_rate() const override { return mean_rate_; }
  [[nodiscard]] double peak_rate() const { return peak_rate_; }

 private:
  void toggle();

  double mean_rate_;
  double peak_rate_;
  double phase_mean_[2];  // [OFF, ON]
  Rng rng_;
  int phase_ = 1;  // start ON
  Seconds now_ = 0.0;
  Seconds switch_time_ = 0.0;
};

/// Maps a StreamDescriptor's (mean_rate, burstiness) to an arrival process:
/// burstiness 0 → CBR; otherwise MMPP with on-fraction 1 − 0.75·burstiness
/// (burstiness 1 → 4× peak-to-mean ratio) and a 1-second mean cycle.
std::unique_ptr<ArrivalProcess> make_arrival_process(
    const graph::StreamDescriptor& stream, Rng rng);

}  // namespace aces::workload
