#include "workload/trace.h"

#include <numeric>

#include "common/check.h"

namespace aces::workload {

RecordingArrivals::RecordingArrivals(std::unique_ptr<ArrivalProcess> inner)
    : inner_(std::move(inner)) {
  ACES_CHECK_MSG(inner_ != nullptr, "null inner arrival process");
}

Seconds RecordingArrivals::next_interarrival() {
  const Seconds gap = inner_->next_interarrival();
  trace_.push_back(gap);
  return gap;
}

TraceArrivals::TraceArrivals(std::vector<Seconds> gaps)
    : gaps_(std::move(gaps)) {
  ACES_CHECK_MSG(!gaps_.empty(), "empty arrival trace");
  double total = 0.0;
  for (const Seconds gap : gaps_) {
    ACES_CHECK_MSG(gap > 0.0, "trace gaps must be strictly positive");
    total += gap;
  }
  mean_rate_ = static_cast<double>(gaps_.size()) / total;
}

Seconds TraceArrivals::next_interarrival() {
  const Seconds gap = gaps_[cursor_];
  cursor_ = (cursor_ + 1) % gaps_.size();
  return gap;
}

std::vector<Seconds> record_trace(ArrivalProcess& source, std::size_t count) {
  ACES_CHECK_MSG(count > 0, "cannot record an empty trace");
  std::vector<Seconds> gaps;
  gaps.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    gaps.push_back(source.next_interarrival());
  return gaps;
}

}  // namespace aces::workload
