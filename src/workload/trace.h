// Trace-driven arrivals: record the inter-arrival gaps one process produces
// and replay them exactly later.
//
// Two uses: (1) replaying a recorded production trace as the paper replays
// "workloads developed to model real-world conditions", and (2) driving the
// simulator and the threaded runtime with the *identical* arrival sequence
// so calibration differences cannot hide in source randomness.
#pragma once

#include <vector>

#include "workload/arrivals.h"

namespace aces::workload {

/// Wraps any ArrivalProcess and records every gap it hands out.
class RecordingArrivals final : public ArrivalProcess {
 public:
  explicit RecordingArrivals(std::unique_ptr<ArrivalProcess> inner);

  Seconds next_interarrival() override;
  [[nodiscard]] double mean_rate() const override {
    return inner_->mean_rate();
  }
  [[nodiscard]] const std::vector<Seconds>& trace() const { return trace_; }

 private:
  std::unique_ptr<ArrivalProcess> inner_;
  std::vector<Seconds> trace_;
};

/// Replays a fixed gap sequence, cycling when it runs out.
class TraceArrivals final : public ArrivalProcess {
 public:
  /// `gaps` must be non-empty and strictly positive.
  explicit TraceArrivals(std::vector<Seconds> gaps);

  Seconds next_interarrival() override;
  /// Mean rate implied by one full cycle of the trace.
  [[nodiscard]] double mean_rate() const override { return mean_rate_; }
  [[nodiscard]] std::size_t length() const { return gaps_.size(); }

 private:
  std::vector<Seconds> gaps_;
  double mean_rate_;
  std::size_t cursor_ = 0;
};

/// Pre-generates `count` gaps from `source` and returns a replayable trace.
std::vector<Seconds> record_trace(ArrivalProcess& source, std::size_t count);

}  // namespace aces::workload
