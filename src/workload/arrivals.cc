#include "workload/arrivals.h"

#include "common/check.h"

namespace aces::workload {

CbrArrivals::CbrArrivals(double rate) : gap_(1.0 / rate) {
  ACES_CHECK_MSG(rate > 0.0, "CBR rate must be positive");
}

PoissonArrivals::PoissonArrivals(double rate, Rng rng)
    : rate_(rate), rng_(rng) {
  ACES_CHECK_MSG(rate > 0.0, "Poisson rate must be positive");
}

Seconds PoissonArrivals::next_interarrival() {
  return rng_.exponential(1.0 / rate_);
}

OnOffArrivals::OnOffArrivals(double mean_rate, double on_fraction,
                             double cycle_mean, Rng rng)
    : mean_rate_(mean_rate),
      peak_rate_(mean_rate / on_fraction),
      phase_mean_{cycle_mean * (1.0 - on_fraction), cycle_mean * on_fraction},
      rng_(rng) {
  ACES_CHECK_MSG(mean_rate > 0.0, "mean rate must be positive");
  ACES_CHECK_MSG(on_fraction > 0.0 && on_fraction < 1.0,
                 "on_fraction must be in (0,1)");
  ACES_CHECK_MSG(cycle_mean > 0.0, "cycle mean must be positive");
  phase_ = rng_.bernoulli(on_fraction) ? 1 : 0;
  switch_time_ = rng_.exponential(phase_mean_[phase_]);
}

void OnOffArrivals::toggle() {
  now_ = switch_time_;
  phase_ = 1 - phase_;
  switch_time_ = now_ + rng_.exponential(phase_mean_[phase_]);
}

Seconds OnOffArrivals::next_interarrival() {
  Seconds elapsed = 0.0;
  for (;;) {
    if (phase_ == 1) {
      const Seconds gap = rng_.exponential(1.0 / peak_rate_);
      if (now_ + gap < switch_time_) {
        now_ += gap;
        return elapsed + gap;
      }
      elapsed += switch_time_ - now_;
      toggle();
    } else {
      elapsed += switch_time_ - now_;
      toggle();
    }
  }
}

std::unique_ptr<ArrivalProcess> make_arrival_process(
    const graph::StreamDescriptor& stream, Rng rng) {
  ACES_CHECK_MSG(stream.burstiness >= 0.0 && stream.burstiness <= 1.0,
                 "stream burstiness out of [0,1]");
  if (stream.mean_rate <= 0.0) {
    // A silent stream: model as CBR with an enormous gap.
    return std::make_unique<CbrArrivals>(1e-9);
  }
  if (stream.burstiness == 0.0) {
    return std::make_unique<CbrArrivals>(stream.mean_rate);
  }
  const double on_fraction = 1.0 - 0.75 * stream.burstiness;
  return std::make_unique<OnOffArrivals>(stream.mean_rate, on_fraction,
                                         /*cycle_mean=*/1.0, rng);
}

}  // namespace aces::workload
