// Two-state continuous-time Markov modulator (paper §VI-B).
//
// "The PE operates in two states, S ∈ {0, 1}. The processing time of a packet
//  differs in the two states, and this leads to burstiness in processing. The
//  duration that a PE spends in state S is chosen from a continuous-time
//  exponential distribution with parameter λ_S."
#pragma once

#include "common/rng.h"
#include "common/types.h"

namespace aces::workload {

/// Alternates between state 0 and state 1 with exponentially-distributed
/// sojourn times. Time is caller-driven and monotone.
class TwoStateModulator {
 public:
  /// `mean0`/`mean1`: mean sojourn seconds in each state. The initial state
  /// is drawn from the stationary distribution.
  TwoStateModulator(double mean0, double mean1, Rng rng);

  [[nodiscard]] int state() const { return state_; }
  /// Absolute time at which the current sojourn ends.
  [[nodiscard]] Seconds next_switch_time() const { return switch_time_; }
  [[nodiscard]] Seconds now() const { return now_; }

  /// Advances the modulator clock to `t` (>= now()), performing every state
  /// switch whose time is <= t.
  void advance_to(Seconds t);

  /// Stationary probability of state 1.
  [[nodiscard]] double stationary_p1() const {
    return mean_[1] / (mean_[0] + mean_[1]);
  }

 private:
  void draw_sojourn();

  double mean_[2];
  Rng rng_;
  int state_ = 0;
  Seconds now_ = 0.0;
  Seconds switch_time_ = 0.0;
};

/// Couples a TwoStateModulator with per-state service costs: answers "how
/// much CPU time does an SDO started at time t cost?".
class ServiceModel {
 public:
  /// `cost0`/`cost1`: CPU seconds per SDO in each state.
  ServiceModel(double cost0, double cost1, double sojourn0, double sojourn1,
               Rng rng);

  /// Advances to `t` and returns the per-SDO CPU cost of the current state.
  double cost_at(Seconds t);

  [[nodiscard]] int state() const { return modulator_.state(); }
  /// Stationary mean per-SDO cost.
  [[nodiscard]] double mean_cost() const;

 private:
  double cost_[2];
  TwoStateModulator modulator_;
};

}  // namespace aces::workload
