#include "workload/markov_modulator.h"

#include "common/check.h"

namespace aces::workload {

TwoStateModulator::TwoStateModulator(double mean0, double mean1, Rng rng)
    : mean_{mean0, mean1}, rng_(rng) {
  ACES_CHECK_MSG(mean0 > 0.0 && mean1 > 0.0, "sojourn means must be positive");
  state_ = rng_.bernoulli(stationary_p1()) ? 1 : 0;
  draw_sojourn();
}

void TwoStateModulator::draw_sojourn() {
  switch_time_ = now_ + rng_.exponential(mean_[state_]);
}

void TwoStateModulator::advance_to(Seconds t) {
  ACES_CHECK_MSG(t >= now_, "modulator clock must be monotone");
  while (switch_time_ <= t) {
    now_ = switch_time_;
    state_ = 1 - state_;
    draw_sojourn();
  }
  now_ = t;
}

ServiceModel::ServiceModel(double cost0, double cost1, double sojourn0,
                           double sojourn1, Rng rng)
    : cost_{cost0, cost1}, modulator_(sojourn0, sojourn1, rng) {
  ACES_CHECK_MSG(cost0 > 0.0 && cost1 > 0.0, "service costs must be positive");
}

double ServiceModel::cost_at(Seconds t) {
  modulator_.advance_to(t);
  return cost_[modulator_.state()];
}

double ServiceModel::mean_cost() const {
  const double p1 = modulator_.stationary_p1();
  return (1.0 - p1) * cost_[0] + p1 * cost_[1];
}

}  // namespace aces::workload
