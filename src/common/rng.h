// Seedable random number generation.
//
// Every stochastic entity in the system (PE state machine, source, topology
// generator, tick phase) owns its own Rng derived deterministically from a
// master seed, so simulator runs are bit-reproducible and entities can be
// added or removed without perturbing the streams of unrelated entities.
//
// Engine: xoshiro256** (public domain, Blackman & Vigna), seeded through
// SplitMix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace aces {

/// Deterministic pseudo-random generator with distribution helpers.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via SplitMix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit draw.
  result_type operator()();

  /// Derives an independent child generator. `salt` distinguishes children
  /// created from the same parent state (e.g. entity ids).
  [[nodiscard]] Rng fork(std::uint64_t salt);

  /// Uniform real in [0, 1).
  double uniform();
  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Exponential with the given mean (not rate). Requires mean > 0.
  double exponential(double mean);
  /// Standard normal via Box-Muller (no cached spare; stateless).
  double normal(double mean = 0.0, double stddev = 1.0);
  /// Poisson with the given mean (Knuth for small, normal approx for large).
  std::int64_t poisson(double mean);
  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p);

 private:
  std::array<std::uint64_t, 4> state_;
};

/// SplitMix64 step; exposed for deterministic seed derivation in tests.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace aces
