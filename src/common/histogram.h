// Log-bucketed histogram for latency distributions.
//
// End-to-end SDO latencies span ~4 orders of magnitude (sub-millisecond to
// tens of seconds under congestion); logarithmic buckets give bounded memory
// with bounded relative quantile error, the same trade HdrHistogram makes.
// Like HdrHistogram, the exact min/max/sum of the samples are tracked next
// to the buckets, so the tails reported for the extreme quantiles are real
// observed values instead of bucket-boundary artifacts.
#pragma once

#include <cstdint>
#include <vector>

namespace aces {

/// Histogram over (0, +inf) with geometrically-spaced bucket boundaries.
class LogHistogram {
 public:
  /// Buckets span [min_value, max_value] with `buckets_per_decade` buckets per
  /// factor of 10. Values below/above the span land in under/overflow buckets.
  /// explicit: a bare double is a sample, not a histogram geometry — the
  /// implicit conversion this previously permitted is exactly the
  /// accidental-temporary bug clang-tidy's explicit-constructor check exists
  /// to prevent.
  explicit LogHistogram(double min_value = 1e-6, double max_value = 1e4,
                        int buckets_per_decade = 20);

  void add(double value, std::uint64_t weight = 1);
  void merge(const LogHistogram& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// Quantile in [0,1]; returns the geometric midpoint of the bucket holding
  /// the q-th sample, clamped to the observed [min, max] so the extreme
  /// quantiles never report values outside what was actually recorded
  /// (which also keeps the under/overflow buckets honest). 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double p90() const { return quantile(0.90); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  [[nodiscard]] double p999() const { return quantile(0.999); }

  /// Exact smallest sample; 0 when empty.
  [[nodiscard]] double min() const { return count_ ? min_seen_ : 0.0; }
  /// Exact largest sample; 0 when empty.
  [[nodiscard]] double max() const { return count_ ? max_seen_ : 0.0; }
  /// Exact sum of weighted samples (non-finite samples excluded).
  [[nodiscard]] double sum() const { return sum_; }
  /// sum()/count(); 0 when empty.
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Number of interior buckets (excludes under/overflow).
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size() - 2; }
  [[nodiscard]] std::uint64_t underflow() const { return counts_.front(); }
  [[nodiscard]] std::uint64_t overflow() const { return counts_.back(); }

  /// Lower bound of interior bucket i (i == bucket_count() gives the upper
  /// bound of the last interior bucket).
  [[nodiscard]] double bucket_lower(std::size_t i) const;
  [[nodiscard]] std::uint64_t bucket_value(std::size_t i) const {
    return counts_[i + 1];
  }

  /// Raw bucket vector including the under/overflow cells, for exact wire
  /// transfer between processes (runtime/wire.h). Pairs with from_raw.
  [[nodiscard]] const std::vector<std::uint64_t>& raw_counts() const {
    return counts_;
  }
  /// Reconstructs a histogram with the *default* geometry from raw parts
  /// captured on a peer with the same geometry. Throws CheckFailure when
  /// `counts` does not match the default bucket layout.
  static LogHistogram from_raw(std::vector<std::uint64_t> counts,
                               std::uint64_t count, double min_seen,
                               double max_seen, double sum);

 private:
  double min_value_ = 0.0;
  double log_min_ = 0.0;
  double inv_log_step_ = 0.0;
  double log_step_ = 0.0;
  std::vector<std::uint64_t> counts_;  // [underflow, interior..., overflow]
  std::uint64_t count_ = 0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace aces
