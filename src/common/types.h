// Strong identifier types and fundamental unit aliases shared by all modules.
//
// IDs are thin wrappers over an integer index. They exist to make it a type
// error to hand a processing-element id to an API expecting a node id, which
// in a system wiring PEs onto nodes onto streams is a real class of bug.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>

namespace aces {

namespace detail {

// CRTP-free tagged index. `Tag` is an empty struct unique per id space.
template <typename Tag>
class Id {
 public:
  using value_type = std::uint32_t;
  static constexpr value_type kInvalid = std::numeric_limits<value_type>::max();

  constexpr Id() = default;
  constexpr explicit Id(value_type v) : value_(v) {}

  [[nodiscard]] constexpr value_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  value_type value_ = kInvalid;
};

}  // namespace detail

struct PeTag {};
struct NodeTag {};
struct StreamTag {};
struct EdgeTag {};

/// Identifies a processing element (PE) within a ProcessingGraph.
using PeId = detail::Id<PeTag>;
/// Identifies a processing node (PN) within a ProcessingGraph.
using NodeId = detail::Id<NodeTag>;
/// Identifies an external input stream feeding an ingress PE.
using StreamId = detail::Id<StreamTag>;
/// Identifies a directed producer->consumer edge in the PE graph.
using EdgeId = detail::Id<EdgeTag>;

/// Simulated / wall time in seconds. All rates are per-second.
using Seconds = double;
/// Data volume. The paper measures rates in bytes; SDO counts are separate.
using Bytes = double;

std::ostream& operator<<(std::ostream& os, PeId id);
std::ostream& operator<<(std::ostream& os, NodeId id);
std::ostream& operator<<(std::ostream& os, StreamId id);
std::ostream& operator<<(std::ostream& os, EdgeId id);

}  // namespace aces

namespace std {
template <typename Tag>
struct hash<aces::detail::Id<Tag>> {
  size_t operator()(aces::detail::Id<Tag> id) const noexcept {
    return std::hash<typename aces::detail::Id<Tag>::value_type>{}(id.value());
  }
};
}  // namespace std
