// Minimal leveled logging to stderr.
//
// The hot paths (simulator events, channel operations) never log; logging is
// for the control plane and harness, so a mutex-guarded stderr writer is
// sufficient and keeps the dependency surface at zero.
#pragma once

#include <sstream>
#include <string>

namespace aces {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded. Default: kWarn, so
/// tests and benchmarks stay quiet unless something is wrong.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_write(LogLevel level, const std::string& message);
}  // namespace detail

}  // namespace aces

#define ACES_LOG(level, expr)                                        \
  do {                                                               \
    if (static_cast<int>(level) >= static_cast<int>(::aces::log_level())) { \
      std::ostringstream aces_log_oss_;                              \
      aces_log_oss_ << expr; /* NOLINT */                            \
      ::aces::detail::log_write(level, aces_log_oss_.str());         \
    }                                                                \
  } while (false)

#define ACES_DEBUG(expr) ACES_LOG(::aces::LogLevel::kDebug, expr)
#define ACES_INFO(expr) ACES_LOG(::aces::LogLevel::kInfo, expr)
#define ACES_WARN(expr) ACES_LOG(::aces::LogLevel::kWarn, expr)
#define ACES_ERROR(expr) ACES_LOG(::aces::LogLevel::kError, expr)
