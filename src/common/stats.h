// Online statistics accumulators.
//
// Welford's algorithm keeps mean/variance numerically stable over the long
// runs the experiment harness performs (hours of simulated time, millions of
// SDO latencies), without storing samples.
#pragma once

#include <cstdint>
#include <limits>

namespace aces {

/// Single-pass mean / variance / min / max accumulator (Welford).
class OnlineStats {
 public:
  void add(double x);
  /// Merges another accumulator (parallel Welford / Chan et al.).
  void merge(const OnlineStats& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  /// Mean of samples; 0 when empty.
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance; 0 with fewer than 2 samples.
  [[nodiscard]] double variance() const;
  /// Unbiased sample variance; 0 with fewer than 2 samples.
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(count_); }
  /// +inf when empty.
  [[nodiscard]] double min() const { return min_; }
  /// -inf when empty.
  [[nodiscard]] double max() const { return max_; }

  /// Second central moment Σ(x−mean)², for exact wire transfer of an
  /// accumulator between processes (runtime/wire.h). Pairs with from_raw.
  [[nodiscard]] double m2() const { return m2_; }
  /// Reconstructs an accumulator from its raw parts, bit-exactly: merging
  /// the result is indistinguishable from merging the original.
  static OnlineStats from_raw(std::uint64_t count, double mean, double m2,
                              double min, double max);

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exponentially-weighted moving average used for rate tracking in the
/// distributed controller (paper §V: "simple token bucket and rate tracking
/// mechanisms").
class Ewma {
 public:
  /// `alpha` in (0,1]: weight of the newest sample.
  explicit Ewma(double alpha);

  void add(double x);
  void reset();
  [[nodiscard]] bool initialized() const { return initialized_; }
  /// Current estimate; 0 before any sample.
  [[nodiscard]] double value() const { return initialized_ ? value_ : 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Tracks a rate (events or bytes per second) over fixed windows: call
/// `record(amount)` as events occur and `roll(window_seconds)` at window
/// boundaries; `rate()` reports the last completed window smoothed by EWMA.
class RateTracker {
 public:
  explicit RateTracker(double smoothing_alpha = 0.3);

  void record(double amount) { pending_ += amount; }
  /// Closes the current window of length `window_seconds` (> 0).
  void roll(double window_seconds);
  /// Smoothed per-second rate over completed windows.
  [[nodiscard]] double rate() const { return smoothed_.value(); }
  /// Raw amount accumulated in the still-open window.
  [[nodiscard]] double pending() const { return pending_; }
  /// Total amount recorded since construction/reset (closed + open windows).
  [[nodiscard]] double total() const { return total_; }
  void reset();

 private:
  Ewma smoothed_;
  double pending_ = 0.0;
  double total_ = 0.0;
};

}  // namespace aces
