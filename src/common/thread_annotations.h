// Clang thread-safety-analysis attribute macros.
//
// These macros attach lock-discipline contracts to the concurrent surface
// (runtime/channel, runtime/message_bus, obs counters/trace/spans, the
// sweep pool) so `clang -Wthread-safety` proves at compile time that every
// access to a guarded member happens under its mutex. On compilers without
// the attributes (gcc) they expand to nothing; the contracts still read as
// documentation and the clang CI job enforces them with -Werror.
//
// Naming follows the upstream attribute set
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//
//   ACES_CAPABILITY("mutex")   — the guarded-resource type itself
//   ACES_GUARDED_BY(mu)        — data member readable/writable only
//                                while holding mu
//   ACES_PT_GUARDED_BY(mu)     — pointee (not the pointer) guarded by mu
//   ACES_REQUIRES(mu)          — function must be called with mu held
//   ACES_ACQUIRE(mu) / ACES_RELEASE(mu)
//                              — function takes / drops mu
//   ACES_EXCLUDES(mu)          — function must NOT be called with mu held
//                                (it acquires mu itself; prevents
//                                self-deadlock on non-recursive mutexes)
//   ACES_RETURN_CAPABILITY(mu) — accessor returning a reference to mu
//   ACES_SCOPED_CAPABILITY     — RAII lock-guard types
//   ACES_NO_THREAD_SAFETY_ANALYSIS
//                              — opt-out for functions whose discipline the
//                                analysis cannot express (each use must
//                                carry a comment saying why)
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define ACES_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ACES_THREAD_ANNOTATION
#define ACES_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define ACES_CAPABILITY(x) ACES_THREAD_ANNOTATION(capability(x))
#define ACES_SCOPED_CAPABILITY ACES_THREAD_ANNOTATION(scoped_lockable)
#define ACES_GUARDED_BY(x) ACES_THREAD_ANNOTATION(guarded_by(x))
#define ACES_PT_GUARDED_BY(x) ACES_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACES_REQUIRES(...) \
  ACES_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ACES_REQUIRES_SHARED(...) \
  ACES_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACES_ACQUIRE(...) \
  ACES_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACES_RELEASE(...) \
  ACES_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ACES_TRY_ACQUIRE(...) \
  ACES_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define ACES_EXCLUDES(...) ACES_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ACES_RETURN_CAPABILITY(x) ACES_THREAD_ANNOTATION(lock_returned(x))
#define ACES_NO_THREAD_SAFETY_ANALYSIS \
  ACES_THREAD_ANNOTATION(no_thread_safety_analysis)
