// Fixed-storage move-only callable, the simulator's event-handler type.
//
// std::function heap-allocates any capture larger than its (typically
// 16-byte) small-object buffer, which makes every scheduled delivery,
// completion, and tick an allocator round trip. Simulation event handlers
// capture at most a few words (this + an index or a small POD), so a
// callable with a fixed inline buffer removes those allocations entirely;
// oversized or throwing-move captures are rejected at compile time rather
// than silently spilling to the heap.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/check.h"

namespace aces {

/// Move-only `void()` callable with `Capacity` bytes of inline storage.
/// Invoking an empty InlineFunction is a checked error.
template <std::size_t Capacity>
class InlineFunction {
 public:
  InlineFunction() = default;

  // Implicit conversion from a lambda is the entire point of the type
  // (handlers are passed as bare lambdas throughout the simulator), and the
  // forwarding-reference "overload shadows copy/move" hazard is foreclosed
  // by the enable_if same-type exclusion plus deleted copy operations.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction>>>
  // NOLINTNEXTLINE(google-explicit-constructor,bugprone-forwarding-reference-overload)
  InlineFunction(F&& fn) {
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "callable exceeds InlineFunction storage; shrink the "
                  "capture or raise Capacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "callable is over-aligned for InlineFunction storage");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "callable must be nothrow move constructible");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
    invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
    relocate_ = [](void* dst, void* src) noexcept {
      Fn* from = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    };
    destroy_ = [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); };
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void operator()() {
    ACES_CHECK_MSG(invoke_ != nullptr, "invoking empty InlineFunction");
    invoke_(storage_);
  }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

 private:
  void reset() noexcept {
    if (destroy_ != nullptr) destroy_(storage_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

  void move_from(InlineFunction& other) noexcept {
    if (other.invoke_ == nullptr) return;
    other.relocate_(storage_, other.storage_);
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
  }

  // Deliberately uninitialized: a slot's lifetime is governed by invoke_
  // (null ⇔ no object in storage), and zero-filling Capacity bytes on every
  // default construction would tax the simulator's event ring for nothing.
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-member-init)
  alignas(std::max_align_t) unsigned char storage_[Capacity];
  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void* dst, void* src) noexcept = nullptr;
  void (*destroy_)(void*) noexcept = nullptr;
};

}  // namespace aces
