// Fixed-capacity FIFO with one up-front allocation.
//
// PE input buffers are bounded by construction (paper §III-D: B SDOs), yet
// the simulator held them in std::deque, whose chunked allocation is a
// per-SDO hot-path cost. BoundedQueue allocates its slots exactly once at
// the declared capacity — pushes and pops are pointer arithmetic, which is
// what "pooling SDO allocations" means for a buffer whose size never
// exceeds a known bound.
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace aces {

/// Circular FIFO of at most `capacity()` elements. push_back past capacity
/// is a checked error: callers enforce admission (drop / backpressure)
/// before enqueueing, so an overflow here is a logic bug, not load.
template <typename T>
class BoundedQueue {
 public:
  BoundedQueue() = default;
  explicit BoundedQueue(std::size_t capacity) : slots_(capacity) {}

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == slots_.size(); }

  void push_back(T value) {
    ACES_CHECK_MSG(size_ < slots_.size(), "BoundedQueue overflow");
    slots_[(head_ + size_) % slots_.size()] = std::move(value);
    ++size_;
  }

  [[nodiscard]] const T& front() const {
    ACES_CHECK_MSG(size_ > 0, "front() on empty BoundedQueue");
    return slots_[head_];
  }

  /// Peek the i-th element from the front (0 == front()).
  [[nodiscard]] const T& at(std::size_t i) const {
    ACES_CHECK_MSG(i < size_, "at() past BoundedQueue size");
    return slots_[(head_ + i) % slots_.size()];
  }

  void pop_front() {
    ACES_CHECK_MSG(size_ > 0, "pop_front() on empty BoundedQueue");
    head_ = (head_ + 1) % slots_.size();
    --size_;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace aces
