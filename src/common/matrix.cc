#include "common/matrix.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/check.h"

namespace aces {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    ACES_CHECK_MSG(row.size() == cols_, "ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  ACES_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  ACES_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  ACES_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  ACES_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Matrix operator*(const Matrix& lhs, const Matrix& rhs) {
  ACES_CHECK_MSG(lhs.cols_ == rhs.rows_, "shape mismatch in matrix product");
  Matrix out(lhs.rows_, rhs.cols_);
  for (std::size_t r = 0; r < lhs.rows_; ++r) {
    for (std::size_t k = 0; k < lhs.cols_; ++k) {
      const double a = lhs(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += a * rhs(k, c);
    }
  }
  return out;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  ACES_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  return worst;
}

double Matrix::max_abs() const {
  double worst = 0.0;
  for (double v : data_) worst = std::max(worst, std::abs(v));
  return worst;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < m.cols(); ++c)
      os << m(r, c) << (c + 1 < m.cols() ? ", " : "");
    os << (r + 1 < m.rows() ? ";\n" : "]");
  }
  return os;
}

Matrix solve(Matrix a, Matrix b) {
  ACES_CHECK_MSG(a.rows() == a.cols(), "solve requires a square matrix");
  ACES_CHECK_MSG(a.rows() == b.rows(), "rhs row count mismatch");
  const std::size_t n = a.rows();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      for (std::size_t c = 0; c < b.cols(); ++c) std::swap(b(col, c), b(pivot, c));
    }
    const double p = a(col, col);
    ACES_CHECK_MSG(std::abs(p) > 1e-12, "singular matrix in solve()");
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / p;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      for (std::size_t c = 0; c < b.cols(); ++c) b(r, c) -= factor * b(col, c);
    }
  }
  // Back substitution.
  Matrix x(n, b.cols());
  for (std::size_t ri = n; ri-- > 0;) {
    for (std::size_t c = 0; c < b.cols(); ++c) {
      double acc = b(ri, c);
      for (std::size_t k = ri + 1; k < n; ++k) acc -= a(ri, k) * x(k, c);
      x(ri, c) = acc / a(ri, ri);
    }
  }
  return x;
}

namespace {
double frobenius(const Matrix& m) {
  double sum = 0.0;
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) sum += m(r, c) * m(r, c);
  return std::sqrt(sum);
}
}  // namespace

double spectral_radius(const Matrix& a, int iterations) {
  ACES_CHECK(a.rows() == a.cols());
  if (a.rows() == 0) return 0.0;
  // Gelfand's formula: rho(A) = lim ||A^k||^(1/k). Repeated squaring with
  // renormalization is robust to complex eigenvalue pairs, which defeat
  // plain power iteration on real nonsymmetric matrices.
  const int squarings = std::clamp(iterations / 16, 6, 24);
  Matrix b = a;
  double log_scale = 0.0;
  double k = 1.0;
  for (int i = 0; i < squarings; ++i) {
    const double norm = frobenius(b);
    if (norm == 0.0) return 0.0;
    b *= 1.0 / norm;
    log_scale = 2.0 * (log_scale + std::log(norm));
    b = b * b;
    k *= 2.0;
  }
  return std::exp((log_scale + std::log(frobenius(b))) / k);
}

}  // namespace aces
