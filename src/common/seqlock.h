// Single-writer seqlock slot over an N-word payload — the Boehm protocol
// ("Can seqlocks get along with programming language memory models?",
// MSPC 2012), extracted from the FlightRecorder (obs/spans.*) so the model
// checker can verify the protocol on a 2-word instance and the recorder can
// reuse the proven slot verbatim.
//
//   writer: seq.store(2T+1, relaxed)        // mark write-in-progress
//           atomic_fence(release)           // odd seq visible before any
//                                           // payload word
//           words[i].store(.., relaxed)     // payload, atomic words
//           seq.store(2T+2, release)        // publish: payload before the
//                                           // even seq
//
//   reader: s1 = seq.load(acquire)          // even ⇒ payload of s1/2-1
//           w[i] = words[i].load(relaxed)
//           atomic_fence(acquire)           // any torn word forces the
//                                           // re-read below to see the
//                                           // writer's odd seq
//           s2 = seq.load(relaxed); accept iff s1 == s2 and s1 even
//
// Invariant: a reader that accepts a copy observed every payload word from
// the single write numbered s1/2 - 1; the release fence after the odd store
// means any payload word from a newer write drags the newer (odd or later)
// sequence into the re-read, failing the check. Dropping that fence is the
// planted bug src/check/buggy.h keeps for the checker's self-test — the
// explorer reaches a torn accepted copy in a handful of executions.
//
// Contract: publish() calls must be externally serialized (single writer);
// try_read() is safe from any thread at any time without a lock. The
// payload is stored as relaxed-atomic 64-bit words, never as a raw struct,
// so a reader racing a writer reads *atomic* data (no C++ data race / UB)
// and the sequence check discards torn copies.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/atomic_shim.h"

namespace aces {

template <std::size_t NWords>
class SeqLockSlot {
  static_assert(NWords > 0);

 public:
  /// Publishes the `ticket`-th payload (tickets count from 0; the slot
  /// encodes them as sequence 2*ticket+2 so 0 stays "never written").
  void publish(std::uint64_t ticket, const std::uint64_t* words) {
    seq_.store(2 * ticket + 1, std::memory_order_relaxed);
    atomic_fence(std::memory_order_release);
    for (std::size_t i = 0; i < NWords; ++i) {
      words_[i].store(words[i], std::memory_order_relaxed);
    }
    seq_.store(2 * ticket + 2, std::memory_order_release);
  }

  /// Copies an intact payload into `out` and returns true; returns false
  /// when the slot was never written, is mid-write, or the copy raced a
  /// writer (torn copies are discarded, never returned).
  [[nodiscard]] bool try_read(std::uint64_t* out) const {
    const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
    if (s1 % 2 != 0 || s1 == 0) return false;
    for (std::size_t i = 0; i < NWords; ++i) {
      out[i] = words_[i].load(std::memory_order_relaxed);
    }
    atomic_fence(std::memory_order_acquire);
    return seq_.load(std::memory_order_relaxed) == s1;
  }

  /// Names the slot's variables in model-checker traces; production no-op.
  void set_check_name(const char* name) {
    seq_.set_check_name(name);
    (void)name;
  }

 private:
  Atomic<std::uint64_t> seq_{0};
  std::array<Atomic<std::uint64_t>, NWords> words_{};
};

}  // namespace aces
