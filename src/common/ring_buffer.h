// Fixed-capacity history ring used by the LQR flow controller.
//
// Equation 7 of the paper references K lags of buffer occupancy and L lags of
// the rate-mismatch term; HistoryRing stores the most recent N samples with
// O(1) push and indexed access by lag.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.h"

namespace aces {

/// Ring of the most recent `capacity` samples of T.
/// `at_lag(0)` is the newest sample, `at_lag(k)` the value pushed k steps ago.
template <typename T>
class HistoryRing {
 public:
  explicit HistoryRing(std::size_t capacity, T fill = T{})
      : data_(capacity, fill) {
    ACES_CHECK(capacity > 0);
  }

  void push(T value) {
    head_ = (head_ + 1) % data_.size();
    data_[head_] = std::move(value);  // last use of the by-value parameter
    if (size_ < data_.size()) ++size_;
  }

  /// Newest-first access. Lags beyond what has been pushed return the fill
  /// value the ring was constructed with (controller warm-up semantics).
  [[nodiscard]] const T& at_lag(std::size_t lag) const {
    ACES_CHECK_MSG(lag < data_.size(), "lag " << lag << " exceeds capacity");
    return data_[(head_ + data_.size() - lag) % data_.size()];
  }

  /// Overwrite every slot (used when re-homing a controller set-point).
  void fill(T value) {
    for (auto& v : data_) v = value;
    size_ = data_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return data_.size(); }
  /// Number of samples actually pushed, saturating at capacity.
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  std::vector<T> data_;
  std::size_t head_ = 0;  // index of newest element
  std::size_t size_ = 0;
};

}  // namespace aces
