#include "common/check.h"

#include <sstream>

namespace aces::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream oss;
  oss << "check failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) oss << " — " << message;
  throw CheckFailure(oss.str());
}

}  // namespace aces::detail
