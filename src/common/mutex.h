// Annotated mutex wrapper for clang thread-safety analysis.
//
// libstdc++'s std::mutex carries no capability attributes, so
// ACES_GUARDED_BY(some_std_mutex) is rejected by -Wthread-safety. aces::Mutex
// is a zero-overhead std::mutex wrapper declared as a capability, and
// aces::MutexLock the matching scoped acquire — the pair every
// mutex-protected structure in the tree is annotated against.
//
// Condition variables: aces::Mutex is BasicLockable, so waiting code pairs a
// scoped MutexLock with std::condition_variable_any and passes the Mutex
// itself as the Lockable (the cv unlocks/relocks it around the sleep). See
// runtime/channel.h for the canonical pattern.
#pragma once

#include <mutex>

#include "common/thread_annotations.h"

namespace aces {

class ACES_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACES_ACQUIRE() { m_.lock(); }
  void unlock() ACES_RELEASE() { m_.unlock(); }
  bool try_lock() ACES_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// RAII acquire/release of an aces::Mutex (std::lock_guard equivalent that
/// the thread-safety analysis understands).
class ACES_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACES_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() ACES_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace aces
