#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aces {

void OnlineStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

OnlineStats OnlineStats::from_raw(std::uint64_t count, double mean, double m2,
                                  double min, double max) {
  OnlineStats s;
  s.count_ = count;
  s.mean_ = mean;
  s.m2_ = m2;
  s.min_ = min;
  s.max_ = max;
  return s;
}

void OnlineStats::reset() { *this = OnlineStats{}; }

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double OnlineStats::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

Ewma::Ewma(double alpha) : alpha_(alpha) {
  ACES_CHECK(alpha > 0.0 && alpha <= 1.0);
}

void Ewma::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ += alpha_ * (x - value_);
  }
}

void Ewma::reset() {
  value_ = 0.0;
  initialized_ = false;
}

RateTracker::RateTracker(double smoothing_alpha) : smoothed_(smoothing_alpha) {}

void RateTracker::roll(double window_seconds) {
  ACES_CHECK(window_seconds > 0.0);
  smoothed_.add(pending_ / window_seconds);
  total_ += pending_;
  pending_ = 0.0;
}

void RateTracker::reset() {
  smoothed_.reset();
  pending_ = 0.0;
  total_ = 0.0;
}

}  // namespace aces
