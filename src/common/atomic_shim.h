// Atomic shim: the single doorway between the repo's lock-free algorithms
// and the memory system, so the bounded model checker (src/check/,
// docs/model_checking.md) can interpose on every load/store/RMW/fence.
//
// Production builds (`-DACES_MODEL_CHECK=OFF`, the default): `aces::Atomic<T>`
// is a zero-cost wrapper over `std::atomic<T>` — every method is a one-line
// inline forward, `aces::check::active()` is a constexpr `false` so the model
// branches are dead code, and the dual-build fingerprint diff in CI proves
// the data plane's behaviour is bit-identical with and without the shim.
//
// Model-check builds (`-DACES_MODEL_CHECK=ON`): each operation first asks
// `aces::check::active()` — a thread-local flag that is true only on a fiber
// of a running `aces::check::explore()` — and, when active, routes through
// the instrumented scheduler, which treats the operation as a schedule point
// and simulates relaxed/acquire/release visibility with a store-buffer model
// (a relaxed load may return any unsuperseded prior store). Outside an
// exploration the ON build behaves exactly like the OFF build, so the full
// test suite still runs in a model-check tree.
//
// The shim supports trivially-copyable payloads of at most 8 bytes (the
// model's store history holds raw 64-bit words). That covers every atomic on
// the data plane: counters, indices, flags, and the `double` gauges.
//
// Parking: `Atomic<T>::park_after_store()` publishes a value and parks the
// calling model thread as ONE indivisible transition — the model's stand-in
// for "store the waiter flag under the park mutex, then wait on the condvar
// with that mutex held". `aces::check::notify(tag)` is the matching wakeup.
// Production code never calls either (it uses the real mutex/condvar); the
// model branch in e.g. SpscRing::park() is the only caller.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace aces::check {

// Scheduler hooks, implemented in src/check/shim.cc. Declared in both build
// modes so src/check/ itself compiles everywhere; only model-check builds
// ever reference them (every call site below is inside an ACES_MODEL_CHECK
// block), so production binaries need not link the checker. `var` keys the
// model's per-variable store history; `latest` seeds it on first touch (the
// value the production atomic held when the model first saw the variable).
std::uint64_t shim_load(const void* var, std::uint64_t latest,
                        std::memory_order order);
void shim_store(const void* var, std::uint64_t latest, std::uint64_t value,
                std::memory_order order);
/// Generic RMW: reads the newest store (RMW semantics), applies `op` via the
/// callback below, appends the result. Returns the value read.
enum class RmwOp { kAdd, kSub, kExchange };
std::uint64_t shim_rmw(const void* var, std::uint64_t latest, RmwOp op,
                       std::uint64_t operand, std::memory_order order,
                       bool is_signed, unsigned width_bytes);
/// CAS: reads the newest store; stores `desired` iff it equals `expected`.
/// Returns true on success; `*observed` receives the value read either way.
bool shim_cas(const void* var, std::uint64_t latest, std::uint64_t expected,
              std::uint64_t desired, std::memory_order order,
              std::uint64_t* observed);
void shim_fence(std::memory_order order);
/// Store + park as one transition. Returns true when woken by notify(),
/// false on a (budgeted) timeout wakeup.
bool shim_park_after_store(const void* var, std::uint64_t latest,
                           std::uint64_t value, std::memory_order order,
                           const void* tag);
void shim_notify(const void* tag);
/// Pure schedule point (models cpu_relax / spin backoff).
void shim_yield();
/// Attaches a human-readable name to `var` for interleaving traces.
void shim_name(const void* var, const char* name);
/// Plain (non-atomic) memory access reports for race checking — the
/// backing of check::Shadow<T> (src/check/shadow.h). No schedule point;
/// a racy access fails the execution.
void shim_plain_read(const void* addr);
void shim_plain_write(const void* addr);

#if defined(ACES_MODEL_CHECK)

/// True iff the calling thread is a fiber of a running exploration.
[[nodiscard]] bool active() noexcept;
inline void notify(const void* tag) { shim_notify(tag); }
inline void yield_point() {
  if (active()) shim_yield();
}

#else  // !ACES_MODEL_CHECK

constexpr bool active() noexcept { return false; }
inline void notify(const void*) {}
inline void yield_point() {}

#endif  // ACES_MODEL_CHECK

}  // namespace aces::check

namespace aces {

/// Drop-in for std::atomic_thread_fence, routed through the model when a
/// checked exploration is running on this thread.
inline void atomic_fence(std::memory_order order) {
#if defined(ACES_MODEL_CHECK)
  if (check::active()) {
    check::shim_fence(order);
    return;
  }
#endif
  std::atomic_thread_fence(order);
}

/// Drop-in for std::atomic<T> (the subset the repo uses), interposable by
/// the model checker. See the header comment for the two build modes.
template <typename T>
class Atomic {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "the model's store history holds 64-bit words; shim payloads "
                "must be trivially copyable and at most 8 bytes");

 public:
  constexpr Atomic() noexcept : value_(T{}) {}
  constexpr Atomic(T v) noexcept : value_(v) {}  // NOLINT(google-explicit-constructor): mirrors std::atomic
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(std::memory_order order = std::memory_order_seq_cst) const {
#if defined(ACES_MODEL_CHECK)
    if (check::active()) {
      return from_bits(check::shim_load(this, latest_bits(), order));
    }
#endif
    return value_.load(order);
  }

  void store(T v, std::memory_order order = std::memory_order_seq_cst) {
#if defined(ACES_MODEL_CHECK)
    if (check::active()) {
      check::shim_store(this, latest_bits(), to_bits(v), order);
      value_.store(v, std::memory_order_relaxed);  // keep the seed in sync
      return;
    }
#endif
    value_.store(v, order);
  }

  T exchange(T v, std::memory_order order = std::memory_order_seq_cst) {
#if defined(ACES_MODEL_CHECK)
    if (check::active()) {
      const std::uint64_t old = check::shim_rmw(
          this, latest_bits(), check::RmwOp::kExchange, to_bits(v), order,
          /*is_signed=*/false, sizeof(T));
      value_.store(v, std::memory_order_relaxed);
      return from_bits(old);
    }
#endif
    return value_.exchange(v, order);
  }

  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order order = std::memory_order_seq_cst) {
#if defined(ACES_MODEL_CHECK)
    if (check::active()) {
      std::uint64_t observed = 0;
      const bool ok =
          check::shim_cas(this, latest_bits(), to_bits(expected),
                          to_bits(desired), order, &observed);
      if (ok) {
        value_.store(desired, std::memory_order_relaxed);
      } else {
        expected = from_bits(observed);
      }
      return ok;
    }
#endif
    return value_.compare_exchange_strong(expected, desired, order);
  }

  template <typename U = T,
            typename = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_add(T delta, std::memory_order order = std::memory_order_seq_cst) {
#if defined(ACES_MODEL_CHECK)
    if (check::active()) {
      const std::uint64_t old = check::shim_rmw(
          this, latest_bits(), check::RmwOp::kAdd, to_bits(delta), order,
          std::is_signed_v<T>, sizeof(T));
      const T oldv = from_bits(old);
      value_.store(static_cast<T>(oldv + delta), std::memory_order_relaxed);
      return oldv;
    }
#endif
    return value_.fetch_add(delta, order);
  }

  template <typename U = T,
            typename = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_sub(T delta, std::memory_order order = std::memory_order_seq_cst) {
#if defined(ACES_MODEL_CHECK)
    if (check::active()) {
      const std::uint64_t old = check::shim_rmw(
          this, latest_bits(), check::RmwOp::kSub, to_bits(delta), order,
          std::is_signed_v<T>, sizeof(T));
      const T oldv = from_bits(old);
      value_.store(static_cast<T>(oldv - delta), std::memory_order_relaxed);
      return oldv;
    }
#endif
    return value_.fetch_sub(delta, order);
  }

  /// Model-only combined transition: store(v, order) and park the calling
  /// fiber on `tag` indivisibly (see the header comment). Returns true when
  /// woken by notify, false on a budgeted timeout. Production code must
  /// branch on check::active() and never reach this; outside a model run it
  /// degrades to a plain store (no parking — there is no scheduler to wake
  /// us) and returns false so callers fall through to their timeout path.
  bool park_after_store(T v, std::memory_order order, const void* tag) {
#if defined(ACES_MODEL_CHECK)
    if (check::active()) {
      const bool notified = check::shim_park_after_store(
          this, latest_bits(), to_bits(v), order, tag);
      value_.store(v, std::memory_order_relaxed);
      return notified;
    }
#endif
    store(v, order);
    (void)tag;
    return false;
  }

  /// Names this variable in model interleaving traces; no-op in production.
  void set_check_name(const char* name) {
#if defined(ACES_MODEL_CHECK)
    check::shim_name(this, name);
#else
    (void)name;
#endif
  }

 private:
  static std::uint64_t to_bits(T v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(T));
    return bits;
  }
  static T from_bits(std::uint64_t bits) {
    T v;
    std::memcpy(&v, &bits, sizeof(T));
    return v;
  }
#if defined(ACES_MODEL_CHECK)
  std::uint64_t latest_bits() const {
    return to_bits(value_.load(std::memory_order_relaxed));
  }
#endif

  std::atomic<T> value_;
};

}  // namespace aces
