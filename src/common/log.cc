#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>

#include "common/mutex.h"

namespace aces {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
/// Serializes whole lines onto stderr across runtime threads.
Mutex g_mutex;

// Captured at static initialization, i.e. ~process start; the per-line
// timestamp is milliseconds since then. Monotonic, so interleaved lines
// from the runtime's node/source threads are orderable even when the wall
// clock steps.
const std::chrono::steady_clock::time_point g_start =
    std::chrono::steady_clock::now();

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

namespace detail {
void log_write(LogLevel level, const std::string& message) {
  const std::chrono::duration<double, std::milli> uptime =
      std::chrono::steady_clock::now() - g_start;
  char stamp[32];
  std::snprintf(stamp, sizeof stamp, "+%.3fms", uptime.count());
  MutexLock lock(g_mutex);
  std::cerr << "[aces " << level_name(level) << ' ' << stamp << "] "
            << message << '\n';
}
}  // namespace detail

}  // namespace aces
