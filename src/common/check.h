// Precondition / invariant checking.
//
// ACES_CHECK is always on (cheap comparisons guarding control-plane logic);
// failures throw CheckFailure so tests can assert on misuse and long-running
// experiment harnesses can report which invariant broke instead of aborting.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace aces {

/// Thrown when a checked precondition or invariant is violated.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);
}  // namespace detail

}  // namespace aces

#define ACES_CHECK(expr)                                                   \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::aces::detail::check_failed(#expr, __FILE__, __LINE__, {});         \
    }                                                                      \
  } while (false)

#define ACES_CHECK_MSG(expr, msg)                                          \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream aces_check_oss_;                                  \
      aces_check_oss_ << msg; /* NOLINT */                                 \
      ::aces::detail::check_failed(#expr, __FILE__, __LINE__,              \
                                   aces_check_oss_.str());                 \
    }                                                                      \
  } while (false)
