#include "common/types.h"

#include <ostream>

namespace aces {

namespace {
template <typename Tag>
std::ostream& print(std::ostream& os, detail::Id<Tag> id, const char* prefix) {
  if (!id.valid()) return os << prefix << "<invalid>";
  return os << prefix << id.value();
}
}  // namespace

std::ostream& operator<<(std::ostream& os, PeId id) { return print(os, id, "pe"); }
std::ostream& operator<<(std::ostream& os, NodeId id) { return print(os, id, "pn"); }
std::ostream& operator<<(std::ostream& os, StreamId id) { return print(os, id, "s"); }
std::ostream& operator<<(std::ostream& os, EdgeId id) { return print(os, id, "e"); }

}  // namespace aces
