// Minimal dense linear algebra for the LQR designer.
//
// The delay-augmented controller state is tiny (≤ ~8 dimensions), so a simple
// row-major dynamic matrix with partial-pivot Gaussian elimination is the
// right tool; no external BLAS dependency.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace aces {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Construct from nested braces: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  [[nodiscard]] Matrix transpose() const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
  friend Matrix operator*(double s, Matrix rhs) { return rhs *= s; }
  friend Matrix operator*(const Matrix& lhs, const Matrix& rhs);

  /// Max absolute difference between entries; matrices must be same shape.
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;
  /// Largest absolute entry.
  [[nodiscard]] double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const Matrix& m);

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Throws CheckFailure if A is singular (pivot below 1e-12 of row scale).
Matrix solve(Matrix a, Matrix b);

/// Spectral radius estimate via power iteration on A (largest |eigenvalue|).
/// Used by tests to certify closed-loop stability of designed gains.
double spectral_radius(const Matrix& a, int iterations = 200);

}  // namespace aces
