#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace aces {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t salt) {
  std::uint64_t s = (*this)() ^ (salt * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL);
  return Rng(splitmix64(s));
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ACES_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  ACES_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::exponential(double mean) {
  ACES_CHECK(mean > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

std::int64_t Rng::poisson(double mean) {
  ACES_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for workload
    // generation where mean counts per interval are large.
    const double draw = normal(mean, std::sqrt(mean));
    return draw < 0.0 ? 0 : static_cast<std::int64_t>(draw + 0.5);
  }
  const double threshold = std::exp(-mean);
  std::int64_t k = 0;
  double product = uniform();
  while (product > threshold) {
    ++k;
    product *= uniform();
  }
  return k;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

}  // namespace aces
