#include "common/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aces {

LogHistogram::LogHistogram(double min_value, double max_value,
                           int buckets_per_decade)
    : min_value_(min_value) {
  // Validate BEFORE deriving: log10 of a non-positive min_value is NaN/-inf
  // and previously flowed into log_min_ in the init list, ahead of this
  // check ever firing.
  ACES_CHECK(min_value > 0.0 && max_value > min_value);
  ACES_CHECK(buckets_per_decade > 0);
  log_min_ = std::log10(min_value);
  log_step_ = 1.0 / buckets_per_decade;
  inv_log_step_ = buckets_per_decade;
  const double decades = std::log10(max_value) - log_min_;
  const auto interior =
      static_cast<std::size_t>(std::ceil(decades * buckets_per_decade));
  counts_.assign(interior + 2, 0);
}

void LogHistogram::add(double value, std::uint64_t weight) {
  std::size_t index;
  if (!(value > 0.0) || value < min_value_) {
    index = 0;  // underflow (also catches NaN and non-positive values)
  } else {
    const double pos = (std::log10(value) - log_min_) * inv_log_step_;
    // Guard the top bucket: +inf (and any value past the configured span)
    // must land in overflow *before* the size_t cast — casting a double
    // that exceeds the integer range is undefined behaviour.
    if (!(pos < static_cast<double>(bucket_count()))) {
      index = counts_.size() - 1;
    } else {
      index = static_cast<std::size_t>(pos) + 1;
    }
  }
  counts_[index] += weight;
  if (std::isfinite(value)) {
    if (count_ == 0) {
      min_seen_ = max_seen_ = value;
    } else {
      min_seen_ = std::min(min_seen_, value);
      max_seen_ = std::max(max_seen_, value);
    }
    sum_ += value * static_cast<double>(weight);
  } else if (count_ == 0) {
    min_seen_ = max_seen_ = 0.0;
  }
  count_ += weight;
}

void LogHistogram::merge(const LogHistogram& other) {
  ACES_CHECK_MSG(counts_.size() == other.counts_.size() &&
                     min_value_ == other.min_value_,
                 "merging histograms with different geometry");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_seen_ = other.min_seen_;
      max_seen_ = other.max_seen_;
    } else {
      min_seen_ = std::min(min_seen_, other.min_seen_);
      max_seen_ = std::max(max_seen_, other.max_seen_);
    }
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

LogHistogram LogHistogram::from_raw(std::vector<std::uint64_t> counts,
                                    std::uint64_t count, double min_seen,
                                    double max_seen, double sum) {
  LogHistogram h;
  ACES_CHECK_MSG(counts.size() == h.counts_.size(),
                 "raw histogram parts do not match the default geometry");
  h.counts_ = std::move(counts);
  h.count_ = count;
  h.min_seen_ = min_seen;
  h.max_seen_ = max_seen;
  h.sum_ = sum;
  return h;
}

void LogHistogram::reset() {
  for (auto& c : counts_) c = 0;
  count_ = 0;
  min_seen_ = max_seen_ = 0.0;
  sum_ = 0.0;
}

double LogHistogram::bucket_lower(std::size_t i) const {
  return std::pow(10.0, log_min_ + static_cast<double>(i) * log_step_);
}

double LogHistogram::quantile(double q) const {
  ACES_CHECK(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  // Nearest-rank: the q-quantile is the ceil(q·N)-th smallest sample.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  const auto clamp = [this](double v) {
    return std::clamp(v, min_seen_, max_seen_);
  };
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      if (i == 0) return clamp(min_value_);  // underflow bucket
      // Overflow bucket: the exact maximum is tracked, report it rather
      // than the last boundary (which under-reports arbitrarily badly).
      if (i == counts_.size() - 1) return clamp(max_seen_);
      // Geometric midpoint of interior bucket i-1.
      const double lo = bucket_lower(i - 1);
      const double hi = bucket_lower(i);
      return clamp(std::sqrt(lo * hi));
    }
  }
  return clamp(max_seen_);
}

}  // namespace aces
