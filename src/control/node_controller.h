// The distributed resource controller instantiated on each processing node
// (paper §V, tier 2).
//
// Every control interval the hosting substrate (simulator or threaded
// runtime) reports, for each local PE, what happened since the last tick —
// occupancy, completions, CPU burned, arrivals, the freshest downstream
// advertisement, and whether output is blocked — and the controller returns
// the CPU share each PE may use next interval plus the r_max each PE
// advertises upstream. The same object implements all three evaluated
// policies so the substrates contain no policy logic beyond transport
// semantics (drop vs block at full buffers).
#pragma once

#include <limits>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "control/config.h"
#include "control/cpu_scheduler.h"
#include "control/flow_controller.h"
#include "control/token_bucket.h"
#include "graph/processing_graph.h"
#include "opt/global_optimizer.h"

namespace aces::control {

/// Observations for one PE over the elapsed control interval.
struct PeTickInput {
  /// SDOs in the input buffer at tick time.
  double buffer_occupancy = 0.0;
  /// SDOs whose processing completed during the interval.
  double processed_sdos = 0.0;
  /// CPU seconds actually consumed during the interval.
  double cpu_seconds_used = 0.0;
  /// SDOs that arrived (were accepted into the buffer) during the interval.
  double arrived_sdos = 0.0;
  /// Freshest max over downstream advertisements (Eq. 8), in SDOs/sec of
  /// this PE's *output*; +infinity for egress PEs or policies without
  /// advertisements.
  double downstream_rmax = std::numeric_limits<double>::infinity();
  /// Seconds since the freshest downstream advertisement was (re)received.
  /// 0 for egress PEs and for policies without advertisements. Compared
  /// against ControllerConfig::advert_staleness_timeout: a stale value
  /// means every downstream consumer has gone silent.
  Seconds downstream_advert_age = 0.0;
  /// True when the transport reports this PE cannot emit (Lock-Step: some
  /// downstream buffer is full).
  bool output_blocked = false;
};

/// Decisions for one PE for the next control interval.
struct PeTickOutput {
  /// CPU fraction granted: c_j(n).
  double cpu_share = 0.0;
  /// r_max to advertise to upstream PEs, SDOs/sec of this PE's input;
  /// +infinity when the policy does not advertise (UDP, Lock-Step).
  double advertised_rmax = std::numeric_limits<double>::infinity();
};

/// Tier-2 controller for one node. Construct once per node from the graph,
/// the tier-1 plan, and a config; call tick() each control interval with one
/// input per local PE, in pes_on_node() order.
class NodeController {
 public:
  NodeController(const graph::ProcessingGraph& graph, NodeId node,
                 const opt::AllocationPlan& plan,
                 const ControllerConfig& config);

  /// Advances the controller by `dt` seconds. `inputs` must align with
  /// local_pes().
  std::vector<PeTickOutput> tick(Seconds dt,
                                 const std::vector<PeTickInput>& inputs);

  [[nodiscard]] const std::vector<PeId>& local_pes() const {
    return graph_->pes_on_node(node_);
  }
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] const ControllerConfig& config() const { return config_; }

  /// Long-term CPU target of local PE `i` (tokens accrue at this rate).
  [[nodiscard]] double cpu_target(std::size_t i) const;
  /// Current token level of local PE `i` (CPU-seconds).
  [[nodiscard]] double tokens(std::size_t i) const;
  /// Current service-time estimate T̂ of local PE `i`.
  [[nodiscard]] double service_estimate(std::size_t i) const;

  /// Replaces tier-1 targets (periodic re-optimization / allocation-error
  /// ablation). Plan must index the same graph.
  void set_plan(const opt::AllocationPlan& plan);

  /// Adjusts the node's CPU capacity (resource-availability change); takes
  /// effect at the next tick.
  void set_capacity(double capacity);
  [[nodiscard]] double capacity() const { return capacity_; }

  /// Rebuilds all per-PE controller state (token buckets, LQR history,
  /// estimator EWMAs, hysteresis latches) while keeping the current tier-1
  /// targets. Called when the hosting node recovers from a crash so the
  /// restarted node starts from the same priors as a fresh boot instead of
  /// pre-crash history.
  void reset_state();

 private:
  struct PeState {
    double cpu_target = 0.0;
    TokenBucket bucket{0.0, 1.0};
    FlowController flow{FlowGains{{0.1}, {}}, 0.0};
    Ewma service_estimate{0.2};  // T̂, seconds per SDO
    Ewma arrival_rate{0.3};      // SDOs per second
    double prev_cpu_share = 0.0;
    bool xoff = false;  // kThreshold hysteresis latch
  };

  [[nodiscard]] double rho(const PeState& state, const PeTickInput& in,
                           Seconds dt) const;
  [[nodiscard]] PeState make_state(PeId id, double cpu_target) const;
  /// Downstream r_max after the staleness rule: zero once the freshest
  /// advertisement is older than the configured timeout.
  [[nodiscard]] double effective_downstream_rmax(const PeTickInput& in) const;

  const graph::ProcessingGraph* graph_;
  NodeId node_;
  ControllerConfig config_;
  double capacity_;
  std::vector<PeState> states_;  // aligned with local_pes()
};

}  // namespace aces::control
