#include "control/cpu_scheduler.h"

#include <algorithm>

#include "common/check.h"

namespace aces::control {

std::vector<double> partition_cpu(double capacity,
                                  const std::vector<CpuDemand>& demands) {
  ACES_CHECK_MSG(capacity >= 0.0, "negative CPU capacity");
  std::vector<double> alloc(demands.size(), 0.0);
  double remaining = capacity;
  constexpr double kEps = 1e-12;
  // Each pass either exhausts the capacity or saturates at least one cap, so
  // the loop terminates within |demands| + 1 rounds.
  for (std::size_t round = 0; round <= demands.size(); ++round) {
    double total_weight = 0.0;
    for (std::size_t i = 0; i < demands.size(); ++i) {
      ACES_CHECK_MSG(demands[i].weight >= 0.0, "negative demand weight");
      if (alloc[i] + kEps < demands[i].cap) total_weight += demands[i].weight;
    }
    if (remaining <= kEps || total_weight <= kEps) break;
    double granted = 0.0;
    for (std::size_t i = 0; i < demands.size(); ++i) {
      if (alloc[i] + kEps >= demands[i].cap || demands[i].weight <= 0.0)
        continue;
      const double offer = remaining * demands[i].weight / total_weight;
      const double take = std::min(offer, demands[i].cap - alloc[i]);
      alloc[i] += take;
      granted += take;
    }
    remaining -= granted;
    if (granted <= kEps) break;
  }
  return alloc;
}

}  // namespace aces::control
