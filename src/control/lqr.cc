#include "control/lqr.h"

#include <cstddef>

#include "common/check.h"

namespace aces::control {

namespace {

/// Builds the delay-augmented (A, B) of the buffer integrator with state
/// z = [x, u(n−1), …, u(n−d)] and input u(n).
void augmented_system(int delay, Matrix& a, Matrix& b) {
  const auto n = static_cast<std::size_t>(delay) + 1;
  a = Matrix(n, n);
  b = Matrix(n, 1);
  a(0, 0) = 1.0;
  if (delay == 0) {
    b(0, 0) = 1.0;
    return;
  }
  a(0, n - 1) = 1.0;  // x += u(n−d)
  b(1, 0) = 1.0;      // newest in-flight control slot receives u(n)
  for (std::size_t k = 2; k < n; ++k) a(k, k - 1) = 1.0;  // shift the pipe
}

}  // namespace

Matrix solve_dare(const Matrix& a, const Matrix& b, const Matrix& q,
                  const Matrix& r, int max_iterations, double tolerance) {
  ACES_CHECK(a.rows() == a.cols());
  ACES_CHECK(b.rows() == a.rows());
  ACES_CHECK(q.rows() == a.rows() && q.cols() == a.cols());
  ACES_CHECK(r.rows() == b.cols() && r.cols() == b.cols());
  const Matrix at = a.transpose();
  const Matrix bt = b.transpose();
  Matrix p = q;
  for (int iter = 0; iter < max_iterations; ++iter) {
    const Matrix btp = bt * p;
    const Matrix gain = solve(r + btp * b, btp * a);  // (R+BᵀPB)⁻¹BᵀPA
    const Matrix next = at * p * a - at * p * b * gain + q;
    const double delta = next.max_abs_diff(p);
    p = next;
    if (delta < tolerance * (1.0 + p.max_abs())) return p;
  }
  ACES_CHECK_MSG(false, "DARE iteration did not converge");
  return p;  // unreachable
}

Matrix lqr_gain(const Matrix& a, const Matrix& b, const Matrix& p,
                const Matrix& r) {
  const Matrix bt = b.transpose();
  const Matrix btp = bt * p;
  return solve(r + btp * b, btp * a);
}

FlowGains design_flow_gains(int actuation_delay, const LqrWeights& weights) {
  ACES_CHECK_MSG(actuation_delay >= 0, "negative actuation delay");
  ACES_CHECK_MSG(weights.state_cost > 0.0 && weights.control_cost > 0.0,
                 "LQR weights must be positive");
  Matrix a;
  Matrix b;
  augmented_system(actuation_delay, a, b);
  const auto n = static_cast<std::size_t>(actuation_delay) + 1;
  Matrix q(n, n);
  q(0, 0) = weights.state_cost;  // only buffer deviation is penalized
  Matrix r{{weights.control_cost}};
  const Matrix p = solve_dare(a, b, q, r);
  const Matrix k = lqr_gain(a, b, p, r);

  FlowGains gains;
  gains.lambda.push_back(k(0, 0));
  for (std::size_t l = 1; l < n; ++l) gains.mu.push_back(k(0, l));
  return gains;
}

Matrix closed_loop_matrix(int actuation_delay, const FlowGains& gains) {
  ACES_CHECK(gains.lambda.size() == 1);
  ACES_CHECK(gains.mu.size() == static_cast<std::size_t>(actuation_delay));
  Matrix a;
  Matrix b;
  augmented_system(actuation_delay, a, b);
  const auto n = static_cast<std::size_t>(actuation_delay) + 1;
  Matrix k(1, n);
  k(0, 0) = gains.lambda[0];
  for (std::size_t l = 1; l < n; ++l) k(0, l) = gains.mu[l - 1];
  return a - b * k;
}

}  // namespace aces::control
