// CPU token bucket (paper §V-D).
//
// "each PE running on a node earns tokens at a fixed rate, and expends them
//  when it does processing. If a PE does not use its tokens for a period of
//  time, it accumulates these tokens up to a maximum value."
//
// Tokens are CPU-seconds. The accrual rate is the tier-1 CPU target c̄_j, so
// long-term usage converges to the target while short-term usage can burst
// up to the bucket depth.
#pragma once

namespace aces::control {

class TokenBucket {
 public:
  /// `rate`: tokens (CPU-seconds) earned per second = c̄_j.
  /// `depth_seconds`: bucket capacity expressed as seconds of accrual at
  /// `rate` (capacity = rate × depth_seconds). Buckets start full so PEs can
  /// work immediately at system start.
  TokenBucket(double rate, double depth_seconds);

  /// Earn tokens for an elapsed interval.
  void accrue(double dt);
  /// Spend up to `amount` tokens; returns the amount actually drawn.
  double draw(double amount);
  /// Force-spend `amount` (may push the level negative — used when measured
  /// CPU consumption is reported after the fact; debt is repaid by accrual).
  void charge(double amount);

  [[nodiscard]] double available() const { return tokens_; }
  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] double capacity() const { return capacity_; }

  /// Re-target the accrual rate (tier-1 re-optimization); capacity rescales
  /// to preserve the configured depth, and the level is clamped to it.
  void set_rate(double rate);

 private:
  double rate_;
  double depth_seconds_;
  double capacity_;
  double tokens_;
};

}  // namespace aces::control
