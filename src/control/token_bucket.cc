#include "control/token_bucket.h"

#include <algorithm>

#include "common/check.h"

namespace aces::control {

TokenBucket::TokenBucket(double rate, double depth_seconds)
    : rate_(rate),
      depth_seconds_(depth_seconds),
      capacity_(rate * depth_seconds),
      tokens_(capacity_) {
  ACES_CHECK_MSG(rate >= 0.0, "negative token rate");
  ACES_CHECK_MSG(depth_seconds > 0.0, "bucket depth must be positive");
}

void TokenBucket::accrue(double dt) {
  ACES_CHECK_MSG(dt >= 0.0, "negative accrual interval");
  tokens_ = std::min(tokens_ + rate_ * dt, capacity_);
}

double TokenBucket::draw(double amount) {
  ACES_CHECK_MSG(amount >= 0.0, "negative draw");
  const double drawn = std::clamp(tokens_, 0.0, amount);
  tokens_ -= drawn;
  return drawn;
}

void TokenBucket::charge(double amount) {
  ACES_CHECK_MSG(amount >= 0.0, "negative charge");
  tokens_ -= amount;
}

void TokenBucket::set_rate(double rate) {
  ACES_CHECK_MSG(rate >= 0.0, "negative token rate");
  rate_ = rate;
  capacity_ = rate_ * depth_seconds_;
  tokens_ = std::min(tokens_, capacity_);
}

}  // namespace aces::control
