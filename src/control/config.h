// Tier-2 controller configuration shared by the simulator and the runtime.
#pragma once

#include "common/types.h"
#include "control/lqr.h"

namespace aces::control {

/// The three systems compared in the paper's evaluation (§VI).
enum class FlowPolicy {
  /// System 1: the paper's proposal — LQR flow control, occupancy-
  /// proportional token-bucket CPU control, max-flow forwarding.
  kAces,
  /// System 2: fire-and-forget — send regardless of downstream occupancy,
  /// drop on full buffers, static CPU targets.
  kUdp,
  /// System 3: min-flow / blocking send — a PE sleeps while any downstream
  /// buffer is full; its CPU is redistributed on the node.
  kLockStep,
  /// Ablation baseline (not in the paper's evaluation): watermark XON/XOFF
  /// backpressure in the style of Storm/Flink — a PE advertises "stop"
  /// (r_max = 0) when its buffer crosses the high watermark and "go"
  /// (r_max = ∞) once it drains below the low watermark. CPU control is
  /// identical to ACES, so differences isolate Eq. 7's LQR flow law.
  kThreshold,
};

const char* to_string(FlowPolicy policy);

/// True for policies whose advertisements must propagate upstream.
constexpr bool uses_flow_control(FlowPolicy policy) {
  return policy == FlowPolicy::kAces || policy == FlowPolicy::kThreshold;
}

/// How the ACES/Threshold water-filling weighs PEs (ablation knob; the
/// paper's §V-D prescribes occupancy).
enum class CpuControlKind {
  /// "expend their tokens for CPU cycles proportional to their input buffer
  /// occupancies" — congested PEs temporarily outbid idle ones.
  kOccupancyProportional,
  /// Weigh by the tier-1 target instead: token/feedback caps still apply,
  /// but short-term congestion does not attract extra CPU. Isolates the
  /// value of occupancy-driven reallocation.
  kTargetProportional,
};

const char* to_string(CpuControlKind kind);

/// Where Eq. 7's ρ(n) comes from.
enum class RhoSource {
  /// Processing capacity at the current allocation: c_j(n) / T̂_j. Keeps the
  /// advertisement meaningful when the PE is input-starved.
  kAllocatedCapacity,
  /// Measured completions per interval.
  kMeasured,
};

struct ControllerConfig {
  FlowPolicy policy = FlowPolicy::kAces;
  LqrWeights lqr;
  /// Feedback delay (control intervals) the LQR design assumes between an
  /// advertisement and its effect on the arrival rate.
  int feedback_delay_ticks = 1;
  /// Buffer set-point as a fraction of capacity (paper: b0 = B/2).
  double b0_fraction = 0.5;
  /// Token-bucket depth in seconds of accrual at the CPU target.
  double bucket_depth_seconds = 2.0;
  /// EWMA weight for the per-SDO service-time estimate T̂.
  double service_ewma_alpha = 0.2;
  /// EWMA weight for the arrival-rate estimate.
  double arrival_ewma_alpha = 0.3;
  RhoSource rho_source = RhoSource::kAllocatedCapacity;
  /// Lower clamp for advertised rates (see FlowController).
  double rate_floor = 0.0;
  /// Visible work is padded by this many SDOs when sizing CPU demands, so an
  /// idle PE retains a small share and can begin processing the moment an
  /// SDO arrives instead of waiting out the control interval.
  double demand_floor_sdos = 2.0;
  /// kThreshold watermarks, as fractions of buffer capacity: advertise XOFF
  /// at or above `threshold_high`, XON again at or below `threshold_low`.
  double threshold_high = 0.8;
  double threshold_low = 0.4;
  /// Water-filling weight source for ACES/Threshold (see CpuControlKind).
  CpuControlKind cpu_control = CpuControlKind::kOccupancyProportional;
  /// Graceful degradation under failures: when > 0 and the freshest
  /// downstream advertisement is older than this many seconds, the
  /// controller treats the downstream r_max as zero — a silent (crashed or
  /// partitioned) consumer must not be mistaken for an unconstrained one.
  /// 0 disables the check (healthy-topology default).
  Seconds advert_staleness_timeout = 0.0;
};

}  // namespace aces::control
