// Runtime evaluation of the Eq. 7 flow-control law.
//
// Once per control interval, each PE computes the maximum input rate it can
// sustain — from its current processing rate, its buffer deviation history,
// and its own recent advertisements — and advertises it upstream. The gains
// come from control::design_flow_gains (or are supplied directly for the
// gain-sweep ablation).
#pragma once

#include <limits>

#include "common/ring_buffer.h"
#include "common/types.h"
#include "control/lqr.h"

namespace aces::control {

/// Per-PE state machine for Eq. 7:
///   r_max(n) = [ρ(n) − Σ_k λ_k (b(n−k) − b0)
///                     − Σ_l μ_l (r_max(n−l) − ρ(n−l))]⁺
class FlowController {
 public:
  /// `b0`: buffer occupancy set-point in SDOs. `rate_floor` keeps a starved
  /// controller from latching shut (an all-zero advertisement would stop
  /// upstream flow forever since ρ would then never grow).
  FlowController(FlowGains gains, double b0, double rate_floor = 0.0);

  /// Computes and records r_max for this interval.
  /// `buffer_occupancy`: SDOs queued now. `processing_rate`: ρ(n), SDOs/sec.
  /// `hard_cap`: optional upper bound (e.g. free buffer space per second);
  /// pass +inf for none.
  double update(double buffer_occupancy, double processing_rate,
                double hard_cap = std::numeric_limits<double>::infinity());

  /// Most recent advertisement (r_max of the last update()).
  [[nodiscard]] double last_advertisement() const { return last_rmax_; }

  /// Re-homes the set-point (used when buffer capacity changes in sweeps).
  void set_b0(double b0);
  [[nodiscard]] double b0() const { return b0_; }
  [[nodiscard]] const FlowGains& gains() const { return gains_; }

 private:
  FlowGains gains_;
  double b0_;
  double rate_floor_;
  double last_rmax_ = 0.0;
  HistoryRing<double> buffer_history_;    // b(n−k) − b0, newest first
  HistoryRing<double> mismatch_history_;  // r_max(n−l) − ρ(n−l)
};

}  // namespace aces::control
