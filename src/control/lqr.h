// LQR design of the flow-control gains (paper §V-C, Appendix A).
//
// The input buffer of a PE is a discrete integrator: with x(n) = b(n) − b0
// (occupancy deviation) and u(n) = r_max(n) − ρ(n) (advertised input rate
// minus processing rate),
//
//   x(n+1) = x(n) + u(n − d) + w(n)
//
// where d is the feedback/actuation delay in control intervals (an upstream
// PE reacts to an advertisement one or more ticks after it was computed) and
// w(n) lumps burstiness disturbances. Augmenting the state with the d
// in-flight controls and minimizing  Σ q·x² + r·u²  yields a stationary LQR
// whose gain row K gives exactly the form of the paper's Eq. 7:
//
//   r_max(n) = [ρ(n) − λ₀(b(n) − b0) − Σ_{l=1..d} μ_l (r_max(n−l) − ρ(n−l))]⁺
//
// with λ₀ = K[0] and μ_l = K[l]. Larger q/r tracks b0 tightly; smaller q/r
// equalizes input and processing rates (the trade-off §V-C describes).
#pragma once

#include "common/matrix.h"

namespace aces::control {

/// LQR cost weights: q penalizes buffer deviation, r penalizes rate
/// mismatch.
struct LqrWeights {
  double state_cost = 1.0;    ///< q
  double control_cost = 4.0;  ///< r
};

/// Gains of the Eq. 7 control law.
struct FlowGains {
  /// λ_k: gains on buffer-deviation lags (index 0 = current occupancy).
  std::vector<double> lambda;
  /// μ_l: gains on rate-mismatch lags (index 0 = lag 1).
  std::vector<double> mu;
};

/// Iterates the discrete algebraic Riccati equation
///   P ← AᵀPA − AᵀPB (R + BᵀPB)⁻¹ BᵀPA + Q
/// to a fixed point. Throws CheckFailure if it fails to converge.
Matrix solve_dare(const Matrix& a, const Matrix& b, const Matrix& q,
                  const Matrix& r, int max_iterations = 10000,
                  double tolerance = 1e-12);

/// Optimal state feedback K = (R + BᵀPB)⁻¹ BᵀPA for the DARE solution P.
Matrix lqr_gain(const Matrix& a, const Matrix& b, const Matrix& p,
                const Matrix& r);

/// Designs Eq. 7 gains for the buffer integrator with `actuation_delay` ≥ 0
/// control intervals of feedback delay.
FlowGains design_flow_gains(int actuation_delay, const LqrWeights& weights);

/// Closed-loop system matrix A − BK of the delay-augmented model under the
/// given gains; tests certify spectral_radius(·) < 1.
Matrix closed_loop_matrix(int actuation_delay, const FlowGains& gains);

}  // namespace aces::control
