#include "control/node_controller.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aces::control {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

const char* to_string(FlowPolicy policy) {
  switch (policy) {
    case FlowPolicy::kAces: return "ACES";
    case FlowPolicy::kUdp: return "UDP";
    case FlowPolicy::kLockStep: return "Lock-Step";
    case FlowPolicy::kThreshold: return "Threshold";
  }
  return "?";
}

const char* to_string(CpuControlKind kind) {
  switch (kind) {
    case CpuControlKind::kOccupancyProportional: return "occupancy";
    case CpuControlKind::kTargetProportional: return "target";
  }
  return "?";
}

NodeController::NodeController(const graph::ProcessingGraph& graph,
                               NodeId node, const opt::AllocationPlan& plan,
                               const ControllerConfig& config)
    : graph_(&graph),
      node_(node),
      config_(config),
      capacity_(graph.node(node).cpu_capacity) {
  ACES_CHECK_MSG(plan.pe.size() == graph.pe_count(),
                 "allocation plan does not match graph");
  ACES_CHECK_MSG(config.feedback_delay_ticks >= 0, "negative feedback delay");
  ACES_CHECK_MSG(config.b0_fraction > 0.0 && config.b0_fraction < 1.0,
                 "b0 fraction must be in (0,1)");
  ACES_CHECK_MSG(config.threshold_low > 0.0 &&
                     config.threshold_low < config.threshold_high &&
                     config.threshold_high <= 1.0,
                 "require 0 < threshold_low < threshold_high <= 1");
  ACES_CHECK_MSG(config.advert_staleness_timeout >= 0.0,
                 "negative advertisement staleness timeout");
  const auto& pes = graph.pes_on_node(node);
  states_.reserve(pes.size());
  for (PeId id : pes) states_.push_back(make_state(id, plan.at(id).cpu));
}

NodeController::PeState NodeController::make_state(PeId id,
                                                   double cpu_target) const {
  const auto& d = graph_->pe(id);
  PeState s;
  s.cpu_target = cpu_target;
  s.bucket = TokenBucket(s.cpu_target, config_.bucket_depth_seconds);
  s.flow = FlowController(
      design_flow_gains(config_.feedback_delay_ticks, config_.lqr),
      config_.b0_fraction * d.buffer_capacity, config_.rate_floor);
  s.service_estimate = Ewma(config_.service_ewma_alpha);
  s.service_estimate.add(d.mean_service_time());  // prior: stationary mean
  s.arrival_rate = Ewma(config_.arrival_ewma_alpha);
  s.prev_cpu_share = s.cpu_target;
  return s;
}

void NodeController::reset_state() {
  const auto& pes = local_pes();
  for (std::size_t i = 0; i < pes.size(); ++i) {
    states_[i] = make_state(pes[i], states_[i].cpu_target);
  }
}

void NodeController::set_plan(const opt::AllocationPlan& plan) {
  ACES_CHECK_MSG(plan.pe.size() == graph_->pe_count(),
                 "allocation plan does not match graph");
  const auto& pes = local_pes();
  for (std::size_t i = 0; i < pes.size(); ++i) {
    states_[i].cpu_target = plan.at(pes[i]).cpu;
    states_[i].bucket.set_rate(states_[i].cpu_target);
  }
}

void NodeController::set_capacity(double capacity) {
  ACES_CHECK_MSG(capacity > 0.0, "node capacity must be positive");
  capacity_ = capacity;
}

double NodeController::cpu_target(std::size_t i) const {
  ACES_CHECK(i < states_.size());
  return states_[i].cpu_target;
}

double NodeController::tokens(std::size_t i) const {
  ACES_CHECK(i < states_.size());
  return states_[i].bucket.available();
}

double NodeController::service_estimate(std::size_t i) const {
  ACES_CHECK(i < states_.size());
  return states_[i].service_estimate.value();
}

double NodeController::rho(const PeState& state, const PeTickInput& in,
                           Seconds dt) const {
  const double t_hat = std::max(state.service_estimate.value(), 1e-9);
  switch (config_.rho_source) {
    case RhoSource::kAllocatedCapacity:
      return state.prev_cpu_share / t_hat;
    case RhoSource::kMeasured:
      return in.processed_sdos / dt;
  }
  return 0.0;
}

double NodeController::effective_downstream_rmax(
    const PeTickInput& in) const {
  if (config_.advert_staleness_timeout > 0.0 &&
      in.downstream_advert_age > config_.advert_staleness_timeout) {
    // Every downstream consumer has gone silent past the timeout: assume
    // they are dead and stop pushing output at them rather than integrating
    // their last (now meaningless) advertisement.
    return 0.0;
  }
  return in.downstream_rmax;
}

std::vector<PeTickOutput> NodeController::tick(
    Seconds dt, const std::vector<PeTickInput>& inputs) {
  ACES_CHECK_MSG(dt > 0.0, "tick interval must be positive");
  const auto& pes = local_pes();
  ACES_CHECK_MSG(inputs.size() == pes.size(),
                 "one PeTickInput required per local PE");

  // Phase 1: account for the elapsed interval.
  for (std::size_t i = 0; i < pes.size(); ++i) {
    PeState& s = states_[i];
    const PeTickInput& in = inputs[i];
    s.bucket.accrue(dt);
    s.bucket.charge(in.cpu_seconds_used);
    if (in.processed_sdos > 0.0) {
      s.service_estimate.add(in.cpu_seconds_used / in.processed_sdos);
    }
    s.arrival_rate.add(in.arrived_sdos / dt);
  }

  // Phase 2: CPU partitioning for the next interval.
  std::vector<double> shares(pes.size(), 0.0);
  switch (config_.policy) {
    case FlowPolicy::kUdp: {
      // Static enforcement of tier-1 targets, rescaled if oversubscribed.
      double total = 0.0;
      for (const PeState& s : states_) total += s.cpu_target;
      const double scale = total > capacity_ ? capacity_ / total : 1.0;
      for (std::size_t i = 0; i < pes.size(); ++i)
        shares[i] = states_[i].cpu_target * scale;
      break;
    }
    case FlowPolicy::kAces:
    case FlowPolicy::kThreshold:
    case FlowPolicy::kLockStep: {
      std::vector<CpuDemand> demands(pes.size());
      for (std::size_t i = 0; i < pes.size(); ++i) {
        const PeState& s = states_[i];
        const PeTickInput& in = inputs[i];
        const auto& d = graph_->pe(pes[i]);
        const double t_hat = std::max(s.service_estimate.value(), 1e-9);
        // CPU-seconds of work visible for the next interval: queued SDOs
        // plus expected arrivals, padded by the demand floor (see config).
        const double work =
            (in.buffer_occupancy + s.arrival_rate.value() * dt +
             config_.demand_floor_sdos) * t_hat;
        double cap = std::max(s.bucket.available(), 0.0) / dt;
        cap = std::min(cap, work / dt);
        if (config_.policy != FlowPolicy::kLockStep) {
          // ACES / Threshold — Eq. 8: output rate bounded by the fastest
          // downstream r_max, zero once all downstream adverts are stale.
          const double down_rmax = effective_downstream_rmax(in);
          if (std::isfinite(down_rmax) && d.selectivity > 0.0) {
            const double input_bound = down_rmax / d.selectivity;
            cap = std::min(cap, input_bound * t_hat);
          }
          const double weight =
              config_.cpu_control == CpuControlKind::kOccupancyProportional
                  ? work
                  : s.cpu_target;
          demands[i] = CpuDemand{weight, cap};
        } else {  // Lock-Step: blocked PEs sleep, CPU is redistributed in
                  // proportion to the long-term targets.
          if (in.output_blocked) cap = 0.0;
          demands[i] = CpuDemand{s.cpu_target, cap};
        }
      }
      shares = partition_cpu(capacity_, demands);
      break;
    }
  }

  // Phase 3: flow-control advertisements.
  std::vector<PeTickOutput> out(pes.size());
  for (std::size_t i = 0; i < pes.size(); ++i) {
    PeState& s = states_[i];
    const PeTickInput& in = inputs[i];
    out[i].cpu_share = shares[i];
    s.prev_cpu_share = shares[i];
    if (config_.policy == FlowPolicy::kAces) {
      const auto& d = graph_->pe(pes[i]);
      // A full buffer admits at most what drains this interval.
      const double free_space =
          std::max(static_cast<double>(d.buffer_capacity) -
                       in.buffer_occupancy, 0.0);
      const double processing = rho(s, in, dt);
      const double hard_cap = free_space / dt + processing;
      out[i].advertised_rmax = s.flow.update(in.buffer_occupancy, processing,
                                             hard_cap);
    } else if (config_.policy == FlowPolicy::kThreshold) {
      // Watermark hysteresis: XOFF above high, XON again below low.
      const auto& d = graph_->pe(pes[i]);
      const double fill =
          in.buffer_occupancy / static_cast<double>(d.buffer_capacity);
      if (fill >= config_.threshold_high) {
        s.xoff = true;
      } else if (fill <= config_.threshold_low) {
        s.xoff = false;
      }
      out[i].advertised_rmax = s.xoff ? 0.0 : kInf;
    } else {
      out[i].advertised_rmax = kInf;
    }
  }
  return out;
}

}  // namespace aces::control
