// Proportional CPU partitioning with per-PE caps (paper §V-D).
//
// "The PEs are allowed to expend their tokens for CPU cycles proportional to
//  their input buffer occupancies, such that c_j(n) does not exceed the
//  bound of Equation 8."
//
// partition_cpu is a pure water-filling routine: shares are proportional to
// `weight` until a PE hits its `cap`, at which point its residual demand is
// redistributed over the remaining PEs. Used with occupancy weights by ACES
// and with CPU-target weights by Lock-Step's redistribution.
#pragma once

#include <vector>

namespace aces::control {

struct CpuDemand {
  /// Proportional-share driver; non-negative. Zero-weight PEs receive none.
  double weight = 0.0;
  /// Hard ceiling on this PE's share this interval (tokens, Eq. 8 feedback,
  /// outstanding work). May be +infinity.
  double cap = 0.0;
};

/// Splits `capacity` across demands; result[i] ≤ demands[i].cap and
/// Σ result ≤ capacity. Unusable capacity (all caps reached) is left idle.
std::vector<double> partition_cpu(double capacity,
                                  const std::vector<CpuDemand>& demands);

}  // namespace aces::control
