#include "control/flow_controller.h"

#include <algorithm>

#include "common/check.h"

namespace aces::control {

FlowController::FlowController(FlowGains gains, double b0, double rate_floor)
    : gains_(std::move(gains)),
      b0_(b0),
      rate_floor_(rate_floor),
      buffer_history_(std::max<std::size_t>(gains_.lambda.size(), 1)),
      mismatch_history_(std::max<std::size_t>(gains_.mu.size(), 1)) {
  ACES_CHECK_MSG(!gains_.lambda.empty(), "need at least one buffer gain");
  ACES_CHECK_MSG(b0 >= 0.0, "negative buffer set-point");
  ACES_CHECK_MSG(rate_floor >= 0.0, "negative rate floor");
}

double FlowController::update(double buffer_occupancy, double processing_rate,
                              double hard_cap) {
  ACES_CHECK_MSG(buffer_occupancy >= 0.0, "negative buffer occupancy");
  ACES_CHECK_MSG(processing_rate >= 0.0, "negative processing rate");
  buffer_history_.push(buffer_occupancy - b0_);

  double rmax = processing_rate;
  for (std::size_t k = 0; k < gains_.lambda.size(); ++k)
    rmax -= gains_.lambda[k] * buffer_history_.at_lag(k);
  for (std::size_t l = 0; l < gains_.mu.size(); ++l)
    rmax -= gains_.mu[l] * mismatch_history_.at_lag(l);

  rmax = std::clamp(rmax, rate_floor_, std::max(hard_cap, rate_floor_));
  // Record the realized mismatch (after clamping — the clamp is part of the
  // plant the next step observes, which keeps the [·]⁺ projection honest).
  mismatch_history_.push(rmax - processing_rate);
  last_rmax_ = rmax;
  return rmax;
}

void FlowController::set_b0(double b0) {
  ACES_CHECK(b0 >= 0.0);
  b0_ = b0;
}

}  // namespace aces::control
