// Transport abstraction for the multi-process distributed runtime.
//
// The coordinator and its workers speak wire.h frames over an Endpoint —
// a bidirectional, ordered, reliable frame pipe. Two backends implement
// it:
//
//   * in-process (transport/inproc.h): a pair of mutex+condvar frame
//     queues. The default backend; the "worker processes" are threads of
//     the coordinator process. Frames are still fully encoded and decoded
//     so both backends run byte-identical code paths.
//   * sockets (transport/uds.h): SOCK_STREAM over a Unix-domain socket or
//     loopback TCP, one connection per worker, length-prefixed frames.
//
// Contract:
//   * send() is thread-safe (a worker's heartbeat thread and its step loop
//     both send); a frame is written atomically with respect to other
//     sends on the same endpoint.
//   * recv() is single-consumer and blocks up to `timeout_ms` for one
//     complete frame.
//   * A peer closing (or dying) surfaces as RecvStatus::kClosed; malformed
//     bytes surface as kError — never as undefined behavior.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "runtime/wire.h"

namespace aces::runtime::transport {

enum class TransportKind {
  kInProc,  ///< worker threads + in-memory frame queues (default)
  kUds,     ///< worker processes + Unix-domain stream sockets
  kTcp,     ///< worker processes + loopback TCP
};

const char* to_string(TransportKind kind);
/// Parses "inproc" / "uds" / "tcp"; nullopt otherwise.
std::optional<TransportKind> parse_transport(std::string_view name);

enum class RecvStatus {
  kOk,       ///< *out holds a frame
  kTimeout,  ///< nothing arrived within timeout_ms
  kClosed,   ///< peer hung up cleanly (or its process died)
  kError,    ///< protocol violation (bad magic/version/length) or IO error
};

/// One side of a coordinator↔worker frame pipe.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  Endpoint() = default;
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// Queues/writes one complete frame (as produced by wire::encode).
  /// Thread-safe. Returns false when the peer is gone.
  virtual bool send(const std::vector<std::uint8_t>& frame) = 0;

  /// Waits up to `timeout_ms` (< 0 = forever) for one frame. Single
  /// consumer.
  virtual RecvStatus recv(wire::Frame* out, int timeout_ms) = 0;

  /// Closes this side; concurrent and subsequent recv() calls on the peer
  /// return kClosed once the queue drains.
  virtual void close() = 0;

  /// Reason for the last kError, for diagnostics.
  [[nodiscard]] virtual std::string_view last_error() const = 0;
};

}  // namespace aces::runtime::transport
