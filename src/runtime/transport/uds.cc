#include "runtime/transport/uds.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/mutex.h"

namespace aces::runtime::transport {

namespace {

void set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
}

/// Remaining whole milliseconds until `deadline` (>= 0), for poll().
int ms_until(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return left.count() < 0 ? 0 : static_cast<int>(left.count());
}

/// Frame pipe over one connected stream socket.
class FdEndpoint final : public Endpoint {
 public:
  explicit FdEndpoint(int fd) : fd_(fd) {}

  ~FdEndpoint() override {
    close();
    if (fd_ >= 0) ::close(fd_);
  }

  bool send(const std::vector<std::uint8_t>& frame) override {
    // One lock per frame: concurrent senders (step loop, heartbeat thread)
    // must not interleave bytes inside a frame.
    MutexLock lock(send_mu_);
    std::size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;  // peer gone (EPIPE/ECONNRESET) or socket shut down
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  RecvStatus recv(wire::Frame* out, int timeout_ms) override {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);
    std::uint8_t header[8];
    const RecvStatus hs = read_exact(header, sizeof header, timeout_ms,
                                     deadline, /*mid_frame=*/false);
    if (hs != RecvStatus::kOk) return hs;
    wire::WireError error;
    const auto parsed = wire::parse_header(header, &error);
    if (!parsed.has_value()) {
      last_error_ = error.reason;
      return RecvStatus::kError;
    }
    out->type = parsed->first;
    out->payload.resize(parsed->second);
    if (parsed->second == 0) return RecvStatus::kOk;
    // The header committed the peer to a payload: a timeout mid-frame is a
    // protocol error, not a clean "nothing arrived".
    return read_exact(out->payload.data(), out->payload.size(), timeout_ms,
                      deadline, /*mid_frame=*/true);
  }

  void close() override {
    // shutdown() (not ::close) unblocks a concurrent recv/send without
    // racing the fd number; the fd itself is released in the destructor.
    ::shutdown(fd_, SHUT_RDWR);
  }

  [[nodiscard]] std::string_view last_error() const override {
    return last_error_;
  }

 private:
  RecvStatus read_exact(std::uint8_t* buf, std::size_t len, int timeout_ms,
                        std::chrono::steady_clock::time_point deadline,
                        bool mid_frame) {
    std::size_t got = 0;
    while (got < len) {
      if (timeout_ms >= 0) {
        pollfd pfd{fd_, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, ms_until(deadline));
        if (pr < 0) {
          if (errno == EINTR) continue;
          last_error_ = std::strerror(errno);
          return RecvStatus::kError;
        }
        if (pr == 0) {
          if (!mid_frame && got == 0) return RecvStatus::kTimeout;
          last_error_ = "timed out mid-frame";
          return RecvStatus::kError;
        }
      }
      const ssize_t n = ::read(fd_, buf + got, len - got);
      if (n < 0) {
        if (errno == EINTR) continue;
        last_error_ = std::strerror(errno);
        return RecvStatus::kError;
      }
      if (n == 0) {
        if (!mid_frame && got == 0) return RecvStatus::kClosed;
        last_error_ = "peer closed mid-frame";
        return RecvStatus::kError;
      }
      got += static_cast<std::size_t>(n);
    }
    return RecvStatus::kOk;
  }

  int fd_;
  Mutex send_mu_;
  std::string last_error_;
};

int make_listener_fd(int family) {
  return ::socket(family, SOCK_STREAM | SOCK_CLOEXEC, 0);
}

std::unique_ptr<Endpoint> connect_with_retry(
    int family, const sockaddr* addr, socklen_t addr_len, int timeout_ms,
    std::string* error) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = ::socket(family, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      set_error(error, "socket");
      return nullptr;
    }
    if (::connect(fd, addr, addr_len) == 0) {
      if (family == AF_INET) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      }
      return std::make_unique<FdEndpoint>(fd);
    }
    const int saved = errno;
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline) {
      errno = saved;
      set_error(error, "connect");
      return nullptr;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace

SocketListener::~SocketListener() {
  if (fd_ >= 0) ::close(fd_);
  if (!path_.empty()) ::unlink(path_.c_str());
}

std::unique_ptr<SocketListener> SocketListener::listen_uds(
    const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return nullptr;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = make_listener_fd(AF_UNIX);
  if (fd < 0) {
    set_error(error, "socket");
    return nullptr;
  }
  ::unlink(path.c_str());  // a stale socket from a crashed run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    set_error(error, "bind/listen " + path);
    ::close(fd);
    return nullptr;
  }
  // aces-lint: allow(raw-new) private ctor: make_unique cannot reach it; setup-time only
  return std::unique_ptr<SocketListener>(new SocketListener(fd, path, 0));
}

std::unique_ptr<SocketListener> SocketListener::listen_tcp(
    std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  const int fd = make_listener_fd(AF_INET);
  if (fd < 0) {
    set_error(error, "socket");
    return nullptr;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    set_error(error, "bind/listen tcp");
    ::close(fd);
    return nullptr;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    set_error(error, "getsockname");
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<SocketListener>(
      // aces-lint: allow(raw-new) private ctor: make_unique cannot reach it; setup-time only
      new SocketListener(fd, "", ntohs(bound.sin_port)));
}

std::unique_ptr<Endpoint> SocketListener::accept(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr < 0 && errno == EINTR) continue;
    if (pr <= 0) return nullptr;
    break;
  }
  const int conn = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
  if (conn < 0) return nullptr;
  if (port_ != 0) {
    const int one = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  return std::make_unique<FdEndpoint>(conn);
}

std::unique_ptr<Endpoint> connect_uds(const std::string& path, int timeout_ms,
                                      std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return nullptr;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return connect_with_retry(AF_UNIX,
                            reinterpret_cast<const sockaddr*>(&addr),
                            sizeof addr, timeout_ms, error);
}

std::unique_ptr<Endpoint> connect_tcp(std::uint16_t port, int timeout_ms,
                                      std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return connect_with_retry(AF_INET,
                            reinterpret_cast<const sockaddr*>(&addr),
                            sizeof addr, timeout_ms, error);
}

const char* to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProc: return "inproc";
    case TransportKind::kUds: return "uds";
    case TransportKind::kTcp: return "tcp";
  }
  return "unknown";
}

std::optional<TransportKind> parse_transport(std::string_view name) {
  if (name == "inproc") return TransportKind::kInProc;
  if (name == "uds") return TransportKind::kUds;
  if (name == "tcp") return TransportKind::kTcp;
  return std::nullopt;
}

}  // namespace aces::runtime::transport
