// In-process transport backend: a pair of Endpoints joined by two
// bounded-growth frame queues (one per direction), synchronized with the
// annotated aces::Mutex + condition_variable_any pattern.
//
// Frames cross the "pipe" as encoded bytes and are re-parsed on receive,
// so the in-process and socket backends exercise the identical wire codec
// — the cross-transport conformance battery compares their outputs
// byte-for-byte, which is only meaningful if neither side gets to skip
// serialization.
#pragma once

#include <memory>
#include <utility>

#include "runtime/transport/transport.h"

namespace aces::runtime::transport {

/// Two connected endpoints: frames sent on .first arrive at .second and
/// vice versa. Either side may be handed to another thread.
std::pair<std::unique_ptr<Endpoint>, std::unique_ptr<Endpoint>>
make_inproc_pair();

}  // namespace aces::runtime::transport
