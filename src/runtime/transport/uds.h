// Socket transport backend: SOCK_STREAM framing of wire.h frames over a
// Unix-domain socket or loopback TCP.
//
// Topology is a star: the coordinator listens, each spawned worker process
// connects exactly once, and every frame a worker exchanges with the rest
// of the system goes through its coordinator connection (the coordinator
// relays cross-worker traffic inside the barrier frames — see
// docs/architecture.md, "Distributed runtime").
//
// Framing is the wire.h length-prefixed header; a frame is written with a
// single locked write loop so concurrent senders (step loop + heartbeat
// thread) never interleave bytes. Reads are bounds-checked against the
// parsed header; a dead peer is kClosed, garbage is kError.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "runtime/transport/transport.h"

namespace aces::runtime::transport {

/// Listening socket the coordinator accepts worker connections on. UDS and
/// loopback-TCP flavors differ only in the address family.
class SocketListener {
 public:
  ~SocketListener();
  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// Binds and listens on a fresh Unix-domain socket at `path` (unlinked on
  /// destruction). Null + *error on failure.
  static std::unique_ptr<SocketListener> listen_uds(const std::string& path,
                                                    std::string* error);
  /// Binds and listens on 127.0.0.1 with an ephemeral port (see port()).
  static std::unique_ptr<SocketListener> listen_tcp(std::string* error);

  /// Accepts one connection, waiting up to `timeout_ms`; null on timeout or
  /// a closed listener.
  std::unique_ptr<Endpoint> accept(int timeout_ms);

  /// TCP: the bound port. UDS: 0.
  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// UDS: the bound path. TCP: empty.
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  SocketListener(int fd, std::string path, std::uint16_t port)
      : fd_(fd), path_(std::move(path)), port_(port) {}

  int fd_ = -1;
  std::string path_;
  std::uint16_t port_ = 0;
};

/// Connects to a coordinator's UDS listener, retrying until `timeout_ms`
/// (the listener is created before workers spawn, so retries only cover
/// scheduler races). Null + *error on failure.
std::unique_ptr<Endpoint> connect_uds(const std::string& path, int timeout_ms,
                                      std::string* error);
/// Connects to a coordinator's loopback-TCP listener.
std::unique_ptr<Endpoint> connect_tcp(std::uint16_t port, int timeout_ms,
                                      std::string* error);

}  // namespace aces::runtime::transport
