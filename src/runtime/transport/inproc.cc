#include "runtime/transport/inproc.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace aces::runtime::transport {

namespace {

/// One direction of the pipe: encoded frames in FIFO order plus a closed
/// latch. The consumer side re-parses bytes through wire::parse_frame so
/// the in-process backend cannot silently diverge from the socket one.
struct FrameQueue {
  Mutex mu;
  std::condition_variable_any cv;
  std::deque<std::vector<std::uint8_t>> frames ACES_GUARDED_BY(mu);
  bool closed ACES_GUARDED_BY(mu) = false;
};

class InprocEndpoint final : public Endpoint {
 public:
  InprocEndpoint(std::shared_ptr<FrameQueue> tx, std::shared_ptr<FrameQueue> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {}

  ~InprocEndpoint() override { close(); }

  bool send(const std::vector<std::uint8_t>& frame) override {
    {
      MutexLock lock(tx_->mu);
      if (tx_->closed) return false;
      tx_->frames.push_back(frame);
    }
    tx_->cv.notify_one();
    return true;
  }

  RecvStatus recv(wire::Frame* out, int timeout_ms) override {
    std::vector<std::uint8_t> bytes;
    {
      // Explicit wait loop (not wait_for(pred)): the thread-safety
      // analysis cannot see through predicate lambdas — same idiom as
      // runtime/channel.h.
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(timeout_ms < 0 ? 0
                                                                     : timeout_ms);
      MutexLock lock(rx_->mu);
      while (rx_->frames.empty() && !rx_->closed) {
        if (timeout_ms < 0) {
          rx_->cv.wait(rx_->mu);
        } else if (rx_->cv.wait_until(rx_->mu, deadline) ==
                   std::cv_status::timeout) {
          if (!rx_->frames.empty() || rx_->closed) break;
          return RecvStatus::kTimeout;
        }
      }
      if (rx_->frames.empty()) return RecvStatus::kClosed;
      bytes = std::move(rx_->frames.front());
      rx_->frames.pop_front();
    }
    wire::WireError error;
    auto frame = wire::parse_frame(bytes.data(), bytes.size(), &error);
    if (!frame.has_value()) {
      last_error_ = error.reason;
      return RecvStatus::kError;
    }
    *out = std::move(*frame);
    return RecvStatus::kOk;
  }

  void close() override {
    for (FrameQueue* q : {tx_.get(), rx_.get()}) {
      {
        MutexLock lock(q->mu);
        q->closed = true;
      }
      q->cv.notify_all();
    }
  }

  [[nodiscard]] std::string_view last_error() const override {
    return last_error_;
  }

 private:
  std::shared_ptr<FrameQueue> tx_;
  std::shared_ptr<FrameQueue> rx_;
  std::string last_error_;
};

}  // namespace

std::pair<std::unique_ptr<Endpoint>, std::unique_ptr<Endpoint>>
make_inproc_pair() {
  auto a_to_b = std::make_shared<FrameQueue>();
  auto b_to_a = std::make_shared<FrameQueue>();
  return {std::make_unique<InprocEndpoint>(a_to_b, b_to_a),
          std::make_unique<InprocEndpoint>(b_to_a, a_to_b)};
}

}  // namespace aces::runtime::transport
