// Worker side of the multi-process distributed runtime.
//
// A worker hosts a contiguous shard of processing nodes and executes them
// under the coordinator's barrier-stepped virtual clock (see
// dist_coordinator.h for the protocol and the determinism argument). The
// same worker code runs as a thread of the coordinator (in-process
// transport) or as a separate OS process connected over a socket — the
// Endpoint is the only difference.
#pragma once

#include <cstdint>

#include "runtime/transport/transport.h"
#include "runtime/wire.h"

namespace aces::runtime::dist {

/// Contiguous node partition: the worker owning node `node` out of
/// `node_count`, with `workers` shards. Worker r owns nodes
/// [r·N/W, (r+1)·N/W); pure arithmetic so every process derives the same
/// placement with no placement frames on the wire.
inline std::uint32_t owner_of_node(std::size_t node_count,
                                   std::uint32_t workers, std::uint32_t node) {
  // Exact inverse of the shard bounds floor(r·N/W): the smallest r with
  // floor((r+1)·N/W) > node.
  return static_cast<std::uint32_t>(
      ((static_cast<std::uint64_t>(node) + 1) * workers - 1) / node_count);
}

/// Runs the worker protocol on a connected endpoint: Hello, Config, then
/// barrier quanta until the final StepGo, Report, Shutdown. Returns the
/// process exit code (0 on a clean shutdown). `rank` is this worker's
/// shard index.
int worker_entry(transport::Endpoint& endpoint, std::uint32_t rank);

/// Hidden CLI hook: when argv designates a distributed-worker invocation
/// (`<exe> dist-worker --rank=R --uds=PATH | --tcp-port=P`), connects to
/// the coordinator, runs worker_entry, and returns its exit code. Returns
/// -1 when argv is a normal invocation — call this first in main():
///
///   int main(int argc, char** argv) {
///     if (const int rc = aces::runtime::dist::maybe_worker(argc, argv);
///         rc >= 0) {
///       return rc;
///     }
///     ...
///   }
int maybe_worker(int argc, char** argv);

}  // namespace aces::runtime::dist
