// Barrier-stepped worker engine. Determinism rules (each one is load-
// bearing for the cross-transport byte-identity guarantee — see
// docs/architecture.md):
//
//  * Virtual time advances in quanta q = dt / substeps under coordinator
//    barriers; nothing is paced by the wall clock except heartbeats.
//  * Every *cross-node* effect takes exactly one quantum, whether or not
//    the two nodes share a worker: SDO emissions and advert refreshes are
//    buffered into outboxes and delivered at the next barrier (the
//    coordinator relays them, including a worker's own loopback traffic).
//    Same-node sends are direct, as in the threaded runtime.
//  * Inbound cross-node deliveries are applied in the coordinator's
//    stable src_node order, which is partition-invariant because every
//    worker steps its nodes in id order.
//  * Per-PE randomness (service model, arrival process, fault draws) is
//    forked from the master seed by PE id — never by worker rank — so the
//    partition does not perturb any stream.
//  * Completions and drops inside quantum k are stamped at its end
//    (k+1)·q; arrivals keep their exact birth times.
#include "runtime/dist_worker.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "control/node_controller.h"
#include "fault/fault_injector.h"
#include "graph/serialization.h"
#include "metrics/collector.h"
#include "opt/global_optimizer.h"
#include "runtime/transport/uds.h"
#include "workload/arrivals.h"
#include "workload/markov_modulator.h"

namespace aces::runtime::dist {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Frozen advert_time for a node the coordinator declared dead: any
/// staleness timeout reads it as infinitely stale.
constexpr double kDeadAdvertTime = -1e300;
/// A worker waiting on the coordinator gives up after this long — the
/// coordinator drives the pace, so silence this long means it is gone.
constexpr int kCoordinatorTimeoutMs = 120000;

struct Sdo {
  Seconds birth = 0.0;
};

/// Rebuilds an AllocationPlan the NodeControllers can consume from the
/// per-PE target vectors carried on the wire.
opt::AllocationPlan plan_from_vectors(const std::vector<double>& cpu,
                                      const std::vector<double>& rin,
                                      const std::vector<double>& rout,
                                      std::size_t node_count) {
  opt::AllocationPlan plan;
  plan.pe.resize(cpu.size());
  for (std::size_t i = 0; i < cpu.size(); ++i) {
    plan.pe[i].cpu = cpu[i];
    plan.pe[i].rin_sdo = i < rin.size() ? rin[i] : 0.0;
    plan.pe[i].rout_sdo = i < rout.size() ? rout[i] : 0.0;
  }
  plan.node_usage.assign(node_count, 0.0);
  return plan;
}

class WorkerEngine {
 public:
  WorkerEngine(const wire::Config& cfg, transport::Endpoint& ep)
      : cfg_(cfg),
        ep_(ep),
        graph_(graph::topology_from_string(cfg.topology)),
        collector_(cfg.warmup, count_egress(graph_)) {
    graph_.validate();
    ACES_CHECK_MSG(cfg.substeps > 0, "substeps must be positive");
    ACES_CHECK_MSG(cfg.dt > 0.0, "dt must be positive");
    q_ = cfg.dt / cfg.substeps;

    controller_config_.policy = static_cast<control::FlowPolicy>(cfg.policy);
    controller_config_.advert_staleness_timeout = cfg.staleness;
    lockstep_ = controller_config_.policy == control::FlowPolicy::kLockStep;

    if (!cfg.faults.empty()) {
      fault::FaultSchedule schedule = fault::parse_fault_spec(cfg.faults);
      fault::validate(schedule, graph_);
      injector_ = std::make_unique<fault::FaultInjector>(
          std::move(schedule), cfg.seed, graph_.pe_count());
    }

    total_capacity_ = 0.0;
    for (NodeId n : graph_.all_nodes())
      total_capacity_ += graph_.node(n).cpu_capacity;

    const std::size_t node_count = graph_.node_count();
    node_begin_ = 0;
    node_end_ = node_count;
    if (cfg.num_workers > 1) {
      node_begin_ = static_cast<std::size_t>(cfg.rank) * node_count /
                    cfg.num_workers;
      node_end_ = static_cast<std::size_t>(cfg.rank + 1) * node_count /
                  cfg.num_workers;
    }

    const opt::AllocationPlan plan = plan_from_vectors(
        cfg.plan_cpu, cfg.plan_rin, cfg.plan_rout, node_count);

    Rng master(cfg.seed);
    pes_.resize(graph_.pe_count());
    visible_advert_.assign(graph_.pe_count(), kInf);
    visible_advert_time_.assign(graph_.pe_count(), 0.0);
    congested_.assign(graph_.pe_count(), 0);
    std::size_t egress_counter = 0;
    for (PeId id : graph_.all_pes()) {
      const auto& d = graph_.pe(id);
      PeState& pe = pes_[id.value()];
      pe.capacity = cfg.channel_capacity > 0
                        ? cfg.channel_capacity
                        : static_cast<std::size_t>(d.buffer_capacity);
      // Per-PE randomness forked by PE id, exactly as the threaded engine
      // does — the partition cannot perturb the streams.
      pe.service.emplace(d.service_time[0], d.service_time[1],
                         d.sojourn_mean[0], d.sojourn_mean[1],
                         master.fork(0x5E41 + id.value()));
      if (d.kind == graph::PeKind::kEgress) pe.egress_index = egress_counter++;
      pe.share = plan.at(id).cpu;
    }

    for (std::size_t n = node_begin_; n < node_end_; ++n) {
      controllers_.emplace_back(graph_, NodeId(static_cast<NodeId::value_type>(n)),
                                plan, controller_config_);
    }
    was_down_.assign(node_end_ - node_begin_, false);
    was_stalled_.assign(graph_.pe_count(), false);

    const Seconds start_vtime = static_cast<double>(cfg.start_quantum) * q_;
    for (PeId id : graph_.all_pes()) {
      const auto& d = graph_.pe(id);
      if (d.kind != graph::PeKind::kIngress) continue;
      // fork() advances the parent state, so every worker must fork every
      // ingress PE's stream in the same order — including the ones it does
      // not own — or the partition would perturb the arrival sequences.
      Rng stream_rng = master.fork(0xA11 + id.value());
      if (!owns_node(d.node.value())) continue;
      Source src;
      src.pe = id.value();
      src.process = workload::make_arrival_process(
          graph_.stream(d.input_stream), std::move(stream_rng));
      src.next_arrival = src.process->next_interarrival();
      // A worker joining mid-run (restart after a prockill) fast-forwards
      // its arrival streams: the SDOs that would have arrived while the
      // process was dead are gone, but the generator state matches what an
      // uninterrupted worker would hold.
      while (src.next_arrival < start_vtime) {
        src.next_arrival += src.process->next_interarrival();
      }
      sources_.push_back(std::move(src));
    }
  }

  int run() {
    std::atomic<bool> stop{false};
    std::thread heartbeat([this, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::max(0.001, cfg_.heartbeat_interval)));
        wire::Heartbeat hb;
        hb.rank = cfg_.rank;
        hb.quantum = current_quantum_.load(std::memory_order_relaxed);
        if (!ep_.send(wire::encode(hb))) return;
      }
    });
    const int rc = loop();
    stop.store(true, std::memory_order_relaxed);
    heartbeat.join();
    return rc;
  }

 private:
  struct PeState {
    std::deque<Sdo> queue;
    std::size_t capacity = 0;
    /// Lock-Step cross-node backlog: deliveries accepted from the wire but
    /// not yet admitted to `queue` (receiver-side blocking — nothing is
    /// dropped). Drained at quantum start as space allows.
    std::deque<Sdo> inbound;
    /// Lock-Step same-node backlog held while a local consumer is full.
    std::deque<std::pair<std::size_t, Sdo>> pending;
    std::optional<workload::ServiceModel> service;
    std::size_t egress_index = static_cast<std::size_t>(-1);
    double share = 0.0;
    bool busy = false;
    Sdo current{};
    double work_remaining = 0.0;
    double used_this_tick = 0.0;
    double processed_this_tick = 0.0;
    double arrived_this_tick = 0.0;
    double selectivity_credit = 0.0;
    /// Local blocking: `pending` could not flush into a same-node consumer.
    bool blocked_local = false;
    /// Remote blocking: some cross-node downstream was congested at the
    /// last barrier.
    bool blocked_remote = false;
    std::uint64_t lifetime_arrived = 0;
    std::uint64_t lifetime_processed = 0;
    std::uint64_t lifetime_emitted = 0;
    std::uint64_t lifetime_dropped = 0;
    double lifetime_cpu = 0.0;

    [[nodiscard]] bool blocked() const { return blocked_local || blocked_remote; }
  };

  struct Source {
    std::size_t pe = 0;
    std::unique_ptr<workload::ArrivalProcess> process;
    Seconds next_arrival = 0.0;
  };

  static std::size_t count_egress(const graph::ProcessingGraph& g) {
    std::size_t count = 0;
    for (PeId id : g.all_pes()) count += g.pe(id).kind == graph::PeKind::kEgress;
    return count;
  }

  [[nodiscard]] bool owns_node(std::size_t node) const {
    return node >= node_begin_ && node < node_end_;
  }

  [[nodiscard]] bool fault_drops_delivery(std::size_t target, Seconds when) {
    if (injector_ == nullptr) return false;
    const PeId id(static_cast<PeId::value_type>(target));
    return injector_->node_down(graph_.pe(id).node, when) ||
           injector_->drop_delivery(id, when);
  }

  int loop() {
    for (;;) {
      wire::Frame frame;
      const auto status = ep_.recv(&frame, kCoordinatorTimeoutMs);
      if (status != transport::RecvStatus::kOk) return 1;
      switch (frame.type) {
        case wire::FrameType::kTargets: {
          const auto targets = wire::decode_targets(frame.payload);
          if (!targets.has_value()) return 1;
          const opt::AllocationPlan plan = plan_from_vectors(
              targets->cpu, targets->rin, targets->rout, graph_.node_count());
          for (auto& controller : controllers_) controller.set_plan(plan);
          break;
        }
        case wire::FrameType::kStepGo: {
          const auto go = wire::decode_step_go(frame.payload);
          if (!go.has_value()) return 1;
          current_quantum_.store(go->quantum, std::memory_order_relaxed);
          if ((go->flags & wire::kStepGoFinal) != 0) {
            if (!ep_.send(wire::encode(make_report()))) return 1;
            break;  // stay in the loop until Shutdown
          }
          run_quantum(*go);
          if (!ep_.send(wire::encode(make_step_done(go->quantum)))) return 1;
          break;
        }
        case wire::FrameType::kShutdown:
          return 0;
        default:
          return 1;  // protocol violation
      }
    }
  }

  // ---- one barrier quantum -------------------------------------------

  void run_quantum(const wire::StepGo& go) {
    const std::uint64_t k = go.quantum;
    const Seconds vnow = static_cast<double>(k) * q_;
    const Seconds vend = static_cast<double>(k + 1) * q_;

    // Membership first: a dead node's mailboxes clamp to r_max = 0 and an
    // infinitely stale timestamp, so both the staleness rule and the Eq. 8
    // max stop routing flow at it.
    for (const std::uint32_t node : go.down_nodes) {
      for (PeId id : graph_.pes_on_node(NodeId(node))) {
        visible_advert_[id.value()] = 0.0;
        visible_advert_time_[id.value()] = kDeadAdvertTime;
      }
    }
    for (const std::uint32_t node : go.up_nodes) {
      for (PeId id : graph_.pes_on_node(NodeId(node))) {
        visible_advert_[id.value()] = kInf;
        visible_advert_time_[id.value()] = vnow;
      }
    }
    // Advert refreshes from quantum k-1 (uniformly one quantum stale,
    // including this worker's own — the coordinator loops them back).
    for (const wire::Advert& a : go.adverts) {
      visible_advert_[a.pe] = a.rmax;
      visible_advert_time_[a.pe] = a.time;
    }
    std::fill(congested_.begin(), congested_.end(), 0);
    for (const std::uint32_t pe : go.congested_pes) congested_[pe] = 1;

    // Inbound cross-node deliveries, in the coordinator's stable src_node
    // order. Fault draws for a delivery happen here, on the worker hosting
    // the target — the per-PE draw sequence is partition-invariant.
    for (const wire::SdoDelivery& d : go.deliveries) {
      apply_delivery(d, vnow);
    }
    if (lockstep_) {
      for (std::size_t n = node_begin_; n < node_end_; ++n) {
        for (PeId id : graph_.pes_on_node(NodeId(static_cast<NodeId::value_type>(n)))) {
          drain_inbound(pes_[id.value()]);
        }
      }
    }

    // Modeled crash windows (the `crash` clause acted out by this
    // substrate, distinct from real prockills).
    if (injector_ != nullptr) handle_crash_transitions(vnow);

    // Control tick on the dt grid (quantum starts, skipping t = 0 — the
    // first tick fires once one full interval of history exists).
    if (k > 0 && k % cfg_.substeps == 0) {
      for (std::size_t i = 0; i < controllers_.size(); ++i) {
        if (!was_down_[i]) node_tick(i, vnow);
      }
    }

    // Lock-Step remote backpressure: a PE with a congested cross-node
    // downstream stops processing this quantum (bounded overshoot: at most
    // the one quantum already in flight).
    if (lockstep_) {
      for (std::size_t n = node_begin_; n < node_end_; ++n) {
        for (PeId id : graph_.pes_on_node(NodeId(static_cast<NodeId::value_type>(n)))) {
          PeState& pe = pes_[id.value()];
          pe.blocked_remote = false;
          for (PeId down : graph_.downstream(id)) {
            if (graph_.pe(down).node != graph_.pe(id).node &&
                congested_[down.value()] != 0) {
              pe.blocked_remote = true;
              break;
            }
          }
        }
      }
    }

    generate_arrivals(vnow, vend);
    process_quantum(k, vnow, vend);
  }

  void apply_delivery(const wire::SdoDelivery& d, Seconds vnow) {
    if (d.dest_pe >= pes_.size()) return;  // corrupt frame: ignore
    const auto& desc = graph_.pe(PeId(d.dest_pe));
    if (!owns_node(desc.node.value())) return;
    PeState& pe = pes_[d.dest_pe];
    if (fault_drops_delivery(d.dest_pe, vnow)) {
      ++pe.lifetime_dropped;
      collector_.on_internal_drop(vnow);
      return;
    }
    if (lockstep_) {
      // Never dropped: held receiver-side until the queue has room.
      pe.inbound.push_back(Sdo{d.birth});
      return;
    }
    if (pe.queue.size() < pe.capacity) {
      pe.queue.push_back(Sdo{d.birth});
      pe.arrived_this_tick += 1.0;
      ++pe.lifetime_arrived;
    } else {
      ++pe.lifetime_dropped;
      collector_.on_internal_drop(vnow);
    }
  }

  void drain_inbound(PeState& pe) {
    while (!pe.inbound.empty() && pe.queue.size() < pe.capacity) {
      pe.queue.push_back(pe.inbound.front());
      pe.inbound.pop_front();
      pe.arrived_this_tick += 1.0;
      ++pe.lifetime_arrived;
    }
  }

  void handle_crash_transitions(Seconds vnow) {
    for (std::size_t i = 0; i < controllers_.size(); ++i) {
      const NodeId node = controllers_[i].node();
      const bool is_down = injector_->node_down(node, vnow);
      if (is_down && !was_down_[i]) {
        crash_local_pes(node, vnow);
        crashed_this_quantum_.push_back(node.value());
      }
      if (!is_down && was_down_[i]) {
        controllers_[i].reset_state();
        for (PeId id : graph_.pes_on_node(node)) {
          PeState& pe = pes_[id.value()];
          pe.queue.clear();
          pe.inbound.clear();
          pe.arrived_this_tick = 0.0;
        }
        injector_->note_node_restart();
        restored_this_quantum_.push_back(node.value());
      }
      was_down_[i] = is_down;
    }
  }

  void crash_local_pes(NodeId node, Seconds vnow) {
    std::uint64_t lost = 0;
    for (PeId id : graph_.pes_on_node(node)) {
      PeState& pe = pes_[id.value()];
      std::uint64_t pe_lost = pe.busy ? 1 : 0;
      pe_lost += pe.pending.size();
      pe_lost += pe.inbound.size();
      pe_lost += pe.queue.size();
      pe.queue.clear();
      pe.inbound.clear();
      pe.pending.clear();
      pe.busy = false;
      pe.blocked_local = false;
      pe.blocked_remote = false;
      pe.work_remaining = 0.0;
      pe.share = 0.0;
      pe.lifetime_dropped += pe_lost;
      for (std::uint64_t j = 0; j < pe_lost; ++j)
        collector_.on_internal_drop(vnow);
      lost += pe_lost;
    }
    injector_->note_node_crash(lost);
  }

  void node_tick(std::size_t controller_index, Seconds vnow) {
    control::NodeController& controller = controllers_[controller_index];
    const auto& local = controller.local_pes();
    std::vector<control::PeTickInput> inputs(local.size());
    const Seconds staleness = controller_config_.advert_staleness_timeout;
    for (std::size_t i = 0; i < local.size(); ++i) {
      PeState& pe = pes_[local[i].value()];
      control::PeTickInput& in = inputs[i];
      in.buffer_occupancy =
          static_cast<double>(pe.queue.size() + pe.inbound.size());
      in.processed_sdos = pe.processed_this_tick;
      in.cpu_seconds_used = pe.used_this_tick;
      in.arrived_sdos = pe.arrived_this_tick;
      in.output_blocked = pe.blocked();
      const auto& downs = graph_.downstream(local[i]);
      if (downs.empty()) {
        in.downstream_rmax = kInf;
      } else {
        in.downstream_rmax = -kInf;
        Seconds freshest = -kInf;
        for (PeId down : downs) {
          const Seconds refreshed = visible_advert_time_[down.value()];
          const bool stale = staleness > 0.0 && vnow - refreshed > staleness;
          in.downstream_rmax = std::max(
              in.downstream_rmax, stale ? 0.0 : visible_advert_[down.value()]);
          freshest = std::max(freshest, refreshed);
        }
        in.downstream_advert_age = vnow - freshest;
      }
    }
    const std::vector<control::PeTickOutput> outputs =
        controller.tick(cfg_.dt, inputs);
    ++events_executed_;
    for (std::size_t i = 0; i < local.size(); ++i) {
      PeState& pe = pes_[local[i].value()];
      collector_.on_cpu_used(vnow, pe.used_this_tick);
      collector_.on_buffer_sample(
          vnow,
          std::min(1.0, static_cast<double>(pe.queue.size() +
                                            pe.inbound.size()) /
                            static_cast<double>(pe.capacity)));
      pe.used_this_tick = 0.0;
      pe.processed_this_tick = 0.0;
      pe.arrived_this_tick = 0.0;
      pe.share = outputs[i].cpu_share;
      // Injected advertisement loss: the refresh never leaves this worker,
      // so every peer (and this worker itself, via the loopback) keeps the
      // stale value.
      if (injector_ != nullptr && injector_->advert_lost(local[i], vnow))
        continue;
      wire::Advert advert;
      advert.pe = local[i].value();
      advert.rmax = outputs[i].advertised_rmax;
      advert.time = vnow;
      advert_outbox_.push_back(advert);
    }
  }

  void generate_arrivals(Seconds vnow, Seconds vend) {
    for (Source& src : sources_) {
      PeState& pe = pes_[src.pe];
      while (src.next_arrival < vend) {
        const Seconds at = src.next_arrival;
        src.next_arrival += src.process->next_interarrival();
        if (fault_drops_delivery(src.pe, vnow)) {
          ++pe.lifetime_dropped;
          collector_.on_ingress_drop(at);
          continue;
        }
        if (pe.queue.size() < pe.capacity) {
          pe.queue.push_back(Sdo{at});
          pe.arrived_this_tick += 1.0;
          ++pe.lifetime_arrived;
        } else {
          ++pe.lifetime_dropped;
          collector_.on_ingress_drop(at);
        }
      }
    }
  }

  void process_quantum(std::uint64_t k, Seconds vnow, Seconds vend) {
    const Seconds elapsed_in_tick =
        static_cast<double>(k % cfg_.substeps + 1) * q_;
    for (std::size_t n = node_begin_; n < node_end_; ++n) {
      const NodeId node(static_cast<NodeId::value_type>(n));
      if (injector_ != nullptr && injector_->node_down(node, vnow)) continue;
      const auto& local = graph_.pes_on_node(node);
      for (const PeId id : local) {
        PeState& pe = pes_[id.value()];
        if (injector_ != nullptr) {
          const bool stalled = injector_->pe_stalled(id, vnow);
          if (stalled && !was_stalled_[id.value()]) injector_->note_pe_stall();
          was_stalled_[id.value()] = stalled;
          if (stalled) continue;
        }
        if (pe.blocked_local) {
          try_flush(pe, id, vnow);
        }
        if (pe.blocked()) continue;
        if (pe.share <= 0.0) continue;
        double allowed = pe.share * elapsed_in_tick - pe.used_this_tick;
        while (allowed > 0.0 && !pe.blocked_local) {
          if (!pe.busy) {
            if (pe.queue.empty()) break;
            pe.current = pe.queue.front();
            pe.queue.pop_front();
            pe.busy = true;
            pe.work_remaining = pe.service->cost_at(vnow);
          }
          const double spend = std::min(allowed, pe.work_remaining);
          pe.work_remaining -= spend;
          pe.used_this_tick += spend;
          pe.lifetime_cpu += spend;
          allowed -= spend;
          if (pe.work_remaining <= 1e-12) complete(pe, id, vend);
        }
      }
    }
  }

  /// Finish the SDO the PE just paid for (mirrors the threaded engine's
  /// complete(): selectivity credit, egress accounting, downstream copies).
  void complete(PeState& pe, PeId pe_id, Seconds vcomplete) {
    pe.busy = false;
    pe.processed_this_tick += 1.0;
    ++pe.lifetime_processed;
    ++events_executed_;
    collector_.on_processed(vcomplete, 1);
    const auto& d = graph_.pe(pe_id);
    pe.selectivity_credit += d.selectivity;
    const int outputs = static_cast<int>(std::floor(pe.selectivity_credit));
    pe.selectivity_credit -= outputs;
    if (d.kind == graph::PeKind::kEgress) {
      pe.lifetime_emitted += static_cast<std::uint64_t>(outputs);
      for (int j = 0; j < outputs; ++j) {
        collector_.on_egress_output(vcomplete, pe.egress_index, d.weight,
                                    vcomplete - pe.current.birth);
      }
      return;
    }
    if (outputs == 0) return;
    const auto& downs = graph_.downstream(pe_id);
    for (std::size_t slot = 0; slot < downs.size(); ++slot) {
      for (int j = 0; j < outputs; ++j) {
        send(pe, pe_id, slot, Sdo{pe.current.birth}, vcomplete);
      }
    }
  }

  void send(PeState& pe, PeId pe_id, std::size_t slot, Sdo sdo, Seconds vnow) {
    ++pe.lifetime_emitted;
    const PeId target_id = graph_.downstream(pe_id)[slot];
    const std::size_t target = target_id.value();
    const bool cross_node = graph_.pe(target_id).node != graph_.pe(pe_id).node;
    if (cross_node) {
      // One quantum of transit, whether or not the destination shares this
      // worker: the coordinator relays the outbox at the next barrier.
      wire::SdoDelivery d;
      d.dest_pe = static_cast<std::uint32_t>(target);
      d.src_node = graph_.pe(pe_id).node.value();
      d.birth = sdo.birth;
      delivery_outbox_.push_back(d);
      return;
    }
    PeState& t = pes_[target];
    if (fault_drops_delivery(target, vnow)) {
      ++t.lifetime_dropped;
      collector_.on_internal_drop(vnow);
      return;  // lost, not blocked
    }
    if (lockstep_) {
      if (t.queue.size() < t.capacity) {
        t.queue.push_back(sdo);
        t.arrived_this_tick += 1.0;
        ++t.lifetime_arrived;
      } else {
        pe.pending.push_back({slot, sdo});
        pe.blocked_local = true;
      }
      return;
    }
    if (t.queue.size() < t.capacity) {
      t.queue.push_back(sdo);
      t.arrived_this_tick += 1.0;
      ++t.lifetime_arrived;
    } else {
      ++t.lifetime_dropped;
      collector_.on_internal_drop(vnow);
    }
  }

  void try_flush(PeState& pe, PeId pe_id, Seconds vnow) {
    while (!pe.pending.empty()) {
      const auto [slot, sdo] = pe.pending.front();
      const std::size_t target = graph_.downstream(pe_id)[slot].value();
      PeState& t = pes_[target];
      if (fault_drops_delivery(target, vnow)) {
        ++t.lifetime_dropped;
        collector_.on_internal_drop(vnow);
        pe.pending.pop_front();
        continue;  // a dead consumer must not deadlock its producers
      }
      if (t.queue.size() >= t.capacity) return;
      t.queue.push_back(sdo);
      t.arrived_this_tick += 1.0;
      ++t.lifetime_arrived;
      pe.pending.pop_front();
    }
    pe.blocked_local = false;
  }

  // ---- frames back to the coordinator --------------------------------

  wire::StepDone make_step_done(std::uint64_t quantum) {
    wire::StepDone done;
    done.quantum = quantum;
    done.deliveries = std::move(delivery_outbox_);
    delivery_outbox_.clear();
    done.adverts = std::move(advert_outbox_);
    advert_outbox_.clear();
    if (lockstep_) {
      for (std::size_t n = node_begin_; n < node_end_; ++n) {
        for (PeId id : graph_.pes_on_node(NodeId(static_cast<NodeId::value_type>(n)))) {
          const PeState& pe = pes_[id.value()];
          if (pe.queue.size() >= pe.capacity || !pe.inbound.empty()) {
            done.congested_pes.push_back(id.value());
          }
        }
      }
    }
    done.crashed_nodes = std::move(crashed_this_quantum_);
    crashed_this_quantum_.clear();
    done.restored_nodes = std::move(restored_this_quantum_);
    restored_this_quantum_.clear();
    return done;
  }

  wire::Report make_report() {
    wire::Report out;
    out.rank = cfg_.rank;
    // Utilization is computed against the *global* capacity so the merged
    // sum over workers equals the whole system's utilization.
    out.report = collector_.finalize(cfg_.duration, total_capacity_);
    out.report.per_pe.assign(graph_.pe_count(), metrics::PeAccounting{});
    for (std::size_t n = node_begin_; n < node_end_; ++n) {
      for (PeId id : graph_.pes_on_node(NodeId(static_cast<NodeId::value_type>(n)))) {
        const PeState& pe = pes_[id.value()];
        metrics::PeAccounting& acc = out.report.per_pe[id.value()];
        acc.arrived = pe.lifetime_arrived;
        acc.processed = pe.lifetime_processed;
        acc.emitted = pe.lifetime_emitted;
        acc.dropped_input = pe.lifetime_dropped;
        acc.cpu_seconds = pe.lifetime_cpu;
      }
    }
    out.report.events_executed = events_executed_;
    out.report.reoptimizations = 0;  // the coordinator owns this count
    return out;
  }

  wire::Config cfg_;
  transport::Endpoint& ep_;
  graph::ProcessingGraph graph_;
  metrics::Collector collector_;
  control::ControllerConfig controller_config_;
  bool lockstep_ = false;
  double q_ = 0.0;
  double total_capacity_ = 0.0;
  std::size_t node_begin_ = 0;
  std::size_t node_end_ = 0;
  std::vector<PeState> pes_;
  std::vector<control::NodeController> controllers_;
  std::vector<Source> sources_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::vector<double> visible_advert_;
  std::vector<Seconds> visible_advert_time_;
  std::vector<std::uint8_t> congested_;
  std::vector<bool> was_down_;      // aligned with controllers_
  std::vector<bool> was_stalled_;   // indexed by PeId
  std::vector<wire::SdoDelivery> delivery_outbox_;
  std::vector<wire::Advert> advert_outbox_;
  std::vector<std::uint32_t> crashed_this_quantum_;
  std::vector<std::uint32_t> restored_this_quantum_;
  std::uint64_t events_executed_ = 0;
  std::atomic<std::uint64_t> current_quantum_{0};
};

}  // namespace

int worker_entry(transport::Endpoint& endpoint, std::uint32_t rank) {
  wire::Hello hello;
  hello.rank = rank;
  hello.pid = static_cast<std::uint64_t>(::getpid());
  if (!endpoint.send(wire::encode(hello))) return 1;
  wire::Frame frame;
  if (endpoint.recv(&frame, kCoordinatorTimeoutMs) !=
          transport::RecvStatus::kOk ||
      frame.type != wire::FrameType::kConfig) {
    return 1;
  }
  const auto cfg = wire::decode_config(frame.payload);
  if (!cfg.has_value()) return 1;
  // The in-process transport runs workers as coordinator threads, so a
  // CheckFailure (or any other exception) must not escape and terminate the
  // whole coordinator — turn it into a dead endpoint the coordinator
  // detects like any other worker death.
  try {
    WorkerEngine engine(*cfg, endpoint);
    return engine.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dist-worker rank %u: %s\n", rank, e.what());
    endpoint.close();
    return 1;
  }
}

int maybe_worker(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "dist-worker") != 0) return -1;
  std::uint32_t rank = 0;
  std::string uds_path;
  int tcp_port = -1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--rank=", 0) == 0) {
      rank = static_cast<std::uint32_t>(std::stoul(arg.substr(7)));
    } else if (arg.rfind("--uds=", 0) == 0) {
      uds_path = arg.substr(6);
    } else if (arg.rfind("--tcp-port=", 0) == 0) {
      tcp_port = std::stoi(arg.substr(11));
    }
  }
  std::string error;
  std::unique_ptr<transport::Endpoint> ep;
  if (!uds_path.empty()) {
    ep = transport::connect_uds(uds_path, 10000, &error);
  } else if (tcp_port > 0) {
    ep = transport::connect_tcp(static_cast<std::uint16_t>(tcp_port), 10000,
                                &error);
  }
  if (ep == nullptr) return 1;
  return worker_entry(*ep, rank);
}

}  // namespace aces::runtime::dist
