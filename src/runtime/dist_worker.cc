// Barrier-stepped worker engine. Determinism rules (each one is load-
// bearing for the cross-transport byte-identity guarantee — see
// docs/architecture.md):
//
//  * Virtual time advances in quanta q = dt / substeps under coordinator
//    barriers; nothing is paced by the wall clock except heartbeats.
//  * Every *cross-node* effect takes exactly one quantum, whether or not
//    the two nodes share a worker: SDO emissions and advert refreshes are
//    buffered into outboxes and delivered at the next barrier (the
//    coordinator relays them, including a worker's own loopback traffic).
//    Same-node sends are direct, as in the threaded runtime.
//  * Inbound cross-node deliveries are applied in the coordinator's
//    stable src_node order, which is partition-invariant because every
//    worker steps its nodes in id order.
//  * Per-PE randomness (service model, arrival process, fault draws) is
//    forked from the master seed by PE id — never by worker rank — so the
//    partition does not perturb any stream.
//  * Completions and drops inside quantum k are stamped at its end
//    (k+1)·q; arrivals keep their exact birth times.
#include "runtime/dist_worker.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "common/atomic_shim.h"
#include "common/check.h"
#include "common/rng.h"
#include "control/node_controller.h"
#include "fault/fault_injector.h"
#include "graph/serialization.h"
#include "metrics/collector.h"
#include "obs/counters.h"
#include "obs/perf.h"
#include "obs/spans.h"
#include "obs/trace.h"
#include "opt/global_optimizer.h"
#include "runtime/transport/uds.h"
#include "workload/arrivals.h"
#include "workload/markov_modulator.h"

namespace aces::runtime::dist {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Frozen advert_time for a node the coordinator declared dead: any
/// staleness timeout reads it as infinitely stale.
constexpr double kDeadAdvertTime = -1e300;
/// A worker waiting on the coordinator gives up after this long — the
/// coordinator drives the pace, so silence this long means it is gone.
constexpr int kCoordinatorTimeoutMs = 120000;

struct Sdo {
  Seconds birth = 0.0;
  /// When the SDO entered its current queue (wait-histogram stamp; the
  /// values are quantum-grid times, so they are partition-invariant).
  Seconds enqueue = 0.0;
  /// Span handle on the local tracer; -1 untraced (the common case).
  std::int32_t span = -1;
};

/// Rebuilds an AllocationPlan the NodeControllers can consume from the
/// per-PE target vectors carried on the wire.
opt::AllocationPlan plan_from_vectors(const std::vector<double>& cpu,
                                      const std::vector<double>& rin,
                                      const std::vector<double>& rout,
                                      std::size_t node_count) {
  opt::AllocationPlan plan;
  plan.pe.resize(cpu.size());
  for (std::size_t i = 0; i < cpu.size(); ++i) {
    plan.pe[i].cpu = cpu[i];
    plan.pe[i].rin_sdo = i < rin.size() ? rin[i] : 0.0;
    plan.pe[i].rout_sdo = i < rout.size() ? rout[i] : 0.0;
  }
  plan.node_usage.assign(node_count, 0.0);
  return plan;
}

class WorkerEngine {
 public:
  WorkerEngine(const wire::Config& cfg, transport::Endpoint& ep)
      : cfg_(cfg),
        ep_(ep),
        graph_(graph::topology_from_string(cfg.topology)),
        collector_(cfg.warmup, count_egress(graph_)) {
    graph_.validate();
    ACES_CHECK_MSG(cfg.substeps > 0, "substeps must be positive");
    ACES_CHECK_MSG(cfg.dt > 0.0, "dt must be positive");
    q_ = cfg.dt / cfg.substeps;

    controller_config_.policy = static_cast<control::FlowPolicy>(cfg.policy);
    controller_config_.advert_staleness_timeout = cfg.staleness;
    lockstep_ = controller_config_.policy == control::FlowPolicy::kLockStep;

    if (!cfg.faults.empty()) {
      fault::FaultSchedule schedule = fault::parse_fault_spec(cfg.faults);
      fault::validate(schedule, graph_);
      injector_ = std::make_unique<fault::FaultInjector>(
          std::move(schedule), cfg.seed, graph_.pe_count());
    }

    total_capacity_ = 0.0;
    for (NodeId n : graph_.all_nodes())
      total_capacity_ += graph_.node(n).cpu_capacity;

    const std::size_t node_count = graph_.node_count();
    node_begin_ = 0;
    node_end_ = node_count;
    if (cfg.num_workers > 1) {
      node_begin_ = static_cast<std::size_t>(cfg.rank) * node_count /
                    cfg.num_workers;
      node_end_ = static_cast<std::size_t>(cfg.rank + 1) * node_count /
                  cfg.num_workers;
    }

    const opt::AllocationPlan plan = plan_from_vectors(
        cfg.plan_cpu, cfg.plan_rin, cfg.plan_rout, node_count);

    Rng master(cfg.seed);
    pes_.resize(graph_.pe_count());
    visible_advert_.assign(graph_.pe_count(), kInf);
    visible_advert_time_.assign(graph_.pe_count(), 0.0);
    congested_.assign(graph_.pe_count(), 0);
    std::size_t egress_counter = 0;
    for (PeId id : graph_.all_pes()) {
      const auto& d = graph_.pe(id);
      PeState& pe = pes_[id.value()];
      pe.capacity = cfg.channel_capacity > 0
                        ? cfg.channel_capacity
                        : static_cast<std::size_t>(d.buffer_capacity);
      // Per-PE randomness forked by PE id, exactly as the threaded engine
      // does — the partition cannot perturb the streams.
      pe.service.emplace(d.service_time[0], d.service_time[1],
                         d.sojourn_mean[0], d.sojourn_mean[1],
                         master.fork(0x5E41 + id.value()));
      if (d.kind == graph::PeKind::kEgress) pe.egress_index = egress_counter++;
      pe.share = plan.at(id).cpu;
    }

    for (std::size_t n = node_begin_; n < node_end_; ++n) {
      controllers_.emplace_back(graph_, NodeId(static_cast<NodeId::value_type>(n)),
                                plan, controller_config_);
    }
    was_down_.assign(node_end_ - node_begin_, false);
    was_stalled_.assign(graph_.pe_count(), false);

    // Telemetry. The counters are always on (relaxed atomics, far off the
    // hot path at quantum granularity) and every name counts a *graph*
    // property — cross_node is decided by node placement, never by the
    // partition — so the coordinator's cross-shard sums match a
    // single-process run exactly. The span tracer is optional and samples
    // by (seed, source PE, acceptance counter), the same pure function the
    // other substrates use, so traced runs stay bit-identical.
    ctr_arrived_ = counters_.counter("dist.sdo.arrived");
    ctr_processed_ = counters_.counter("dist.sdo.processed");
    ctr_emitted_ = counters_.counter("dist.sdo.emitted");
    ctr_dropped_ = counters_.counter("dist.sdo.dropped");
    ctr_cross_node_ = counters_.counter("dist.sdo.cross_node");
    gauge_quantum_ = counters_.gauge("dist.quantum");
    if (cfg.span_sample > 0.0) {
      obs::SpanTracerOptions topt;
      topt.sample_rate = cfg.span_sample;
      topt.seed = cfg.seed;
      topt.keep_completed = true;  // drained into SpanBatch each epoch
      tracer_ = std::make_unique<obs::SpanTracer>(topt);
    }

    const Seconds start_vtime = static_cast<double>(cfg.start_quantum) * q_;
    for (PeId id : graph_.all_pes()) {
      const auto& d = graph_.pe(id);
      if (d.kind != graph::PeKind::kIngress) continue;
      // fork() advances the parent state, so every worker must fork every
      // ingress PE's stream in the same order — including the ones it does
      // not own — or the partition would perturb the arrival sequences.
      Rng stream_rng = master.fork(0xA11 + id.value());
      if (!owns_node(d.node.value())) continue;
      Source src;
      src.pe = id.value();
      src.process = workload::make_arrival_process(
          graph_.stream(d.input_stream), std::move(stream_rng));
      src.next_arrival = src.process->next_interarrival();
      // A worker joining mid-run (restart after a prockill) fast-forwards
      // its arrival streams: the SDOs that would have arrived while the
      // process was dead are gone, but the generator state matches what an
      // uninterrupted worker would hold.
      while (src.next_arrival < start_vtime) {
        src.next_arrival += src.process->next_interarrival();
      }
      sources_.push_back(std::move(src));
    }
  }

  int run() {
    Atomic<bool> stop{false};
    std::thread heartbeat([this, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::max(0.001, cfg_.heartbeat_interval)));
        wire::Heartbeat hb;
        hb.rank = cfg_.rank;
        hb.quantum = current_quantum_.load(std::memory_order_relaxed);
        if (!ep_.send(wire::encode(hb))) return;
      }
    });
    const int rc = loop();
    stop.store(true, std::memory_order_relaxed);
    heartbeat.join();
    return rc;
  }

 private:
  struct PeState {
    std::deque<Sdo> queue;
    std::size_t capacity = 0;
    /// Lock-Step cross-node backlog: deliveries accepted from the wire but
    /// not yet admitted to `queue` (receiver-side blocking — nothing is
    /// dropped). Drained at quantum start as space allows.
    std::deque<Sdo> inbound;
    /// Lock-Step same-node backlog held while a local consumer is full.
    std::deque<std::pair<std::size_t, Sdo>> pending;
    std::optional<workload::ServiceModel> service;
    std::size_t egress_index = static_cast<std::size_t>(-1);
    double share = 0.0;
    bool busy = false;
    Sdo current{};
    double work_remaining = 0.0;
    double used_this_tick = 0.0;
    double processed_this_tick = 0.0;
    double arrived_this_tick = 0.0;
    double selectivity_credit = 0.0;
    /// Local blocking: `pending` could not flush into a same-node consumer.
    bool blocked_local = false;
    /// Remote blocking: some cross-node downstream was congested at the
    /// last barrier.
    bool blocked_remote = false;
    std::uint64_t lifetime_arrived = 0;
    std::uint64_t lifetime_processed = 0;
    std::uint64_t lifetime_emitted = 0;
    std::uint64_t lifetime_dropped = 0;
    double lifetime_cpu = 0.0;

    [[nodiscard]] bool blocked() const { return blocked_local || blocked_remote; }
  };

  struct Source {
    std::size_t pe = 0;
    std::unique_ptr<workload::ArrivalProcess> process;
    Seconds next_arrival = 0.0;
  };

  static std::size_t count_egress(const graph::ProcessingGraph& g) {
    std::size_t count = 0;
    for (PeId id : g.all_pes()) count += g.pe(id).kind == graph::PeKind::kEgress;
    return count;
  }

  [[nodiscard]] bool owns_node(std::size_t node) const {
    return node >= node_begin_ && node < node_end_;
  }

  [[nodiscard]] bool fault_drops_delivery(std::size_t target, Seconds when) {
    if (injector_ == nullptr) return false;
    const PeId id(static_cast<PeId::value_type>(target));
    return injector_->node_down(graph_.pe(id).node, when) ||
           injector_->drop_delivery(id, when);
  }

  int loop() {
    for (;;) {
      wire::Frame frame;
      const auto status = ep_.recv(&frame, kCoordinatorTimeoutMs);
      if (status != transport::RecvStatus::kOk) return 1;
      switch (frame.type) {
        case wire::FrameType::kTargets: {
          const auto targets = wire::decode_targets(frame.payload);
          if (!targets.has_value()) return 1;
          const opt::AllocationPlan plan = plan_from_vectors(
              targets->cpu, targets->rin, targets->rout, graph_.node_count());
          for (auto& controller : controllers_) controller.set_plan(plan);
          break;
        }
        case wire::FrameType::kStepGo: {
          const auto go = wire::decode_step_go(frame.payload);
          if (!go.has_value()) return 1;
          current_quantum_.store(go->quantum, std::memory_order_relaxed);
          if ((go->flags & wire::kStepGoFinal) != 0) {
            if (!ship_telemetry(go->quantum, /*epoch=*/true, /*is_final=*/true))
              return 1;
            if (!ep_.send(wire::encode(make_report()))) return 1;
            break;  // stay in the loop until Shutdown
          }
          run_quantum(*go);
          const bool epoch = (go->quantum + 1) % cfg_.substeps == 0;
          if (!ship_telemetry(go->quantum, epoch, /*is_final=*/false))
            return 1;
          if (!ep_.send(wire::encode(make_step_done(go->quantum)))) return 1;
          break;
        }
        case wire::FrameType::kSpanBatch: {
          // Handoffs relayed by the coordinator for deliveries arriving in
          // the *next* StepGo; staged until apply_delivery matches them.
          const auto batch = wire::decode_span_batch(frame.payload);
          if (!batch.has_value()) return 1;
          for (const wire::SpanHandoff& h : batch->handoffs) {
            pending_handoffs_[{h.dest_pe, h.src_node, h.index}] = h.span;
          }
          break;
        }
        case wire::FrameType::kShutdown:
          return 0;
        default:
          return 1;  // protocol violation
      }
    }
  }

  // ---- one barrier quantum -------------------------------------------

  void run_quantum(const wire::StepGo& go) {
    const std::uint64_t k = go.quantum;
    const Seconds vnow = static_cast<double>(k) * q_;
    const Seconds vend = static_cast<double>(k + 1) * q_;
    gauge_quantum_.set(static_cast<double>(k));
    delivery_counts_.clear();

    // Membership first: a dead node's mailboxes clamp to r_max = 0 and an
    // infinitely stale timestamp, so both the staleness rule and the Eq. 8
    // max stop routing flow at it.
    for (const std::uint32_t node : go.down_nodes) {
      for (PeId id : graph_.pes_on_node(NodeId(node))) {
        visible_advert_[id.value()] = 0.0;
        visible_advert_time_[id.value()] = kDeadAdvertTime;
      }
    }
    for (const std::uint32_t node : go.up_nodes) {
      for (PeId id : graph_.pes_on_node(NodeId(node))) {
        visible_advert_[id.value()] = kInf;
        visible_advert_time_[id.value()] = vnow;
      }
    }
    // Advert refreshes from quantum k-1 (uniformly one quantum stale,
    // including this worker's own — the coordinator loops them back).
    for (const wire::Advert& a : go.adverts) {
      visible_advert_[a.pe] = a.rmax;
      visible_advert_time_[a.pe] = a.time;
    }
    std::fill(congested_.begin(), congested_.end(), 0);
    for (const std::uint32_t pe : go.congested_pes) congested_[pe] = 1;

    // Inbound cross-node deliveries, in the coordinator's stable src_node
    // order. Fault draws for a delivery happen here, on the worker hosting
    // the target — the per-PE draw sequence is partition-invariant.
    for (const wire::SdoDelivery& d : go.deliveries) {
      apply_delivery(d, vnow);
    }
    if (lockstep_) {
      for (std::size_t n = node_begin_; n < node_end_; ++n) {
        for (PeId id : graph_.pes_on_node(NodeId(static_cast<NodeId::value_type>(n)))) {
          drain_inbound(pes_[id.value()]);
        }
      }
    }

    // Modeled crash windows (the `crash` clause acted out by this
    // substrate, distinct from real prockills).
    if (injector_ != nullptr) handle_crash_transitions(vnow);

    // Control tick on the dt grid (quantum starts, skipping t = 0 — the
    // first tick fires once one full interval of history exists).
    if (k > 0 && k % cfg_.substeps == 0) {
      for (std::size_t i = 0; i < controllers_.size(); ++i) {
        if (!was_down_[i]) node_tick(i, vnow);
      }
    }

    // Lock-Step remote backpressure: a PE with a congested cross-node
    // downstream stops processing this quantum (bounded overshoot: at most
    // the one quantum already in flight).
    if (lockstep_) {
      for (std::size_t n = node_begin_; n < node_end_; ++n) {
        for (PeId id : graph_.pes_on_node(NodeId(static_cast<NodeId::value_type>(n)))) {
          PeState& pe = pes_[id.value()];
          pe.blocked_remote = false;
          for (PeId down : graph_.downstream(id)) {
            if (graph_.pe(down).node != graph_.pe(id).node &&
                congested_[down.value()] != 0) {
              pe.blocked_remote = true;
              break;
            }
          }
        }
      }
    }

    generate_arrivals(vnow, vend);
    process_quantum(k, vnow, vend);
    // Handoffs are staged for exactly one barrier; anything unmatched by
    // now belongs to no delivery and is telemetry lawfully lost.
    pending_handoffs_.clear();
  }

  void apply_delivery(const wire::SdoDelivery& d, Seconds vnow) {
    if (d.dest_pe >= pes_.size()) return;  // corrupt frame: ignore
    // Handoff re-attachment: the n-th delivery with this (dest_pe,
    // src_node) key this quantum carries the n-th handoff shipped under
    // the same key — exact, because one worker owns src_node and the
    // coordinator preserves its outbox order.
    std::int32_t span = -1;
    if (tracer_ != nullptr) {
      const std::uint32_t index = delivery_counts_[{d.dest_pe, d.src_node}]++;
      const auto it = pending_handoffs_.find({d.dest_pe, d.src_node, index});
      if (it != pending_handoffs_.end()) {
        span = tracer_->adopt(it->second);
        tracer_->append_wire_hop(span, PeId(d.dest_pe),
                                 obs::HopKind::kWireRecv, vnow);
        pending_handoffs_.erase(it);
      }
    }
    const auto& desc = graph_.pe(PeId(d.dest_pe));
    if (!owns_node(desc.node.value())) {
      if (tracer_ != nullptr) tracer_->drop(span, vnow);
      return;
    }
    PeState& pe = pes_[d.dest_pe];
    if (fault_drops_delivery(d.dest_pe, vnow)) {
      ++pe.lifetime_dropped;
      ctr_dropped_.inc();
      if (tracer_ != nullptr) tracer_->drop(span, vnow);
      collector_.on_internal_drop(vnow);
      return;
    }
    if (lockstep_) {
      // Never dropped: held receiver-side until the queue has room. The
      // enqueue hop lands now — `inbound` is part of the PE's buffer (the
      // controller counts it), so the wait clock starts here.
      if (tracer_ != nullptr) tracer_->on_enqueue(span, PeId(d.dest_pe), vnow);
      pe.inbound.push_back(Sdo{d.birth, vnow, span});
      return;
    }
    if (pe.queue.size() < pe.capacity) {
      if (tracer_ != nullptr) tracer_->on_enqueue(span, PeId(d.dest_pe), vnow);
      pe.queue.push_back(Sdo{d.birth, vnow, span});
      pe.arrived_this_tick += 1.0;
      ++pe.lifetime_arrived;
      ctr_arrived_.inc();
    } else {
      ++pe.lifetime_dropped;
      ctr_dropped_.inc();
      if (tracer_ != nullptr) tracer_->drop(span, vnow);
      collector_.on_internal_drop(vnow);
    }
  }

  void drain_inbound(PeState& pe) {
    while (!pe.inbound.empty() && pe.queue.size() < pe.capacity) {
      pe.queue.push_back(pe.inbound.front());
      pe.inbound.pop_front();
      pe.arrived_this_tick += 1.0;
      ++pe.lifetime_arrived;
      ctr_arrived_.inc();
    }
  }

  void handle_crash_transitions(Seconds vnow) {
    for (std::size_t i = 0; i < controllers_.size(); ++i) {
      const NodeId node = controllers_[i].node();
      const bool is_down = injector_->node_down(node, vnow);
      if (is_down && !was_down_[i]) {
        crash_local_pes(node, vnow);
        crashed_this_quantum_.push_back(node.value());
      }
      if (!is_down && was_down_[i]) {
        controllers_[i].reset_state();
        for (PeId id : graph_.pes_on_node(node)) {
          PeState& pe = pes_[id.value()];
          pe.queue.clear();
          pe.inbound.clear();
          pe.arrived_this_tick = 0.0;
        }
        injector_->note_node_restart();
        restored_this_quantum_.push_back(node.value());
      }
      was_down_[i] = is_down;
    }
  }

  void crash_local_pes(NodeId node, Seconds vnow) {
    // Post-mortem first: capture the doomed SDOs while their spans are
    // still in flight, then end them as dropped. The dump ships to the
    // coordinator at this quantum's end (ship_telemetry).
    if (tracer_ != nullptr) {
      tracer_->fault_dump("fault.node_crash", vnow);
      pending_dump_ = true;
    }
    std::uint64_t lost = 0;
    for (PeId id : graph_.pes_on_node(node)) {
      PeState& pe = pes_[id.value()];
      std::uint64_t pe_lost = pe.busy ? 1 : 0;
      pe_lost += pe.pending.size();
      pe_lost += pe.inbound.size();
      pe_lost += pe.queue.size();
      if (tracer_ != nullptr) {
        if (pe.busy) tracer_->drop(pe.current.span, vnow);
        for (const auto& [slot, sdo] : pe.pending)
          tracer_->drop(sdo.span, vnow);
        for (const Sdo& sdo : pe.inbound) tracer_->drop(sdo.span, vnow);
        for (const Sdo& sdo : pe.queue) tracer_->drop(sdo.span, vnow);
      }
      pe.queue.clear();
      pe.inbound.clear();
      pe.pending.clear();
      pe.busy = false;
      pe.blocked_local = false;
      pe.blocked_remote = false;
      pe.work_remaining = 0.0;
      pe.share = 0.0;
      pe.lifetime_dropped += pe_lost;
      ctr_dropped_.inc(pe_lost);
      for (std::uint64_t j = 0; j < pe_lost; ++j)
        collector_.on_internal_drop(vnow);
      lost += pe_lost;
    }
    injector_->note_node_crash(lost);
  }

  void node_tick(std::size_t controller_index, Seconds vnow) {
    control::NodeController& controller = controllers_[controller_index];
    const auto& local = controller.local_pes();
    std::vector<control::PeTickInput> inputs(local.size());
    const Seconds staleness = controller_config_.advert_staleness_timeout;
    for (std::size_t i = 0; i < local.size(); ++i) {
      PeState& pe = pes_[local[i].value()];
      control::PeTickInput& in = inputs[i];
      in.buffer_occupancy =
          static_cast<double>(pe.queue.size() + pe.inbound.size());
      in.processed_sdos = pe.processed_this_tick;
      in.cpu_seconds_used = pe.used_this_tick;
      in.arrived_sdos = pe.arrived_this_tick;
      in.output_blocked = pe.blocked();
      const auto& downs = graph_.downstream(local[i]);
      if (downs.empty()) {
        in.downstream_rmax = kInf;
      } else {
        in.downstream_rmax = -kInf;
        Seconds freshest = -kInf;
        for (PeId down : downs) {
          const Seconds refreshed = visible_advert_time_[down.value()];
          const bool stale = staleness > 0.0 && vnow - refreshed > staleness;
          in.downstream_rmax = std::max(
              in.downstream_rmax, stale ? 0.0 : visible_advert_[down.value()]);
          freshest = std::max(freshest, refreshed);
        }
        in.downstream_advert_age = vnow - freshest;
      }
    }
    const std::vector<control::PeTickOutput> outputs =
        controller.tick(cfg_.dt, inputs);
    ++events_executed_;
    for (std::size_t i = 0; i < local.size(); ++i) {
      PeState& pe = pes_[local[i].value()];
      if (cfg_.record_trace != 0) {
        // Same record the other substrates emit; the shard tag is stamped
        // coordinator-side from the frame's rank.
        obs::TickRecord rec;
        rec.time = vnow;
        rec.node = controller.node().value();
        rec.pe = local[i].value();
        rec.buffer_occupancy = inputs[i].buffer_occupancy;
        rec.arrived_sdos = inputs[i].arrived_sdos;
        rec.processed_sdos = inputs[i].processed_sdos;
        rec.cpu_share = outputs[i].cpu_share;
        rec.cpu_seconds_used = inputs[i].cpu_seconds_used;
        rec.advertised_rmax = outputs[i].advertised_rmax;
        rec.downstream_rmax = inputs[i].downstream_rmax;
        rec.token_fill = controller.tokens(i);
        rec.output_blocked = inputs[i].output_blocked;
        rec.dropped_total = pe.lifetime_dropped;
        if (injector_ != nullptr && injector_->pe_stalled(local[i], vnow)) {
          rec.fault_flags |= obs::kFaultPeStalled;
        }
        if (controller_config_.advert_staleness_timeout > 0.0 &&
            !graph_.downstream(local[i]).empty() &&
            inputs[i].downstream_advert_age >
                controller_config_.advert_staleness_timeout) {
          rec.fault_flags |= obs::kFaultAdvertStale;
        }
        trace_buffer_.push_back(std::move(rec));
      }
      collector_.on_cpu_used(vnow, pe.used_this_tick);
      collector_.on_buffer_sample(
          vnow,
          std::min(1.0, static_cast<double>(pe.queue.size() +
                                            pe.inbound.size()) /
                            static_cast<double>(pe.capacity)));
      pe.used_this_tick = 0.0;
      pe.processed_this_tick = 0.0;
      pe.arrived_this_tick = 0.0;
      pe.share = outputs[i].cpu_share;
      // Injected advertisement loss: the refresh never leaves this worker,
      // so every peer (and this worker itself, via the loopback) keeps the
      // stale value.
      if (injector_ != nullptr && injector_->advert_lost(local[i], vnow))
        continue;
      wire::Advert advert;
      advert.pe = local[i].value();
      advert.rmax = outputs[i].advertised_rmax;
      advert.time = vnow;
      advert_outbox_.push_back(advert);
    }
  }

  void generate_arrivals(Seconds vnow, Seconds vend) {
    for (Source& src : sources_) {
      PeState& pe = pes_[src.pe];
      const PeId pe_id(static_cast<PeId::value_type>(src.pe));
      while (src.next_arrival < vend) {
        const Seconds at = src.next_arrival;
        src.next_arrival += src.process->next_interarrival();
        // The sampling draw happens for every generated arrival — accepted
        // or not — so the acceptance counters match the other substrates.
        std::int32_t span = -1;
        if (tracer_ != nullptr) span = tracer_->begin(pe_id, at);
        if (fault_drops_delivery(src.pe, vnow)) {
          ++pe.lifetime_dropped;
          ctr_dropped_.inc();
          if (tracer_ != nullptr) tracer_->drop(span, at);
          collector_.on_ingress_drop(at);
          continue;
        }
        if (pe.queue.size() < pe.capacity) {
          if (tracer_ != nullptr) tracer_->on_enqueue(span, pe_id, at);
          pe.queue.push_back(Sdo{at, at, span});
          pe.arrived_this_tick += 1.0;
          ++pe.lifetime_arrived;
          ctr_arrived_.inc();
        } else {
          ++pe.lifetime_dropped;
          ctr_dropped_.inc();
          if (tracer_ != nullptr) tracer_->drop(span, at);
          collector_.on_ingress_drop(at);
        }
      }
    }
  }

  void process_quantum(std::uint64_t k, Seconds vnow, Seconds vend) {
    const Seconds elapsed_in_tick =
        static_cast<double>(k % cfg_.substeps + 1) * q_;
    for (std::size_t n = node_begin_; n < node_end_; ++n) {
      const NodeId node(static_cast<NodeId::value_type>(n));
      if (injector_ != nullptr && injector_->node_down(node, vnow)) continue;
      const auto& local = graph_.pes_on_node(node);
      for (const PeId id : local) {
        PeState& pe = pes_[id.value()];
        if (injector_ != nullptr) {
          const bool stalled = injector_->pe_stalled(id, vnow);
          if (stalled && !was_stalled_[id.value()]) {
            injector_->note_pe_stall();
            if (tracer_ != nullptr) {
              tracer_->fault_dump("fault.pe_stall", vnow);
              pending_dump_ = true;
            }
          }
          was_stalled_[id.value()] = stalled;
          if (stalled) continue;
        }
        if (pe.blocked_local) {
          try_flush(pe, id, vnow);
        }
        if (pe.blocked()) continue;
        if (pe.share <= 0.0) continue;
        double allowed = pe.share * elapsed_in_tick - pe.used_this_tick;
        while (allowed > 0.0 && !pe.blocked_local) {
          if (!pe.busy) {
            if (pe.queue.empty()) break;
            pe.current = pe.queue.front();
            pe.queue.pop_front();
            pe.busy = true;
            pe.work_remaining = pe.service->cost_at(vnow);
            if (tracer_ != nullptr) {
              // max() because a same-quantum enqueue may postdate the
              // quantum-start stamp; both operands sit on the quantum
              // grid, so the stamp stays partition-invariant.
              tracer_->on_dequeue(pe.current.span,
                                  std::max(vnow, pe.current.enqueue));
            }
          }
          const double spend = std::min(allowed, pe.work_remaining);
          pe.work_remaining -= spend;
          pe.used_this_tick += spend;
          pe.lifetime_cpu += spend;
          allowed -= spend;
          if (pe.work_remaining <= 1e-12) complete(pe, id, vend);
        }
      }
    }
  }

  /// Finish the SDO the PE just paid for (mirrors the threaded engine's
  /// complete(): selectivity credit, egress accounting, downstream copies).
  void complete(PeState& pe, PeId pe_id, Seconds vcomplete) {
    pe.busy = false;
    pe.processed_this_tick += 1.0;
    ++pe.lifetime_processed;
    ++events_executed_;
    ctr_processed_.inc();
    collector_.on_processed(vcomplete, 1);
    const auto& d = graph_.pe(pe_id);
    pe.selectivity_credit += d.selectivity;
    const int outputs = static_cast<int>(std::floor(pe.selectivity_credit));
    pe.selectivity_credit -= outputs;
    if (tracer_ != nullptr) tracer_->on_emit(pe.current.span, vcomplete);
    if (d.kind == graph::PeKind::kEgress) {
      pe.lifetime_emitted += static_cast<std::uint64_t>(outputs);
      ctr_emitted_.inc(static_cast<std::uint64_t>(outputs));
      for (int j = 0; j < outputs; ++j) {
        collector_.on_egress_output(vcomplete, pe.egress_index, d.weight,
                                    vcomplete - pe.current.birth);
      }
      if (tracer_ != nullptr) tracer_->complete(pe.current.span, vcomplete);
      return;
    }
    if (outputs == 0) {
      // Selectivity absorbed the SDO: a normal end of life, not a drop.
      if (tracer_ != nullptr) tracer_->complete(pe.current.span, vcomplete);
      return;
    }
    const auto& downs = graph_.downstream(pe_id);
    // The span continues into the first downstream copy only, keeping the
    // trace a single root-to-sink path (spans.h header contract).
    std::int32_t span = pe.current.span;
    for (std::size_t slot = 0; slot < downs.size(); ++slot) {
      for (int j = 0; j < outputs; ++j) {
        send(pe, pe_id, slot, Sdo{pe.current.birth, vcomplete, span},
             vcomplete);
        span = -1;
      }
    }
  }

  void send(PeState& pe, PeId pe_id, std::size_t slot, Sdo sdo, Seconds vnow) {
    ++pe.lifetime_emitted;
    ctr_emitted_.inc();
    const PeId target_id = graph_.downstream(pe_id)[slot];
    const std::size_t target = target_id.value();
    const bool cross_node = graph_.pe(target_id).node != graph_.pe(pe_id).node;
    if (cross_node) {
      // One quantum of transit, whether or not the destination shares this
      // worker: the coordinator relays the outbox at the next barrier.
      ctr_cross_node_.inc();
      wire::SdoDelivery d;
      d.dest_pe = static_cast<std::uint32_t>(target);
      d.src_node = graph_.pe(pe_id).node.value();
      d.birth = sdo.birth;
      if (tracer_ != nullptr && sdo.span >= 0) {
        // The span leaves this process: stamp the serialization hop, then
        // detach the prefix for the wire. Its occurrence index among this
        // quantum's same-key deliveries is the re-attachment key (exact,
        // because the coordinator relays this outbox in order). The
        // kWireSend hop is stamped at ship time, kWireRecv at adoption.
        tracer_->append_wire_hop(sdo.span, pe_id, obs::HopKind::kWireSerialize,
                                 vnow);
        wire::SpanHandoff h;
        h.dest_pe = d.dest_pe;
        h.src_node = d.src_node;
        for (const wire::SdoDelivery& prev : delivery_outbox_) {
          if (prev.dest_pe == d.dest_pe && prev.src_node == d.src_node)
            ++h.index;
        }
        if (tracer_->detach(sdo.span, &h.span)) {
          handoff_outbox_.push_back(std::move(h));
        }
      }
      delivery_outbox_.push_back(d);
      return;
    }
    PeState& t = pes_[target];
    if (fault_drops_delivery(target, vnow)) {
      ++t.lifetime_dropped;
      ctr_dropped_.inc();
      if (tracer_ != nullptr) tracer_->drop(sdo.span, vnow);
      collector_.on_internal_drop(vnow);
      return;  // lost, not blocked
    }
    if (lockstep_) {
      if (t.queue.size() < t.capacity) {
        sdo.enqueue = vnow;
        if (tracer_ != nullptr) tracer_->on_enqueue(sdo.span, target_id, vnow);
        t.queue.push_back(sdo);
        t.arrived_this_tick += 1.0;
        ++t.lifetime_arrived;
        ctr_arrived_.inc();
      } else {
        // Producer-side hold: the span's enqueue hop waits for the flush.
        pe.pending.push_back({slot, sdo});
        pe.blocked_local = true;
      }
      return;
    }
    if (t.queue.size() < t.capacity) {
      sdo.enqueue = vnow;
      if (tracer_ != nullptr) tracer_->on_enqueue(sdo.span, target_id, vnow);
      t.queue.push_back(sdo);
      t.arrived_this_tick += 1.0;
      ++t.lifetime_arrived;
      ctr_arrived_.inc();
    } else {
      ++t.lifetime_dropped;
      ctr_dropped_.inc();
      if (tracer_ != nullptr) tracer_->drop(sdo.span, vnow);
      collector_.on_internal_drop(vnow);
    }
  }

  void try_flush(PeState& pe, PeId pe_id, Seconds vnow) {
    while (!pe.pending.empty()) {
      auto [slot, sdo] = pe.pending.front();
      const PeId target_id = graph_.downstream(pe_id)[slot];
      const std::size_t target = target_id.value();
      PeState& t = pes_[target];
      if (fault_drops_delivery(target, vnow)) {
        ++t.lifetime_dropped;
        ctr_dropped_.inc();
        if (tracer_ != nullptr) tracer_->drop(sdo.span, vnow);
        collector_.on_internal_drop(vnow);
        pe.pending.pop_front();
        continue;  // a dead consumer must not deadlock its producers
      }
      if (t.queue.size() >= t.capacity) return;
      sdo.enqueue = vnow;
      if (tracer_ != nullptr) tracer_->on_enqueue(sdo.span, target_id, vnow);
      t.queue.push_back(sdo);
      t.arrived_this_tick += 1.0;
      ++t.lifetime_arrived;
      ctr_arrived_.inc();
      pe.pending.pop_front();
    }
    pe.blocked_local = false;
  }

  // ---- frames back to the coordinator --------------------------------

  wire::StepDone make_step_done(std::uint64_t quantum) {
    wire::StepDone done;
    done.quantum = quantum;
    done.deliveries = std::move(delivery_outbox_);
    delivery_outbox_.clear();
    done.adverts = std::move(advert_outbox_);
    advert_outbox_.clear();
    if (lockstep_) {
      for (std::size_t n = node_begin_; n < node_end_; ++n) {
        for (PeId id : graph_.pes_on_node(NodeId(static_cast<NodeId::value_type>(n)))) {
          const PeState& pe = pes_[id.value()];
          if (pe.queue.size() >= pe.capacity || !pe.inbound.empty()) {
            done.congested_pes.push_back(id.value());
          }
        }
      }
    }
    done.crashed_nodes = std::move(crashed_this_quantum_);
    crashed_this_quantum_.clear();
    done.restored_nodes = std::move(restored_this_quantum_);
    restored_this_quantum_.clear();
    return done;
  }

  wire::Report make_report() {
    wire::Report out;
    out.rank = cfg_.rank;
    // Utilization is computed against the *global* capacity so the merged
    // sum over workers equals the whole system's utilization.
    out.report = collector_.finalize(cfg_.duration, total_capacity_);
    out.report.per_pe.assign(graph_.pe_count(), metrics::PeAccounting{});
    for (std::size_t n = node_begin_; n < node_end_; ++n) {
      for (PeId id : graph_.pes_on_node(NodeId(static_cast<NodeId::value_type>(n)))) {
        const PeState& pe = pes_[id.value()];
        metrics::PeAccounting& acc = out.report.per_pe[id.value()];
        acc.arrived = pe.lifetime_arrived;
        acc.processed = pe.lifetime_processed;
        acc.emitted = pe.lifetime_emitted;
        acc.dropped_input = pe.lifetime_dropped;
        acc.cpu_seconds = pe.lifetime_cpu;
      }
    }
    out.report.events_executed = events_executed_;
    out.report.reoptimizations = 0;  // the coordinator owns this count
    return out;
  }

  /// Ships the telemetry frames that precede the StepDone (or final
  /// Report) closing quantum `quantum`. SpanBatch goes every quantum while
  /// handoffs exist — the coordinator must relay them before the next
  /// StepGo; completed spans, the MetricsReport, and flight-recorder
  /// evidence ride the epoch cadence. Returns false on a dead endpoint.
  bool ship_telemetry(std::uint64_t quantum, bool epoch, bool is_final) {
    const Seconds ship_time = static_cast<double>(quantum + 1) * q_;
    if (tracer_ != nullptr) {
      std::vector<obs::SdoSpan> completed;
      if (epoch || is_final) completed = tracer_->take_completed();
      if (!handoff_outbox_.empty() || !completed.empty()) {
        wire::SpanBatch batch;
        batch.rank = cfg_.rank;
        batch.quantum = quantum;
        batch.completed = std::move(completed);
        batch.handoffs = std::move(handoff_outbox_);
        handoff_outbox_.clear();
        for (wire::SpanHandoff& h : batch.handoffs) {
          // The send hop: the span leaves this process at quantum end. The
          // hop repeats the last-stamped PE (the serialization site).
          obs::SdoSpan& s = h.span;
          if (s.hop_count < obs::SdoSpan::kMaxHops) {
            obs::SpanHop hop;
            hop.pe = s.hop_count > 0 ? s.hops[s.hop_count - 1].pe
                                     : s.source_pe;
            hop.kind = static_cast<std::uint32_t>(obs::HopKind::kWireSend);
            hop.enqueue = ship_time;
            hop.dequeue = ship_time;
            hop.emit = ship_time;
            s.hops[s.hop_count++] = hop;
          } else {
            s.truncated = true;
          }
        }
        if (!ep_.send(wire::encode(batch))) return false;
      }
    }
    if (epoch || is_final) {
      if (!ep_.send(wire::encode(make_metrics_report(quantum)))) return false;
    }
    if (tracer_ != nullptr) {
      const std::uint64_t pushed = tracer_->recorder().pushed();
      const bool ring_advanced =
          (epoch || is_final) && pushed != last_shipped_pushed_;
      if (pending_dump_ || ring_advanced) {
        wire::FlightDump dump;
        dump.rank = cfg_.rank;
        dump.pushed = pushed;
        if (pending_dump_ && !tracer_->dumps().empty()) {
          // A fault fired this quantum: ship the post-mortem the tracer
          // captured at the fault site, in-flight spans included.
          const obs::FlightDump& src = tracer_->dumps().back();
          dump.event = src.event;
          dump.time = src.time;
          dump.recent = src.recent;
          dump.in_flight = src.in_flight;
        } else {
          // Routine evidence refresh: recent completions only. The
          // coordinator keeps the newest dump per rank, so a prockill'd
          // worker's final epoch survives the process.
          dump.event = is_final ? "shutdown" : "epoch";
          dump.time = ship_time;
          dump.recent = tracer_->recorder().snapshot();
        }
        if (!ep_.send(wire::encode(dump))) return false;
        pending_dump_ = false;
        last_shipped_pushed_ = pushed;
      }
    }
    return true;
  }

  wire::MetricsReport make_metrics_report(std::uint64_t quantum) {
    wire::MetricsReport mr;
    mr.rank = cfg_.rank;
    mr.quantum = quantum;
    const obs::CounterSnapshot snap = counters_.snapshot();
    for (const auto& [name, value] : snap.counters) {
      // Deltas, not absolutes: the coordinator's sum stays exact across
      // worker restarts (a respawned shard starts at zero).
      std::uint64_t& sent = last_sent_counters_[name];
      if (value > sent) {
        mr.counters.push_back({name, value - sent});
        sent = value;
      }
    }
    for (const auto& [name, value] : snap.gauges) {
      mr.gauges.push_back({name, value});
    }
    if (tracer_ != nullptr) {
      // Whole-state snapshots (last-writer-wins per rank at the
      // coordinator), mirroring what write_latency_prometheus exposes for
      // a single-process run — that 1:1 shape is what the aggregation-
      // invariance tests compare.
      const obs::LatencyRegistry& reg = tracer_->latency();
      for (const auto& [pe, stats] : reg.pes()) {
        mr.pe_latency.push_back({pe, stats.wait, stats.service});
      }
      for (const auto& [id, stats] : reg.paths()) {
        mr.path_latency.push_back({id, stats.label, stats.end_to_end});
      }
    }
    for (const obs::PerfStageSample& s : obs::perf_snapshot().stages) {
      mr.perf.push_back({s.name, s.calls, s.ns});
    }
    mr.trace = std::move(trace_buffer_);
    trace_buffer_.clear();
    return mr;
  }

  wire::Config cfg_;
  transport::Endpoint& ep_;
  graph::ProcessingGraph graph_;
  metrics::Collector collector_;
  control::ControllerConfig controller_config_;
  bool lockstep_ = false;
  double q_ = 0.0;
  double total_capacity_ = 0.0;
  std::size_t node_begin_ = 0;
  std::size_t node_end_ = 0;
  std::vector<PeState> pes_;
  std::vector<control::NodeController> controllers_;
  std::vector<Source> sources_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::vector<double> visible_advert_;
  std::vector<Seconds> visible_advert_time_;
  std::vector<std::uint8_t> congested_;
  std::vector<bool> was_down_;      // aligned with controllers_
  std::vector<bool> was_stalled_;   // indexed by PeId
  std::vector<wire::SdoDelivery> delivery_outbox_;
  std::vector<wire::Advert> advert_outbox_;
  std::vector<std::uint32_t> crashed_this_quantum_;
  std::vector<std::uint32_t> restored_this_quantum_;
  std::uint64_t events_executed_ = 0;
  Atomic<std::uint64_t> current_quantum_{0};

  // ---- telemetry (tentpole: the distributed observability plane) -----
  obs::CounterRegistry counters_;
  obs::Counter ctr_arrived_;
  obs::Counter ctr_processed_;
  obs::Counter ctr_emitted_;
  obs::Counter ctr_dropped_;
  obs::Counter ctr_cross_node_;
  obs::Gauge gauge_quantum_;
  std::unique_ptr<obs::SpanTracer> tracer_;
  /// Span prefixes leaving this worker, shipped in the quantum's SpanBatch.
  std::vector<wire::SpanHandoff> handoff_outbox_;
  /// Handoffs relayed by the coordinator, keyed (dest_pe, src_node, index),
  /// staged for exactly one quantum (run_quantum clears after deliveries).
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>,
           obs::SdoSpan>
      pending_handoffs_;
  /// Deliveries seen this quantum per (dest_pe, src_node) — the receiver
  /// side of the occurrence-index handoff key.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t>
      delivery_counts_;
  /// Control-tick records since the last MetricsReport (record_trace only).
  std::vector<obs::TickRecord> trace_buffer_;
  /// Counter values as of the last MetricsReport, for delta encoding.
  std::map<std::string, std::uint64_t> last_sent_counters_;
  /// A fault dump was taken this quantum and awaits shipping.
  bool pending_dump_ = false;
  /// Recorder ring watermark at the last shipped FlightDump.
  std::uint64_t last_shipped_pushed_ = 0;
};

}  // namespace

int worker_entry(transport::Endpoint& endpoint, std::uint32_t rank) {
  wire::Hello hello;
  hello.rank = rank;
  hello.pid = static_cast<std::uint64_t>(::getpid());
  if (!endpoint.send(wire::encode(hello))) return 1;
  wire::Frame frame;
  if (endpoint.recv(&frame, kCoordinatorTimeoutMs) !=
          transport::RecvStatus::kOk ||
      frame.type != wire::FrameType::kConfig) {
    return 1;
  }
  const auto cfg = wire::decode_config(frame.payload);
  if (!cfg.has_value()) return 1;
  // The in-process transport runs workers as coordinator threads, so a
  // CheckFailure (or any other exception) must not escape and terminate the
  // whole coordinator — turn it into a dead endpoint the coordinator
  // detects like any other worker death.
  try {
    WorkerEngine engine(*cfg, endpoint);
    return engine.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dist-worker rank %u: %s\n", rank, e.what());
    endpoint.close();
    return 1;
  }
}

int maybe_worker(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "dist-worker") != 0) return -1;
  std::uint32_t rank = 0;
  std::string uds_path;
  int tcp_port = -1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--rank=", 0) == 0) {
      rank = static_cast<std::uint32_t>(std::stoul(arg.substr(7)));
    } else if (arg.rfind("--uds=", 0) == 0) {
      uds_path = arg.substr(6);
    } else if (arg.rfind("--tcp-port=", 0) == 0) {
      tcp_port = std::stoi(arg.substr(11));
    }
  }
  std::string error;
  std::unique_ptr<transport::Endpoint> ep;
  if (!uds_path.empty()) {
    ep = transport::connect_uds(uds_path, 10000, &error);
  } else if (tcp_port > 0) {
    ep = transport::connect_tcp(static_cast<std::uint16_t>(tcp_port), 10000,
                                &error);
  }
  if (ep == nullptr) return 1;
  return worker_entry(*ep, rank);
}

}  // namespace aces::runtime::dist
