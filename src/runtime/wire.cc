#include "runtime/wire.h"

#include <algorithm>

#include <bit>
#include <cstring>

namespace aces::runtime::wire {

namespace {

/// Append-only byte writer. Little-endian integers; doubles as IEEE-754
/// bit patterns so values round-trip exactly.
class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void f64_vec(const std::vector<double>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const double x : v) f64(x);
  }
  void u32_vec(const std::vector<std::uint32_t>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const std::uint32_t x : v) u32(x);
  }
  void u64_vec(const std::vector<std::uint64_t>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const std::uint64_t x : v) u64(x);
  }

  /// Finishes the frame: prepends the 8-byte header to the payload.
  std::vector<std::uint8_t> frame(FrameType type) && {
    const std::array<std::uint8_t, 8> header =
        frame_header(type, static_cast<std::uint32_t>(out_.size()));
    std::vector<std::uint8_t> framed(header.size() + out_.size());
    std::copy(header.begin(), header.end(), framed.begin());
    std::copy(out_.begin(), out_.end(),
              framed.begin() + static_cast<std::ptrdiff_t>(header.size()));
    return framed;
  }

 private:
  std::vector<std::uint8_t> out_;
};

/// Bounds-checked byte reader: every accessor returns false once the
/// payload is exhausted, and the failure reason is recorded. Truncated or
/// hostile input degrades to a decode error, never to UB.
class Reader {
 public:
  Reader(const std::vector<std::uint8_t>& data, WireError* error)
      : data_(data.data()), size_(data.size()), error_(error) {}

  bool u8(std::uint8_t* v) {
    if (!need(1, "u8")) return false;
    *v = data_[pos_++];
    return true;
  }
  bool u32(std::uint32_t* v) {
    if (!need(4, "u32")) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i)
      *v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return true;
  }
  bool u64(std::uint64_t* v) {
    if (!need(8, "u64")) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i)
      *v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return true;
  }
  bool f64(double* v) {
    std::uint64_t bits = 0;
    if (!u64(&bits)) return false;
    *v = std::bit_cast<double>(bits);
    return true;
  }
  bool str(std::string* v) {
    std::uint32_t n = 0;
    if (!u32(&n)) return false;
    if (!need(n, "string body")) return false;
    v->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }
  bool f64_vec(std::vector<double>* v) {
    std::uint32_t n = 0;
    if (!u32(&n)) return false;
    if (!need(static_cast<std::size_t>(n) * 8, "f64 vector body"))
      return false;
    v->resize(n);
    for (std::uint32_t i = 0; i < n; ++i) f64(&(*v)[i]);
    return true;
  }
  bool u32_vec(std::vector<std::uint32_t>* v) {
    std::uint32_t n = 0;
    if (!u32(&n)) return false;
    if (!need(static_cast<std::size_t>(n) * 4, "u32 vector body"))
      return false;
    v->resize(n);
    for (std::uint32_t i = 0; i < n; ++i) u32(&(*v)[i]);
    return true;
  }
  bool u64_vec(std::vector<std::uint64_t>* v) {
    std::uint32_t n = 0;
    if (!u32(&n)) return false;
    if (!need(static_cast<std::size_t>(n) * 8, "u64 vector body"))
      return false;
    v->resize(n);
    for (std::uint32_t i = 0; i < n; ++i) u64(&(*v)[i]);
    return true;
  }

  /// True when every payload byte was consumed — trailing garbage is
  /// rejected so frames cannot smuggle undeclared data.
  bool exhausted() {
    if (pos_ == size_) return true;
    set_error("trailing bytes after payload");
    return false;
  }

 private:
  bool need(std::size_t n, const char* what) {
    if (size_ - pos_ >= n) return true;
    set_error(std::string("truncated payload reading ") + what);
    return false;
  }
  void set_error(std::string reason) {
    if (error_ != nullptr && error_->reason.empty())
      error_->reason = std::move(reason);
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  WireError* error_;
};

void put(Writer& w, const SdoDelivery& d) {
  w.u32(d.dest_pe);
  w.u32(d.src_node);
  w.f64(d.birth);
}
bool get(Reader& r, SdoDelivery* d) {
  return r.u32(&d->dest_pe) && r.u32(&d->src_node) && r.f64(&d->birth);
}

void put(Writer& w, const Advert& a) {
  w.u32(a.pe);
  w.f64(a.rmax);
  w.f64(a.time);
}
bool get(Reader& r, Advert* a) {
  return r.u32(&a->pe) && r.f64(&a->rmax) && r.f64(&a->time);
}

void put_span(Writer& w, const obs::SdoSpan& s) {
  w.u64(s.trace_id);
  w.u32(s.source_pe);
  w.f64(s.start);
  w.f64(s.end);
  w.u8(s.dropped ? 1 : 0);
  w.u8(s.truncated ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(s.hop_count));
  for (std::uint32_t i = 0; i < s.hop_count; ++i) {
    const obs::SpanHop& hop = s.hops[i];
    w.u32(hop.pe);
    w.u32(hop.kind);
    w.f64(hop.enqueue);
    w.f64(hop.dequeue);
    w.f64(hop.emit);
  }
}
bool get_span(Reader& r, obs::SdoSpan* s, WireError* error) {
  const auto fail = [error](const char* why) {
    if (error != nullptr && error->reason.empty()) error->reason = why;
    return false;
  };
  std::uint8_t dropped = 0, truncated = 0, hop_count = 0;
  if (!(r.u64(&s->trace_id) && r.u32(&s->source_pe) && r.f64(&s->start) &&
        r.f64(&s->end) && r.u8(&dropped) && r.u8(&truncated) &&
        r.u8(&hop_count))) {
    return false;
  }
  if (hop_count > obs::SdoSpan::kMaxHops) {
    return fail("span hop count exceeds kMaxHops");
  }
  s->dropped = dropped != 0;
  s->truncated = truncated != 0;
  s->hop_count = hop_count;
  for (std::uint32_t i = 0; i < s->hop_count; ++i) {
    obs::SpanHop& hop = s->hops[i];
    if (!(r.u32(&hop.pe) && r.u32(&hop.kind) && r.f64(&hop.enqueue) &&
          r.f64(&hop.dequeue) && r.f64(&hop.emit))) {
      return false;
    }
    if (hop.kind > static_cast<std::uint32_t>(obs::HopKind::kWireRecv)) {
      return fail("unknown span hop kind");
    }
  }
  return true;
}

void put_tick(Writer& w, const obs::TickRecord& t) {
  w.f64(t.time);
  w.u32(t.node);
  w.u32(t.pe);
  w.f64(t.buffer_occupancy);
  w.f64(t.arrived_sdos);
  w.f64(t.processed_sdos);
  w.f64(t.cpu_share);
  w.f64(t.cpu_seconds_used);
  w.f64(t.advertised_rmax);
  w.f64(t.downstream_rmax);
  w.f64(t.token_fill);
  w.u8(t.output_blocked ? 1 : 0);
  w.u64(t.dropped_total);
  w.u8(t.fault_flags);
  w.str(t.policy);
}
bool get_tick(Reader& r, obs::TickRecord* t) {
  std::uint8_t blocked = 0;
  if (!(r.f64(&t->time) && r.u32(&t->node) && r.u32(&t->pe) &&
        r.f64(&t->buffer_occupancy) && r.f64(&t->arrived_sdos) &&
        r.f64(&t->processed_sdos) && r.f64(&t->cpu_share) &&
        r.f64(&t->cpu_seconds_used) && r.f64(&t->advertised_rmax) &&
        r.f64(&t->downstream_rmax) && r.f64(&t->token_fill) &&
        r.u8(&blocked) && r.u64(&t->dropped_total) && r.u8(&t->fault_flags) &&
        r.str(&t->policy))) {
    return false;
  }
  t->output_blocked = blocked != 0;
  return true;
}

template <typename T, typename Put>
void put_vec(Writer& w, const std::vector<T>& v, Put put_one) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const T& x : v) put_one(w, x);
}

template <typename T, typename Get>
bool get_vec(Reader& r, std::vector<T>* v, Get get_one, WireError* error,
             const char* what) {
  std::uint32_t n = 0;
  if (!r.u32(&n)) return false;
  // Each element is at least 8 bytes on the wire; an element count far
  // beyond the payload is corruption, not a big message.
  if (n > kMaxFramePayload / 8) {
    if (error != nullptr && error->reason.empty())
      error->reason = std::string("implausible element count for ") + what;
    return false;
  }
  v->resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!get_one(r, &(*v)[i])) return false;
  }
  return true;
}

void put_stats(Writer& w, const OnlineStats& s) {
  w.u64(s.count());
  w.f64(s.mean());
  w.f64(s.m2());
  w.f64(s.min());
  w.f64(s.max());
}
bool get_stats(Reader& r, OnlineStats* s) {
  std::uint64_t count = 0;
  double mean = 0.0, m2 = 0.0, min = 0.0, max = 0.0;
  if (!(r.u64(&count) && r.f64(&mean) && r.f64(&m2) && r.f64(&min) &&
        r.f64(&max)))
    return false;
  *s = OnlineStats::from_raw(count, mean, m2, min, max);
  return true;
}

void put_histogram(Writer& w, const LogHistogram& h) {
  w.u64_vec(h.raw_counts());
  w.u64(h.count());
  w.f64(h.min() );
  w.f64(h.max());
  w.f64(h.sum());
}
bool get_histogram(Reader& r, LogHistogram* h, WireError* error) {
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double min = 0.0, max = 0.0, sum = 0.0;
  if (!(r.u64_vec(&counts) && r.u64(&count) && r.f64(&min) && r.f64(&max) &&
        r.f64(&sum)))
    return false;
  if (counts.size() != LogHistogram().raw_counts().size()) {
    if (error != nullptr && error->reason.empty())
      error->reason = "histogram bucket layout mismatch";
    return false;
  }
  *h = LogHistogram::from_raw(std::move(counts), count, min, max, sum);
  return true;
}

}  // namespace

std::array<std::uint8_t, 8> frame_header(FrameType type,
                                         std::uint32_t payload_size) {
  std::array<std::uint8_t, 8> h{};
  h[0] = static_cast<std::uint8_t>(kMagic & 0xFF);
  h[1] = static_cast<std::uint8_t>(kMagic >> 8);
  h[2] = kWireVersion;
  h[3] = static_cast<std::uint8_t>(type);
  for (int i = 0; i < 4; ++i)
    h[4 + i] = static_cast<std::uint8_t>(payload_size >> (8 * i));
  return h;
}

std::optional<std::pair<FrameType, std::uint32_t>> parse_header(
    const std::uint8_t* data, WireError* error) {
  const auto fail = [error](const char* why)
      -> std::optional<std::pair<FrameType, std::uint32_t>> {
    if (error != nullptr && error->reason.empty()) error->reason = why;
    return std::nullopt;
  };
  const std::uint16_t magic =
      static_cast<std::uint16_t>(data[0] | (data[1] << 8));
  if (magic != kMagic) return fail("bad magic");
  if (data[2] != kWireVersion) return fail("unsupported wire version");
  const std::uint8_t type = data[3];
  if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
      type > static_cast<std::uint8_t>(FrameType::kFlightDump)) {
    return fail("unknown frame type");
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(data[4 + i]) << (8 * i);
  if (len > kMaxFramePayload) return fail("payload length exceeds cap");
  return std::make_pair(static_cast<FrameType>(type), len);
}

std::optional<Frame> parse_frame(const std::uint8_t* data, std::size_t size,
                                 WireError* error) {
  const auto fail = [error](const char* why) -> std::optional<Frame> {
    if (error != nullptr && error->reason.empty()) error->reason = why;
    return std::nullopt;
  };
  if (size < 8) return fail("short frame (no complete header)");
  const auto header = parse_header(data, error);
  if (!header.has_value()) return std::nullopt;
  const auto [type, len] = *header;
  if (size != 8 + static_cast<std::size_t>(len)) {
    return fail("frame size does not match header length");
  }
  Frame frame;
  frame.type = type;
  frame.payload.assign(data + 8, data + size);
  return frame;
}

std::vector<std::uint8_t> encode(const Hello& v) {
  Writer w;
  w.u32(v.rank);
  w.u64(v.pid);
  return std::move(w).frame(FrameType::kHello);
}

std::optional<Hello> decode_hello(const std::vector<std::uint8_t>& payload,
                                  WireError* error) {
  Reader r(payload, error);
  Hello v;
  if (!(r.u32(&v.rank) && r.u64(&v.pid) && r.exhausted())) {
    return std::nullopt;
  }
  return v;
}

std::vector<std::uint8_t> encode(const Config& v) {
  Writer w;
  w.u32(v.rank);
  w.u32(v.num_workers);
  w.u32(v.substeps);
  w.u64(v.seed);
  w.f64(v.duration);
  w.f64(v.warmup);
  w.f64(v.dt);
  w.u8(v.policy);
  w.f64(v.staleness);
  w.u32(v.batch);
  w.u32(v.channel_capacity);
  w.f64(v.heartbeat_interval);
  w.u64(v.start_quantum);
  w.str(v.topology);
  w.str(v.faults);
  w.f64_vec(v.plan_cpu);
  w.f64_vec(v.plan_rin);
  w.f64_vec(v.plan_rout);
  w.f64(v.span_sample);
  w.u8(v.record_trace);
  return std::move(w).frame(FrameType::kConfig);
}

std::optional<Config> decode_config(const std::vector<std::uint8_t>& payload,
                                    WireError* error) {
  Reader r(payload, error);
  Config v;
  if (!(r.u32(&v.rank) && r.u32(&v.num_workers) && r.u32(&v.substeps) &&
        r.u64(&v.seed) && r.f64(&v.duration) && r.f64(&v.warmup) &&
        r.f64(&v.dt) && r.u8(&v.policy) && r.f64(&v.staleness) &&
        r.u32(&v.batch) && r.u32(&v.channel_capacity) &&
        r.f64(&v.heartbeat_interval) && r.u64(&v.start_quantum) &&
        r.str(&v.topology) && r.str(&v.faults) && r.f64_vec(&v.plan_cpu) &&
        r.f64_vec(&v.plan_rin) && r.f64_vec(&v.plan_rout) &&
        r.f64(&v.span_sample) && r.u8(&v.record_trace) && r.exhausted())) {
    return std::nullopt;
  }
  return v;
}

std::vector<std::uint8_t> encode(const StepGo& v) {
  Writer w;
  w.u64(v.quantum);
  w.u8(v.flags);
  put_vec(w, v.deliveries, [](Writer& w2, const SdoDelivery& d) {
    put(w2, d);
  });
  put_vec(w, v.adverts, [](Writer& w2, const Advert& a) { put(w2, a); });
  w.u32_vec(v.congested_pes);
  w.u32_vec(v.down_nodes);
  w.u32_vec(v.up_nodes);
  return std::move(w).frame(FrameType::kStepGo);
}

std::optional<StepGo> decode_step_go(const std::vector<std::uint8_t>& payload,
                                     WireError* error) {
  Reader r(payload, error);
  StepGo v;
  if (!(r.u64(&v.quantum) && r.u8(&v.flags) &&
        get_vec(r, &v.deliveries,
                [](Reader& r2, SdoDelivery* d) { return get(r2, d); }, error,
                "deliveries") &&
        get_vec(r, &v.adverts,
                [](Reader& r2, Advert* a) { return get(r2, a); }, error,
                "adverts") &&
        r.u32_vec(&v.congested_pes) && r.u32_vec(&v.down_nodes) &&
        r.u32_vec(&v.up_nodes) && r.exhausted())) {
    return std::nullopt;
  }
  return v;
}

std::vector<std::uint8_t> encode(const StepDone& v) {
  Writer w;
  w.u64(v.quantum);
  put_vec(w, v.deliveries, [](Writer& w2, const SdoDelivery& d) {
    put(w2, d);
  });
  put_vec(w, v.adverts, [](Writer& w2, const Advert& a) { put(w2, a); });
  w.u32_vec(v.congested_pes);
  w.u32_vec(v.crashed_nodes);
  w.u32_vec(v.restored_nodes);
  return std::move(w).frame(FrameType::kStepDone);
}

std::optional<StepDone> decode_step_done(
    const std::vector<std::uint8_t>& payload, WireError* error) {
  Reader r(payload, error);
  StepDone v;
  if (!(r.u64(&v.quantum) &&
        get_vec(r, &v.deliveries,
                [](Reader& r2, SdoDelivery* d) { return get(r2, d); }, error,
                "deliveries") &&
        get_vec(r, &v.adverts,
                [](Reader& r2, Advert* a) { return get(r2, a); }, error,
                "adverts") &&
        r.u32_vec(&v.congested_pes) && r.u32_vec(&v.crashed_nodes) &&
        r.u32_vec(&v.restored_nodes) && r.exhausted())) {
    return std::nullopt;
  }
  return v;
}

std::vector<std::uint8_t> encode(const Heartbeat& v) {
  Writer w;
  w.u32(v.rank);
  w.u64(v.quantum);
  return std::move(w).frame(FrameType::kHeartbeat);
}

std::optional<Heartbeat> decode_heartbeat(
    const std::vector<std::uint8_t>& payload, WireError* error) {
  Reader r(payload, error);
  Heartbeat v;
  if (!(r.u32(&v.rank) && r.u64(&v.quantum) && r.exhausted())) {
    return std::nullopt;
  }
  return v;
}

std::vector<std::uint8_t> encode(const Targets& v) {
  Writer w;
  w.u64(v.revision);
  w.f64_vec(v.cpu);
  w.f64_vec(v.rin);
  w.f64_vec(v.rout);
  return std::move(w).frame(FrameType::kTargets);
}

std::optional<Targets> decode_targets(const std::vector<std::uint8_t>& payload,
                                      WireError* error) {
  Reader r(payload, error);
  Targets v;
  if (!(r.u64(&v.revision) && r.f64_vec(&v.cpu) && r.f64_vec(&v.rin) &&
        r.f64_vec(&v.rout) && r.exhausted())) {
    return std::nullopt;
  }
  return v;
}

std::vector<std::uint8_t> encode(const Report& v) {
  Writer w;
  const metrics::RunReport& r = v.report;
  w.u64(v.rank);
  w.f64(r.measured_seconds);
  w.f64(r.weighted_throughput);
  w.f64(r.output_rate);
  put_stats(w, r.latency);
  put_histogram(w, r.latency_histogram);
  w.u64(r.internal_drops);
  w.u64(r.ingress_drops);
  w.u64(r.sdos_processed);
  w.f64(r.cpu_utilization);
  put_stats(w, r.buffer_fill);
  w.u64_vec(r.egress_outputs);
  w.u32(static_cast<std::uint32_t>(r.per_pe.size()));
  for (const metrics::PeAccounting& pe : r.per_pe) {
    w.u64(pe.arrived);
    w.u64(pe.processed);
    w.u64(pe.emitted);
    w.u64(pe.dropped_input);
    w.f64(pe.cpu_seconds);
  }
  w.u64(r.events_executed);
  w.u64(r.reoptimizations);
  return std::move(w).frame(FrameType::kReport);
}

std::optional<Report> decode_report(const std::vector<std::uint8_t>& payload,
                                    WireError* error) {
  Reader r(payload, error);
  Report v;
  metrics::RunReport& rep = v.report;
  if (!(r.u64(&v.rank) && r.f64(&rep.measured_seconds) &&
        r.f64(&rep.weighted_throughput) && r.f64(&rep.output_rate) &&
        get_stats(r, &rep.latency) &&
        get_histogram(r, &rep.latency_histogram, error) &&
        r.u64(&rep.internal_drops) && r.u64(&rep.ingress_drops) &&
        r.u64(&rep.sdos_processed) && r.f64(&rep.cpu_utilization) &&
        get_stats(r, &rep.buffer_fill) && r.u64_vec(&rep.egress_outputs))) {
    return std::nullopt;
  }
  std::uint32_t pe_count = 0;
  if (!r.u32(&pe_count)) return std::nullopt;
  if (pe_count > kMaxFramePayload / 40) {
    if (error != nullptr && error->reason.empty())
      error->reason = "implausible per-PE accounting count";
    return std::nullopt;
  }
  rep.per_pe.resize(pe_count);
  for (metrics::PeAccounting& pe : rep.per_pe) {
    if (!(r.u64(&pe.arrived) && r.u64(&pe.processed) && r.u64(&pe.emitted) &&
          r.u64(&pe.dropped_input) && r.f64(&pe.cpu_seconds))) {
      return std::nullopt;
    }
  }
  if (!(r.u64(&rep.events_executed) && r.u64(&rep.reoptimizations) &&
        r.exhausted())) {
    return std::nullopt;
  }
  return v;
}

std::vector<std::uint8_t> encode_shutdown() {
  Writer w;
  return std::move(w).frame(FrameType::kShutdown);
}

std::vector<std::uint8_t> encode(const MetricsReport& v) {
  Writer w;
  w.u32(v.rank);
  w.u64(v.quantum);
  put_vec(w, v.counters, [](Writer& w2, const MetricsCounter& c) {
    w2.str(c.name);
    w2.u64(c.delta);
  });
  put_vec(w, v.gauges, [](Writer& w2, const MetricsGauge& g) {
    w2.str(g.name);
    w2.f64(g.value);
  });
  put_vec(w, v.pe_latency, [](Writer& w2, const PeLatencySnapshot& p) {
    w2.u32(p.pe);
    put_histogram(w2, p.wait);
    put_histogram(w2, p.service);
  });
  put_vec(w, v.path_latency, [](Writer& w2, const PathLatencySnapshot& p) {
    w2.u64(p.id);
    w2.str(p.label);
    put_histogram(w2, p.end_to_end);
  });
  put_vec(w, v.perf, [](Writer& w2, const PerfCell& c) {
    w2.str(c.name);
    w2.u64(c.calls);
    w2.u64(c.ns);
  });
  put_vec(w, v.trace, [](Writer& w2, const obs::TickRecord& t) {
    put_tick(w2, t);
  });
  return std::move(w).frame(FrameType::kMetricsReport);
}

std::optional<MetricsReport> decode_metrics_report(
    const std::vector<std::uint8_t>& payload, WireError* error) {
  Reader r(payload, error);
  MetricsReport v;
  if (!(r.u32(&v.rank) && r.u64(&v.quantum) &&
        get_vec(r, &v.counters,
                [](Reader& r2, MetricsCounter* c) {
                  return r2.str(&c->name) && r2.u64(&c->delta);
                },
                error, "metric counters") &&
        get_vec(r, &v.gauges,
                [](Reader& r2, MetricsGauge* g) {
                  return r2.str(&g->name) && r2.f64(&g->value);
                },
                error, "metric gauges") &&
        get_vec(r, &v.pe_latency,
                [error](Reader& r2, PeLatencySnapshot* p) {
                  return r2.u32(&p->pe) &&
                         get_histogram(r2, &p->wait, error) &&
                         get_histogram(r2, &p->service, error);
                },
                error, "PE latency snapshots") &&
        get_vec(r, &v.path_latency,
                [error](Reader& r2, PathLatencySnapshot* p) {
                  return r2.u64(&p->id) && r2.str(&p->label) &&
                         get_histogram(r2, &p->end_to_end, error);
                },
                error, "path latency snapshots") &&
        get_vec(r, &v.perf,
                [](Reader& r2, PerfCell* c) {
                  return r2.str(&c->name) && r2.u64(&c->calls) &&
                         r2.u64(&c->ns);
                },
                error, "perf cells") &&
        get_vec(r, &v.trace,
                [](Reader& r2, obs::TickRecord* t) {
                  return get_tick(r2, t);
                },
                error, "trace records") &&
        r.exhausted())) {
    return std::nullopt;
  }
  return v;
}

std::vector<std::uint8_t> encode(const SpanBatch& v) {
  Writer w;
  w.u32(v.rank);
  w.u64(v.quantum);
  put_vec(w, v.completed, [](Writer& w2, const obs::SdoSpan& s) {
    put_span(w2, s);
  });
  put_vec(w, v.handoffs, [](Writer& w2, const SpanHandoff& h) {
    w2.u32(h.dest_pe);
    w2.u32(h.src_node);
    w2.u32(h.index);
    put_span(w2, h.span);
  });
  return std::move(w).frame(FrameType::kSpanBatch);
}

std::optional<SpanBatch> decode_span_batch(
    const std::vector<std::uint8_t>& payload, WireError* error) {
  Reader r(payload, error);
  SpanBatch v;
  if (!(r.u32(&v.rank) && r.u64(&v.quantum) &&
        get_vec(r, &v.completed,
                [error](Reader& r2, obs::SdoSpan* s) {
                  return get_span(r2, s, error);
                },
                error, "completed spans") &&
        get_vec(r, &v.handoffs,
                [error](Reader& r2, SpanHandoff* h) {
                  return r2.u32(&h->dest_pe) && r2.u32(&h->src_node) &&
                         r2.u32(&h->index) && get_span(r2, &h->span, error);
                },
                error, "span handoffs") &&
        r.exhausted())) {
    return std::nullopt;
  }
  return v;
}

std::vector<std::uint8_t> encode(const FlightDump& v) {
  Writer w;
  w.u32(v.rank);
  w.str(v.event);
  w.f64(v.time);
  w.u64(v.pushed);
  put_vec(w, v.recent, [](Writer& w2, const obs::SdoSpan& s) {
    put_span(w2, s);
  });
  put_vec(w, v.in_flight, [](Writer& w2, const obs::SdoSpan& s) {
    put_span(w2, s);
  });
  return std::move(w).frame(FrameType::kFlightDump);
}

std::optional<FlightDump> decode_flight_dump(
    const std::vector<std::uint8_t>& payload, WireError* error) {
  Reader r(payload, error);
  FlightDump v;
  if (!(r.u32(&v.rank) && r.str(&v.event) && r.f64(&v.time) &&
        r.u64(&v.pushed) &&
        get_vec(r, &v.recent,
                [error](Reader& r2, obs::SdoSpan* s) {
                  return get_span(r2, s, error);
                },
                error, "recent spans") &&
        get_vec(r, &v.in_flight,
                [error](Reader& r2, obs::SdoSpan* s) {
                  return get_span(r2, s, error);
                },
                error, "in-flight spans") &&
        r.exhausted())) {
    return std::nullopt;
  }
  return v;
}

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kConfig: return "config";
    case FrameType::kStepGo: return "step_go";
    case FrameType::kStepDone: return "step_done";
    case FrameType::kHeartbeat: return "heartbeat";
    case FrameType::kTargets: return "targets";
    case FrameType::kReport: return "report";
    case FrameType::kShutdown: return "shutdown";
    case FrameType::kMetricsReport: return "metrics_report";
    case FrameType::kSpanBatch: return "span_batch";
    case FrameType::kFlightDump: return "flight_dump";
  }
  return "unknown";
}

}  // namespace aces::runtime::wire
