// Options for the multi-process distributed runtime (dist_coordinator.h).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"
#include "control/config.h"
#include "fault/fault_spec.h"
#include "opt/global_optimizer.h"
#include "runtime/transport/transport.h"

namespace aces::obs {
class ClusterAggregator;
}  // namespace aces::obs

namespace aces::runtime::dist {

struct DistOptions {
  /// Virtual seconds to run.
  Seconds duration = 30.0;
  /// Virtual seconds of warm-up excluded from measurement.
  Seconds warmup = 6.0;
  /// Control interval in virtual seconds.
  Seconds dt = 0.1;
  /// Barrier quanta per control interval: virtual time advances in steps of
  /// dt / substeps, and every cross-node effect (SDO delivery, advert
  /// refresh, Lock-Step congestion status) takes exactly one quantum. More
  /// substeps tighten the effective network latency; the default keeps the
  /// barrier overhead modest while staying well under one control interval.
  std::uint32_t substeps = 4;
  /// Controller settings. Only `policy` and `advert_staleness_timeout`
  /// cross the wire (wire::Config); workers fill the remaining knobs with
  /// their defaults, which is what every comparison path uses.
  control::ControllerConfig controller;
  /// Optimizer settings for mid-run re-solves (optimize_excluding on
  /// membership changes). Should match the config that produced the
  /// initial plan.
  opt::OptimizerConfig optimizer;
  std::uint64_t seed = 1;
  /// Data-plane knobs carried for parity with RuntimeOptions; `batch` only
  /// pads the Config frame (the barrier-stepped data plane has no channel
  /// synchronization to amortize), `channel_capacity` overrides each PE's
  /// input-buffer bound when > 0.
  std::size_t batch = 8;
  std::size_t channel_capacity = 0;
  /// Worker shards. Nodes are partitioned contiguously: worker r owns nodes
  /// [r·N/W, (r+1)·N/W). Clamped to the node count. Work totals are
  /// partition-invariant — any W produces byte-identical reports.
  std::uint32_t processes = 2;
  transport::TransportKind transport = transport::TransportKind::kInProc;
  /// Wall seconds between worker heartbeats while computing a quantum.
  double heartbeat_interval = 0.05;
  /// Wall seconds of silence (no frame, no heartbeat) after which the
  /// coordinator declares a worker dead.
  double heartbeat_timeout = 2.0;
  /// Fault schedule. `prockill` clauses are executed for real here (SIGKILL
  /// of the worker process / abrupt endpoint close for inproc); the modeled
  /// clauses behave as in the other substrates, except `advert_delay`
  /// (simulator-only, as in the threaded runtime).
  fault::FaultSchedule faults;
  /// Re-solve tier 1 (optimize_excluding) when membership changes and push
  /// the new targets to the surviving workers.
  bool reoptimize = true;
  /// Worker executable for the socket transports; empty uses /proc/self/exe
  /// (the coordinator re-executes itself — any binary that calls
  /// dist::maybe_worker() early in main() works).
  std::string worker_exe;
  /// Directory for the coordinator's Unix-domain socket; empty uses
  /// $TMPDIR or /tmp.
  std::string uds_dir;
  /// Fraction of source SDOs whose spans are traced on the workers (0
  /// disables tracing entirely). Sampling is a pure function of
  /// (seed, source PE, acceptance counter), so it never perturbs results.
  double span_sample = 0.0;
  /// Ship per-tick control-trace records to the coordinator so distributed
  /// runs feed `aces trace-summary` like the other substrates.
  bool record_trace = false;
  /// Optional (non-owned) sink for the cluster observability plane: shard
  /// telemetry, RTT/skew gauges, flight-recorder evidence. Null disables
  /// all coordinator-side aggregation (the frames are still consumed).
  obs::ClusterAggregator* aggregator = nullptr;
};

/// Coordinator-side observability for one distributed run.
struct DistStats {
  /// Wall seconds from the first SIGKILL to the coordinator declaring the
  /// worker dead; negative when no kill occurred.
  double kill_detect_wall_seconds = -1.0;
  std::uint64_t reoptimizations = 0;
  std::uint64_t workers_killed = 0;
  std::uint64_t workers_restarted = 0;
  std::uint64_t heartbeats_received = 0;
  /// Cross-worker deliveries discarded because the destination worker was
  /// dead at relay time.
  std::uint64_t relay_dropped = 0;
  /// Worker processes still alive after shutdown that had to be reaped
  /// forcibly; 0 on a clean run.
  std::uint64_t orphans_reaped = 0;
};

}  // namespace aces::runtime::dist
