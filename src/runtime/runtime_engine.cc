#include "runtime/runtime_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/atomic_shim.h"
#include "common/bounded_queue.h"
#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/rng.h"
#include "control/node_controller.h"
#include "fault/fault_injector.h"
#include "metrics/collector.h"
#include "obs/counters.h"
#include "obs/scoped_timer.h"
#include "obs/spans.h"
#include "obs/trace.h"
#include "runtime/message_bus.h"
#include "runtime/sdo_channel.h"
#include "runtime/thread_pin.h"
#include "workload/arrivals.h"
#include "workload/markov_modulator.h"

namespace aces::runtime {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Sdo {
  Seconds birth;  // virtual time of system entry
  /// Span handle when traced; -1 otherwise. Fan-out copies inherit -1.
  std::int32_t span = -1;
};

/// Thread-safe metrics front end (the node and source threads all report).
class SharedCollector {
 public:
  SharedCollector(Seconds measure_from, std::size_t egress_count)
      : collector_(measure_from, egress_count) {}

  void egress_output(Seconds now, std::size_t index, double weight,
                     Seconds latency) ACES_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    collector_.on_egress_output(now, index, weight, latency);
  }
  void internal_drop(Seconds now) ACES_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    collector_.on_internal_drop(now);
  }
  void ingress_drop(Seconds now) ACES_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    collector_.on_ingress_drop(now);
  }
  void processed(Seconds now, std::uint64_t count) ACES_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    collector_.on_processed(now, count);
  }
  void cpu_used(Seconds now, double cpu_seconds) ACES_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    collector_.on_cpu_used(now, cpu_seconds);
  }
  void buffer_sample(Seconds now, double fill) ACES_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    collector_.on_buffer_sample(now, fill);
  }
  metrics::RunReport finalize(Seconds end, double capacity)
      ACES_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return collector_.finalize(end, capacity);
  }

 private:
  Mutex mutex_;
  metrics::Collector collector_ ACES_GUARDED_BY(mutex_);
};

/// Everything the worker threads share about one PE.
struct PeRt {
  PeRt(std::size_t capacity, bool single_producer,
       workload::ServiceModel service, std::size_t batch,
       std::size_t pending_bound)
      : input(capacity, single_producer),
        service(std::move(service)),
        fetched(batch),
        pending(pending_bound) {}

  /// SPSC ring when the graph proves one producer thread, mutex channel
  /// otherwise (the hosting node thread is always the sole consumer).
  SdoChannel<Sdo> input;
  /// Total accepted pushes; the node thread diffs this per tick to report
  /// arrivals to the controller.
  Atomic<std::uint64_t> pushed{0};
  /// This PE's latest advertised r_max (its input, SDO/s). Written by its
  /// node's tick; read by upstream nodes — the control-plane mailbox.
  Atomic<double> advert{kInf};
  /// Virtual time the mailbox was last refreshed (run start counts as
  /// fresh); drives the advertisement-staleness degradation rule.
  Atomic<Seconds> advert_time{0.0};

  workload::ServiceModel service;
  std::size_t egress_index = static_cast<std::size_t>(-1);

  // ---- state owned exclusively by the hosting node thread ----
  double share = 0.0;
  bool busy = false;
  Sdo current{};
  double work_remaining = 0.0;
  double used_this_tick = 0.0;
  double processed_this_tick = 0.0;
  std::uint64_t pushed_at_last_tick = 0;
  double selectivity_credit = 0.0;
  bool blocked = false;
  /// Burst-drain staging: SDOs already popped from `input` but not yet in
  /// service. fetched[fetched_head, fetched_count) are live. Counted into
  /// buffer occupancy, drained as lost on crash — logically these are
  /// still "queued", they just live on the consumer's side of the ring.
  std::vector<Sdo> fetched;
  std::size_t fetched_head = 0;
  std::size_t fetched_count = 0;
  [[nodiscard]] std::size_t staged() const { return fetched_count - fetched_head; }

  /// (downstream slot, sdo) held while Lock-Step blocks on a full
  /// consumer. Bounded by construction: one complete() appends at most
  /// outputs × slots entries and no complete() runs while blocked, so the
  /// pool never reallocates (see the sizing note in the Engine ctor).
  BoundedQueue<std::pair<std::size_t, Sdo>> pending;

  // Lifetime accounting. `dropped` is touched by node, bus, and source
  // threads; the rest belong to the hosting node thread and are read only
  // after the worker threads join.
  Atomic<std::uint64_t> dropped{0};
  std::uint64_t lifetime_processed = 0;
  std::uint64_t lifetime_emitted = 0;
  double lifetime_cpu = 0.0;
};

class Engine {
 public:
  Engine(const graph::ProcessingGraph& g, const opt::AllocationPlan& plan,
         const RuntimeOptions& options)
      : graph_(g),
        options_(options),
        policy_(options.controller.policy),
        collector_(options.warmup, count_egress(g)) {
    ACES_CHECK_MSG(options.duration > options.warmup,
                   "duration must exceed warmup");
    ACES_CHECK_MSG(options.dt > 0.0, "dt must be positive");
    ACES_CHECK_MSG(options.time_scale > 0.0, "time scale must be positive");
    ACES_CHECK_MSG(options.network_latency >= 0.0,
                   "negative network latency");
    ACES_CHECK_MSG(options.batch > 0, "batch must be positive");
    g.validate();
    Rng master(options.seed);

    total_capacity_ = 0.0;
    for (NodeId n : g.all_nodes()) total_capacity_ += g.node(n).cpu_capacity;

    // The bus dispatcher is a producer thread iff it will be started in
    // run(); known at construction from the same predicate.
    const bool bus_active = options.network_latency > 0.0 &&
                            policy_ != control::FlowPolicy::kLockStep;

    pes_.reserve(g.pe_count());
    std::size_t egress_counter = 0;
    for (PeId id : g.all_pes()) {
      const auto& d = g.pe(id);
      const std::size_t capacity =
          options.channel_capacity > 0
              ? options.channel_capacity
              : static_cast<std::size_t>(d.buffer_capacity);
      // Lock-Step pending pool bound: one complete() emits at most
      // (⌊selectivity⌋+1) copies per downstream slot (the fractional
      // credit carried in is < 1), and a blocked PE completes nothing, so
      // the queue never holds more than one complete()'s worth.
      const std::size_t pending_bound =
          (static_cast<std::size_t>(std::floor(d.selectivity)) + 1) *
          std::max<std::size_t>(std::size_t{1}, g.downstream(id).size());
      auto pe = std::make_unique<PeRt>(
          capacity, channel_producer_count(g, id, bus_active) <= 1,
          workload::ServiceModel(d.service_time[0], d.service_time[1],
                                 d.sojourn_mean[0], d.sojourn_mean[1],
                                 master.fork(0x5E41 + id.value())),
          options.batch, pending_bound);
      pe->share = plan.at(id).cpu;
      if (d.kind == graph::PeKind::kEgress)
        pe->egress_index = egress_counter++;
      pes_.push_back(std::move(pe));
    }

    controllers_.reserve(g.node_count());
    for (NodeId n : g.all_nodes())
      controllers_.emplace_back(g, n, plan, options.controller);

    for (PeId id : g.all_pes()) {
      const auto& d = g.pe(id);
      if (d.kind != graph::PeKind::kIngress) continue;
      Rng stream_rng = master.fork(0xA11 + id.value());
      auto process =
          options.arrival_factory
              ? options.arrival_factory(d.input_stream,
                                        g.stream(d.input_stream),
                                        std::move(stream_rng))
              : workload::make_arrival_process(g.stream(d.input_stream),
                                               std::move(stream_rng));
      ACES_CHECK_MSG(process != nullptr,
                     "arrival factory returned null for stream "
                         << d.input_stream);
      sources_.push_back(Source{id.value(), std::move(process), 0.0});
    }

    // Data-plane event counters; disabled (null) handles when no registry
    // is attached, costing one predictable branch per event.
    channel_send_ = obs::make_counter(options.counters, "runtime.channel.send");
    channel_drop_ = obs::make_counter(options.counters, "runtime.channel.drop");
    channel_block_ =
        obs::make_counter(options.counters, "runtime.channel.block");
    bus_post_ = obs::make_counter(options.counters, "runtime.bus.post");
    bus_deliver_ = obs::make_counter(options.counters, "runtime.bus.deliver");
    source_inject_ =
        obs::make_counter(options.counters, "runtime.source.inject");
    source_drop_ = obs::make_counter(options.counters, "runtime.source.drop");

    if (!options.faults.empty()) {
      fault::validate(options.faults, g);
      injector_ = std::make_unique<fault::FaultInjector>(
          options.faults, options.seed, g.pe_count(), options.counters);
    }
  }

  metrics::RunReport run() {
    start_ = std::chrono::steady_clock::now();
    if (options_.network_latency > 0.0 &&
        policy_ != control::FlowPolicy::kLockStep) {
      bus_ = std::make_unique<MessageBus>([this] { return virtual_now(); },
                                          options_.time_scale);
      bus_->start();
    }
    std::vector<std::thread> threads;
    threads.reserve(controllers_.size() + 1);
    for (std::size_t n = 0; n < controllers_.size(); ++n) {
      threads.emplace_back([this, n] { node_main(n); });
    }
    threads.emplace_back([this] { source_main(); });
    // Wait out the experiment in wall time.
    const auto wall = std::chrono::duration<double>(
        options_.duration / options_.time_scale);
    std::this_thread::sleep_for(wall);
    stop_.store(true);
    if (bus_ != nullptr) bus_->stop();
    for (auto& pe : pes_) pe->input.close();
    for (auto& t : threads) t.join();
    metrics::RunReport report =
        collector_.finalize(options_.duration, total_capacity_);
    report.per_pe.reserve(pes_.size());
    for (const auto& pe : pes_) {
      metrics::PeAccounting acc;
      acc.arrived = pe->pushed.load(std::memory_order_relaxed);
      acc.processed = pe->lifetime_processed;
      acc.emitted = pe->lifetime_emitted;
      acc.dropped_input = pe->dropped.load(std::memory_order_relaxed);
      acc.cpu_seconds = pe->lifetime_cpu;
      report.per_pe.push_back(acc);
    }
    return report;
  }

 private:
  struct Source {
    std::size_t pe_index;
    std::unique_ptr<workload::ArrivalProcess> process;
    Seconds next_arrival;
  };

  static std::size_t count_egress(const graph::ProcessingGraph& g) {
    std::size_t count = 0;
    for (PeId id : g.all_pes())
      count += g.pe(id).kind == graph::PeKind::kEgress;
    return count;
  }

  /// Distinct threads that ever push into PE `id`'s input channel:
  /// the hosting node thread of each upstream PE — except that when the
  /// bus is active, a cross-node upstream's push happens on the bus
  /// dispatcher instead — plus the source thread for ingress PEs. This is
  /// the proof obligation for selecting the lock-free SPSC backend: the
  /// count errs high only (the engine has no other pushers), never low.
  static std::size_t channel_producer_count(const graph::ProcessingGraph& g,
                                            PeId id, bool bus_active) {
    // Producer tokens: a node's id for its worker thread, plus sentinels
    // for the bus dispatcher and the source thread.
    constexpr std::uint64_t kBusToken = ~std::uint64_t{0};
    constexpr std::uint64_t kSourceToken = ~std::uint64_t{0} - 1;
    std::vector<std::uint64_t> producers;
    for (PeId up : g.upstream(id)) {
      const bool cross_node = g.pe(up).node != g.pe(id).node;
      const std::uint64_t token = bus_active && cross_node
                                      ? kBusToken
                                      : std::uint64_t{g.pe(up).node.value()};
      if (std::find(producers.begin(), producers.end(), token) ==
          producers.end()) {
        producers.push_back(token);
      }
    }
    if (g.pe(id).kind == graph::PeKind::kIngress)
      producers.push_back(kSourceToken);
    return producers.size();
  }

  [[nodiscard]] Seconds virtual_now() const {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    return elapsed.count() * options_.time_scale;
  }

  void sleep_virtual(Seconds virtual_seconds) const {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        std::clamp(virtual_seconds / options_.time_scale, 0.0, 0.01)));
  }

  /// Injected loss on a delivery into PE `target`: its hosting node is down
  /// or a drop burst eats it.
  [[nodiscard]] bool fault_drops_delivery(std::size_t target, Seconds when) {
    if (injector_ == nullptr) return false;
    const PeId id(static_cast<PeId::value_type>(target));
    return injector_->node_down(graph_.pe(id).node, when) ||
           injector_->drop_delivery(id, when);
  }

  /// Delivery leg shared by direct and bus-delayed sends: push or drop.
  void deliver(std::size_t target, Sdo sdo, Seconds when) {
    PeRt& t = *pes_[target];
    if (fault_drops_delivery(target, when)) {
      t.dropped.fetch_add(1, std::memory_order_relaxed);
      channel_drop_.inc();
      collector_.internal_drop(when);
      if (options_.spans != nullptr) options_.spans->drop(sdo.span, when);
      return;
    }
    // Enqueue hop recorded before the push: once the SDO is in the channel
    // the consuming thread owns its span.
    if (options_.spans != nullptr) {
      options_.spans->on_enqueue(
          sdo.span, PeId(static_cast<PeId::value_type>(target)), when);
    }
    if (t.input.try_push(sdo)) {
      t.pushed.fetch_add(1, std::memory_order_relaxed);
      channel_send_.inc();
    } else {
      t.dropped.fetch_add(1, std::memory_order_relaxed);
      channel_drop_.inc();
      collector_.internal_drop(when);
      if (options_.spans != nullptr) options_.spans->drop(sdo.span, when);
    }
  }

  /// Emits one SDO on `slot`; returns false when the PE must block
  /// (Lock-Step with a full downstream buffer).
  bool send(PeRt& pe, PeId pe_id, std::size_t slot, Sdo sdo, Seconds vnow) {
    ++pe.lifetime_emitted;
    const std::size_t target = graph_.downstream(pe_id)[slot].value();
    if (policy_ == control::FlowPolicy::kLockStep) {
      PeRt& t = *pes_[target];
      if (fault_drops_delivery(target, vnow)) {
        t.dropped.fetch_add(1, std::memory_order_relaxed);
        channel_drop_.inc();
        collector_.internal_drop(vnow);
        if (options_.spans != nullptr) options_.spans->drop(sdo.span, vnow);
        return true;  // lost, not blocked
      }
      if (options_.spans != nullptr) {
        options_.spans->on_enqueue(
            sdo.span, PeId(static_cast<PeId::value_type>(target)), vnow);
      }
      if (t.input.try_push(sdo)) {
        t.pushed.fetch_add(1, std::memory_order_relaxed);
        channel_send_.inc();
        return true;
      }
      // The push failed; the enqueue hop stays on the span and is simply
      // re-stamped when the pending entry eventually flushes.
      pe.pending.push_back({slot, sdo});
      pe.blocked = true;
      channel_block_.inc();
      return false;
    }
    // Drop policies: cross-node SDOs optionally travel through the message
    // bus with injected latency.
    const bool cross_node =
        graph_.pe(pe_id).node != graph_.pe(graph_.downstream(pe_id)[slot]).node;
    if (bus_ != nullptr && cross_node) {
      bus_post_.inc();
      bus_->post(vnow + options_.network_latency, [this, target, sdo] {
        bus_deliver_.inc();
        deliver(target, sdo, virtual_now());
      });
      return true;
    }
    deliver(target, sdo, vnow);
    return true;
  }

  /// Finish the SDO the PE just paid for: realize selectivity, emit copies.
  void complete(PeRt& pe, PeId pe_id, Seconds vnow) {
    pe.busy = false;
    pe.processed_this_tick += 1.0;
    ++pe.lifetime_processed;
    collector_.processed(vnow, 1);
    const auto& d = graph_.pe(pe_id);
    pe.selectivity_credit += d.selectivity;
    const int outputs = static_cast<int>(std::floor(pe.selectivity_credit));
    pe.selectivity_credit -= outputs;
    if (options_.spans != nullptr) {
      options_.spans->on_emit(pe.current.span, vnow);
    }
    if (d.kind == graph::PeKind::kEgress) {
      pe.lifetime_emitted += static_cast<std::uint64_t>(outputs);
      for (int k = 0; k < outputs; ++k) {
        collector_.egress_output(vnow, pe.egress_index, d.weight,
                                 vnow - pe.current.birth);
      }
      if (options_.spans != nullptr) {
        options_.spans->complete(pe.current.span, vnow);
      }
      return;
    }
    const auto& downs = graph_.downstream(pe_id);
    if (outputs == 0) {
      // Selectivity absorbed the SDO: its trace ends here, complete.
      if (options_.spans != nullptr) {
        options_.spans->complete(pe.current.span, vnow);
      }
      return;
    }
    // The span continues into the first downstream copy only (one
    // root-to-sink path per trace, same rule as the simulator).
    std::int32_t span = pe.current.span;
    for (std::size_t slot = 0; slot < downs.size(); ++slot) {
      for (int k = 0; k < outputs; ++k) {
        send(pe, pe_id, slot, Sdo{pe.current.birth, span}, vnow);
        span = -1;
      }
    }
  }

  void try_flush(PeRt& pe, PeId pe_id) {
    while (!pe.pending.empty()) {
      const auto [slot, sdo] = pe.pending.front();
      const std::size_t target = graph_.downstream(pe_id)[slot].value();
      PeRt& t = *pes_[target];
      if (fault_drops_delivery(target, virtual_now())) {
        t.dropped.fetch_add(1, std::memory_order_relaxed);
        channel_drop_.inc();
        collector_.internal_drop(virtual_now());
        if (options_.spans != nullptr) {
          options_.spans->drop(sdo.span, virtual_now());
        }
        pe.pending.pop_front();
        continue;  // a dead consumer must not deadlock its producers
      }
      // Re-stamp the hop's enqueue to the actual admission time.
      if (options_.spans != nullptr) {
        options_.spans->on_enqueue(
            sdo.span, PeId(static_cast<PeId::value_type>(target)),
            virtual_now());
      }
      if (!t.input.try_push(sdo)) return;
      t.pushed.fetch_add(1, std::memory_order_relaxed);
      channel_send_.inc();
      pe.pending.pop_front();
    }
    pe.blocked = false;
  }

  void node_tick(std::size_t node_index, Seconds vnow) {
    control::NodeController& controller = controllers_[node_index];
    const auto& local = controller.local_pes();
    std::vector<control::PeTickInput> inputs(local.size());
    for (std::size_t i = 0; i < local.size(); ++i) {
      PeRt& pe = *pes_[local[i].value()];
      control::PeTickInput& in = inputs[i];
      // Staged SDOs are still queued from the model's point of view; they
      // just sit on the consumer side of the ring (this thread's staging
      // buffer, so the read is race-free).
      in.buffer_occupancy = static_cast<double>(pe.input.size() + pe.staged());
      in.processed_sdos = pe.processed_this_tick;
      in.cpu_seconds_used = pe.used_this_tick;
      const std::uint64_t pushed =
          pe.pushed.load(std::memory_order_relaxed);
      in.arrived_sdos =
          static_cast<double>(pushed - pe.pushed_at_last_tick);
      pe.pushed_at_last_tick = pushed;
      in.output_blocked = pe.blocked;
      const auto& downs = graph_.downstream(local[i]);
      const Seconds staleness =
          options_.controller.advert_staleness_timeout;
      if (downs.empty()) {
        in.downstream_rmax = kInf;
      } else {
        in.downstream_rmax = -kInf;
        Seconds freshest = -kInf;
        for (PeId down : downs) {
          const PeRt& d = *pes_[down.value()];
          const Seconds refreshed =
              d.advert_time.load(std::memory_order_relaxed);
          // Per-slot staleness: a consumer silent past the timeout reads
          // as r_max = 0 in the Eq. 8 max.
          const bool stale = staleness > 0.0 && vnow - refreshed > staleness;
          in.downstream_rmax = std::max(
              in.downstream_rmax,
              stale ? 0.0 : d.advert.load(std::memory_order_relaxed));
          freshest = std::max(freshest, refreshed);
        }
        in.downstream_advert_age = vnow - freshest;
      }
    }
    std::vector<control::PeTickOutput> outputs;
    {
      obs::ScopedTimer timer(options_.profiler, obs::kPhaseControllerTick);
      ACES_PERF_SCOPE(PerfStage::kControllerTick);
      outputs = controller.tick(options_.dt, inputs);
    }
    for (std::size_t i = 0; i < local.size(); ++i) {
      PeRt& pe = *pes_[local[i].value()];
      if (options_.trace != nullptr) {
        obs::TickRecord rec;
        rec.time = vnow;
        rec.node = controller.node().value();
        rec.pe = local[i].value();
        rec.buffer_occupancy = inputs[i].buffer_occupancy;
        rec.arrived_sdos = inputs[i].arrived_sdos;
        rec.processed_sdos = inputs[i].processed_sdos;
        rec.cpu_share = outputs[i].cpu_share;
        rec.cpu_seconds_used = inputs[i].cpu_seconds_used;
        rec.advertised_rmax = outputs[i].advertised_rmax;
        rec.downstream_rmax = inputs[i].downstream_rmax;
        rec.token_fill = controller.tokens(i);
        rec.output_blocked = inputs[i].output_blocked;
        rec.dropped_total = pe.dropped.load(std::memory_order_relaxed);
        if (injector_ != nullptr && injector_->pe_stalled(local[i], vnow)) {
          rec.fault_flags |= obs::kFaultPeStalled;
        }
        if (options_.controller.advert_staleness_timeout > 0.0 &&
            !graph_.downstream(local[i]).empty() &&
            inputs[i].downstream_advert_age >
                options_.controller.advert_staleness_timeout) {
          rec.fault_flags |= obs::kFaultAdvertStale;
        }
        options_.trace->record(rec);
      }
      collector_.cpu_used(vnow, pe.used_this_tick);
      // Fill is against the effective channel capacity (the graph bound
      // unless --channel-capacity overrides it), clamped because staged
      // SDOs can push the instantaneous count past the bound.
      collector_.buffer_sample(
          vnow, std::min(1.0, static_cast<double>(pe.input.size() +
                                                  pe.staged()) /
                                  static_cast<double>(pe.input.capacity())));
      pe.used_this_tick = 0.0;
      pe.processed_this_tick = 0.0;
      pe.share = outputs[i].cpu_share;
      // Injected advertisement loss: skip the mailbox refresh entirely, so
      // the stale value (and its timestamp) is what upstream peers see.
      if (injector_ != nullptr && injector_->advert_lost(local[i], vnow))
        continue;
      pe.advert.store(outputs[i].advertised_rmax, std::memory_order_relaxed);
      pe.advert_time.store(vnow, std::memory_order_relaxed);
    }
  }

  /// The hosting node crashed: everything buffered, in service, or pending
  /// on its PEs is lost. Runs on the node thread at the down transition.
  void crash_local_pes(const std::vector<PeId>& local, Seconds vnow) {
    // Post-mortem first: capture the doomed SDOs while their spans still
    // read as in-flight.
    if (options_.spans != nullptr) {
      options_.spans->fault_dump("fault.node_crash", vnow);
    }
    std::uint64_t lost = 0;
    for (PeId id : local) {
      PeRt& pe = *pes_[id.value()];
      std::uint64_t pe_lost = pe.busy ? 1 : 0;
      if (options_.spans != nullptr) {
        if (pe.busy) options_.spans->drop(pe.current.span, vnow);
        for (std::size_t i = 0; i < pe.pending.size(); ++i)
          options_.spans->drop(pe.pending.at(i).second.span, vnow);
        for (std::size_t f = pe.fetched_head; f < pe.fetched_count; ++f)
          options_.spans->drop(pe.fetched[f].span, vnow);
      }
      pe_lost += pe.pending.size();
      pe_lost += pe.staged();
      pe.fetched_head = 0;
      pe.fetched_count = 0;
      while (auto sdo = pe.input.try_pop()) {
        ++pe_lost;
        if (options_.spans != nullptr) options_.spans->drop(sdo->span, vnow);
      }
      pe.busy = false;
      pe.blocked = false;
      pe.pending.clear();
      pe.work_remaining = 0.0;
      pe.share = 0.0;
      pe.dropped.fetch_add(pe_lost, std::memory_order_relaxed);
      for (std::uint64_t k = 0; k < pe_lost; ++k)
        collector_.internal_drop(vnow);
      lost += pe_lost;
    }
    injector_->note_node_crash(lost);
  }

  void node_main(std::size_t node_index) {
    if (options_.pin_threads) pin_this_thread(node_index);
    control::NodeController& controller = controllers_[node_index];
    const auto& local = controller.local_pes();
    Rng phase_rng(options_.seed * 977 + node_index);
    Seconds tick_start = phase_rng.uniform(0.0, options_.dt);
    while (virtual_now() < tick_start && !stop_.load()) {
      sleep_virtual(tick_start - virtual_now());
    }

    bool was_down = false;
    std::vector<bool> was_stalled(local.size(), false);
    while (!stop_.load()) {
      Seconds vnow = virtual_now();

      if (injector_ != nullptr) {
        const bool is_down = injector_->node_down(controller.node(), vnow);
        if (is_down && !was_down) crash_local_pes(local, vnow);
        if (!is_down && was_down) {
          // Recovery: factory-fresh controller state, drained channels
          // (deliveries while down were dropped at the sender side), and a
          // re-homed tick grid.
          controller.reset_state();
          for (PeId id : local) {
            PeRt& pe = *pes_[id.value()];
            while (auto sdo = pe.input.try_pop()) {
              if (options_.spans != nullptr) {
                options_.spans->drop(sdo->span, vnow);
              }
            }
            if (options_.spans != nullptr) {
              for (std::size_t f = pe.fetched_head; f < pe.fetched_count; ++f)
                options_.spans->drop(pe.fetched[f].span, vnow);
            }
            pe.fetched_head = 0;
            pe.fetched_count = 0;
            pe.pushed_at_last_tick =
                pe.pushed.load(std::memory_order_relaxed);
          }
          tick_start = vnow;
          injector_->note_node_restart();
        }
        was_down = is_down;
        if (is_down) {
          sleep_virtual(options_.dt);
          continue;
        }
        for (std::size_t i = 0; i < local.size(); ++i) {
          const bool stalled = injector_->pe_stalled(local[i], vnow);
          if (stalled && !was_stalled[i]) {
            injector_->note_pe_stall();
            if (options_.spans != nullptr) {
              options_.spans->fault_dump("fault.pe_stall", vnow);
            }
          }
          was_stalled[i] = stalled;
        }
      }

      if (vnow >= tick_start + options_.dt) {
        node_tick(node_index, vnow);
        tick_start += options_.dt;
        // If the thread was starved across several intervals, re-home the
        // tick grid instead of firing a burst of stale ticks.
        if (vnow >= tick_start + options_.dt) tick_start = vnow;
        vnow = virtual_now();
      }

      // Processing phase: each PE may spend share × (elapsed-in-tick)
      // virtual CPU seconds, paced by the wall clock.
      bool any_progress = false;
      for (std::size_t i = 0; i < local.size(); ++i) {
        PeRt& pe = *pes_[local[i].value()];
        if (was_stalled[i]) continue;  // wedged operator: burns no CPU
        if (pe.blocked) {
          try_flush(pe, local[i]);
          if (pe.blocked) continue;
        }
        if (pe.share <= 0.0) continue;
        const Seconds horizon = std::min(vnow, tick_start + options_.dt);
        double allowed = pe.share * (horizon - tick_start) - pe.used_this_tick;
        while (allowed > 0.0 && !pe.blocked) {
          if (!pe.busy) {
            // Refill the staging buffer in one burst (one index publish
            // for up to `batch` SDOs), then serve from it.
            if (pe.fetched_head == pe.fetched_count) {
              pe.fetched_head = 0;
              pe.fetched_count =
                  pe.input.pop_burst(pe.fetched.data(), options_.batch);
              if (pe.fetched_count == 0) break;
            }
            pe.current = pe.fetched[pe.fetched_head++];
            if (options_.spans != nullptr) {
              options_.spans->on_dequeue(pe.current.span, vnow);
            }
            pe.busy = true;
            pe.work_remaining = pe.service.cost_at(vnow);
          }
          const double spend = std::min(allowed, pe.work_remaining);
          pe.work_remaining -= spend;
          pe.used_this_tick += spend;
          pe.lifetime_cpu += spend;
          allowed -= spend;
          if (pe.work_remaining <= 1e-12) {
            complete(pe, local[i], vnow);
            any_progress = true;
          }
        }
      }
      if (!any_progress) sleep_virtual(options_.dt / 20.0);
    }
  }

  void source_main() {
    if (options_.pin_threads) pin_this_thread(controllers_.size());
    for (auto& source : sources_) {
      source.next_arrival = source.process->next_interarrival();
    }
    // Gather buffer for batched injection; its bound is the batch knob.
    std::vector<Sdo> gathered(options_.batch);
    while (!stop_.load()) {
      // Earliest pending arrival.
      Source* next = nullptr;
      for (auto& source : sources_) {
        if (next == nullptr || source.next_arrival < next->next_arrival)
          next = &source;
      }
      if (next == nullptr) return;  // no sources at all
      const Seconds vnow = virtual_now();
      if (next->next_arrival > vnow) {
        sleep_virtual(next->next_arrival - vnow);
        continue;
      }
      PeRt& pe = *pes_[next->pe_index];
      const PeId pe_id(static_cast<PeId::value_type>(next->pe_index));
      // Gather every already-due arrival of this stream (up to the batch
      // bound) and publish them with one index store. Per-SDO semantics
      // are preserved exactly: each arrival keeps its own birth time,
      // fault draw, and span — only the channel synchronization is
      // amortized. The accepted count is the same prefix a per-SDO
      // try_push loop would have admitted.
      std::size_t gathered_count = 0;
      while (gathered_count < options_.batch && next->next_arrival <= vnow) {
        const Seconds at = next->next_arrival;
        next->next_arrival += next->process->next_interarrival();
        if (fault_drops_delivery(next->pe_index, vnow)) {
          pe.dropped.fetch_add(1, std::memory_order_relaxed);
          source_drop_.inc();
          collector_.ingress_drop(at);
          continue;
        }
        Sdo sdo{at};
        if (options_.spans != nullptr) {
          sdo.span = options_.spans->begin(pe_id, at);
          options_.spans->on_enqueue(sdo.span, pe_id, at);
        }
        gathered[gathered_count++] = sdo;
      }
      if (gathered_count == 0) continue;  // every due arrival fault-dropped
      const std::size_t accepted =
          pe.input.try_push_n(gathered.data(), gathered_count);
      if (accepted > 0) {
        pe.pushed.fetch_add(accepted, std::memory_order_relaxed);
        source_inject_.inc(accepted);
      }
      // The rejected tail is an ingress drop per SDO, same as a failed
      // try_push in the per-SDO path.
      for (std::size_t r = accepted; r < gathered_count; ++r) {
        pe.dropped.fetch_add(1, std::memory_order_relaxed);
        source_drop_.inc();
        collector_.ingress_drop(gathered[r].birth);
        if (options_.spans != nullptr) {
          options_.spans->drop(gathered[r].span, gathered[r].birth);
        }
      }
    }
  }

  const graph::ProcessingGraph& graph_;
  RuntimeOptions options_;
  control::FlowPolicy policy_;
  SharedCollector collector_;
  std::vector<std::unique_ptr<PeRt>> pes_;
  std::vector<control::NodeController> controllers_;
  std::vector<Source> sources_;
  double total_capacity_ = 0.0;
  std::chrono::steady_clock::time_point start_;
  Atomic<bool> stop_{false};
  std::unique_ptr<MessageBus> bus_;
  // Data-plane counters (disabled handles unless options.counters is set).
  obs::Counter channel_send_;
  obs::Counter channel_drop_;
  obs::Counter channel_block_;
  obs::Counter bus_post_;
  obs::Counter bus_deliver_;
  obs::Counter source_inject_;
  obs::Counter source_drop_;
  /// Non-null iff RuntimeOptions::faults is non-empty.
  std::unique_ptr<fault::FaultInjector> injector_;
};

}  // namespace

metrics::RunReport run_runtime(const graph::ProcessingGraph& graph,
                               const opt::AllocationPlan& plan,
                               const RuntimeOptions& options) {
  Engine engine(graph, plan, options);
  return engine.run();
}

}  // namespace aces::runtime
