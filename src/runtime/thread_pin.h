// Best-effort CPU pinning for runtime worker threads.
//
// Pinning node workers to distinct cores keeps each PE's ring producer
// and consumer on stable cores — the SPSC cached-index scheme (see
// spsc_ring.h) earns its keep when the two hot cache lines stop migrating.
// This is the shard-aware placement ROADMAP item 4 asks for, scoped to
// what a single-box runtime can express: worker i → core (i mod ncpu).
//
// Strictly best-effort: pinning is a performance hint, never a semantic
// dependency, so failures (no affinity syscall, restricted cpuset, more
// workers than cores) are reported but ignored. Off by default
// (RuntimeOptions::pin_threads / --pin); meaningless but harmless on
// single-core containers.
#pragma once

#include <cstddef>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

namespace aces::runtime {

/// Pins the calling thread to core `slot % online_cores`. Returns true when
/// the affinity call succeeded, false when unsupported or rejected.
inline bool pin_this_thread(std::size_t slot) {
#if defined(__linux__)
  const long ncpu = sysconf(_SC_NPROCESSORS_ONLN);
  if (ncpu <= 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(slot % static_cast<std::size_t>(ncpu)), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)slot;
  return false;
#endif
}

}  // namespace aces::runtime
