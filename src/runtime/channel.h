// Bounded blocking channel — the multi-producer fallback transport of the
// threaded runtime (the stand-in for the paper's SPC transport).
//
// Multi-producer / multi-consumer, mutex + condition variables. Since the
// data-plane fast-path work this is no longer the only transport: PE inputs
// that provably have a single producer thread ride the lock-free
// runtime/spsc_ring.h instead (runtime/sdo_channel.h picks per PE), and
// this channel serves the MPSC cases — fan-in PEs fed by several node
// workers, and any input also written by the MessageBus dispatcher. The two
// full-buffer behaviours the evaluated policies need map onto the API:
//   * try_push  — fail immediately when full (ACES / UDP drop semantics)
//   * push_wait — block until space or timeout (Lock-Step min-flow)
// Both backends share the API surface, including the batched try_push_n /
// pop_burst (one lock round-trip resp. one index publish per batch).
//
// Lock discipline is machine-checked: every mutable member is
// ACES_GUARDED_BY(mutex_) and clang's -Wthread-safety proves each access
// holds the lock. Waits use std::condition_variable_any over aces::Mutex
// with explicit while-loops (the analysis can't see through predicate
// lambdas), which is behaviourally identical to wait_for(pred).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <optional>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/perf.h"

namespace aces::runtime {

template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity) : capacity_(capacity) {
    ACES_CHECK_MSG(capacity > 0, "channel capacity must be positive");
  }

  /// Non-blocking send; false when the channel is full or closed.
  bool try_push(T value) ACES_EXCLUDES(mutex_) {
    ACES_PERF_SCOPE(PerfStage::kChannelSend);
    {
      MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking send with timeout; false on timeout or close.
  bool push_wait(T value, std::chrono::nanoseconds timeout)
      ACES_EXCLUDES(mutex_) {
    ACES_PERF_SCOPE(PerfStage::kChannelSend);
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    {
      MutexLock lock(mutex_);
      while (!closed_ && items_.size() >= capacity_) {
        ACES_PERF_COUNT(PerfEvent::kChannelBlock);
        if (not_full_.wait_until(mutex_, deadline) ==
            std::cv_status::timeout) {
          if (closed_ || items_.size() < capacity_) break;
          return false;
        }
      }
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Batched send: accepts up to `n` items from `items` under ONE lock
  /// round-trip and one notify. Returns the count accepted — the same
  /// prefix a try_push loop would have accepted.
  std::size_t try_push_n(T* items, std::size_t n) ACES_EXCLUDES(mutex_) {
    ACES_PERF_SCOPE(PerfStage::kChannelSend);
    std::size_t k = 0;
    {
      MutexLock lock(mutex_);
      if (closed_) return 0;
      while (k < n && items_.size() < capacity_) {
        items_.push_back(std::move(items[k]));
        ++k;
      }
    }
    if (k > 0) not_empty_.notify_one();
    return k;
  }

  /// Non-blocking receive.
  std::optional<T> try_pop() ACES_EXCLUDES(mutex_) {
    ACES_PERF_SCOPE(PerfStage::kChannelRecv);
    std::optional<T> out;
    {
      MutexLock lock(mutex_);
      if (items_.empty()) return std::nullopt;
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Batched receive: drains up to `max` items into `out` under ONE lock
  /// round-trip. Returns the count drained. notify_all (not _one) because a
  /// burst can free several slots for several blocked producers at once.
  std::size_t pop_burst(T* out, std::size_t max) ACES_EXCLUDES(mutex_) {
    ACES_PERF_SCOPE(PerfStage::kChannelRecv);
    std::size_t k = 0;
    {
      MutexLock lock(mutex_);
      while (k < max && !items_.empty()) {
        out[k] = std::move(items_.front());
        items_.pop_front();
        ++k;
      }
    }
    if (k > 0) not_full_.notify_all();
    return k;
  }

  /// Blocking receive with timeout; nullopt on timeout, or when the channel
  /// is closed and drained.
  std::optional<T> pop_wait(std::chrono::nanoseconds timeout)
      ACES_EXCLUDES(mutex_) {
    ACES_PERF_SCOPE(PerfStage::kChannelRecv);
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::optional<T> out;
    {
      MutexLock lock(mutex_);
      while (!closed_ && items_.empty()) {
        if (not_empty_.wait_until(mutex_, deadline) ==
            std::cv_status::timeout) {
          if (closed_ || !items_.empty()) break;
          return std::nullopt;
        }
        ACES_PERF_COUNT(PerfEvent::kChannelWakeup);
      }
      if (items_.empty()) return std::nullopt;  // closed and drained
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Unblocks all waiters; subsequent pushes fail, pops drain the backlog.
  void close() ACES_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const ACES_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool closed() const ACES_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }
  /// Free slots right now (racy by nature; used for occupancy sampling and
  /// Lock-Step's conservative space probe).
  [[nodiscard]] std::size_t free_slots() const ACES_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return capacity_ - items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  std::condition_variable_any not_empty_;
  std::condition_variable_any not_full_;
  std::deque<T> items_ ACES_GUARDED_BY(mutex_);
  bool closed_ ACES_GUARDED_BY(mutex_) = false;
};

}  // namespace aces::runtime
