// Bounded blocking channel — the data-plane messaging primitive of the
// threaded runtime (the stand-in for the paper's SPC transport).
//
// Multi-producer / multi-consumer, mutex + condition variables. The two
// full-buffer behaviours the evaluated policies need map onto the API:
//   * try_push  — fail immediately when full (ACES / UDP drop semantics)
//   * push_wait — block until space or timeout (Lock-Step min-flow)
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/check.h"

namespace aces::runtime {

template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity) : capacity_(capacity) {
    ACES_CHECK_MSG(capacity > 0, "channel capacity must be positive");
  }

  /// Non-blocking send; false when the channel is full or closed.
  bool try_push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking send with timeout; false on timeout or close.
  bool push_wait(T value, std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!not_full_.wait_for(lock, timeout, [&] {
          return closed_ || items_.size() < capacity_;
        })) {
      return false;
    }
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking receive.
  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (items_.empty()) return std::nullopt;
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Blocking receive with timeout; nullopt on timeout, or when the channel
  /// is closed and drained.
  std::optional<T> pop_wait(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;  // closed and drained
    std::optional<T> out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  /// Unblocks all waiters; subsequent pushes fail, pops drain the backlog.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }
  /// Free slots right now (racy by nature; used for occupancy sampling and
  /// Lock-Step's conservative space probe).
  [[nodiscard]] std::size_t free_slots() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_ - items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace aces::runtime
