// Backend-selecting SDO transport: lock-free SPSC ring when the graph
// proves a single producer thread, annotated mutex channel otherwise.
//
// The engine decides per PE input at wiring time (see
// Engine::channel_producer_count): the producer set of a PE's input is
// {hosting node thread of each upstream PE} ∪ {source thread if the PE is
// an ingress} — with the bus dispatcher substituted for an upstream whose
// delivery is routed through the MessageBus. One distinct producer thread
// ⇒ SpscRing; more ⇒ Channel. The choice is a correctness contract, not a
// hint: pushing into the ring from two threads is a data race, so the
// selection logic errs to the mutex channel whenever it cannot prove
// single-producer-ness.
//
// Both backends expose the same surface, so this wrapper is a plain
// branch per operation (one well-predicted test in steady state — the
// backend never changes after construction) rather than a virtual
// dispatch, keeping the fast path inlineable.
#pragma once

#include <chrono>
#include <cstddef>
#include <memory>
#include <optional>

#include "runtime/channel.h"
#include "runtime/spsc_ring.h"

namespace aces::runtime {

template <typename T>
class SdoChannel {
 public:
  /// `single_producer` selects the lock-free backend; the caller must
  /// guarantee that at most one thread ever calls the push side and one
  /// the pop side when it is set.
  SdoChannel(std::size_t capacity, bool single_producer) {
    if (single_producer) {
      ring_ = std::make_unique<SpscRing<T>>(capacity);
    } else {
      channel_ = std::make_unique<Channel<T>>(capacity);
    }
  }

  [[nodiscard]] bool lock_free() const { return ring_ != nullptr; }

  bool try_push(T value) {
    return ring_ ? ring_->try_push(std::move(value))
                 : channel_->try_push(std::move(value));
  }
  std::size_t try_push_n(T* items, std::size_t n) {
    return ring_ ? ring_->try_push_n(items, n)
                 : channel_->try_push_n(items, n);
  }
  bool push_wait(T value, std::chrono::nanoseconds timeout) {
    return ring_ ? ring_->push_wait(std::move(value), timeout)
                 : channel_->push_wait(std::move(value), timeout);
  }
  std::optional<T> try_pop() {
    return ring_ ? ring_->try_pop() : channel_->try_pop();
  }
  std::size_t pop_burst(T* out, std::size_t max) {
    return ring_ ? ring_->pop_burst(out, max) : channel_->pop_burst(out, max);
  }
  std::optional<T> pop_wait(std::chrono::nanoseconds timeout) {
    return ring_ ? ring_->pop_wait(timeout) : channel_->pop_wait(timeout);
  }
  void close() { ring_ ? ring_->close() : channel_->close(); }

  [[nodiscard]] std::size_t size() const {
    return ring_ ? ring_->size() : channel_->size();
  }
  [[nodiscard]] std::size_t capacity() const {
    return ring_ ? ring_->capacity() : channel_->capacity();
  }
  [[nodiscard]] bool closed() const {
    return ring_ ? ring_->closed() : channel_->closed();
  }
  [[nodiscard]] std::size_t free_slots() const {
    return ring_ ? ring_->free_slots() : channel_->free_slots();
  }

 private:
  std::unique_ptr<SpscRing<T>> ring_;
  std::unique_ptr<Channel<T>> channel_;
};

}  // namespace aces::runtime
