// Wire format for the multi-process distributed runtime.
//
// Every byte that crosses a process boundary — SDO payloads, control-plane
// advertisements, tier-1 target vectors, reoptimize triggers, membership and
// heartbeat, per-worker partial RunReports — travels as a *versioned frame*:
//
//   offset  size  field
//   0       2     magic 0xACE5 (little-endian)
//   2       1     version (kWireVersion)
//   3       1     frame type (FrameType)
//   4       4     payload length, little-endian u32
//   8       n     payload
//
// Integers are little-endian; doubles are their IEEE-754 bit patterns as
// little-endian u64, so a value survives a round trip bit-exactly — the
// cross-transport conformance battery depends on the in-process and socket
// backends observing byte-identical numbers. Strings and vectors are a u32
// element count followed by the elements.
//
// Decoding is defensive, never undefined: every read is bounds-checked, a
// bad magic/version/type/length yields WireError with a reason, and payload
// lengths are capped (kMaxFramePayload) so a corrupt header cannot ask the
// receiver to allocate gigabytes. tests/runtime/wire_test.cc fuzzes
// truncations and pins the layout with golden byte fixtures.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "metrics/run_report.h"
#include "obs/spans.h"
#include "obs/trace.h"

namespace aces::runtime::wire {

inline constexpr std::uint16_t kMagic = 0xACE5;
/// Version 2: Config grew span_sample/record_trace and the observability
/// frames (MetricsReport/SpanBatch/FlightDump) joined the protocol.
inline constexpr std::uint8_t kWireVersion = 2;
/// Upper bound on a sane payload (config frames carry a whole topology, so
/// this is generous; anything larger is treated as corruption).
inline constexpr std::uint32_t kMaxFramePayload = 64u * 1024u * 1024u;

enum class FrameType : std::uint8_t {
  kHello = 1,      ///< worker → coordinator: rank + pid after connect
  kConfig = 2,     ///< coordinator → worker: everything needed to run
  kStepGo = 3,     ///< coordinator → worker: barrier release for a quantum
  kStepDone = 4,   ///< worker → coordinator: quantum finished + outboxes
  kHeartbeat = 5,  ///< worker → coordinator: liveness while computing
  kTargets = 6,    ///< coordinator → worker: tier-1 target vector push
  kReport = 7,     ///< worker → coordinator: partial RunReport at the end
  kShutdown = 8,   ///< coordinator → worker: exit cleanly
  kMetricsReport = 9,  ///< worker → coordinator: epoch telemetry snapshot
  kSpanBatch = 10,     ///< both ways: completed spans + cross-shard handoffs
  kFlightDump = 11,    ///< worker → coordinator: flight-recorder evidence
};

/// One decoded frame: type + raw payload bytes.
struct Frame {
  FrameType type = FrameType::kHello;
  std::vector<std::uint8_t> payload;
};

/// Decode failure: where and why (never throws, never UB).
struct WireError {
  std::string reason;
};

// ---------------------------------------------------------------------------
// Payload structs. Field order in the struct is field order on the wire.

struct Hello {
  std::uint32_t rank = 0;
  std::uint64_t pid = 0;
};

/// Everything a worker process needs to reconstruct its shard: the topology
/// (text serialization round-trips ids exactly), the tier-1 plan, the run
/// options, and the fault spec. Sent once after Hello; sent again with a
/// non-zero start_quantum when a killed worker is respawned mid-run.
struct Config {
  std::uint32_t rank = 0;
  std::uint32_t num_workers = 1;
  std::uint32_t substeps = 4;   ///< quanta per control interval dt
  std::uint64_t seed = 1;
  double duration = 30.0;       ///< virtual seconds
  double warmup = 6.0;
  double dt = 0.1;
  std::uint8_t policy = 0;      ///< control::FlowPolicy as u8
  double staleness = 0.0;       ///< advert_staleness_timeout
  std::uint32_t batch = 8;
  std::uint32_t channel_capacity = 0;
  double heartbeat_interval = 0.05;  ///< wall seconds between heartbeats
  std::uint64_t start_quantum = 0;   ///< barrier index to join at
  std::string topology;              ///< graph::write_topology text
  std::string faults;                ///< fault spec grammar text ("" = none)
  std::vector<double> plan_cpu;      ///< tier-1 targets, indexed by PeId
  std::vector<double> plan_rin;
  std::vector<double> plan_rout;
  double span_sample = 0.0;          ///< SDO span sample rate; 0 = tracing off
  std::uint8_t record_trace = 0;     ///< ship per-tick control TraceRecords
};

/// One SDO crossing a node boundary. `src_node` orders deliveries
/// deterministically at the receiver (stable sort by source node, which is
/// partition-invariant because a worker always steps its nodes in id
/// order); `birth` is the SDO's system-entry time for latency accounting.
struct SdoDelivery {
  std::uint32_t dest_pe = 0;
  std::uint32_t src_node = 0;
  double birth = 0.0;
};

/// One refreshed advertisement mailbox: PE `pe` advertises input rate
/// `rmax`, stamped at virtual time `time`.
struct Advert {
  std::uint32_t pe = 0;
  double rmax = 0.0;
  double time = 0.0;
};

/// Barrier release for quantum `quantum`: the deliveries and adverts
/// generated during quantum-1 that are addressed to this worker, the
/// Lock-Step congested-PE set, and membership deltas.
struct StepGo {
  std::uint64_t quantum = 0;
  std::uint8_t flags = 0;  ///< bit 0: final quantum — report and exit
  std::vector<SdoDelivery> deliveries;
  std::vector<Advert> adverts;
  std::vector<std::uint32_t> congested_pes;  ///< Lock-Step backpressure set
  std::vector<std::uint32_t> down_nodes;     ///< dead-worker membership
  std::vector<std::uint32_t> up_nodes;       ///< respawned-worker membership
};
inline constexpr std::uint8_t kStepGoFinal = 1;

/// Barrier completion: cross-node outboxes plus this worker's local fault
/// transitions (crashed/restored node ids double as the event-driven
/// reoptimize trigger the coordinator acts on).
struct StepDone {
  std::uint64_t quantum = 0;
  std::vector<SdoDelivery> deliveries;  ///< cross-worker outbox
  std::vector<Advert> adverts;          ///< locally refreshed mailboxes
  std::vector<std::uint32_t> congested_pes;   ///< local PEs holding backlog
  std::vector<std::uint32_t> crashed_nodes;   ///< reoptimize trigger
  std::vector<std::uint32_t> restored_nodes;  ///< reoptimize trigger
};

struct Heartbeat {
  std::uint32_t rank = 0;
  std::uint64_t quantum = 0;  ///< barrier the worker is computing
};

/// Tier-1 target vector (full PE index space), pushed after a re-solve.
struct Targets {
  std::uint64_t revision = 0;
  std::vector<double> cpu;
  std::vector<double> rin;
  std::vector<double> rout;
};

/// Partial RunReport from one worker: its local PEs' contribution, with the
/// accumulator internals carried bit-exactly (OnlineStats/LogHistogram
/// from_raw) so the merged report is independent of the transport.
struct Report {
  metrics::RunReport report;
  std::uint64_t rank = 0;
};

/// One counter's increase since the worker's previous MetricsReport.
/// Deltas (not absolutes) keep the coordinator's sum exact across worker
/// restarts: a respawned shard starts its counters — and its deltas — at
/// zero instead of replaying history.
struct MetricsCounter {
  std::string name;
  std::uint64_t delta = 0;
};

/// Last-value-wins gauge sample.
struct MetricsGauge {
  std::string name;
  double value = 0.0;
};

/// Full wait/service histogram snapshot for one PE. Snapshots (not deltas)
/// because LogHistogram merge is cheap and last-writer-wins per rank makes
/// a lost epoch self-healing.
struct PeLatencySnapshot {
  std::uint32_t pe = 0;
  LogHistogram wait;
  LogHistogram service;
};

/// End-to-end histogram snapshot for one root-to-sink path (splitmix64
/// path id, so ids agree across shards and with the in-process build).
struct PathLatencySnapshot {
  std::uint64_t id = 0;
  std::string label;
  LogHistogram end_to_end;
};

/// One perf-probe stage cell (cumulative; empty on uninstrumented builds).
struct PerfCell {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t ns = 0;
};

/// Epoch telemetry snapshot, sent immediately before the StepDone that
/// closes a barrier epoch (every `substeps` quanta) and once more before
/// the final Report. Counter deltas sum exactly at the coordinator;
/// histograms/perf/gauges are whole-state last-writer-wins per rank.
struct MetricsReport {
  std::uint32_t rank = 0;
  std::uint64_t quantum = 0;
  std::vector<MetricsCounter> counters;
  std::vector<MetricsGauge> gauges;
  std::vector<PeLatencySnapshot> pe_latency;
  std::vector<PathLatencySnapshot> path_latency;
  std::vector<PerfCell> perf;
  std::vector<obs::TickRecord> trace;  ///< control ticks since last report
};

/// An in-flight span leaving its worker alongside an SdoDelivery. The
/// receiver re-attaches it to the delivery with the same
/// (dest_pe, src_node, occurrence index) key — exact, because the
/// coordinator relays each source worker's deliveries in preserved order.
struct SpanHandoff {
  std::uint32_t dest_pe = 0;
  std::uint32_t src_node = 0;
  /// Occurrence index among this quantum's (dest_pe, src_node) deliveries.
  std::uint32_t index = 0;
  obs::SdoSpan span;  ///< prefix; end < 0 (still in flight)
};

/// Sampled-span traffic. Worker → coordinator: spans finalized this epoch
/// plus handoffs for SDOs that left the shard this quantum (rank = sender).
/// Coordinator → worker: the handoffs addressed to that worker, relayed
/// just before the StepGo that carries the matching deliveries (rank =
/// destination).
struct SpanBatch {
  std::uint32_t rank = 0;
  std::uint64_t quantum = 0;
  std::vector<obs::SdoSpan> completed;
  std::vector<SpanHandoff> handoffs;
};

/// Flight-recorder evidence (obs::FlightDump plus provenance), shipped at
/// epoch boundaries when the ring advanced, on fault dumps, and at
/// shutdown. The coordinator retains the last one per rank, so a
/// SIGKILLed worker's final milliseconds survive the process.
struct FlightDump {
  std::uint32_t rank = 0;
  std::string event;  ///< "epoch", a fault.* counter name, or "shutdown"
  double time = 0.0;  ///< virtual seconds of the snapshot
  std::uint64_t pushed = 0;  ///< recorder ring tickets at snapshot time
  std::vector<obs::SdoSpan> recent;
  std::vector<obs::SdoSpan> in_flight;
};

// ---------------------------------------------------------------------------
// Codecs. encode_* produce a complete frame (header + payload); decode_*
// parse the *payload* of a frame whose type was already matched, returning
// std::nullopt and filling `error` on any malformation.

std::vector<std::uint8_t> encode(const Hello& v);
std::vector<std::uint8_t> encode(const Config& v);
std::vector<std::uint8_t> encode(const StepGo& v);
std::vector<std::uint8_t> encode(const StepDone& v);
std::vector<std::uint8_t> encode(const Heartbeat& v);
std::vector<std::uint8_t> encode(const Targets& v);
std::vector<std::uint8_t> encode(const Report& v);
std::vector<std::uint8_t> encode_shutdown();
std::vector<std::uint8_t> encode(const MetricsReport& v);
std::vector<std::uint8_t> encode(const SpanBatch& v);
std::vector<std::uint8_t> encode(const FlightDump& v);

std::optional<Hello> decode_hello(const std::vector<std::uint8_t>& payload,
                                  WireError* error = nullptr);
std::optional<Config> decode_config(const std::vector<std::uint8_t>& payload,
                                    WireError* error = nullptr);
std::optional<StepGo> decode_step_go(const std::vector<std::uint8_t>& payload,
                                     WireError* error = nullptr);
std::optional<StepDone> decode_step_done(
    const std::vector<std::uint8_t>& payload, WireError* error = nullptr);
std::optional<Heartbeat> decode_heartbeat(
    const std::vector<std::uint8_t>& payload, WireError* error = nullptr);
std::optional<Targets> decode_targets(const std::vector<std::uint8_t>& payload,
                                      WireError* error = nullptr);
std::optional<Report> decode_report(const std::vector<std::uint8_t>& payload,
                                    WireError* error = nullptr);
std::optional<MetricsReport> decode_metrics_report(
    const std::vector<std::uint8_t>& payload, WireError* error = nullptr);
std::optional<SpanBatch> decode_span_batch(
    const std::vector<std::uint8_t>& payload, WireError* error = nullptr);
std::optional<FlightDump> decode_flight_dump(
    const std::vector<std::uint8_t>& payload, WireError* error = nullptr);

/// Splits a complete frame (header + payload) back into a Frame. Returns
/// nullopt on bad magic/version/type, truncation, or an oversized length.
std::optional<Frame> parse_frame(const std::uint8_t* data, std::size_t size,
                                 WireError* error = nullptr);

/// Frame header for `type` and `payload_size`, for incremental senders.
std::array<std::uint8_t, 8> frame_header(FrameType type,
                                         std::uint32_t payload_size);
/// Validates a header and extracts the type + payload length.
std::optional<std::pair<FrameType, std::uint32_t>> parse_header(
    const std::uint8_t* data, WireError* error = nullptr);

const char* to_string(FrameType type);

}  // namespace aces::runtime::wire
