// Lock-free single-producer / single-consumer ring — the data-plane fast
// path of the threaded runtime.
//
// The mutex channel (runtime/channel.h) pays a lock round-trip plus a
// condition-variable notify per SDO. For the common topology case — a PE
// whose input is fed by exactly one thread (its single upstream node's
// worker, the source thread, or the bus dispatcher) — that cost is pure
// overhead: a bounded FIFO with one writer and one reader needs no lock at
// all. SpscRing is the classic Lamport ring with the two standard
// refinements:
//
//  * **Cache-line separation.** The producer index, the consumer index,
//    and the shared slot array live on distinct cache lines (alignas(64)),
//    so a push never invalidates the line the consumer is spinning on and
//    vice versa. Each side also keeps a *cached* copy of the opposite
//    index and only re-reads the shared atomic when the cached value says
//    the ring looks full/empty — in steady state a push/pop touches one
//    shared line, not two.
//  * **Power-of-two slot count.** Indices are free-running 64-bit
//    counters; `index & mask_` replaces the modulo. The *logical* capacity
//    is whatever the caller asked for (PE buffer bounds are model
//    parameters, §III-D), enforced against the counter difference, so a
//    capacity-20 ring drops exactly like a capacity-20 channel even though
//    it owns 32 slots.
//
// Memory-ordering argument (the full version is docs/performance.md; the
// bounded model checker exhausts it mechanically — docs/model_checking.md):
// the producer writes slots_[tail & mask] and then store-releases tail_;
// the consumer load-acquires tail_ before reading the slot, so the slot
// write happens-before the slot read. Symmetrically the consumer
// store-releases head_ after moving out of a slot and the producer
// load-acquires head_ before overwriting it. The consumer's reads of
// closed_ are load-ACQUIRE: observing closed == true must also make every
// item pushed before the close visible, or "closed and drained" could be
// concluded with backlog still in flight and an SDO lost at shutdown (the
// checker's close-with-backlog harness reaches exactly that trace when
// these loads are demoted to relaxed — see check::MiniDrainRing).
// Everything else is single-threaded by the SPSC contract: tail_ has one
// writer (producer), head_ has one writer (consumer), and the cached
// indices are plain members touched only by their owning side.
//
// Blocking (push_wait / pop_wait) is a *slow path*: after a short bounded
// spin the waiter parks on a condvar behind aces::Mutex. Wakeups are an
// optimization, not a correctness dependency — the fast-path publish does
// a plain load of the waiter flag (no fence), so a freshly-parked waiter
// can miss one notify; every park therefore sleeps in bounded slices
// (kParkSliceNs) and re-checks. The engine never relies on wakeup latency
// (it paces in virtual time), and the slices bound the worst case for
// callers that do. close() takes the park mutex and notifies everyone.
//
// MPSC inputs (a PE fed by several node threads) keep using the annotated
// mutex Channel; runtime/sdo_channel.h picks the backend per PE from the
// graph. See tests/runtime/spsc_ring_test.cc for the two-thread torture
// oracle and the mutex-channel differential.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <optional>
#include <vector>

#include "common/atomic_shim.h"
#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/perf.h"

namespace aces::runtime {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : capacity_(capacity), mask_(slot_count(capacity) - 1) {
    ACES_CHECK_MSG(capacity > 0, "ring capacity must be positive");
    slots_.resize(mask_ + 1);
    tail_.set_check_name("ring.tail_");
    head_.set_check_name("ring.head_");
    closed_.set_check_name("ring.closed_");
    consumer_parked_.set_check_name("ring.consumer_parked_");
    producer_parked_.set_check_name("ring.producer_parked_");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Non-blocking send (producer thread only); false when full or closed.
  bool try_push(T value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= capacity_) return false;
    }
    if (closed_.load(std::memory_order_relaxed)) return false;
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    wake_consumer();
    return true;
  }

  /// Batched send (producer thread only): moves up to `n` items from
  /// `items` into the ring with ONE index publish and at most one wakeup.
  /// Returns the count accepted — exactly what a try_push loop would have
  /// accepted, so batching never changes admission decisions, only the
  /// number of atomic operations spent making them.
  std::size_t try_push_n(T* items, std::size_t n) {
    if (n == 0 || closed_.load(std::memory_order_relaxed)) return 0;
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::uint64_t free = capacity_ - (tail - cached_head_);
    if (free < n) {
      cached_head_ = head_.load(std::memory_order_acquire);
      free = capacity_ - (tail - cached_head_);
    }
    const std::size_t k = free < n ? static_cast<std::size_t>(free) : n;
    if (k == 0) return 0;
    for (std::size_t i = 0; i < k; ++i) {
      slots_[(tail + i) & mask_] = std::move(items[i]);
    }
    tail_.store(tail + k, std::memory_order_release);
    ACES_PERF_COUNT(PerfEvent::kRingBatchPublish);
    ACES_PERF_COUNT_N(PerfEvent::kRingBatchSdos, k);
    wake_consumer();
    return k;
  }

  /// Blocking send with timeout (producer thread only); false on timeout
  /// or close. Spins briefly, then parks in bounded slices.
  bool push_wait(T value, std::chrono::nanoseconds timeout)
      ACES_EXCLUDES(park_mutex_) {
    // Under the model checker the spin phase is one attempt: each retry is
    // several schedule points, and 128 identical failing probes explode the
    // interleaving space without adding behaviours (the park path covers
    // the waiting semantics). check::active() is constexpr false in
    // production builds, so this folds to kSpinBound.
    const int spin_bound = check::active() ? 1 : kSpinBound;
    for (int spin = 0; spin < spin_bound; ++spin) {
      if (try_push(std::move(value))) return true;
      if (closed_.load(std::memory_order_relaxed)) return false;
      cpu_relax();
    }
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (true) {
      if (try_push(std::move(value))) return true;
      if (closed_.load(std::memory_order_relaxed)) return false;
      if (std::chrono::steady_clock::now() >= deadline) return false;
      park(/*producer=*/true, deadline);
    }
  }

  /// Non-blocking receive (consumer thread only).
  std::optional<T> try_pop() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return std::nullopt;
    }
    std::optional<T> out(std::move(slots_[head & mask_]));
    head_.store(head + 1, std::memory_order_release);
    wake_producer();
    return out;
  }

  /// Batched receive (consumer thread only): moves up to `max` items into
  /// `out` with ONE index publish. Returns the count drained.
  std::size_t pop_burst(T* out, std::size_t max) {
    if (max == 0) return 0;
    ACES_PERF_SCOPE(PerfStage::kRingDrain);
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::uint64_t avail = cached_tail_ - head;
    if (avail < max) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = cached_tail_ - head;
    }
    const std::size_t k = avail < max ? static_cast<std::size_t>(avail) : max;
    if (k == 0) return 0;
    for (std::size_t i = 0; i < k; ++i) {
      out[i] = std::move(slots_[(head + i) & mask_]);
    }
    head_.store(head + k, std::memory_order_release);
    ACES_PERF_COUNT(PerfEvent::kRingDrainBurst);
    ACES_PERF_COUNT_N(PerfEvent::kRingDrainSdos, k);
    wake_producer();
    return k;
  }

  /// Blocking receive with timeout (consumer thread only); nullopt on
  /// timeout, or when the ring is closed and drained.
  std::optional<T> pop_wait(std::chrono::nanoseconds timeout)
      ACES_EXCLUDES(park_mutex_) {
    // The closed_ loads are ACQUIRE: concluding "closed and drained" is
    // only sound if every push sequenced before the close is visible to
    // the final try_pop (see the header comment). Acquire is free on x86;
    // the model checker's close-with-backlog harness is the regression
    // gate for anyone tempted to demote it.
    const int spin_bound = check::active() ? 1 : kSpinBound;
    for (int spin = 0; spin < spin_bound; ++spin) {
      if (auto out = try_pop()) return out;
      if (closed_.load(std::memory_order_acquire)) return try_pop();
      cpu_relax();
    }
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (true) {
      if (auto out = try_pop()) return out;
      if (closed_.load(std::memory_order_acquire)) return try_pop();
      if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
      park(/*producer=*/false, deadline);
    }
  }

  /// Unblocks all waiters; subsequent pushes fail, pops drain the backlog.
  /// Callable from any thread.
  void close() ACES_EXCLUDES(park_mutex_) {
    closed_.store(true, std::memory_order_seq_cst);
#if defined(ACES_MODEL_CHECK)
    if (check::active()) {
      check::notify(&not_empty_);
      check::notify(&not_full_);
      return;
    }
#endif
    MutexLock lock(park_mutex_);
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Racy-by-nature occupancy sample (any thread): exact only when both
  /// sides are quiescent, a consistent snapshot meanwhile.
  [[nodiscard]] std::size_t size() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t free_slots() const {
    const std::size_t used = size();
    return used >= capacity_ ? 0 : capacity_ - used;
  }

 private:
  static constexpr int kSpinBound = 128;
  /// Longest uninterrupted park: bounds the cost of a missed wakeup (the
  /// fast path deliberately carries no fence; see the header comment).
  static constexpr std::chrono::nanoseconds kParkSliceNs =
      std::chrono::milliseconds(1);

  static std::size_t slot_count(std::size_t capacity) {
    std::size_t n = 1;
    while (n < capacity) n <<= 1;
    return n;
  }

  static void cpu_relax() {
#if defined(__x86_64__) || defined(_M_X64)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

  /// One bounded park slice. The flag tells the opposite side a waiter
  /// exists; the recheck under the mutex plus the bounded slice make a
  /// missed notify cost at most kParkSliceNs, never a hang.
  void park(bool producer, std::chrono::steady_clock::time_point deadline)
      ACES_EXCLUDES(park_mutex_) {
    Atomic<int>& flag = producer ? producer_parked_ : consumer_parked_;
    std::condition_variable_any& cv = producer ? not_full_ : not_empty_;
    if (producer) {
      ACES_PERF_COUNT(PerfEvent::kRingFullPark);
    } else {
      ACES_PERF_COUNT(PerfEvent::kRingEmptyPark);
    }
#if defined(ACES_MODEL_CHECK)
    if (check::active()) {
      // Model: flag publish + park are ONE transition, mirroring the
      // atomicity the park mutex provides below (a notify can never slip
      // between the flag store and the wait). A timeout wakeup stands in
      // for one elapsed kParkSliceNs slice.
      flag.park_after_store(1, std::memory_order_seq_cst, &cv);
      flag.store(0, std::memory_order_relaxed);
      return;
    }
#endif
    MutexLock lock(park_mutex_);
    flag.store(1, std::memory_order_seq_cst);
    const auto slice = std::chrono::steady_clock::now() + kParkSliceNs;
    cv.wait_until(park_mutex_, slice < deadline ? slice : deadline);
    flag.store(0, std::memory_order_relaxed);
  }

  void wake_consumer() ACES_EXCLUDES(park_mutex_) {
    if (consumer_parked_.load(std::memory_order_relaxed) != 0) {
#if defined(ACES_MODEL_CHECK)
      if (check::active()) {
        check::notify(&not_empty_);
        return;
      }
#endif
      MutexLock lock(park_mutex_);
      not_empty_.notify_all();
    }
  }
  void wake_producer() ACES_EXCLUDES(park_mutex_) {
    if (producer_parked_.load(std::memory_order_relaxed) != 0) {
#if defined(ACES_MODEL_CHECK)
      if (check::active()) {
        check::notify(&not_full_);
        return;
      }
#endif
      MutexLock lock(park_mutex_);
      not_full_.notify_all();
    }
  }

  const std::size_t capacity_;  ///< logical bound (what full() means)
  const std::size_t mask_;      ///< slot_count - 1, slot_count a power of 2
  std::vector<T> slots_;        ///< one up-front allocation, never resized

  /// Producer cache line: the index it owns plus its cache of head_.
  alignas(64) Atomic<std::uint64_t> tail_{0};
  std::uint64_t cached_head_ = 0;  // producer-thread-only

  /// Consumer cache line.
  alignas(64) Atomic<std::uint64_t> head_{0};
  std::uint64_t cached_tail_ = 0;  // consumer-thread-only

  /// Slow-path parking lot; untouched by the lock-free fast path.
  alignas(64) Atomic<bool> closed_{false};
  Atomic<int> consumer_parked_{0};
  Atomic<int> producer_parked_{0};
  Mutex park_mutex_;
  std::condition_variable_any not_empty_;
  std::condition_variable_any not_full_;
};

}  // namespace aces::runtime
