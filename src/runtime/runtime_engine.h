// Threaded dataflow runtime — the repo's stand-in for the paper's SPC
// (Stream Processing Core), used for the calibration experiments.
//
// Real concurrency, hand-built messaging:
//  * one worker thread per processing node, hosting that node's PEs,
//  * lock-free SPSC rings as the data plane wherever the graph proves a
//    single producer thread, the annotated mutex channel for fan-in PEs
//    (runtime/sdo_channel.h picks per PE; docs/performance.md has the
//    protocol and the measured numbers),
//  * batched SDO delivery: sources publish up to `batch` SDOs per index
//    publish and node workers drain bursts of the same size,
//  * a source thread injecting SDOs per the stream arrival processes,
//  * advertisement mailboxes (atomics) as the control plane,
//  * the *same* control::NodeController as the simulator — tier 2 is
//    byte-identical across substrates, which is what calibration compares.
//
// Time: the runtime executes in *virtual seconds* paced by the wall clock
// through `time_scale` (virtual seconds per wall second). Processing charges
// virtual CPU against the share granted at the last control tick, so a node
// behaves like a processor-sharing CPU without burning host cycles; arrival
// gaps and control intervals are paced accordingly. time_scale = 5 runs a
// 30-virtual-second experiment in 6 wall seconds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.h"
#include "control/config.h"
#include "fault/fault_spec.h"
#include "graph/processing_graph.h"
#include "metrics/run_report.h"
#include "opt/global_optimizer.h"
#include "workload/arrivals.h"

namespace aces::obs {
class ControlTraceRecorder;
class CounterRegistry;
class PhaseProfiler;
class SpanTracer;
}  // namespace aces::obs

namespace aces::runtime {

struct RuntimeOptions {
  /// Virtual seconds to run.
  Seconds duration = 30.0;
  /// Virtual seconds of warm-up excluded from measurement.
  Seconds warmup = 6.0;
  /// Control interval in virtual seconds.
  Seconds dt = 0.1;
  /// Virtual seconds per wall-clock second (>= 1 accelerates experiments).
  double time_scale = 5.0;
  /// One-way delivery latency (virtual seconds) injected by the message bus
  /// for SDOs crossing nodes. 0 delivers directly. Applies to the
  /// drop-on-full policies; Lock-Step's reservation handshake is always
  /// direct (a blocking send has no fire-and-forget leg to delay).
  Seconds network_latency = 0.0;
  control::ControllerConfig controller;
  std::uint64_t seed = 1;
  /// Optional workload hook (same contract as sim::SimOptions): builds the
  /// arrival process for each stream; null uses make_arrival_process.
  std::function<std::unique_ptr<workload::ArrivalProcess>(
      StreamId, const graph::StreamDescriptor&, Rng)>
      arrival_factory;
  /// Optional control-plane telemetry sink (same contract as
  /// sim::SimOptions::trace): one obs::TickRecord per PE per control tick,
  /// written by the node threads. Not owned; null disables.
  obs::ControlTraceRecorder* trace = nullptr;
  /// Optional self-profiling sink for controller-tick durations. Not owned;
  /// null disables.
  obs::PhaseProfiler* profiler = nullptr;
  /// Optional registry for the data-plane event counters
  /// (runtime.channel.*, runtime.bus.*, runtime.source.*). Not owned; null
  /// disables — the hot-path cost of the disabled handles is a nullptr
  /// test. Snapshot it at any instant while the run is live.
  obs::CounterRegistry* counters = nullptr;
  /// Declarative fault schedule executed by a seeded fault::FaultInjector
  /// (same contract as sim::SimOptions::faults). Windows are evaluated
  /// against virtual time. The threaded runtime is nondeterministic, so
  /// unlike the simulator, fault *consequences* vary run to run; the
  /// windows themselves do not. Advertisement *delay* clauses are a
  /// simulator-only feature (the runtime's mailbox control plane has no
  /// delay stage) — their loss probability still applies here.
  fault::FaultSchedule faults;
  /// Optional data-plane span tracer (same contract as
  /// sim::SimOptions::spans): samples SDOs at the source thread and follows
  /// them across node threads. The sampling *decisions* are deterministic
  /// per (seed, source PE, acceptance index); the resulting timestamps are
  /// wall-paced virtual time and vary run to run like everything else in
  /// this substrate. Not owned; null disables (one pointer test per SDO).
  obs::SpanTracer* spans = nullptr;
  /// Max SDOs moved per channel operation: sources gather up to this many
  /// due arrivals into one try_push_n publish, and node workers drain
  /// bursts of the same size into a per-PE staging buffer. 1 restores
  /// strict per-SDO delivery. Batching amortizes synchronization, it never
  /// changes admission decisions — a batch accepts exactly the prefix a
  /// per-SDO loop would have (see docs/performance.md).
  std::size_t batch = 8;
  /// Overrides every PE input channel's capacity when > 0; 0 (default)
  /// uses each PE's graph buffer_capacity. A tuning knob for data-plane
  /// experiments — figure reproductions must leave it 0, since buffer
  /// bounds are model parameters (paper §III-D).
  std::size_t channel_capacity = 0;
  /// Pin node workers (and the source thread) to cores, worker i → core
  /// (i mod ncpu). Best-effort: failures are ignored. Keeps each SPSC
  /// ring's endpoints on stable cores so the cached-index scheme pays off.
  bool pin_threads = false;
};

/// Runs the graph on the threaded runtime and reports the same metrics the
/// simulator produces. Blocks for duration / time_scale wall seconds.
metrics::RunReport run_runtime(const graph::ProcessingGraph& graph,
                               const opt::AllocationPlan& plan,
                               const RuntimeOptions& options);

}  // namespace aces::runtime
