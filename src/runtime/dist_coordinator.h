// Coordinator for the multi-process distributed runtime.
//
// run_distributed() shards the processing nodes across worker shards —
// threads of this process (in-process transport) or forked worker
// processes speaking wire.h frames over a Unix-domain / loopback-TCP
// socket — and drives them with a barrier-stepped virtual clock:
//
//   * Virtual time advances in quanta q = dt / substeps. The coordinator
//     broadcasts StepGo(k); every live worker computes [k·q, (k+1)·q) and
//     answers StepDone(k) carrying its cross-node SDO outbox and refreshed
//     advertisements. Nothing proceeds until every live worker has
//     answered, so there is no wall-clock in the data path.
//   * Every cross-NODE effect takes exactly one quantum, even between
//     nodes that share a worker: outboxes are relayed at the *next*
//     barrier, advertisements are looped back uniformly (a worker learns
//     its own refresh one quantum late, like everyone else's), and the
//     Lock-Step congested set is rebroadcast with the same delay. Work
//     totals are therefore partition-invariant: any --processes count, on
//     any transport, produces byte-identical deterministic totals
//     (events_executed, delivery fingerprints).
//   * The coordinator relays in a fixed order — StepDones are merged in
//     rank order and each destination's deliveries are stable-sorted by
//     source node — so the receive order workers observe is independent
//     of scheduling and of the partition.
//
// Failure path (the `prockill` fault clause): at the scheduled barrier the
// coordinator SIGKILLs the worker process (abruptly closes its endpoint
// for the in-process transport) *before* releasing the quantum, so the
// dead worker's contribution deterministically never exists. Death is then
// detected for real — connection reset, heartbeat silence past
// heartbeat_timeout, or waitpid — while collecting that barrier; the dead
// shard's nodes are broadcast as down_nodes (workers clamp their
// advertisements to r_max = 0, infinitely stale) and tier 1 is re-solved
// with optimize_excluding, exactly the degradation story of paper §V-C,
// but executed against a real process failure. An optional restart
// respawns the shard with Config.start_quantum = k: fresh state, arrival
// streams fast-forwarded through the dead window.
//
// The controllers, optimizer, and SdoChannel fast path are byte-identical
// to the other substrates — distribution changes who hosts a node, not
// what the node runs.
#pragma once

#include "graph/processing_graph.h"
#include "metrics/run_report.h"
#include "opt/global_optimizer.h"
#include "runtime/dist_options.h"

namespace aces::runtime::dist {

/// Runs `g` under `plan` on `options.processes` worker shards over
/// `options.transport`, and merges the per-worker partial reports (rank
/// order) into the run's RunReport. Throws CheckFailure on setup errors
/// (spawn/connect failures, invalid options).
metrics::RunReport run_distributed(const graph::ProcessingGraph& g,
                                   const opt::AllocationPlan& plan,
                                   const DistOptions& options,
                                   DistStats* stats = nullptr);

}  // namespace aces::runtime::dist
