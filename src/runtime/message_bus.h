// Delay-injecting message dispatcher for the threaded runtime.
//
// Cross-node SDO transport in the real SPC crosses a network; the runtime
// reproduces that with a dispatcher thread that holds each message until its
// virtual delivery time and then runs its delivery callback. Senders never
// block; delivery callbacks run on the bus thread and must be cheap and
// thread-safe (the engine's are: a channel try_push plus a drop counter).
//
// Delivery callbacks are InlineFunction (fixed inline storage, no heap):
// one engine delivery captures this + a target index + an Sdo, so routing
// an SDO through the bus costs no allocation — part of the data-plane
// steady-state-allocation-free contract (docs/performance.md). The queue's
// backing vector is pre-reserved for the same reason; it only allocates if
// more than kQueueReserve messages are ever in flight at once.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/inline_function.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace aces::runtime {

class MessageBus {
 public:
  /// Inline storage for one delivery callback. The engine's largest
  /// capture is (this, target index, 16-byte Sdo) = 32 bytes; oversized
  /// captures fail to compile rather than silently allocating.
  using DeliverFn = InlineFunction<48>;

  /// Messages the queue's backing vector is sized for up front.
  static constexpr std::size_t kQueueReserve = 1024;
  /// `clock` returns the current virtual time; `time_scale` converts virtual
  /// durations into wall sleeps (virtual seconds per wall second).
  MessageBus(std::function<Seconds()> clock, double time_scale);
  ~MessageBus();
  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  /// Starts the dispatcher thread. Must be called before post().
  void start() ACES_EXCLUDES(mutex_);
  /// Stops the dispatcher; messages not yet due are discarded (their count
  /// is reported by discarded()).
  void stop() ACES_EXCLUDES(mutex_);

  /// Schedules `deliver` to run on the bus thread at virtual time
  /// `deliver_at` (immediately if that time has passed).
  void post(Seconds deliver_at, DeliverFn deliver) ACES_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t in_flight() const ACES_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t delivered() const ACES_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t discarded() const ACES_EXCLUDES(mutex_);

 private:
  struct Message {
    Seconds due;
    std::uint64_t seq;  // FIFO among equal due times
    DeliverFn deliver;
  };
  struct Later {
    bool operator()(const Message& a, const Message& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  void dispatch_loop() ACES_EXCLUDES(mutex_);

  std::function<Seconds()> clock_;
  double time_scale_;
  mutable Mutex mutex_;
  std::condition_variable_any wake_;
  std::priority_queue<Message, std::vector<Message>, Later> queue_
      ACES_GUARDED_BY(mutex_);
  std::uint64_t next_seq_ ACES_GUARDED_BY(mutex_) = 0;
  std::uint64_t delivered_ ACES_GUARDED_BY(mutex_) = 0;
  std::uint64_t discarded_ ACES_GUARDED_BY(mutex_) = 0;
  bool running_ ACES_GUARDED_BY(mutex_) = false;
  bool stop_requested_ ACES_GUARDED_BY(mutex_) = false;
  /// Touched only by the start()/stop() caller thread (single owner);
  /// stop() joins without the lock, so the thread handle is deliberately
  /// not guarded by mutex_.
  std::thread thread_;
};

}  // namespace aces::runtime
