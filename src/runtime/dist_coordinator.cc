#include "runtime/dist_coordinator.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/atomic_shim.h"
#include "common/check.h"
#include "fault/fault_spec.h"
#include "graph/serialization.h"
#include "harness/report_merge.h"
#include "obs/cluster_aggregate.h"
#include "runtime/dist_worker.h"
#include "runtime/transport/inproc.h"
#include "runtime/transport/uds.h"
#include "runtime/wire.h"

namespace aces::runtime::dist {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Coordinator-side recv slice while waiting on a barrier: short enough to
/// round-robin several endpoints, long enough not to spin.
constexpr int kRecvSliceMs = 20;
/// Setup handshake budget (spawn → connect → Hello).
constexpr int kHandshakeTimeoutMs = 10000;
/// Wall-clock grace for a worker process to exit after Shutdown before it
/// is declared an orphan and SIGKILLed.
constexpr double kShutdownGraceSeconds = 5.0;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

/// One worker shard as the coordinator sees it.
struct WorkerSlot {
  std::unique_ptr<transport::Endpoint> ep;
  std::thread thread;  ///< in-process transport only
  pid_t pid = -1;      ///< socket transports only
  bool alive = false;
  SteadyClock::time_point last_heard{};
  /// Wall time of the SIGKILL this coordinator issued, for the
  /// detection-latency accounting; empty for workers that died uninvited.
  std::optional<SteadyClock::time_point> killed_at;
};

/// A prockill clause resolved to barrier indices and a worker rank.
struct ScheduledKill {
  std::uint64_t quantum = 0;
  std::uint64_t restart_quantum = 0;
  bool restarts = false;
  std::uint32_t rank = 0;
};

std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  ACES_CHECK_MSG(n > 0, "readlink(/proc/self/exe) failed");
  return std::string(buf, static_cast<std::size_t>(n));
}

class Coordinator {
 public:
  Coordinator(const graph::ProcessingGraph& g, const opt::AllocationPlan& plan,
              const DistOptions& options, DistStats* stats)
      : g_(g), options_(options), stats_(stats) {
    ACES_CHECK_MSG(options.dt > 0.0, "dt must be positive");
    ACES_CHECK_MSG(options.substeps > 0, "substeps must be positive");
    ACES_CHECK_MSG(options.duration > 0.0, "duration must be positive");
    ACES_CHECK_MSG(options.heartbeat_timeout > options.heartbeat_interval,
                   "heartbeat_timeout must exceed heartbeat_interval");
    q_ = options.dt / options.substeps;
    total_quanta_ = static_cast<std::uint64_t>(
                        std::llround(options.duration / options.dt)) *
                    options.substeps;
    workers_n_ = std::max<std::uint32_t>(
        1, std::min<std::uint32_t>(
               options.processes,
               static_cast<std::uint32_t>(g.node_count())));
    workers_.resize(workers_n_);
    go_sent_.resize(workers_n_);

    cpu_.assign(g.pe_count(), 0.0);
    rin_.assign(g.pe_count(), 0.0);
    rout_.assign(g.pe_count(), 0.0);
    for (std::size_t i = 0; i < plan.pe.size() && i < cpu_.size(); ++i) {
      cpu_[i] = plan.pe[i].cpu;
      rin_[i] = plan.pe[i].rin_sdo;
      rout_[i] = plan.pe[i].rout_sdo;
    }

    base_config_.num_workers = workers_n_;
    base_config_.substeps = options.substeps;
    base_config_.seed = options.seed;
    base_config_.duration = options.duration;
    base_config_.warmup = options.warmup;
    base_config_.dt = options.dt;
    base_config_.policy = static_cast<std::uint8_t>(options.controller.policy);
    base_config_.staleness = options.controller.advert_staleness_timeout;
    base_config_.batch = static_cast<std::uint32_t>(options.batch);
    base_config_.channel_capacity =
        static_cast<std::uint32_t>(options.channel_capacity);
    base_config_.heartbeat_interval = options.heartbeat_interval;
    base_config_.span_sample = options.span_sample;
    base_config_.record_trace = options.record_trace ? 1 : 0;
    base_config_.topology = graph::to_string(g);
    base_config_.faults =
        options.faults.empty() ? std::string() : fault::to_string(options.faults);

    for (const fault::ProcKill& pk : options.faults.proc_kills) {
      ScheduledKill sk;
      sk.rank = owner_of_node(g.node_count(), workers_n_, pk.node.value());
      sk.quantum = quantum_of(pk.at);
      if (pk.restart_at >= 0.0) {
        sk.restarts = true;
        sk.restart_quantum =
            std::max(quantum_of(pk.restart_at), sk.quantum + 1);
      }
      kills_.push_back(sk);
    }
  }

  ~Coordinator() {
    // Last-resort cleanup on an exception path: never leave orphans.
    for (WorkerSlot& w : workers_) {
      if (w.ep != nullptr) w.ep->close();
      if (w.pid > 0) {
        ::kill(w.pid, SIGKILL);
        ::waitpid(w.pid, nullptr, 0);
        w.pid = -1;
      }
      if (w.thread.joinable()) w.thread.join();
    }
  }

  metrics::RunReport run() {
    if (uses_sockets()) open_listener();
    for (std::uint32_t rank = 0; rank < workers_n_; ++rank) {
      spawn_worker(rank, 0);
    }
    for (std::uint64_t k = 0; k < total_quanta_; ++k) {
      handle_restarts(k);
      execute_kills(k);
      broadcast_step_go(k, false);
      collect_step_dones(k);
    }
    broadcast_step_go(total_quanta_, true);
    std::vector<metrics::RunReport> partials = collect_reports();
    shutdown_all();
    metrics::RunReport merged = harness::merge_reports(partials);
    merged.reoptimizations = reoptimizations_;
    if (stats_ != nullptr) stats_->reoptimizations = reoptimizations_;
    return merged;
  }

 private:
  [[nodiscard]] bool uses_sockets() const {
    return options_.transport != transport::TransportKind::kInProc;
  }

  [[nodiscard]] obs::ClusterAggregator* agg() const {
    return options_.aggregator;
  }

  /// Endpoint send with per-shard frame/byte accounting (the bytes vector
  /// is a complete frame: 8-byte header + payload).
  bool send_frame(std::uint32_t rank, const std::vector<std::uint8_t>& bytes) {
    if (agg() != nullptr) agg()->record_frame_sent(rank, bytes.size());
    return workers_[rank].ep->send(bytes);
  }

  void account_recv(std::uint32_t rank, const wire::Frame& frame) {
    if (agg() != nullptr) {
      agg()->record_frame_received(rank, 8 + frame.payload.size());
    }
  }

  /// Feeds one worker MetricsReport into the aggregator (no-op without
  /// one — the frame is consumed either way; tolerance is the contract).
  void absorb_metrics(std::uint32_t rank, wire::MetricsReport&& mr) {
    if (agg() == nullptr) return;
    agg()->note_quantum(rank, mr.quantum);
    std::vector<std::pair<std::string, std::uint64_t>> deltas;
    deltas.reserve(mr.counters.size());
    for (wire::MetricsCounter& c : mr.counters) {
      deltas.emplace_back(std::move(c.name), c.delta);
    }
    agg()->absorb_counters(rank, deltas);
    for (const wire::MetricsGauge& gz : mr.gauges) {
      agg()->absorb_gauge(rank, gz.name, gz.value);
    }
    for (const wire::PeLatencySnapshot& p : mr.pe_latency) {
      agg()->absorb_pe_latency(rank, p.pe, p.wait, p.service);
    }
    for (const wire::PathLatencySnapshot& p : mr.path_latency) {
      agg()->absorb_path_latency(rank, p.id, p.label, p.end_to_end);
    }
    for (const wire::PerfCell& p : mr.perf) {
      agg()->absorb_perf(rank, p.name, p.calls, p.ns);
    }
    for (obs::TickRecord& t : mr.trace) agg()->absorb_trace(rank, t);
  }

  /// Worker → coordinator SpanBatch: completed spans go to the aggregator;
  /// handoffs are staged for relay to their destination shard just before
  /// the next StepGo (which carries the matching deliveries).
  void absorb_span_batch(std::uint32_t rank, wire::SpanBatch&& batch) {
    if (agg() != nullptr) {
      agg()->absorb_completed_spans(rank, batch.completed);
    }
    pending_handoffs_.insert(pending_handoffs_.end(),
                             std::make_move_iterator(batch.handoffs.begin()),
                             std::make_move_iterator(batch.handoffs.end()));
  }

  void absorb_flight_dump(std::uint32_t rank, wire::FlightDump&& fd) {
    if (agg() == nullptr) return;
    obs::ShardFlightDump dump;
    dump.event = std::move(fd.event);
    dump.time = fd.time;
    dump.pushed = fd.pushed;
    dump.recent = std::move(fd.recent);
    dump.in_flight = std::move(fd.in_flight);
    agg()->absorb_flight_dump(rank, std::move(dump));
  }

  /// Consumes a telemetry frame if `frame` is one. Returns true when the
  /// frame was a telemetry type (handled, possibly ignored), false when the
  /// caller must interpret it. A telemetry frame that fails to decode
  /// counts as a decode reject AND reports false through `ok` — the caller
  /// treats it like any other protocol violation.
  bool consume_telemetry(std::uint32_t rank, wire::Frame& frame, bool* ok) {
    *ok = true;
    switch (frame.type) {
      case wire::FrameType::kMetricsReport: {
        auto mr = wire::decode_metrics_report(frame.payload);
        if (!mr.has_value()) break;
        absorb_metrics(rank, std::move(*mr));
        return true;
      }
      case wire::FrameType::kSpanBatch: {
        auto sb = wire::decode_span_batch(frame.payload);
        if (!sb.has_value()) break;
        absorb_span_batch(rank, std::move(*sb));
        return true;
      }
      case wire::FrameType::kFlightDump: {
        auto fd = wire::decode_flight_dump(frame.payload);
        if (!fd.has_value()) break;
        absorb_flight_dump(rank, std::move(*fd));
        return true;
      }
      default:
        return false;
    }
    if (agg() != nullptr) agg()->record_decode_reject(rank);
    *ok = false;
    return true;
  }

  /// First barrier whose quantum covers virtual time `t`.
  [[nodiscard]] std::uint64_t quantum_of(double t) const {
    return static_cast<std::uint64_t>(
        std::llround(std::floor(t / q_ + 1e-9)));
  }

  void open_listener() {
    std::string error;
    if (options_.transport == transport::TransportKind::kUds) {
      std::string dir = options_.uds_dir;
      if (dir.empty()) {
        const char* tmp = std::getenv("TMPDIR");
        dir = tmp != nullptr && tmp[0] != '\0' ? tmp : "/tmp";
      }
      static Atomic<std::uint64_t> seq{0};
      const std::string path =
          dir + "/aces-dist-" + std::to_string(::getpid()) + "-" +
          std::to_string(seq.fetch_add(1)) + ".sock";
      listener_ = transport::SocketListener::listen_uds(path, &error);
    } else {
      listener_ = transport::SocketListener::listen_tcp(&error);
    }
    ACES_CHECK_MSG(listener_ != nullptr, "listen failed: " << error);
  }

  /// Spawns (or respawns) the worker for `rank`, joining at barrier
  /// `start_quantum`, and completes the Hello → Config handshake. Workers
  /// are spawned strictly one at a time, so the accepted connection always
  /// belongs to the rank just forked.
  void spawn_worker(std::uint32_t rank, std::uint64_t start_quantum) {
    WorkerSlot& w = workers_[rank];
    if (w.thread.joinable()) w.thread.join();
    if (w.pid > 0) {
      ::waitpid(w.pid, nullptr, 0);
      w.pid = -1;
    }
    if (!uses_sockets()) {
      auto [mine, theirs] = transport::make_inproc_pair();
      w.ep = std::move(mine);
      std::shared_ptr<transport::Endpoint> worker_end = std::move(theirs);
      w.thread = std::thread(
          [worker_end, rank] { worker_entry(*worker_end, rank); });
    } else {
      const std::string exe =
          options_.worker_exe.empty() ? self_exe_path() : options_.worker_exe;
      std::vector<std::string> args = {exe, "dist-worker",
                                       "--rank=" + std::to_string(rank)};
      if (options_.transport == transport::TransportKind::kUds) {
        args.push_back("--uds=" + listener_->path());
      } else {
        args.push_back("--tcp-port=" + std::to_string(listener_->port()));
      }
      const pid_t pid = ::fork();
      ACES_CHECK_MSG(pid >= 0, "fork failed");
      if (pid == 0) {
        std::vector<char*> argv;
        argv.reserve(args.size() + 1);
        for (std::string& a : args) argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(exe.c_str(), argv.data());
        ::_exit(127);  // exec failed; the accept() below will time out
      }
      w.pid = pid;
      w.ep = listener_->accept(kHandshakeTimeoutMs);
      ACES_CHECK_MSG(w.ep != nullptr,
                     "worker " << rank << " never connected (exe: " << exe
                               << ")");
    }

    wire::Frame frame;
    const auto status = w.ep->recv(&frame, kHandshakeTimeoutMs);
    ACES_CHECK_MSG(status == transport::RecvStatus::kOk &&
                       frame.type == wire::FrameType::kHello,
                   "worker " << rank << " did not say Hello");
    const auto hello = wire::decode_hello(frame.payload);
    ACES_CHECK_MSG(hello.has_value() && hello->rank == rank,
                   "worker Hello rank mismatch");

    wire::Config cfg = base_config_;
    cfg.rank = rank;
    cfg.start_quantum = start_quantum;
    cfg.plan_cpu = cpu_;
    cfg.plan_rin = rin_;
    cfg.plan_rout = rout_;
    ACES_CHECK_MSG(w.ep->send(wire::encode(cfg)),
                   "worker " << rank << " rejected Config");
    w.alive = true;
    w.last_heard = SteadyClock::now();
    w.killed_at.reset();
    if (agg() != nullptr) agg()->note_shard(rank);
  }

  void execute_kills(std::uint64_t k) {
    for (const ScheduledKill& sk : kills_) {
      if (sk.quantum != k || !workers_[sk.rank].alive) continue;
      WorkerSlot& w = workers_[sk.rank];
      w.killed_at = SteadyClock::now();
      if (stats_ != nullptr) ++stats_->workers_killed;
      if (w.pid > 0) {
        ::kill(w.pid, SIGKILL);
      } else {
        // In-process "SIGKILL": abruptly close the pipe; the worker thread
        // sees kClosed and dies, and this side's recv reports kClosed too.
        w.ep->close();
      }
      // Deliberately NOT marked dead here: death is detected for real
      // (connection reset / heartbeat silence) while collecting this
      // barrier, which is what the detection-latency stat measures.
    }
  }

  void handle_restarts(std::uint64_t k) {
    for (const ScheduledKill& sk : kills_) {
      if (!sk.restarts || sk.restart_quantum != k) continue;
      if (workers_[sk.rank].alive) continue;  // kill never landed
      spawn_worker(sk.rank, k);
      if (stats_ != nullptr) ++stats_->workers_restarted;
      bool changed = false;
      for (const std::uint32_t node : nodes_of_rank(sk.rank)) {
        const auto it = std::find(down_nodes_.begin(), down_nodes_.end(), node);
        if (it != down_nodes_.end()) {
          down_nodes_.erase(it);
          up_delta_.push_back(node);
          changed = true;
        }
      }
      if (changed && options_.reoptimize) solve_and_push();
    }
  }

  [[nodiscard]] std::vector<std::uint32_t> nodes_of_rank(
      std::uint32_t rank) const {
    std::vector<std::uint32_t> nodes;
    for (std::size_t n = 0; n < g_.node_count(); ++n) {
      if (owner_of_node(g_.node_count(), workers_n_,
                        static_cast<std::uint32_t>(n)) == rank) {
        nodes.push_back(static_cast<std::uint32_t>(n));
      }
    }
    return nodes;
  }

  void broadcast_step_go(std::uint64_t k, bool final_quantum) {
    // Group the relayed deliveries by destination shard. The pending list
    // is already in rank order (StepDones are absorbed rank 0..W-1); the
    // per-destination stable sort by source node makes the receive order
    // partition-invariant: a node's emissions stay in generation order,
    // nodes are ordered by id.
    std::vector<std::vector<wire::SdoDelivery>> per_rank(workers_n_);
    for (const wire::SdoDelivery& d : pending_deliveries_) {
      const std::uint32_t dest_node = g_.pe(PeId(d.dest_pe)).node.value();
      const std::uint32_t rank =
          owner_of_node(g_.node_count(), workers_n_, dest_node);
      if (!workers_[rank].alive) {
        if (stats_ != nullptr) ++stats_->relay_dropped;
        continue;
      }
      per_rank[rank].push_back(d);
    }
    for (auto& group : per_rank) {
      std::stable_sort(group.begin(), group.end(),
                       [](const wire::SdoDelivery& a,
                          const wire::SdoDelivery& b) {
                         return a.src_node < b.src_node;
                       });
    }
    std::stable_sort(pending_adverts_.begin(), pending_adverts_.end(),
                     [](const wire::Advert& a, const wire::Advert& b) {
                       return a.pe < b.pe;
                     });
    std::sort(pending_congested_.begin(), pending_congested_.end());
    pending_congested_.erase(
        std::unique(pending_congested_.begin(), pending_congested_.end()),
        pending_congested_.end());
    std::sort(up_delta_.begin(), up_delta_.end());

    // Span handoffs ride ahead of the StepGo that carries their matching
    // deliveries; the worker stages them for exactly that one quantum.
    // Handoffs addressed to a dead shard are telemetry lawfully lost (the
    // deliveries themselves are dropped below), but counted.
    if (!pending_handoffs_.empty()) {
      std::vector<std::vector<wire::SpanHandoff>> per_dest(workers_n_);
      for (wire::SpanHandoff& h : pending_handoffs_) {
        if (h.dest_pe >= g_.pe_count()) continue;  // corrupt: drop
        const std::uint32_t dest_node = g_.pe(PeId(h.dest_pe)).node.value();
        const std::uint32_t rank =
            owner_of_node(g_.node_count(), workers_n_, dest_node);
        if (!workers_[rank].alive) {
          if (agg() != nullptr) agg()->record_relay_dropped(rank, 1);
          continue;
        }
        per_dest[rank].push_back(std::move(h));
      }
      for (std::uint32_t rank = 0; rank < workers_n_; ++rank) {
        if (per_dest[rank].empty()) continue;
        wire::SpanBatch sb;
        sb.rank = rank;  // destination
        sb.quantum = k;
        sb.handoffs = std::move(per_dest[rank]);
        send_frame(rank, wire::encode(sb));
      }
      pending_handoffs_.clear();
    }

    for (std::uint32_t rank = 0; rank < workers_n_; ++rank) {
      WorkerSlot& w = workers_[rank];
      if (!w.alive) continue;
      wire::StepGo go;
      go.quantum = k;
      go.flags = final_quantum ? wire::kStepGoFinal : 0;
      go.deliveries = std::move(per_rank[rank]);
      go.adverts = pending_adverts_;
      go.congested_pes = pending_congested_;
      go.down_nodes = down_nodes_;  // full current set: idempotent clamp
      go.up_nodes = up_delta_;
      // A send into a just-killed endpoint may fail; the death is handled
      // while collecting, not here.
      go_sent_[rank] = SteadyClock::now();
      send_frame(rank, wire::encode(go));
    }
    pending_deliveries_.clear();
    pending_adverts_.clear();
    pending_congested_.clear();
    up_delta_.clear();
  }

  void collect_step_dones(std::uint64_t k) {
    std::vector<std::optional<wire::StepDone>> dones(workers_n_);
    std::vector<SteadyClock::time_point> done_at(workers_n_);
    std::size_t pending = 0;
    for (const WorkerSlot& w : workers_) pending += w.alive ? 1 : 0;
    bool membership_changed = false;

    while (pending > 0) {
      for (std::uint32_t rank = 0; rank < workers_n_; ++rank) {
        WorkerSlot& w = workers_[rank];
        if (!w.alive || dones[rank].has_value()) continue;
        wire::Frame frame;
        const auto status = w.ep->recv(&frame, kRecvSliceMs);
        switch (status) {
          case transport::RecvStatus::kOk: {
            w.last_heard = SteadyClock::now();
            account_recv(rank, frame);
            bool telemetry_ok = true;
            if (frame.type == wire::FrameType::kStepDone) {
              auto done = wire::decode_step_done(frame.payload);
              if (!done.has_value() || done->quantum != k) {
                if (agg() != nullptr && !done.has_value()) {
                  agg()->record_decode_reject(rank);
                }
                declare_dead(rank, &pending, &membership_changed);
                break;
              }
              dones[rank] = std::move(*done);
              done_at[rank] = SteadyClock::now();
              --pending;
              if (agg() != nullptr) {
                agg()->note_quantum(rank, k);
                agg()->record_rtt(
                    rank, std::chrono::duration<double>(done_at[rank] -
                                                        go_sent_[rank])
                              .count());
              }
            } else if (frame.type == wire::FrameType::kHeartbeat) {
              if (stats_ != nullptr) ++stats_->heartbeats_received;
              if (agg() != nullptr) agg()->record_heartbeat(rank);
            } else if (consume_telemetry(rank, frame, &telemetry_ok)) {
              if (!telemetry_ok) {
                declare_dead(rank, &pending, &membership_changed);
              }
            } else {
              declare_dead(rank, &pending, &membership_changed);
            }
            break;
          }
          case transport::RecvStatus::kTimeout: {
            int wstatus = 0;
            const bool exited =
                w.pid > 0 &&
                ::waitpid(w.pid, &wstatus, WNOHANG) == w.pid;
            if (exited) w.pid = -1;
            if (exited ||
                seconds_since(w.last_heard) > options_.heartbeat_timeout) {
              declare_dead(rank, &pending, &membership_changed);
            }
            break;
          }
          case transport::RecvStatus::kClosed:
          case transport::RecvStatus::kError:
            declare_dead(rank, &pending, &membership_changed);
            break;
        }
      }
    }

    // Barrier-step skew: spread between the first and last StepDone of
    // this quantum. Meaningful (and nonzero) only with two or more shards.
    if (agg() != nullptr) {
      SteadyClock::time_point first{}, last{};
      std::size_t got = 0;
      for (std::uint32_t rank = 0; rank < workers_n_; ++rank) {
        if (!dones[rank].has_value()) continue;
        if (got == 0 || done_at[rank] < first) first = done_at[rank];
        if (got == 0 || done_at[rank] > last) last = done_at[rank];
        ++got;
      }
      if (got >= 2) {
        agg()->record_step_skew(
            std::chrono::duration<double>(last - first).count());
      }
    }

    // Absorb in rank order — the relay order next barrier must not depend
    // on which worker finished first.
    for (std::uint32_t rank = 0; rank < workers_n_; ++rank) {
      if (!dones[rank].has_value()) continue;
      wire::StepDone& done = *dones[rank];
      pending_deliveries_.insert(pending_deliveries_.end(),
                                 done.deliveries.begin(),
                                 done.deliveries.end());
      pending_adverts_.insert(pending_adverts_.end(), done.adverts.begin(),
                              done.adverts.end());
      pending_congested_.insert(pending_congested_.end(),
                                done.congested_pes.begin(),
                                done.congested_pes.end());
      // Modeled crash/restore transitions are the event-driven reoptimize
      // trigger, mirroring the simulator's solve-on-crash. The nodes are
      // NOT broadcast as down_nodes — every worker models the crash window
      // through its own FaultInjector.
      for (const std::uint32_t node : done.crashed_nodes) {
        if (std::find(modeled_down_.begin(), modeled_down_.end(), node) ==
            modeled_down_.end()) {
          modeled_down_.push_back(node);
          membership_changed = true;
        }
      }
      for (const std::uint32_t node : done.restored_nodes) {
        const auto it =
            std::find(modeled_down_.begin(), modeled_down_.end(), node);
        if (it != modeled_down_.end()) {
          modeled_down_.erase(it);
          membership_changed = true;
        }
      }
    }

    if (membership_changed && options_.reoptimize) solve_and_push();
  }

  /// Marks a worker dead: its shard's nodes go into the broadcast down
  /// set, the process (if any) is reaped, and the detection latency is
  /// recorded when this coordinator caused the death.
  void declare_dead(std::uint32_t rank, std::size_t* pending,
                    bool* membership_changed) {
    WorkerSlot& w = workers_[rank];
    if (!w.alive) return;
    w.alive = false;
    --*pending;
    if (agg() != nullptr) agg()->note_shard_dead(rank);
    if (w.killed_at.has_value() && stats_ != nullptr &&
        stats_->kill_detect_wall_seconds < 0.0) {
      stats_->kill_detect_wall_seconds = seconds_since(*w.killed_at);
    }
    w.ep->close();
    if (w.pid > 0) {
      ::kill(w.pid, SIGKILL);  // no-op if already dead; frees a hung worker
      ::waitpid(w.pid, nullptr, 0);
      w.pid = -1;
    }
    if (w.thread.joinable()) w.thread.join();
    for (const std::uint32_t node : nodes_of_rank(rank)) {
      if (std::find(down_nodes_.begin(), down_nodes_.end(), node) ==
          down_nodes_.end()) {
        down_nodes_.push_back(node);
      }
    }
    std::sort(down_nodes_.begin(), down_nodes_.end());
    *membership_changed = true;
  }

  /// One tier-1 re-solve excluding every down node (really-dead shards and
  /// modeled crash windows), pushed to all live workers.
  void solve_and_push() {
    std::vector<NodeId> failed;
    for (const std::uint32_t n : down_nodes_) failed.emplace_back(n);
    for (const std::uint32_t n : modeled_down_) {
      if (std::find(down_nodes_.begin(), down_nodes_.end(), n) ==
          down_nodes_.end()) {
        failed.emplace_back(n);
      }
    }
    const opt::AllocationPlan plan =
        opt::optimize_excluding(g_, failed, options_.optimizer);
    for (std::size_t i = 0; i < plan.pe.size() && i < cpu_.size(); ++i) {
      cpu_[i] = plan.pe[i].cpu;
      rin_[i] = plan.pe[i].rin_sdo;
      rout_[i] = plan.pe[i].rout_sdo;
    }
    ++reoptimizations_;
    wire::Targets targets;
    targets.revision = reoptimizations_;
    targets.cpu = cpu_;
    targets.rin = rin_;
    targets.rout = rout_;
    const std::vector<std::uint8_t> bytes = wire::encode(targets);
    for (WorkerSlot& w : workers_) {
      if (w.alive) w.ep->send(bytes);
    }
  }

  std::vector<metrics::RunReport> collect_reports() {
    std::vector<metrics::RunReport> partials;
    for (std::uint32_t rank = 0; rank < workers_n_; ++rank) {
      WorkerSlot& w = workers_[rank];
      if (!w.alive) continue;
      const SteadyClock::time_point start = SteadyClock::now();
      const double deadline =
          std::max(5.0, 2.0 * options_.heartbeat_timeout);
      while (seconds_since(start) < deadline) {
        wire::Frame frame;
        const auto status = w.ep->recv(&frame, 100);
        if (status == transport::RecvStatus::kOk) {
          account_recv(rank, frame);
          if (frame.type == wire::FrameType::kReport) {
            auto report = wire::decode_report(frame.payload);
            if (report.has_value()) partials.push_back(report->report);
            break;
          }
          if (frame.type == wire::FrameType::kHeartbeat) {
            if (stats_ != nullptr) ++stats_->heartbeats_received;
            if (agg() != nullptr) agg()->record_heartbeat(rank);
            continue;
          }
          // The worker ships its final telemetry (epoch metrics, completed
          // spans, the shutdown flight dump) just before the Report.
          bool telemetry_ok = true;
          if (consume_telemetry(rank, frame, &telemetry_ok) && telemetry_ok) {
            continue;
          }
          break;  // protocol violation: skip this shard's report
        }
        if (status != transport::RecvStatus::kTimeout) break;
      }
    }
    return partials;
  }

  void shutdown_all() {
    const std::vector<std::uint8_t> bye = wire::encode_shutdown();
    for (WorkerSlot& w : workers_) {
      if (w.alive) w.ep->send(bye);
    }
    for (WorkerSlot& w : workers_) {
      if (w.ep != nullptr) w.ep->close();
      if (w.thread.joinable()) w.thread.join();
      if (w.pid > 0) {
        const SteadyClock::time_point start = SteadyClock::now();
        bool reaped = false;
        while (seconds_since(start) < kShutdownGraceSeconds) {
          if (::waitpid(w.pid, nullptr, WNOHANG) == w.pid) {
            reaped = true;
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        if (!reaped) {
          // A worker that survives Shutdown + closed pipe is an orphan.
          ::kill(w.pid, SIGKILL);
          ::waitpid(w.pid, nullptr, 0);
          if (stats_ != nullptr) ++stats_->orphans_reaped;
        }
        w.pid = -1;
      }
      w.alive = false;
    }
  }

  const graph::ProcessingGraph& g_;
  const DistOptions& options_;
  DistStats* stats_ = nullptr;
  double q_ = 0.0;
  std::uint64_t total_quanta_ = 0;
  std::uint32_t workers_n_ = 1;
  std::vector<WorkerSlot> workers_;
  std::unique_ptr<transport::SocketListener> listener_;
  wire::Config base_config_;
  std::vector<double> cpu_, rin_, rout_;  // current tier-1 targets
  std::vector<ScheduledKill> kills_;
  /// Nodes of really-dead shards (broadcast) / modeled crash windows (not
  /// broadcast; reoptimize bookkeeping only). Sorted, no duplicates.
  std::vector<std::uint32_t> down_nodes_;
  std::vector<std::uint32_t> modeled_down_;
  std::vector<std::uint32_t> up_delta_;
  std::vector<wire::SdoDelivery> pending_deliveries_;
  std::vector<wire::Advert> pending_adverts_;
  std::vector<std::uint32_t> pending_congested_;
  /// Span handoffs awaiting relay to their destination shard (staged from
  /// worker SpanBatches, flushed just before the next StepGo).
  std::vector<wire::SpanHandoff> pending_handoffs_;
  /// Per-rank wall time of the last StepGo send, for the RTT gauge.
  std::vector<SteadyClock::time_point> go_sent_;
  std::uint64_t reoptimizations_ = 0;
};

}  // namespace

metrics::RunReport run_distributed(const graph::ProcessingGraph& g,
                                   const opt::AllocationPlan& plan,
                                   const DistOptions& options,
                                   DistStats* stats) {
  Coordinator coordinator(g, plan, options, stats);
  return coordinator.run();
}

}  // namespace aces::runtime::dist
