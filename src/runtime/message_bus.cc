#include "runtime/message_bus.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

namespace aces::runtime {

MessageBus::MessageBus(std::function<Seconds()> clock, double time_scale)
    : clock_(std::move(clock)), time_scale_(time_scale) {
  ACES_CHECK_MSG(clock_ != nullptr, "message bus needs a clock");
  ACES_CHECK_MSG(time_scale > 0.0, "time scale must be positive");
  // Pre-reserve the heap's backing store so steady-state posting never
  // allocates (the data plane's no-allocation contract covers bus routing).
  std::vector<Message> backing;
  backing.reserve(kQueueReserve);
  queue_ = std::priority_queue<Message, std::vector<Message>, Later>(
      Later{}, std::move(backing));
}

MessageBus::~MessageBus() { stop(); }

void MessageBus::start() {
  MutexLock lock(mutex_);
  ACES_CHECK_MSG(!running_, "message bus already running");
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { dispatch_loop(); });
}

void MessageBus::stop() {
  {
    MutexLock lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  thread_.join();
  MutexLock lock(mutex_);
  running_ = false;
  discarded_ += queue_.size();
  while (!queue_.empty()) queue_.pop();
}

void MessageBus::post(Seconds deliver_at, DeliverFn deliver) {
  {
    MutexLock lock(mutex_);
    ACES_CHECK_MSG(running_ && !stop_requested_,
                   "post() on a stopped message bus");
    queue_.push(Message{deliver_at, next_seq_++, std::move(deliver)});
  }
  wake_.notify_one();
}

std::size_t MessageBus::in_flight() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

std::uint64_t MessageBus::delivered() const {
  MutexLock lock(mutex_);
  return delivered_;
}

std::uint64_t MessageBus::discarded() const {
  MutexLock lock(mutex_);
  return discarded_;
}

void MessageBus::dispatch_loop() {
  // Explicit lock()/unlock() instead of a scoped guard: the loop drops the
  // mutex around each delivery callback (which may post() back into the
  // bus), and clang's thread-safety analysis verifies the hand-balanced
  // acquire/release pairs across the loop body.
  mutex_.lock();
  while (!stop_requested_) {
    if (queue_.empty()) {
      // Equivalent to wait(lock, pred): loop on spurious wakeups; the cv
      // releases and reacquires mutex_ around the sleep.
      while (!stop_requested_ && queue_.empty()) wake_.wait(mutex_);
      continue;
    }
    const Seconds due = queue_.top().due;
    const Seconds now = clock_();
    if (now < due) {
      // Sleep at most 5 ms wall so stop() stays responsive.
      const double wall_seconds =
          std::min((due - now) / time_scale_, 0.005);
      wake_.wait_for(mutex_, std::chrono::duration<double>(wall_seconds));
      continue;
    }
    // Move the message out before unlocking; the callback may post().
    Message message = std::move(const_cast<Message&>(queue_.top()));
    queue_.pop();
    ++delivered_;
    mutex_.unlock();
    message.deliver();
    mutex_.lock();
  }
  mutex_.unlock();
}

}  // namespace aces::runtime
