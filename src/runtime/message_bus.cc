#include "runtime/message_bus.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

namespace aces::runtime {

MessageBus::MessageBus(std::function<Seconds()> clock, double time_scale)
    : clock_(std::move(clock)), time_scale_(time_scale) {
  ACES_CHECK_MSG(clock_ != nullptr, "message bus needs a clock");
  ACES_CHECK_MSG(time_scale > 0.0, "time scale must be positive");
}

MessageBus::~MessageBus() { stop(); }

void MessageBus::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  ACES_CHECK_MSG(!running_, "message bus already running");
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { dispatch_loop(); });
}

void MessageBus::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
  discarded_ += queue_.size();
  while (!queue_.empty()) queue_.pop();
}

void MessageBus::post(Seconds deliver_at, std::function<void()> deliver) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ACES_CHECK_MSG(running_ && !stop_requested_,
                   "post() on a stopped message bus");
    queue_.push(Message{deliver_at, next_seq_++, std::move(deliver)});
  }
  wake_.notify_one();
}

std::size_t MessageBus::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::uint64_t MessageBus::delivered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return delivered_;
}

std::uint64_t MessageBus::discarded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return discarded_;
}

void MessageBus::dispatch_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    if (queue_.empty()) {
      wake_.wait(lock, [this] { return stop_requested_ || !queue_.empty(); });
      continue;
    }
    const Seconds due = queue_.top().due;
    const Seconds now = clock_();
    if (now < due) {
      // Sleep at most 5 ms wall so stop() stays responsive.
      const double wall_seconds =
          std::min((due - now) / time_scale_, 0.005);
      wake_.wait_for(lock, std::chrono::duration<double>(wall_seconds));
      continue;
    }
    // Move the message out before unlocking; the callback may post().
    Message message = std::move(const_cast<Message&>(queue_.top()));
    queue_.pop();
    ++delivered_;
    lock.unlock();
    message.deliver();
    lock.lock();
  }
}

}  // namespace aces::runtime
