// Quickstart: build a small stream-processing application, run the tier-1
// optimizer, then simulate it under all three control policies and compare
// weighted throughput and end-to-end latency.
//
//   $ ./examples/quickstart
#include <iostream>

#include "graph/dot_export.h"
#include "harness/defaults.h"
#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace aces;

  // A 12-PE, 3-node application generated with the paper's §VI-C defaults.
  graph::TopologyParams params;
  params.num_nodes = 3;
  params.num_ingress = 3;
  params.num_intermediate = 6;
  params.num_egress = 3;
  const graph::ProcessingGraph g = graph::generate_topology(params, /*seed=*/7);

  std::cout << "Topology: " << g.pe_count() << " PEs on " << g.node_count()
            << " nodes, " << g.edge_count() << " edges\n\n";

  // Tier 1: long-term CPU targets maximizing weighted throughput.
  const opt::AllocationPlan plan = opt::optimize(g);
  std::cout << "Tier-1 fluid optimum: weighted throughput = "
            << harness::cell(plan.weighted_throughput, 1) << " (SDO/s, weighted)\n\n";

  // Tier 2: simulate each policy on the same topology and workload seed.
  sim::SimOptions options = harness::default_sim_options();
  options.duration = 40.0;
  options.warmup = 10.0;
  options.seed = 42;

  harness::Table table({"policy", "wtput", "wtput/fluid", "latency ms",
                        "lat stddev", "p99 ms", "ingress drop/s",
                        "internal drop/s", "cpu util"});
  for (const auto policy :
       {control::FlowPolicy::kAces, control::FlowPolicy::kUdp,
        control::FlowPolicy::kLockStep}) {
    options.controller.policy = policy;
    const harness::RunSummary s = harness::run_single(g, plan, options);
    table.add_row({to_string(policy), harness::cell(s.weighted_throughput, 1),
                   harness::cell(s.normalized_throughput(), 3),
                   harness::cell(s.latency_mean * 1e3, 1),
                   harness::cell(s.latency_std * 1e3, 1),
                   harness::cell(s.latency_p99 * 1e3, 1),
                   harness::cell(s.ingress_drops_per_sec, 1),
                   harness::cell(s.internal_drops_per_sec, 1),
                   harness::cell(s.cpu_utilization, 3)});
  }
  table.print(std::cout);

  std::cout << "\nGraphviz of the application (render with `dot -Tpng`):\n"
            << graph::to_dot(g);
  return 0;
}
