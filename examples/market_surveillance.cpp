// Market-surveillance fan-in: many exchange feeds are normalized, merged
// into a correlation engine, and split into a high-priority compliance
// alert stream and a low-priority analytics dashboard — the "high
// performance transaction processing" class of workload the paper cites
// (Aurora/Medusa, STREAM).
//
// Demonstrates: fan-in merging, weight-driven tier-1 allocation, and how
// ACES behaves when the offered load is deliberately pushed ABOVE capacity
// (load factor 1.3): "making the best use of resources even when the
// proffered load is greater than available resources" (paper §I).
//
//   $ ./examples/market_surveillance
#include <iostream>

#include "graph/topology_generator.h"
#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace aces;

  // Hand-tune a generated topology: 8 feeds, two stages, 4 sinks on 4 nodes.
  graph::TopologyParams params;
  params.num_nodes = 4;
  params.num_ingress = 8;
  params.num_intermediate = 8;
  params.num_egress = 4;
  params.depth = 2;
  params.load_factor = 1.3;  // deliberately overloaded
  params.source_burstiness = 0.8;  // market data is very bursty
  params.max_weight = 10;
  graph::ProcessingGraph g = graph::generate_topology(params, 21);

  // Make the weight contrast stark: first egress = compliance (10), rest =
  // dashboards (1).
  bool first = true;
  for (PeId id : g.all_pes()) {
    if (g.pe(id).kind != graph::PeKind::kEgress) continue;
    g.pe(id).weight = first ? 10.0 : 1.0;
    first = false;
  }

  const opt::AllocationPlan plan = opt::optimize(g);
  std::cout << "Offered load is 1.3x the busiest node's capacity; the "
               "tier-1 optimizer\nmust choose what to serve. Fluid-optimal "
               "weighted throughput: "
            << harness::cell(plan.weighted_throughput, 1) << "\n\n";

  // Policy constraint demo (paper SV: tier 1 "can take into account
  // arbitrarily complex policy constraints"): each dashboard carries a
  // 30 SDO/s SLA floor. On this topology the optimum already satisfies the
  // floors (shortfall 0 at zero cost); on contended placements the floors
  // actively pull CPU back from the compliance stream — see
  // tests/opt/rate_floor_test.cc for that case.
  opt::OptimizerConfig linear_config;
  linear_config.utility = opt::UtilityKind::kLinear;
  const opt::AllocationPlan greedy = opt::optimize(g, linear_config);
  opt::OptimizerConfig floored_config = linear_config;
  std::vector<PeId> dashboards;
  for (PeId id : g.all_pes()) {
    if (g.pe(id).kind == graph::PeKind::kEgress && g.pe(id).weight < 5.0) {
      dashboards.push_back(id);
      floored_config.rate_floors.push_back(opt::RateFloor{id, 30.0});
    }
  }
  const opt::AllocationPlan floored = opt::optimize(g, floored_config);
  std::cout << "Unconstrained (linear utility): dashboards get";
  for (PeId id : dashboards)
    std::cout << ' ' << harness::cell(greedy.at(id).rout_sdo, 1);
  std::cout << " SDO/s.\nWith a 30 SDO/s tier-1 floor each:";
  for (PeId id : dashboards)
    std::cout << ' ' << harness::cell(floored.at(id).rout_sdo, 1);
  std::cout << " SDO/s\n(shortfall "
            << harness::cell(floored.floor_shortfall, 2)
            << "; weighted throughput cost "
            << harness::cell(greedy.weighted_throughput -
                             floored.weighted_throughput, 1)
            << ").\n\n";

  harness::Table alloc({"egress", "weight", "fluid out SDO/s"});
  for (PeId id : g.all_pes()) {
    if (g.pe(id).kind != graph::PeKind::kEgress) continue;
    alloc.add_row({"pe" + std::to_string(id.value()),
                   harness::cell(g.pe(id).weight, 0),
                   harness::cell(plan.at(id).rout_sdo, 1)});
  }
  alloc.print(std::cout);

  std::cout << "\n40 s of simulated trading under each policy (note where "
               "each policy loses\ndata when overloaded):\n";
  harness::Table results({"policy", "wtput", "wtput/fluid", "latency ms",
                          "ingress drops/s", "internal drops/s"});
  for (const auto policy :
       {control::FlowPolicy::kAces, control::FlowPolicy::kUdp,
        control::FlowPolicy::kLockStep}) {
    sim::SimOptions o;
    o.duration = 40.0;
    o.warmup = 10.0;
    o.seed = 12;
    o.controller.policy = policy;
    const harness::RunSummary s = harness::run_single(g, plan, o);
    results.add_row({to_string(policy),
                     harness::cell(s.weighted_throughput, 1),
                     harness::cell(s.normalized_throughput(), 3),
                     harness::cell(s.latency_mean * 1e3, 1),
                     harness::cell(s.ingress_drops_per_sec, 1),
                     harness::cell(s.internal_drops_per_sec, 1)});
  }
  results.print(std::cout);
  std::cout << "\nUnder overload, Lock-Step pushes all loss to the system "
               "input (min-flow\nbackpressure), UDP wastes work on SDOs it "
               "later drops mid-pipeline, and ACES\nthrottles upstream via "
               "Eq. 7 advertisements so drops cost the least work.\n";
  return 0;
}
