// Adaptive operations: a day in the life of a controlled stream system.
//
// One continuous 120-second run on the paper's 60 PE / 10 node
// configuration, hit by the full set of operational events tier 1 exists to
// absorb (paper §II and §V):
//
//   t = 30 s  workload shift   — half the feeds triple, the rest go quiet
//   t = 50 s  failure          — one intermediate PE is down for 10 s
//   t = 70 s  capacity loss    — two nodes lose half their CPU
//   t = 90 s  re-prioritization — one egress becomes 10x as important
//
// Run twice: with a static tier-1 plan, and with re-optimization every
// 10 s. Prints a per-phase weighted-throughput comparison.
//
//   $ ./examples/adaptive_operations
#include <iostream>

#include "harness/defaults.h"
#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace aces;

  const auto params =
      harness::with_burstiness(harness::calibration_topology(), 2.0);
  const auto g = graph::generate_topology(params, 3);
  const auto plan = opt::optimize(g);

  // Pick an intermediate PE to fail and an egress to promote.
  PeId victim;
  PeId promoted;
  for (PeId id : g.all_pes()) {
    if (!victim.valid() && g.pe(id).kind == graph::PeKind::kIntermediate)
      victim = id;
    if (!promoted.valid() && g.pe(id).kind == graph::PeKind::kEgress)
      promoted = id;
  }

  auto scripted = [&](Seconds measure_from, Seconds duration,
                      bool adaptive) {
    sim::SimOptions o;
    o.duration = duration;
    o.warmup = measure_from;
    o.seed = 11;
    o.controller.policy = control::FlowPolicy::kAces;
    if (adaptive) o.reoptimize_interval = 10.0;
    for (std::size_t s = 0; s < g.stream_count(); ++s) {
      const StreamId id(static_cast<StreamId::value_type>(s));
      const double factor = (s % 2 == 0) ? 3.0 : 0.2;
      o.rate_changes.push_back(
          sim::RateChange{30.0, id, g.stream(id).mean_rate * factor});
    }
    o.outages.push_back(sim::PeOutage{50.0, 60.0, victim});
    o.capacity_changes.push_back(sim::CapacityChange{70.0, NodeId(0), 0.5});
    o.capacity_changes.push_back(sim::CapacityChange{70.0, NodeId(1), 0.5});
    o.weight_changes.push_back(
        sim::WeightChange{90.0, promoted, g.pe(promoted).weight * 10.0});
    return o;
  };

  // Measure each phase separately by re-running the identical scripted
  // scenario with a different measurement window (runs are deterministic,
  // so the trajectories are identical and only the window moves).
  struct Phase {
    const char* name;
    Seconds from, until;
  };
  const Phase phases[] = {
      {"steady state", 10.0, 30.0},   {"workload shift", 30.0, 50.0},
      {"PE outage", 50.0, 60.0},      {"capacity loss", 70.0, 90.0},
      {"re-prioritized", 90.0, 120.0},
  };

  std::cout << "60 PEs / 10 nodes under a scripted sequence of operational "
               "events.\nPer-phase weighted throughput, static tier-1 plan "
               "vs re-optimizing every 10 s:\n\n";
  harness::Table table({"phase", "window s", "static", "adaptive",
                        "gain %"});
  for (const Phase& phase : phases) {
    double wtput[2];
    for (const bool adaptive : {false, true}) {
      const auto o = scripted(phase.from, phase.until, adaptive);
      const auto report = sim::simulate(g, plan, o);
      wtput[adaptive ? 1 : 0] = report.weighted_throughput;
    }
    table.add_row(
        {phase.name,
         harness::cell(phase.from, 0) + "-" + harness::cell(phase.until, 0),
         harness::cell(wtput[0], 0), harness::cell(wtput[1], 0),
         harness::cell(100.0 * (wtput[1] - wtput[0]) / wtput[0], 1)});
  }
  table.print(std::cout);
  std::cout << "\nTier 2 keeps every phase stable; periodic tier 1 recovers "
               "the throughput the\nstale targets leave behind once "
               "conditions change.\n";
  return 0;
}
