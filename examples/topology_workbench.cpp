// Topology workbench: the archival / reproducibility workflow.
//
//  1. generate a topology and SAVE it to a text file,
//  2. RELOAD it (byte-exact round trip) and re-derive the tier-1 plan,
//  3. record a workload TRACE and replay it,
//  4. run with TRAJECTORY RECORDING on and export per-PE occupancy series
//     as CSV next to the topology file.
//
// Everything lands in ./workbench_output/ so a run's inputs and outputs can
// be archived together.
//
//   $ ./examples/topology_workbench
#include <filesystem>
#include <fstream>
#include <iostream>

#include "graph/serialization.h"
#include "graph/topology_generator.h"
#include "harness/experiment.h"
#include "harness/table.h"
#include "workload/trace.h"

int main() {
  using namespace aces;
  namespace fs = std::filesystem;

  const fs::path out_dir = "workbench_output";
  fs::create_directories(out_dir);

  // 1. Generate and save.
  graph::TopologyParams params;
  params.num_nodes = 4;
  params.num_ingress = 4;
  params.num_intermediate = 8;
  params.num_egress = 4;
  const graph::ProcessingGraph g = graph::generate_topology(params, 77);
  const fs::path topo_path = out_dir / "topology.txt";
  {
    std::ofstream file(topo_path);
    graph::write_topology(g, file);
  }
  std::cout << "wrote " << topo_path << " (" << g.pe_count() << " PEs, "
            << g.edge_count() << " edges)\n";

  // 2. Reload and verify the round trip.
  graph::ProcessingGraph reloaded = [&] {
    std::ifstream file(topo_path);
    return graph::read_topology(file);
  }();
  reloaded.validate();
  std::cout << "reloaded topology is "
            << (graph::to_string(reloaded) == graph::to_string(g)
                    ? "byte-identical"
                    : "DIFFERENT (bug!)")
            << " after the round trip\n";

  // 3. Record a bursty arrival trace and compare to its replay.
  {
    auto live = workload::make_arrival_process(g.stream(StreamId(0)), Rng(5));
    const auto gaps = workload::record_trace(*live, 2000);
    workload::TraceArrivals replay(gaps);
    std::cout << "recorded a " << gaps.size()
              << "-arrival trace of stream0 (mean rate "
              << harness::cell(replay.mean_rate(), 1) << "/s, configured "
              << harness::cell(g.stream(StreamId(0)).mean_rate, 1)
              << "/s)\n";
  }

  // 4. Run with trajectory recording and export CSVs.
  const opt::AllocationPlan plan = opt::optimize(reloaded);
  sim::SimOptions options;
  options.duration = 30.0;
  options.warmup = 5.0;
  options.seed = 9;
  options.record_timeseries = true;
  sim::StreamSimulation simulation(reloaded, plan, options);
  simulation.run();

  const fs::path series_path = out_dir / "trajectories.csv";
  {
    std::ofstream file(series_path);
    simulation.timeseries().write_csv(file);
  }
  std::cout << "wrote " << series_path << " ("
            << simulation.timeseries().names().size() << " series)\n";

  // Summary table, both pretty and as CSV.
  const metrics::RunReport report = simulation.report();
  harness::Table summary({"metric", "value"});
  summary.add_row({"weighted throughput",
                   harness::cell(report.weighted_throughput, 1)});
  summary.add_row({"mean latency ms",
                   harness::cell(report.latency.mean() * 1e3, 1)});
  summary.add_row({"p99 latency ms",
                   harness::cell(report.latency_histogram.p99() * 1e3, 1)});
  summary.add_row({"cpu utilization",
                   harness::cell(report.cpu_utilization, 3)});
  summary.print(std::cout);
  const fs::path summary_path = out_dir / "summary.csv";
  {
    std::ofstream file(summary_path);
    summary.print_csv(file);
  }
  std::cout << "wrote " << summary_path << "\n";
  return 0;
}
