// Video-analytics pipeline: the classic bursty stream-processing workload
// the paper's §III-C motivates ("video processing PEs may require an entire
// frame, or an entire set of independently-compressed frames — 'Group Of
// Pictures' — to do a processing step").
//
// Two camera feeds are decoded, run through a detector, then fan out to
// consumers with very different appetites (the paper's Figure-2 situation):
// a cheap thumbnailer, a mid-cost tracker, and an expensive high-resolution
// archiver. Weights encode that the tracker's alerts matter most.
//
//   $ ./examples/video_analytics
#include <iostream>

#include "harness/experiment.h"
#include "harness/table.h"
#include "opt/global_optimizer.h"

int main() {
  using namespace aces;

  graph::ProcessingGraph g;
  const NodeId ingest_node = g.add_node({1.0, "ingest"});
  const NodeId analytics_node = g.add_node({1.0, "analytics"});
  const NodeId delivery_node = g.add_node({1.0, "delivery"});

  // 25 fps per camera, moderately bursty network arrivals.
  const StreamId cam0 = g.add_stream({25.0, 0.6, "camera0"});
  const StreamId cam1 = g.add_stream({25.0, 0.6, "camera1"});

  // Decoders: I-frames are ~10x the cost of P-frames, and frame types come
  // in runs (GOPs) — exactly the two-state service model.
  graph::PeDescriptor decoder;
  decoder.kind = graph::PeKind::kIngress;
  decoder.node = ingest_node;
  decoder.service_time[0] = 0.004;  // P-frame
  decoder.service_time[1] = 0.040;  // I-frame burst
  decoder.sojourn_mean[0] = 2.0;
  decoder.sojourn_mean[1] = 0.4;
  decoder.buffer_capacity = 40;
  decoder.input_stream = cam0;
  const PeId dec0 = g.add_pe(decoder);
  decoder.input_stream = cam1;
  const PeId dec1 = g.add_pe(decoder);

  // Detector: joins both decoded feeds, emits one detection record per
  // frame on average.
  graph::PeDescriptor detector;
  detector.kind = graph::PeKind::kIntermediate;
  detector.node = analytics_node;
  detector.service_time[0] = 0.006;
  detector.service_time[1] = 0.018;
  detector.sojourn_mean[0] = 5.0;
  detector.sojourn_mean[1] = 1.0;
  detector.buffer_capacity = 60;
  const PeId detect = g.add_pe(detector);
  g.add_edge(dec0, detect);
  g.add_edge(dec1, detect);

  // Fan-out consumers at very different speeds and importances.
  graph::PeDescriptor consumer;
  consumer.kind = graph::PeKind::kEgress;
  consumer.node = delivery_node;
  consumer.buffer_capacity = 40;

  consumer.service_time[0] = 0.001;  // thumbnailer: cheap
  consumer.service_time[1] = 0.002;
  consumer.weight = 1.0;
  const PeId thumbs = g.add_pe(consumer);
  g.add_edge(detect, thumbs);

  consumer.service_time[0] = 0.005;  // tracker: the product
  consumer.service_time[1] = 0.015;
  consumer.weight = 10.0;
  const PeId tracker = g.add_pe(consumer);
  g.add_edge(detect, tracker);

  consumer.service_time[0] = 0.020;  // archiver: expensive, least urgent
  consumer.service_time[1] = 0.030;
  consumer.weight = 2.0;
  const PeId archive = g.add_pe(consumer);
  g.add_edge(detect, archive);

  g.validate();

  const opt::AllocationPlan plan = opt::optimize(g);
  std::cout << "Tier-1 CPU targets (weights pull CPU toward the tracker):\n";
  harness::Table alloc({"PE", "role", "weight", "cpu target", "rate SDO/s"});
  const char* roles[] = {"decoder0", "decoder1", "detector",
                         "thumbnails", "tracker", "archiver"};
  for (PeId id : g.all_pes()) {
    alloc.add_row({"pe" + std::to_string(id.value()), roles[id.value()],
                   harness::cell(g.pe(id).weight, 0),
                   harness::cell(plan.at(id).cpu, 3),
                   harness::cell(plan.at(id).rout_sdo, 1)});
  }
  alloc.print(std::cout);

  std::cout << "\nSimulated 60 s under each policy:\n";
  harness::Table results({"policy", "weighted tput", "tracker out/s",
                          "archiver out/s", "latency ms", "drops/s"});
  for (const auto policy :
       {control::FlowPolicy::kAces, control::FlowPolicy::kUdp,
        control::FlowPolicy::kLockStep}) {
    sim::SimOptions o;
    o.duration = 60.0;
    o.warmup = 15.0;
    o.seed = 7;
    o.controller.policy = policy;
    const metrics::RunReport report = sim::simulate(g, plan, o);
    // Egress index order follows PE creation order: thumbs, tracker,
    // archive.
    results.add_row(
        {to_string(policy), harness::cell(report.weighted_throughput, 1),
         harness::cell(report.egress_outputs[1] / report.measured_seconds, 1),
         harness::cell(report.egress_outputs[2] / report.measured_seconds, 1),
         harness::cell(report.latency.mean() * 1e3, 1),
         harness::cell(static_cast<double>(report.internal_drops) /
                           report.measured_seconds, 1)});
  }
  results.print(std::cout);
  std::cout << "\nNote how Lock-Step gates the tracker at the archiver's "
               "pace (min-flow), while\nACES keeps the high-weight tracker "
               "fed (max-flow, Eq. 8).\n";
  return 0;
}
