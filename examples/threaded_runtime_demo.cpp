// Runs the paper's default 60 PE / 10 node configuration on the *threaded*
// runtime — real worker threads, bounded channels, atomic advertisement
// mailboxes — and compares the result with the discrete-event simulator on
// the identical topology and plan (the paper's calibration methodology).
//
// Takes ~10 wall seconds (30 virtual seconds at time_scale 6, twice).
//
//   $ ./examples/threaded_runtime_demo
#include <iostream>

#include "harness/defaults.h"
#include "harness/experiment.h"
#include "harness/table.h"
#include "runtime/runtime_engine.h"

int main() {
  using namespace aces;

  const auto g =
      graph::generate_topology(harness::calibration_topology(), 2026);
  const auto plan = opt::optimize(g);
  std::cout << "Topology: " << g.pe_count() << " PEs / " << g.node_count()
            << " nodes; fluid-optimal weighted throughput "
            << harness::cell(plan.weighted_throughput, 0) << "\n\n"
            << "Running 30 virtual seconds on " << g.node_count()
            << " node worker threads (time_scale 6)...\n";

  runtime::RuntimeOptions ro;
  ro.duration = 30.0;
  ro.warmup = 6.0;
  ro.time_scale = 6.0;
  ro.seed = 4;
  ro.controller.policy = control::FlowPolicy::kAces;
  const metrics::RunReport rt = runtime::run_runtime(g, plan, ro);

  std::cout << "...and the same configuration on the discrete-event "
               "simulator...\n\n";
  sim::SimOptions so;
  so.duration = 30.0;
  so.warmup = 6.0;
  so.seed = 4;
  so.controller.policy = control::FlowPolicy::kAces;
  const metrics::RunReport ds = sim::simulate(g, plan, so);

  harness::Table table({"substrate", "wtput", "latency ms", "p99 ms",
                        "cpu util", "processed", "drops"});
  auto row = [&](const char* name, const metrics::RunReport& r) {
    table.add_row({name, harness::cell(r.weighted_throughput, 1),
                   harness::cell(r.latency.mean() * 1e3, 1),
                   harness::cell(r.latency_histogram.p99() * 1e3, 1),
                   harness::cell(r.cpu_utilization, 3),
                   harness::cell(r.sdos_processed),
                   harness::cell(r.internal_drops + r.ingress_drops)});
  };
  row("threaded runtime", rt);
  row("DES simulator", ds);
  table.print(std::cout);

  const double rel_err = 100.0 *
                         (rt.weighted_throughput - ds.weighted_throughput) /
                         ds.weighted_throughput;
  std::cout << "\nthroughput difference runtime vs simulator: "
            << harness::cell(rel_err, 1)
            << "% (the paper calibrated C-SIM against the SPC the same "
               "way)\n";
  return 0;
}
