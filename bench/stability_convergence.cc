// Self-stabilization (paper §I "self-stabilizing and robust to errors",
// §V-E "asymptotic convergence to the desired state ... from an arbitrary
// starting point").
//
// Every input buffer starts 100% full of aged SDOs — a pathological initial
// condition — and we measure how long each policy's system-wide mean buffer
// fill takes to settle back to its steady-state band, using the recorded
// occupancy trajectories.
//
// Expected shape: ACES drains the backlog and settles to a steady fill;
// UDP also drains (drops help it) but oscillates more; Lock-Step retains
// high occupancy much longer because blocked upstream PEs cannot drain.
#include <iostream>

#include "harness/defaults.h"
#include "harness/experiment.h"
#include "harness/table.h"

namespace {

using namespace aces;

/// Mean across PEs of buffer fill at each tick index; computed from the
/// per-PE trajectories (they share tick cadence per node, so we bucket by
/// 1-second windows).
metrics::TimeSeries mean_fill_series(const sim::StreamSimulation& sim,
                                     const graph::ProcessingGraph& g,
                                     Seconds duration) {
  metrics::TimeSeries mean;
  const auto& ts = sim.timeseries();
  for (int second = 0; second < static_cast<int>(duration); ++second) {
    OnlineStats window;
    for (PeId id : g.all_pes()) {
      const auto* series =
          ts.find("pe" + std::to_string(id.value()) + ".buffer");
      if (series == nullptr) continue;
      const auto& times = series->times();
      const auto& values = series->values();
      for (std::size_t i = 0; i < times.size(); ++i) {
        if (times[i] >= second && times[i] < second + 1) {
          window.add(values[i] /
                     static_cast<double>(g.pe(id).buffer_capacity));
        }
      }
    }
    if (!window.empty())
      mean.append(static_cast<double>(second) + 0.5, window.mean());
  }
  return mean;
}

}  // namespace

int main() {
  using control::FlowPolicy;

  std::cout << "=== Stability: recovery from fully pre-filled buffers ===\n"
            // aces-lint: allow(float-format) prose "% full", not a conversion
            << "60 PEs / 10 nodes; every buffer starts 100% full of aged "
               "SDOs.\n"
            << "settle time = first second after which the system-wide mean "
               "fill stays\nwithin 0.05 of its final value.\n\n";

  const auto g =
      graph::generate_topology(harness::calibration_topology(), 5);
  const auto plan = opt::optimize(g);

  harness::Table table({"policy", "fill @1s", "fill @5s", "fill @20s",
                        "final fill", "settle time s"});
  for (const FlowPolicy policy :
       {FlowPolicy::kAces, FlowPolicy::kUdp, FlowPolicy::kThreshold,
        FlowPolicy::kLockStep}) {
    sim::SimOptions o = harness::default_sim_options();
    o.duration = 60.0;
    o.warmup = 40.0;
    o.seed = 11;
    o.prefill_fraction = 1.0;
    o.record_timeseries = true;
    o.controller.policy = policy;
    sim::StreamSimulation sim(g, plan, o);
    sim.run();
    const metrics::TimeSeries mean = mean_fill_series(sim, g, o.duration);
    const double final_fill = mean.stats_after(40.0).mean();
    auto at = [&](double t) {
      for (std::size_t i = 0; i < mean.times().size(); ++i)
        if (mean.times()[i] >= t) return mean.values()[i];
      return mean.values().back();
    };
    table.add_row({to_string(policy), harness::cell(at(1.0), 3),
                   harness::cell(at(5.0), 3), harness::cell(at(20.0), 3),
                   harness::cell(final_fill, 3),
                   harness::cell(mean.settling_time(final_fill, 0.05), 1)});
  }
  table.print(std::cout);
  return 0;
}
