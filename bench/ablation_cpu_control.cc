// Ablation: the CPU-control half of tier 2.
//
// ACES's per-node scheduler weighs PEs by buffer occupancy ("expend their
// tokens for CPU cycles proportional to their input buffer occupancies",
// §V-D), so a PE mired in its slow state temporarily outbids its idle
// neighbours. Here we hold everything else fixed (LQR flow control, tokens,
// Eq. 8 cap) and swap the water-filling weights to the static tier-1
// targets, across the burstiness sweep.
//
// What it shows (an honest ablation finding): the throughput benefit of the
// ACES scheduler lives almost entirely in its *caps* — visible work, token
// bursts, and the Eq. 8 feedback bound — which both columns share. The
// choice of water-filling weights moves normalized throughput by ~1% either
// way; under heavy contention the tier-1 targets (which already encode
// where weighted throughput comes from) are marginally better weights than
// raw occupancy, while occupancy weighting drains congested buffers harder.
#include <iostream>

#include "harness/bench_options.h"
#include "harness/defaults.h"
#include "harness/experiment.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace aces;
  using control::CpuControlKind;
  using control::FlowPolicy;

  const harness::BenchOptions bench =
      harness::parse_bench_options(argc, argv);

  std::cout << "=== Ablation: occupancy-proportional vs target-proportional "
               "CPU control ===\n"
            << "60 PEs / 10 nodes at load 0.85, ACES flow control in both columns; only "
               "the water-filling\nweights differ.\n\n";

  harness::ExperimentSpec spec;
  spec.topology = harness::calibration_topology();
  // Occupancy weights only matter when nodes actually contend; run hot.
  spec.topology.load_factor = 0.85;
  spec.sim = harness::default_sim_options();
  spec.seeds = {1, 2, 3};
  bench.apply(spec.sim.duration, spec.sim.warmup, spec.seeds);

  harness::Table table({"burstiness", "occupancy norm", "target norm",
                        "occupancy lat ms", "target lat ms"});
  for (const double burst : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    harness::ExperimentSpec cell = spec;
    cell.topology = harness::with_burstiness(spec.topology, burst);
    std::vector<double> norm;
    std::vector<double> latency;
    for (const CpuControlKind kind :
         {CpuControlKind::kOccupancyProportional,
          CpuControlKind::kTargetProportional}) {
      cell.sim.controller.cpu_control = kind;
      const auto mean = run_experiment(cell, FlowPolicy::kAces).mean;
      norm.push_back(mean.normalized_throughput());
      latency.push_back(mean.latency_mean * 1e3);
    }
    table.add_row({harness::cell(burst, 1), harness::cell(norm[0], 3),
                   harness::cell(norm[1], 3), harness::cell(latency[0], 1),
                   harness::cell(latency[1], 1)});
  }
  harness::print_table(table, bench.csv, std::cout);
  return 0;
}
