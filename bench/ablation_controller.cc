// Controller design ablations:
//  (a) the Figure-2 fan-out scenario — max-flow (Eq. 8) vs min-flow: one
//      producer feeds four consumers provisioned for 10/20/20/30 SDOs/sec;
//      min-flow gates everyone at the slowest (total ≈ 40 out/s) while
//      max-flow lets each consumer run at its allocation (total ≈ 80 out/s),
//  (b) the b0 set-point placement trade-off of §V-C (queueing delay vs
//      buffer underflow),
//  (c) the LQR q/r weight ratio (track b0 hard vs equalize rates).
#include <iostream>

#include "harness/defaults.h"
#include "harness/experiment.h"
#include "harness/table.h"

namespace {

using namespace aces;

/// stream → relay → {4 consumers at 10/20/20/30 SDO/s} (paper Fig. 2).
struct FanOutScenario {
  graph::ProcessingGraph g;
  opt::AllocationPlan plan;

  FanOutScenario() {
    const NodeId src_node = g.add_node({1.0, "src"});
    const NodeId relay_node = g.add_node({1.0, "relay"});
    const StreamId stream = g.add_stream({30.0, 0.0, "feed"});

    graph::PeDescriptor base;
    base.service_time[0] = base.service_time[1] = 0.010;  // no burstiness
    base.sojourn_mean[0] = base.sojourn_mean[1] = 10.0;
    base.selectivity = 1.0;
    base.buffer_capacity = 50;

    graph::PeDescriptor ingress = base;
    ingress.kind = graph::PeKind::kIngress;
    ingress.node = src_node;
    ingress.input_stream = stream;
    const PeId src = g.add_pe(ingress);

    graph::PeDescriptor relay = base;
    relay.kind = graph::PeKind::kIntermediate;
    relay.node = relay_node;
    const PeId producer = g.add_pe(relay);
    g.add_edge(src, producer);

    std::vector<double> cpu{0.0, 0.0};
    cpu[src.value()] = g.pe(src).cpu_for_input_rate(30.0 * base.bytes_per_sdo);
    cpu[producer.value()] =
        g.pe(producer).cpu_for_input_rate(30.0 * base.bytes_per_sdo);
    for (const double rate : {10.0, 20.0, 20.0, 30.0}) {
      graph::PeDescriptor consumer = base;
      consumer.kind = graph::PeKind::kEgress;
      consumer.node = g.add_node({1.0, "c" + std::to_string(cpu.size())});
      consumer.weight = 1.0;
      const PeId id = g.add_pe(consumer);
      g.add_edge(producer, id);
      cpu.push_back(g.pe(id).cpu_for_input_rate(rate * base.bytes_per_sdo));
    }
    plan = opt::evaluate_allocation(g, cpu);
  }
};

}  // namespace

int main() {
  using control::FlowPolicy;

  std::cout << "=== Ablation (a): Figure-2 fan-out — max-flow vs min-flow "
               "===\n"
            << "Consumers provisioned for 10/20/20/30 SDO/s; source offers "
               "30 SDO/s.\n"
            << "Paper argument (Section III-D): min-flow gates the component "
               "at 10 SDO/s per\nconsumer (~40 out/s total); max-flow keeps "
               "every consumer at its allocation\n(~80 out/s total).\n\n";
  {
    FanOutScenario scenario;
    harness::Table table({"policy", "total out/s", "c1", "c2", "c3", "c4"});
    for (const FlowPolicy policy :
         {FlowPolicy::kAces, FlowPolicy::kUdp, FlowPolicy::kLockStep}) {
      sim::SimOptions so;
      so.duration = 60.0;
      so.warmup = 20.0;
      so.seed = 3;
      so.controller.policy = policy;
      const auto report = sim::simulate(scenario.g, scenario.plan, so);
      std::vector<std::string> row{to_string(policy),
                                   harness::cell(report.output_rate, 1)};
      for (const auto count : report.egress_outputs) {
        row.push_back(harness::cell(
            static_cast<double>(count) / report.measured_seconds, 1));
      }
      table.add_row(row);
    }
    table.print(std::cout);
  }

  std::cout << "\n=== Ablation (b): buffer set-point b0 placement (ACES) "
               "===\n"
            << "Section V-C: small b0 minimizes queueing delay but risks "
               "underflow; large b0\nkeeps PEs fed at the cost of latency.\n\n";
  {
    harness::Table table({"b0/B", "wtput norm", "lat mean ms", "lat std ms",
                          "drops/s", "ingress drops/s"});
    const auto params = harness::with_buffer_size(
        harness::with_burstiness(harness::calibration_topology(), 2.0), 10);
    for (const double fraction : {0.1, 0.25, 0.5, 0.75, 0.9}) {
      harness::ExperimentSpec spec;
      spec.topology = params;
      spec.sim = harness::default_sim_options();
      spec.sim.controller.b0_fraction = fraction;
      spec.seeds = {1, 2, 3};
      const auto mean =
          run_experiment(spec, FlowPolicy::kAces).mean;
      table.add_row({harness::cell(fraction, 2),
                     harness::cell(mean.normalized_throughput(), 3),
                     harness::cell(mean.latency_mean * 1e3, 1),
                     harness::cell(mean.latency_std * 1e3, 1),
                     harness::cell(mean.internal_drops_per_sec, 1),
                     harness::cell(mean.ingress_drops_per_sec, 1)});
    }
    table.print(std::cout);
  }

  std::cout << "\n=== Ablation (c): LQR weight ratio q/r (ACES) ===\n"
            << "Section V-C: large lambda (q >> r) chases b0; large mu "
               "(r >> q) equalizes\ninput and processing rates.\n\n";
  {
    harness::Table table({"q", "r", "lambda0", "wtput norm", "lat mean ms",
                          "lat std ms", "drops/s"});
    const auto params = harness::with_buffer_size(
        harness::with_burstiness(harness::calibration_topology(), 2.0), 10);
    for (const auto& [q, r] : std::vector<std::pair<double, double>>{
             {10.0, 0.5}, {1.0, 1.0}, {1.0, 4.0}, {0.2, 20.0}}) {
      harness::ExperimentSpec spec;
      spec.topology = params;
      spec.sim = harness::default_sim_options();
      spec.sim.controller.lqr = control::LqrWeights{q, r};
      spec.seeds = {1, 2};
      const auto gains = control::design_flow_gains(
          spec.sim.controller.feedback_delay_ticks, spec.sim.controller.lqr);
      const auto mean =
          run_experiment(spec, FlowPolicy::kAces).mean;
      table.add_row({harness::cell(q, 1), harness::cell(r, 1),
                     harness::cell(gains.lambda[0], 3),
                     harness::cell(mean.normalized_throughput(), 3),
                     harness::cell(mean.latency_mean * 1e3, 1),
                     harness::cell(mean.latency_std * 1e3, 1),
                     harness::cell(mean.internal_drops_per_sec, 1)});
    }
    table.print(std::cout);
  }
  std::cout << "\n=== Ablation (d): asynchronous vs synchronized control "
               "ticks ===\n"
            << "Section V-E: \"the algorithm does not depend on "
               "synchronization among the\nvarious nodes\" — random tick "
               "phases must not cost throughput.\n\n";
  {
    harness::Table table({"tick phases", "wtput norm", "lat mean ms"});
    const auto params = harness::with_buffer_size(
        harness::with_burstiness(harness::calibration_topology(), 2.0), 10);
    for (const bool randomize : {true, false}) {
      harness::ExperimentSpec spec;
      spec.topology = params;
      spec.sim = harness::default_sim_options();
      spec.sim.randomize_tick_phase = randomize;
      spec.seeds = {1, 2, 3};
      const auto mean = run_experiment(spec, FlowPolicy::kAces).mean;
      table.add_row({randomize ? "random" : "synchronized",
                     harness::cell(mean.normalized_throughput(), 3),
                     harness::cell(mean.latency_mean * 1e3, 1)});
    }
    table.print(std::cout);
  }
  return 0;
}
