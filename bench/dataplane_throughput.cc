// Raw data-plane throughput: mutex channel vs lock-free SPSC ring, per-SDO
// vs batched endpoints.
//
// The figure benches cannot show substrate speed — the threaded runtime is
// paced by the wall clock (duration / time_scale), so a faster channel
// moves the same SDOs in the same wall time. This bench measures the
// transport itself: N 16-byte SDO-shaped records through one channel,
// reported as messages/second per (backend × threading × batch) leg.
//
//   inline  — push and pop alternate on one thread (no contention: the
//             pure per-operation cost, the dominant term on the engine's
//             hot path where the consumer polls without blocking)
//   xthread — a producer thread and a consumer thread (adds the
//             cache-line handoff, and on single-core CI, scheduler churn)
//
// The bench also emits a deterministic fingerprint (FNV-1a over the
// consumed sequence of a fixed single-threaded op script): a FIFO's
// consumed sequence is independent of backend and batch size, so the
// printed fingerprint must be identical for --batch=1 and --batch=16 —
// CI's bench smoke step asserts exactly that. The fingerprint plus the
// fixed message counts form the document's HARD work totals for
// `aces bench-diff` against the committed BENCH_dataplane.json.
//
// Flags: --messages=N (default 1000000), --batch=K (default 16),
//        --json=FILE, --csv, --help. Not parse_bench_options: --scale and
//        --seeds have no meaning for a transport microbench.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "harness/bench_json.h"
#include "harness/table.h"
#include "obs/perf.h"
#include "runtime/channel.h"
#include "runtime/spsc_ring.h"

namespace {

using aces::runtime::Channel;
using aces::runtime::SpscRing;

/// Same shape as the engine's Sdo: the cost being measured is the
/// channel's, so the payload matches the real one.
struct PodSdo {
  double birth = 0.0;
  std::int64_t seq = 0;
};

constexpr std::size_t kChannelCapacity = 1024;

std::uint64_t fnv1a_step(std::uint64_t h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xFF;
    h *= 0x100000001B3ull;
  }
  return h;
}

/// One same-thread leg: alternate a batched push phase and a batched pop
/// phase until `messages` records made the round trip. The scratch buffer
/// is caller-owned so the loop itself is allocation-free (the steady-state
/// alloc check measures across two calls). Returns wall ms.
template <typename Q>
double run_inline(Q& q, std::uint64_t messages, std::size_t batch,
                  std::vector<PodSdo>& buf) {
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  const aces::harness::WallTimer timer;
  while (popped < messages) {
    std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(batch, messages - pushed));
    if (want > 0) {
      for (std::size_t i = 0; i < want; ++i) {
        buf[i].birth = static_cast<double>(pushed + i);
        buf[i].seq = static_cast<std::int64_t>(pushed + i);
      }
      pushed += q.try_push_n(buf.data(), want);
    }
    popped += q.pop_burst(buf.data(), batch);
  }
  return timer.elapsed_ms();
}

/// One two-thread leg: a producer thread offers `messages` records, the
/// calling thread consumes them. Returns wall ms.
template <typename Q>
double run_xthread(Q& q, std::uint64_t messages, std::size_t batch) {
  const aces::harness::WallTimer timer;
  std::thread producer([&q, messages, batch] {
    std::vector<PodSdo> buf(batch);
    std::uint64_t sent = 0;
    while (sent < messages) {
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(batch, messages - sent));
      for (std::size_t i = 0; i < want; ++i) {
        buf[i].birth = static_cast<double>(sent + i);
        buf[i].seq = static_cast<std::int64_t>(sent + i);
      }
      std::size_t done = 0;
      while (done < want) {
        const std::size_t k = q.try_push_n(buf.data() + done, want - done);
        if (k == 0) std::this_thread::yield();
        done += k;
      }
      sent += want;
    }
  });
  std::vector<PodSdo> buf(batch);
  std::uint64_t received = 0;
  while (received < messages) {
    const std::size_t k = q.pop_burst(buf.data(), batch);
    if (k == 0) {
      std::this_thread::yield();
      continue;
    }
    received += k;
  }
  producer.join();
  return timer.elapsed_ms();
}

/// Deterministic op script (fixed push/pop phase lengths with partial
/// acceptance) — identical consumed sequence for every backend and batch
/// size, fingerprinted. Mirrors the differential in spsc_ring_test.cc.
template <typename Q>
std::uint64_t run_fingerprint(Q& q, std::size_t batch) {
  std::uint64_t fp = 0xCBF29CE484222325ull;
  std::uint64_t next_value = 0;
  std::vector<PodSdo> buf(batch);
  for (int round = 0; round < 4000; ++round) {
    const std::size_t pushes = 1 + (round * 7) % 13;
    const std::uint64_t base = next_value;
    next_value += pushes;
    std::size_t offered = 0;
    while (offered < pushes) {
      const std::size_t n = std::min<std::size_t>(batch, pushes - offered);
      for (std::size_t i = 0; i < n; ++i) {
        buf[i].seq = static_cast<std::int64_t>(base + offered + i);
      }
      const std::size_t k = q.try_push_n(buf.data(), n);
      offered += n;
      if (k < n) break;
    }
    const std::size_t pops = 1 + (round * 5) % 11;
    std::size_t drained = 0;
    while (drained < pops) {
      const std::size_t n = std::min<std::size_t>(batch, pops - drained);
      const std::size_t k = q.pop_burst(buf.data(), n);
      if (k == 0) break;
      for (std::size_t i = 0; i < k; ++i) {
        fp = fnv1a_step(fp, static_cast<std::uint64_t>(buf[i].seq));
      }
      drained += k;
    }
  }
  while (auto v = q.try_pop()) {
    fp = fnv1a_step(fp, static_cast<std::uint64_t>(v->seq));
  }
  return fp;
}

void usage() {
  std::cout << "dataplane_throughput [--messages=N] [--batch=K] "
               "[--json=FILE] [--csv] [--help]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aces;

  std::uint64_t messages = 1000000;
  std::size_t batch = 16;
  std::string json_path;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--messages=", 0) == 0) {
      messages = std::strtoull(arg.c_str() + 11, nullptr, 10);
    } else if (arg.rfind("--batch=", 0) == 0) {
      batch = std::strtoull(arg.c_str() + 8, nullptr, 10);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--help") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      usage();
      return 1;
    }
  }
  if (messages == 0 || batch == 0) {
    std::cerr << "--messages and --batch must be positive\n";
    return 1;
  }

  std::cout << "=== Data-plane transport throughput: mutex channel vs "
               "lock-free SPSC ring ===\n"
            << messages << " x 16-byte SDOs per leg, channel capacity "
            << kChannelCapacity << ", batch K=" << batch << "\n\n";

  harness::BenchJsonWriter json("dataplane_throughput");
  harness::Table table({"leg", "wall ms", "msgs/sec (M)"});
  const auto record = [&](const std::string& label, double wall_ms) {
    json.add_run(label, wall_ms);
    const double mps = static_cast<double>(messages) / (wall_ms / 1e3) / 1e6;
    table.add_row({label, harness::cell(wall_ms, 1), harness::cell(mps, 2)});
    return mps;
  };

  double mutex_inline_mps = 0.0;
  double ring_batched_mps = 0.0;
  std::vector<PodSdo> scratch(std::max<std::size_t>(batch, 1));
  {
    Channel<PodSdo> q(kChannelCapacity);
    mutex_inline_mps =
        record("mutex/inline/batch=1", run_inline(q, messages, 1, scratch));
  }
  {
    SpscRing<PodSdo> q(kChannelCapacity);
    record("ring/inline/batch=1", run_inline(q, messages, 1, scratch));
  }
  {
    Channel<PodSdo> q(kChannelCapacity);
    record("mutex/inline/batch=K", run_inline(q, messages, batch, scratch));
  }
  {
    SpscRing<PodSdo> q(kChannelCapacity);
    ring_batched_mps = record("ring/inline/batch=K",
                              run_inline(q, messages, batch, scratch));
  }
  {
    Channel<PodSdo> q(kChannelCapacity);
    record("mutex/xthread/batch=1", run_xthread(q, messages, 1));
  }
  {
    SpscRing<PodSdo> q(kChannelCapacity);
    record("ring/xthread/batch=1", run_xthread(q, messages, 1));
  }
  {
    SpscRing<PodSdo> q(kChannelCapacity);
    record("ring/xthread/batch=K", run_xthread(q, messages, batch));
  }

  // Steady-state allocation check: the second identical leg must allocate
  // nothing (all three backends preallocate), so the operator-new count is
  // flat across message volume. Only meaningful under ACES_PERF_INSTRUMENT.
  std::uint64_t steady_allocs = 0;
  {
    SpscRing<PodSdo> q(kChannelCapacity);
    run_inline(q, messages / 4, batch, scratch);  // warm everything up
    const std::uint64_t before = obs::alloc_count();
    run_inline(q, messages, batch, scratch);
    steady_allocs = obs::alloc_count() - before;
  }

  // Deterministic fingerprint: identical across backends and batch sizes.
  std::uint64_t fp_ring = 0;
  std::uint64_t fp_mutex = 0;
  {
    SpscRing<PodSdo> q(kChannelCapacity);
    fp_ring = run_fingerprint(q, batch);
  }
  {
    Channel<PodSdo> q(kChannelCapacity);
    fp_mutex = run_fingerprint(q, batch);
  }

  harness::print_table(table, csv, std::cout);
  char fp_line[128];
  std::snprintf(fp_line, sizeof(fp_line),
                "fingerprint=%016llx (backends %s)\n",
                static_cast<unsigned long long>(fp_ring),
                fp_ring == fp_mutex ? "agree" : "DISAGREE");
  std::cout << "\n" << fp_line
            << "steady-state allocations over " << messages
            << " msgs: " << steady_allocs
            << (obs::perf_instrumented() ? "" : " (uninstrumented build)")
            << "\nring/inline/batch=K vs mutex/inline/batch=1 speedup: "
            << harness::cell(ring_batched_mps / mutex_inline_mps, 2)
            << "x\n";
  if (fp_ring != fp_mutex) return 1;

  // HARD work totals: message counts and the op-script fingerprint are
  // bit-stable for fixed flags; wall times are the SOFT trajectory.
  json.set_perf_work(/*events_executed=*/messages * 7 + fp_ring % 1000,
                     /*sdos_processed=*/messages * 7,
                     /*reoptimizations=*/0);
  json.set_perf_memory(static_cast<double>(obs::peak_rss_bytes()) / 1e6,
                       steady_allocs);
  return json.write_file(json_path) ? 0 : 1;
}
