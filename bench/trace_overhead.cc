// Overhead guard for data-plane span tracing.
//
// Runs the same simulation untraced and traced (1% sampling, the production
// default) and checks the two contracts that let tracing ride in every run:
//
//  1. Determinism: span hooks never schedule events or alter event order, so
//     the traced RunReport is bit-identical to the untraced one (compared
//     via a hexfloat fingerprint — exact, not tolerance-based).
//  2. Cost: the traced run's best-of-N wall clock stays within --threshold
//     (default 5%) of the untraced best. min-of-N because the minimum is
//     the statistic least polluted by scheduler noise on shared CI boxes.
//
// Exit codes: 0 ok, 1 fingerprint mismatch (a correctness bug), 2 overhead
// above threshold. CI runs this directly (not under ctest) so a noisy box
// shows up as a distinct failure, not a flaky unit test.
//
//   ./bench/trace_overhead [--trials=5 --threshold=0.05 --sample=0.01
//                           --scale=1 --json=BENCH_trace_overhead.json]
#include <iostream>
#include <string>

#include "graph/topology_generator.h"
#include "harness/bench_json.h"
#include "harness/defaults.h"
#include "metrics/report_fingerprint.h"
#include "metrics/run_report.h"
#include "obs/spans.h"
#include "opt/global_optimizer.h"
#include "sim/stream_simulation.h"

namespace {

using namespace aces;
using metrics::report_fingerprint;

double flag(int argc, char** argv, const std::string& name, double fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return std::stod(arg.substr(prefix.size()));
  }
  return fallback;
}

std::string string_flag(int argc, char** argv, const std::string& name,
                        const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = static_cast<int>(flag(argc, argv, "trials", 5));
  const double threshold = flag(argc, argv, "threshold", 0.05);
  const double sample = flag(argc, argv, "sample", 0.01);
  const double scale = flag(argc, argv, "scale", 1.0);
  const std::string json_path =
      string_flag(argc, argv, "json", "BENCH_trace_overhead.json");

  const graph::ProcessingGraph g =
      graph::generate_topology(harness::calibration_topology(), 7);
  const opt::AllocationPlan plan = opt::optimize(g);
  sim::SimOptions options = harness::default_sim_options();
  options.duration = 30.0 * scale;
  options.warmup = 5.0 * scale;
  options.seed = 42;

  const auto run_once = [&](obs::SpanTracer* tracer, double& best_ms) {
    sim::SimOptions opt = options;
    opt.spans = tracer;
    const harness::WallTimer timer;
    sim::StreamSimulation simulation(g, plan, opt);
    simulation.run();
    const double ms = timer.elapsed_ms();
    if (best_ms < 0.0 || ms < best_ms) best_ms = ms;
    return simulation.report();
  };

  harness::BenchJsonWriter json("trace_overhead");
  double untraced_ms = -1.0;
  double traced_ms = -1.0;
  std::string untraced_fp;
  std::string traced_fp;
  for (int t = 0; t < trials; ++t) {
    const metrics::RunReport r = run_once(nullptr, untraced_ms);
    untraced_fp = report_fingerprint(r);
  }
  obs::SpanTracerOptions tracer_options;
  tracer_options.sample_rate = sample;
  tracer_options.seed = options.seed;
  for (int t = 0; t < trials; ++t) {
    obs::SpanTracer tracer(tracer_options);
    const metrics::RunReport r = run_once(&tracer, traced_ms);
    traced_fp = report_fingerprint(r);
  }
  json.add_run("untraced", untraced_ms);
  json.add_run("traced", traced_ms);
  json.write_file(json_path);

  const double overhead =
      untraced_ms > 0.0 ? traced_ms / untraced_ms - 1.0 : 0.0;
  std::cout << "untraced best " << untraced_ms << " ms, traced best "
            << traced_ms << " ms, overhead " << overhead * 100.0 << "% "
            << "(threshold " << threshold * 100.0 << "%), sample rate "
            << sample << ", " << trials << " trial(s)\n";

  if (untraced_fp != traced_fp) {
    std::cerr << "FAIL: traced RunReport diverges from untraced — span "
                 "hooks altered simulation behaviour\n";
    return 1;
  }
  std::cout << "RunReport fingerprints identical (tracing is effect-free)\n";
  if (overhead > threshold) {
    std::cerr << "FAIL: tracing overhead " << overhead * 100.0
              // aces-lint: allow(float-format) prose "% exceeds", not a conversion
              << "% exceeds threshold " << threshold * 100.0 << "%\n";
    return 2;
  }
  return 0;
}
