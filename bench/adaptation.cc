// Tier-1 periodic re-optimization (paper §V): "The first tier updates
// time-average resource allocations on the order of minutes and can take
// into account arbitrarily complex policy constraints ... [it runs]
// periodically, to support changing workload and resource availability."
//
// Scenario: 60 PEs / 10 nodes under ACES. At t = 20 s the workload shifts
// hard (half the streams triple their rate, the other half drop to a
// quarter), and at t = 40 s two nodes lose half their CPU. We compare a
// static tier-1 plan against re-optimizing every 10 s.
//
// Expected shape: with re-optimization the post-shift weighted throughput
// recovers toward the new fluid optimum; the stale plan leaves token
// accrual rates pointing at the old workload and loses throughput.
#include <iostream>

#include "harness/defaults.h"
#include "harness/experiment.h"
#include "harness/table.h"

int main() {
  using namespace aces;
  using control::FlowPolicy;

  std::cout << "=== Adaptation: periodic tier-1 re-optimization under "
               "workload + capacity shifts ===\n\n";

  harness::Table table({"seed", "static plan", "reoptimized", "gain %"});
  double mean_gain = 0.0;
  const std::vector<std::uint64_t> seeds{1, 2, 3};
  for (const std::uint64_t seed : seeds) {
    const auto params =
        harness::with_burstiness(harness::calibration_topology(), 2.0);
    const auto g = graph::generate_topology(params, seed);
    const auto plan = opt::optimize(g);

    sim::SimOptions o = harness::default_sim_options();
    o.duration = 80.0;
    o.warmup = 30.0;  // measure after the shifts begin to bite
    o.seed = seed + 7;
    o.controller.policy = FlowPolicy::kAces;
    // Workload shift at t = 20 s.
    for (std::size_t s = 0; s < g.stream_count(); ++s) {
      const StreamId id(static_cast<StreamId::value_type>(s));
      const double factor = (s % 2 == 0) ? 3.0 : 0.25;
      o.rate_changes.push_back(
          sim::RateChange{20.0, id, g.stream(id).mean_rate * factor});
    }
    // Capacity loss at t = 40 s on the first two nodes.
    o.capacity_changes.push_back(sim::CapacityChange{40.0, NodeId(0), 0.5});
    o.capacity_changes.push_back(sim::CapacityChange{40.0, NodeId(1), 0.5});

    const auto stale = sim::simulate(g, plan, o);
    sim::SimOptions adaptive = o;
    adaptive.reoptimize_interval = 10.0;
    const auto adapted = sim::simulate(g, plan, adaptive);

    const double gain = 100.0 *
                        (adapted.weighted_throughput -
                         stale.weighted_throughput) /
                        stale.weighted_throughput;
    mean_gain += gain / static_cast<double>(seeds.size());
    table.add_row({std::to_string(seed),
                   harness::cell(stale.weighted_throughput, 0),
                   harness::cell(adapted.weighted_throughput, 0),
                   harness::cell(gain, 1)});
  }
  table.print(std::cout);
  std::cout << "\nmean gain from periodic tier-1: "
            << harness::cell(mean_gain, 1) << "%\n";
  return 0;
}
