// Reproduces Figure 4: mean latency versus weighted throughput for ACES and
// Lock-Step on the 200 PE / 80 node simulator topology.
//
// "The variation in latency and weighted throughput was accomplished by
//  altering the input buffer size (B) of the PEs."
//
// Expected shape: both curves climb in throughput as B grows; at equal
// weighted throughput ACES sits at a fraction of Lock-Step's latency ("as
// little as a third"), and in the limit of small buffers ACES holds >20%
// more weighted throughput.
#include <iostream>

#include "harness/bench_json.h"
#include "harness/bench_options.h"
#include "harness/defaults.h"
#include "harness/experiment.h"
#include "harness/table.h"
#include "obs/perf.h"

int main(int argc, char** argv) {
  using namespace aces;
  using control::FlowPolicy;

  const harness::BenchOptions bench =
      harness::parse_bench_options(argc, argv);

  std::cout << "=== Figure 4: mean latency vs weighted throughput "
               "(parametric in buffer size B) ===\n"
            << "200 PEs / 80 nodes, burstiness x2, seeds averaged\n"
            << "Paper shape: for the same weighted throughput ACES has the "
               "lower latency;\nACES >20% more throughput at small B.\n\n";

  harness::ExperimentSpec spec;
  spec.topology = harness::with_burstiness(harness::scaled_topology(), 2.0);
  spec.sim = harness::default_sim_options();
  spec.seeds = {1, 2, 3};
  bench.apply(spec.sim.duration, spec.sim.warmup, spec.seeds);

  harness::BenchJsonWriter json("fig4_latency_vs_throughput");
  harness::RunSummary work;  // deterministic totals over the whole bench
  harness::Table table({"B", "policy", "wtput", "wtput/fluid",
                        "lat mean ms", "lat std ms"});
  for (const int buffer : {5, 10, 15, 25, 50, 100, 200}) {
    harness::ExperimentSpec cell = spec;
    cell.topology = harness::with_buffer_size(spec.topology, buffer);
    for (const FlowPolicy policy :
         {FlowPolicy::kAces, FlowPolicy::kLockStep}) {
      const harness::WallTimer timer;
      const auto mean = run_experiment(cell, policy).mean;
      work.events_executed += mean.events_executed;
      work.sdos_processed += mean.sdos_processed;
      work.reoptimizations += mean.reoptimizations;
      json.add_run("B" + std::to_string(buffer) + "/" + to_string(policy),
                   timer.elapsed_ms(), mean.weighted_throughput,
                   mean.latency_p50, mean.latency_p99);
      table.add_row({std::to_string(buffer), to_string(policy),
                     harness::cell(mean.weighted_throughput, 0),
                     harness::cell(mean.normalized_throughput(), 3),
                     harness::cell(mean.latency_mean * 1e3, 1),
                     harness::cell(mean.latency_std * 1e3, 1)});
    }
  }
  harness::print_table(table, bench.csv, std::cout);
  json.set_perf_work(work.events_executed, work.sdos_processed,
                     work.reoptimizations);
  json.set_perf_memory(
      static_cast<double>(obs::peak_rss_bytes()) / (1024.0 * 1024.0),
      obs::alloc_count());
  return json.write_file(bench.json) ? 0 : 1;
}
