// Micro-benchmarks (google-benchmark) for the building blocks on the hot
// paths: the event kernel, the tier-2 controller, the data-plane channel,
// and the tier-1 solver. These quantify the claim that the distributed
// controller is "computationally light" (paper §V-C).
#include <benchmark/benchmark.h>

#include "control/cpu_scheduler.h"
#include "control/flow_controller.h"
#include "control/lqr.h"
#include "control/node_controller.h"
#include "graph/topology_generator.h"
#include "obs/counters.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "opt/global_optimizer.h"
#include "runtime/channel.h"
#include "sim/simulator.h"
#include "sim/stream_simulation.h"

namespace {

using namespace aces;

void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  const auto events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    for (int i = 0; i < events; ++i) {
      simulator.schedule_at((i * 7919) % 1000 * 1e-3, [] {});
    }
    simulator.run_all();
    benchmark::DoNotOptimize(simulator.executed());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueScheduleAndRun)->Arg(1000)->Arg(10000);

void BM_FlowControllerUpdate(benchmark::State& state) {
  const auto gains = control::design_flow_gains(2, control::LqrWeights{});
  control::FlowController fc(gains, 25.0);
  double b = 40.0;
  for (auto _ : state) {
    const double r = fc.update(b, 100.0);
    b = b > 25.0 ? b - 0.1 : b + 0.1;
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FlowControllerUpdate);

void BM_PartitionCpu(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<control::CpuDemand> demands(n);
  for (std::size_t i = 0; i < n; ++i) {
    demands[i] = {1.0 + static_cast<double>(i % 7),
                  0.05 * static_cast<double>(1 + i % 4)};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(control::partition_cpu(1.0, demands));
  }
}
BENCHMARK(BM_PartitionCpu)->Arg(6)->Arg(32);

void BM_NodeControllerTick(benchmark::State& state) {
  graph::TopologyParams params;
  params.num_nodes = 1;
  params.num_ingress = 2;
  params.num_intermediate = 3;
  params.num_egress = 1;
  const auto g = generate_topology(params, 1);
  const auto plan = opt::optimize(g);
  control::NodeController controller(g, NodeId(0), plan,
                                     control::ControllerConfig{});
  std::vector<control::PeTickInput> inputs(controller.local_pes().size());
  for (auto& in : inputs) {
    in.buffer_occupancy = 20.0;
    in.processed_sdos = 10.0;
    in.cpu_seconds_used = 0.02;
    in.arrived_sdos = 11.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.tick(0.1, inputs));
  }
}
BENCHMARK(BM_NodeControllerTick);

void BM_DareSolve(benchmark::State& state) {
  const int delay = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        control::design_flow_gains(delay, control::LqrWeights{}));
  }
}
BENCHMARK(BM_DareSolve)->Arg(0)->Arg(2)->Arg(6);

void BM_ChannelPushPop(benchmark::State& state) {
  runtime::Channel<int> ch(1024);
  for (auto _ : state) {
    ch.try_push(1);
    benchmark::DoNotOptimize(ch.try_pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelPushPop);

void BM_CounterDisabled(benchmark::State& state) {
  // Telemetry off: the handle the runtime holds when RuntimeOptions::counters
  // is null. Must price at a predicted-not-taken branch (~a ns or less) so
  // leaving the counters compiled into the data plane is free.
  obs::Counter counter;
  for (auto _ : state) {
    counter.inc();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterDisabled);

void BM_CounterEnabled(benchmark::State& state) {
  obs::CounterRegistry registry;
  obs::Counter counter = registry.counter("bench.events");
  for (auto _ : state) {
    counter.inc();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterEnabled);

void BM_TraceRecord(benchmark::State& state) {
  // Control-plane rate is ~10 Hz × nodes, so the mutex is fine; this bounds
  // the cost of one record() for sizing longer traced runs.
  obs::ControlTraceRecorder recorder;
  obs::TickRecord rec;
  rec.buffer_occupancy = 20.0;
  for (auto _ : state) {
    recorder.record(rec);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecord);

void BM_ScopedTimerDisabled(benchmark::State& state) {
  // Null profiler: construction + destruction must not read the clock.
  for (auto _ : state) {
    obs::ScopedTimer timer(nullptr, obs::kPhaseControllerTick);
    benchmark::DoNotOptimize(&timer);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopedTimerDisabled);

void BM_TopologyGeneration(benchmark::State& state) {
  graph::TopologyParams params;  // 60 PEs / 10 nodes
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_topology(params, seed++));
  }
}
BENCHMARK(BM_TopologyGeneration);

void BM_GlobalOptimize(benchmark::State& state) {
  const auto g = generate_topology(graph::TopologyParams{}, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::optimize(g));
  }
}
BENCHMARK(BM_GlobalOptimize);

void BM_SimulatedSecond(benchmark::State& state) {
  // Cost of simulating one virtual second of the 60 PE / 10 node system.
  const auto g = generate_topology(graph::TopologyParams{}, 1);
  const auto plan = opt::optimize(g);
  for (auto _ : state) {
    sim::SimOptions o;
    o.duration = 2.0;
    o.warmup = 1.0;
    o.seed = 1;
    benchmark::DoNotOptimize(sim::simulate(g, plan, o));
  }
}
BENCHMARK(BM_SimulatedSecond);

}  // namespace

BENCHMARK_MAIN();
