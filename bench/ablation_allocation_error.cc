// Reproduces the robustness result from §VII: "The robustness of ACES to
// errors in allocation was also demonstrated."
//
// Tier-1 CPU targets are perturbed multiplicatively by ±ε (then re-projected
// onto node capacity), emulating a stale or mis-calibrated global optimizer.
// Expected shape: ACES degrades gracefully as ε grows (tier 2 reassigns CPU
// by occupancy and enforces flow control), while UDP — which enforces the
// erroneous targets verbatim — loses markedly more weighted throughput.
#include <iostream>

#include "common/rng.h"
#include "harness/defaults.h"
#include "harness/experiment.h"
#include "harness/table.h"

namespace {

aces::opt::AllocationPlan perturb(const aces::graph::ProcessingGraph& g,
                                  const aces::opt::AllocationPlan& plan,
                                  double epsilon, std::uint64_t seed) {
  using namespace aces;
  Rng rng(seed);
  std::vector<double> cpu(g.pe_count());
  for (std::size_t i = 0; i < g.pe_count(); ++i)
    cpu[i] = plan.pe[i].cpu * (1.0 + rng.uniform(-epsilon, epsilon));
  for (NodeId n : g.all_nodes()) {
    std::vector<double> node_vals;
    const auto& pes = g.pes_on_node(n);
    for (PeId id : pes) node_vals.push_back(cpu[id.value()]);
    opt::project_to_capacity(node_vals, g.node(n).cpu_capacity);
    for (std::size_t k = 0; k < pes.size(); ++k)
      cpu[pes[k].value()] = node_vals[k];
  }
  opt::AllocationPlan out = opt::evaluate_allocation(g, cpu);
  // Keep the *unperturbed* fluid bound as the normalization reference.
  out.weighted_throughput = plan.weighted_throughput;
  return out;
}

}  // namespace

int main() {
  using namespace aces;
  using control::FlowPolicy;

  std::cout << "=== Ablation: robustness to tier-1 allocation errors ===\n"
            << "60 PEs / 10 nodes, burstiness x2; CPU targets perturbed by "
               "+/- epsilon\n"
            << "Paper shape (Section VII): ACES throughput is robust to "
               "allocation errors;\nstatic enforcement (UDP) degrades "
               "faster.\n\n";

  harness::Table table({"epsilon", "ACES norm", "UDP norm",
                        "Lock-Step norm"});
  const auto params =
      harness::with_burstiness(harness::calibration_topology(), 2.0);
  for (const double epsilon : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    std::vector<double> norm(3, 0.0);
    const std::vector<std::uint64_t> seeds{1, 2, 3};
    for (const std::uint64_t seed : seeds) {
      const auto g = graph::generate_topology(params, seed);
      const auto plan = opt::optimize(g);
      const auto noisy = perturb(g, plan, epsilon, seed * 31 + 7);
      sim::SimOptions so = harness::default_sim_options();
      so.duration = 40.0;
      so.warmup = 10.0;
      so.seed = seed + 55;
      int p = 0;
      for (const FlowPolicy policy :
           {FlowPolicy::kAces, FlowPolicy::kUdp, FlowPolicy::kLockStep}) {
        so.controller.policy = policy;
        harness::RunSummary run = harness::run_single(g, noisy, so);
        run.fluid_bound = plan.weighted_throughput;
        norm[p++] += run.normalized_throughput() / seeds.size();
      }
    }
    table.add_row({harness::cell(epsilon, 1), harness::cell(norm[0], 3),
                   harness::cell(norm[1], 3), harness::cell(norm[2], 3)});
  }
  table.print(std::cout);
  return 0;
}
