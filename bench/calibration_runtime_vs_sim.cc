// Reproduces the paper's calibration methodology (§VI-C): run identical 60
// PE / 10 node topologies on the discrete-event simulator and on the
// threaded runtime (our SPC stand-in) and compare the headline metrics.
//
// "Experiments were run on topologies consisting of 60 PEs running on 10
//  nodes in the SPC and the C-SIM simulator. This was done to calibrate the
//  simulator to the SPC."
//
// Expected: weighted throughput agrees within a modest relative error for
// every policy; latency agrees in order of magnitude (the runtime adds
// wall-clock scheduling jitter the DES does not model).
#include <cmath>
#include <iostream>

#include "harness/bench_json.h"
#include "harness/bench_options.h"
#include "harness/defaults.h"
#include "harness/experiment.h"
#include "harness/table.h"
#include "runtime/runtime_engine.h"

int main(int argc, char** argv) {
  using namespace aces;
  using control::FlowPolicy;

  const harness::BenchOptions bench =
      harness::parse_bench_options(argc, argv);

  std::cout << "=== Calibration: threaded runtime (SPC stand-in) vs "
               "discrete-event simulator ===\n"
            << "60 PEs / 10 nodes, identical topology, plan, and controller "
               "configuration\n\n";

  harness::BenchJsonWriter json("calibration_runtime_vs_sim");
  harness::Table table({"seed", "policy", "sim wtput", "rt wtput",
                        "rel err %", "sim lat ms", "rt lat ms"});
  double worst_rel_err = 0.0;
  for (const std::uint64_t seed : {1, 2}) {
    const auto g =
        graph::generate_topology(harness::calibration_topology(), seed);
    const auto plan = opt::optimize(g);
    for (const FlowPolicy policy :
         {FlowPolicy::kAces, FlowPolicy::kUdp, FlowPolicy::kLockStep}) {
      sim::SimOptions so = harness::default_sim_options();
      so.duration = 30.0;
      so.warmup = 6.0;
      so.seed = seed + 100;
      so.controller.policy = policy;
      const harness::WallTimer sim_timer;
      const auto sim_run = harness::run_single(g, plan, so);
      json.add_run("s" + std::to_string(seed) + "/" + to_string(policy) +
                       "/sim",
                   sim_timer.elapsed_ms(), sim_run.weighted_throughput,
                   sim_run.latency_p50, sim_run.latency_p99);

      runtime::RuntimeOptions ro;
      ro.duration = 30.0;
      ro.warmup = 6.0;
      ro.time_scale = 6.0;
      ro.seed = seed + 100;
      ro.controller.policy = policy;
      const harness::WallTimer rt_timer;
      const auto rt_run = harness::summarize(runtime::run_runtime(g, plan, ro),
                                             plan.weighted_throughput);
      json.add_run("s" + std::to_string(seed) + "/" + to_string(policy) +
                       "/runtime",
                   rt_timer.elapsed_ms(), rt_run.weighted_throughput,
                   rt_run.latency_p50, rt_run.latency_p99);

      const double rel_err =
          100.0 *
          std::abs(rt_run.weighted_throughput - sim_run.weighted_throughput) /
          sim_run.weighted_throughput;
      worst_rel_err = std::max(worst_rel_err, rel_err);
      table.add_row({std::to_string(seed), to_string(policy),
                     harness::cell(sim_run.weighted_throughput, 0),
                     harness::cell(rt_run.weighted_throughput, 0),
                     harness::cell(rel_err, 1),
                     harness::cell(sim_run.latency_mean * 1e3, 1),
                     harness::cell(rt_run.latency_mean * 1e3, 1)});
    }
  }
  harness::print_table(table, bench.csv, std::cout);
  std::cout << "\nworst relative throughput error: "
            << harness::cell(worst_rel_err, 1) << "%\n";
  return json.write_file(bench.json) ? 0 : 1;
}
