// Ablation: what does the LQR flow law (Eq. 7) buy over simpler designs?
//
// Four flow-control designs under identical CPU control conditions:
//   ACES       — LQR advertisements (the paper's proposal)
//   Threshold  — watermark XON/XOFF advertisements (Storm/Flink-style
//                backpressure; same CPU control as ACES)
//   UDP        — no feedback at all (static CPU targets)
//   Lock-Step  — blocking min-flow transport
//
// Swept over buffer size at elevated burstiness. Expected: Threshold
// recovers most of ACES's advantage at large buffers, but at small buffers
// the buffer turns over faster than the watermark loop can react and the
// quantitative LQR advertisement (which meters a *rate* instead of slamming
// between stop and go) retains a clear edge.
#include <iostream>

#include "harness/bench_options.h"
#include "harness/defaults.h"
#include "harness/experiment.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace aces;
  using control::FlowPolicy;

  const harness::BenchOptions bench =
      harness::parse_bench_options(argc, argv);

  std::cout << "=== Ablation: LQR vs watermark backpressure vs none ===\n"
            << "60 PEs / 10 nodes, burstiness x2; normalized weighted "
               "throughput by buffer size\n\n";

  harness::ExperimentSpec spec;
  spec.topology = harness::with_burstiness(harness::calibration_topology(),
                                           2.0);
  spec.sim = harness::default_sim_options();
  spec.seeds = {1, 2, 3};
  bench.apply(spec.sim.duration, spec.sim.warmup, spec.seeds);

  harness::Table table({"B", "ACES", "Threshold", "UDP", "Lock-Step"});
  harness::Table drops({"B", "ACES drops/s", "Threshold drops/s",
                        "UDP drops/s"});
  for (const int buffer : {5, 10, 25, 50, 100}) {
    harness::ExperimentSpec cell = spec;
    cell.topology = harness::with_buffer_size(spec.topology, buffer);
    std::vector<std::string> row{std::to_string(buffer)};
    std::vector<std::string> drop_row{std::to_string(buffer)};
    for (const FlowPolicy policy :
         {FlowPolicy::kAces, FlowPolicy::kThreshold, FlowPolicy::kUdp,
          FlowPolicy::kLockStep}) {
      const auto mean = run_experiment(cell, policy).mean;
      row.push_back(harness::cell(mean.normalized_throughput(), 3));
      if (policy != FlowPolicy::kLockStep)
        drop_row.push_back(harness::cell(mean.internal_drops_per_sec, 1));
    }
    table.add_row(row);
    drops.add_row(drop_row);
  }
  harness::print_table(table, bench.csv, std::cout);
  std::cout << "\nInternal drops (partially processed data lost — wasted "
               "upstream CPU):\n";
  harness::print_table(drops, bench.csv, std::cout);
  return 0;
}
